//! Property-based tests for the analysis crate: structural invariants of
//! the Markov infection chain, monotonicity of the tree model, and the
//! exact static reduction of the decentralized (churn-aware) model.
//!
//! These are the closed-loop model's own contracts — the simulation-facing
//! tolerances live in `tests/analysis_vs_simulation.rs` at the workspace
//! root; here we pin down what must hold *exactly* (stochastic rows,
//! bit-for-bit reductions) or *directionally* (more fanout, more rounds,
//! more interest never hurt).

use pmcast_analysis::churn::ChurnProfile;
use pmcast_analysis::decentralized::{DecentralizedModel, ProviderShape};
use pmcast_analysis::markov::InfectionChain;
use pmcast_analysis::tree::TreeModel;
use pmcast_analysis::{pittel, EnvParams, GroupParams};
use proptest::prelude::*;

/// Environments the analysis is specified for: moderate loss, small crash
/// fractions, the paper's Pittel constant range.
fn arb_env() -> impl Strategy<Value = EnvParams> {
    (0u32..=20, 0u32..=5, 1u32..=3).prop_map(|(loss, crash, c)| EnvParams {
        loss_probability: loss as f64 / 100.0,
        crash_probability: crash as f64 / 100.0,
        pittel_constant: c as f64,
    })
}

/// Small tree configurations (kept small so the chain's O(n²) transition
/// matrix stays cheap across many cases).
fn arb_group() -> impl Strategy<Value = GroupParams> {
    (3u32..=8, 2usize..=3, 1usize..=3, 2usize..=5).prop_map(
        |(arity, depth, redundancy, fanout)| GroupParams { arity, depth, redundancy, fanout },
    )
}

proptest! {
    /// Every row of the infection chain's transition matrix is a
    /// probability distribution: `sum_k P(j -> k) = 1` for every reachable
    /// source state `j`.
    #[test]
    fn markov_transition_rows_sum_to_one(
        n in 2usize..=24,
        fanout in 1u32..=5,
        env in arb_env(),
    ) {
        let mut chain = InfectionChain::new(n, fanout as f64, &env);
        for j in 1..=n {
            let row: f64 = (0..=n).map(|k| chain.transition(j, k)).sum();
            prop_assert!(
                (row - 1.0).abs() < 1e-9,
                "row {} of n={} F={} sums to {}", j, n, fanout, row
            );
        }
    }

    /// The chain's per-process infection probability never decreases with
    /// extra rounds: gossip only ever spreads.
    #[test]
    fn markov_infection_is_monotone_in_rounds(
        n in 2usize..=24,
        fanout in 1u32..=5,
        env in arb_env(),
    ) {
        let mut chain = InfectionChain::new(n, fanout as f64, &env);
        let mut previous = chain.probability_process_infected();
        for _ in 0..8 {
            chain.step();
            let current = chain.probability_process_infected();
            prop_assert!(
                current >= previous - 1e-12,
                "n={} F={}: infection shrank {} -> {}", n, fanout, previous, current
            );
            previous = current;
        }
    }

    /// More fanout never hurts: after the same number of rounds, the
    /// expected infected population is monotone in `F`.
    #[test]
    fn markov_infection_is_monotone_in_fanout(
        n in 2usize..=24,
        fanout in 1u32..=4,
        rounds in 1u32..=6,
        env in arb_env(),
    ) {
        let mut low = InfectionChain::new(n, fanout as f64, &env);
        let mut high = InfectionChain::new(n, (fanout + 1) as f64, &env);
        low.run(rounds);
        high.run(rounds);
        prop_assert!(
            high.expected_infected() >= low.expected_infected() - 1e-9,
            "n={} rounds={}: F={} infects {}, F={} infects {}",
            n, rounds, fanout, low.expected_infected(),
            fanout + 1, high.expected_infected()
        );
    }

    /// Pittel ↔ Markov consistency: running the chain for the round budget
    /// the Pittel asymptote allocates saturates the group — the budget is
    /// what the tree model spends per depth, so the chain must agree that
    /// it suffices.
    #[test]
    fn pittel_budget_saturates_the_chain(
        n in 8usize..=32,
        fanout in 2u32..=5,
    ) {
        let env = EnvParams::default();
        let budget = pittel::round_budget(n as f64, fanout as f64, &env);
        let mut chain = InfectionChain::new(n, fanout as f64, &env);
        chain.run(budget);
        prop_assert!(
            chain.probability_process_infected() > 0.9,
            "n={} F={}: {} budgeted rounds infect only {:.4}",
            n, fanout, budget, chain.probability_process_infected()
        );
    }

    /// Tree-model reliability is monotone in the matching rate, up to the
    /// small wiggle the integral round budgets introduce (a higher rate can
    /// cross a budget step; the dip is bounded well below a percent).
    #[test]
    fn tree_reliability_is_monotone_in_matching_rate(
        group in arb_group(),
        env in arb_env(),
        step in 1u32..=4,
    ) {
        let model = TreeModel::new(group, env);
        let low_rate = 0.1 * step as f64;
        let high_rate = low_rate + 0.1;
        let low = model.reliability(low_rate).reliability_degree;
        let high = model.reliability(high_rate).reliability_degree;
        prop_assert!(
            high >= low - 1e-3,
            "{:?}: p_d {} -> {} drops reliability {} -> {}",
            group, low_rate, high_rate, low, high
        );
    }

    /// Tree-model reliability is monotone in the gossip fanout, up to the
    /// budget interplay: a larger `F` *shrinks* the Pittel round budget
    /// (Equation 3 allocates fewer rounds when each round reaches more
    /// processes), and the two integral effects can net out to a dip of up
    /// to ~1% on very small trees.  The property pins the dip to that
    /// budget-step magnitude — anything larger is a real regression.
    #[test]
    fn tree_reliability_is_monotone_in_fanout(
        group in arb_group(),
        env in arb_env(),
    ) {
        let bigger = GroupParams { fanout: group.fanout + 1, ..group };
        let low = TreeModel::new(group, env).reliability(0.5).reliability_degree;
        let high = TreeModel::new(bigger, env).reliability(0.5).reliability_degree;
        prop_assert!(
            high >= low - 1e-2,
            "{:?}: fanout +1 drops reliability {} -> {}", group, low, high
        );
    }

    /// A decentralized model with global provider and zero churn reduces
    /// **bit-for-bit** to the static tree model — the churn path must not
    /// perturb the static prediction by even one ulp (this is what keeps
    /// the PR 3-8 goldens byte-identical).
    #[test]
    fn zero_churn_reduces_to_the_static_model_bitwise(
        group in arb_group(),
        env in arb_env(),
        rate_step in 1u32..=9,
    ) {
        let rate = rate_step as f64 / 10.0;
        let decentralized = DecentralizedModel::new(group, env, ProviderShape::Global)
            .with_churn(ChurnProfile::none())
            .predict(rate);
        let static_model = TreeModel::new(group, env).reliability(rate);
        prop_assert_eq!(
            decentralized.reliability.to_bits(),
            static_model.reliability_degree.to_bits(),
            "{:?} rate {}: churn-free decentralized != static tree", group, rate
        );
        prop_assert_eq!(decentralized.total_rounds, static_model.total_rounds);
    }

    /// Churn only costs reliability: any departure schedule predicts at
    /// most the static reliability.
    #[test]
    fn churn_never_improves_reliability(
        group in arb_group(),
        round in 0u32..=6,
        fraction_pct in 1u32..=30,
    ) {
        let env = EnvParams::default();
        let fraction = fraction_pct as f64 / 100.0;
        let churned = DecentralizedModel::new(group, env, ProviderShape::Global)
            .with_churn(ChurnProfile::from_departures([(round, fraction)]))
            .predict(0.5);
        let static_model = TreeModel::new(group, env).reliability(0.5);
        prop_assert!(
            churned.reliability <= static_model.reliability_degree + 1e-12,
            "{:?}: {}% leaving at round {} *improved* reliability {} -> {}",
            group, fraction_pct, round,
            static_model.reliability_degree, churned.reliability
        );
    }
}
