//! Membership-scalability model (Equations 2 and 12).
//!
//! In a regular tree every process knows `R` delegates for each of the `a`
//! subgroups of every inner depth plus its `a` immediate neighbours:
//! `m = R·a·(d − 1) + a ∈ O(d·R·n^(1/d))`, to be compared with the `n`
//! entries a flat membership (as used by classic gossip broadcast
//! algorithms) requires.

use serde::{Deserialize, Serialize};

/// Per-process view-size figures for one tree configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ViewSizeReport {
    /// Subgroups per level (`a`).
    pub arity: u32,
    /// Tree depth (`d`).
    pub depth: usize,
    /// Delegates per subgroup (`R`).
    pub redundancy: usize,
    /// Group size `n = a^d`.
    pub group_size: usize,
    /// Process entries per process in pmcast (Equation 2 / 12).
    pub tree_view_size: usize,
    /// Process entries per process with flat membership (`n`).
    pub flat_view_size: usize,
    /// `flat_view_size / tree_view_size`.
    pub reduction_factor: f64,
}

/// Per-process number of known processes in a regular pmcast tree
/// (Equation 12 summed over depths): `R·a·(d − 1) + a`.
pub fn tree_view_size(arity: u32, depth: usize, redundancy: usize) -> usize {
    if depth == 0 {
        return 0;
    }
    redundancy * arity as usize * (depth - 1) + arity as usize
}

/// Builds the full comparison report for one configuration.
pub fn view_size_report(arity: u32, depth: usize, redundancy: usize) -> ViewSizeReport {
    let group_size = (arity as usize).pow(depth as u32);
    let tree = tree_view_size(arity, depth, redundancy);
    ViewSizeReport {
        arity,
        depth,
        redundancy,
        group_size,
        tree_view_size: tree,
        flat_view_size: group_size,
        reduction_factor: if tree == 0 {
            0.0
        } else {
            group_size as f64 / tree as f64
        },
    }
}

/// The depth minimising the per-process view size for a group of `n`
/// processes with redundancy `R`, assuming the arity is chosen as
/// `a = n^(1/d)` (the paper notes the minimum lies at `d = log n` but is not
/// reached in practice while `R ≥ 3`).
pub fn optimal_depth(group_size: usize, redundancy: usize, max_depth: usize) -> usize {
    let mut best_depth = 1;
    let mut best_size = f64::INFINITY;
    for depth in 1..=max_depth.max(1) {
        let arity = (group_size as f64).powf(1.0 / depth as f64);
        let size = redundancy as f64 * arity * (depth as f64 - 1.0) + arity;
        if size < best_size {
            best_size = size;
            best_depth = depth;
        }
    }
    best_depth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_12_example_values() {
        // a = 22, d = 3, R = 3: m = 3·22·2 + 22 = 154 known processes
        // instead of 10 648 with flat membership.
        assert_eq!(tree_view_size(22, 3, 3), 154);
        let report = view_size_report(22, 3, 3);
        assert_eq!(report.group_size, 10_648);
        assert_eq!(report.flat_view_size, 10_648);
        assert!(report.reduction_factor > 69.0 && report.reduction_factor < 70.0);
    }

    #[test]
    fn degenerate_depths() {
        assert_eq!(tree_view_size(10, 1, 3), 10);
        assert_eq!(tree_view_size(10, 0, 3), 0);
        let report = view_size_report(10, 1, 3);
        assert_eq!(report.tree_view_size, report.flat_view_size);
        assert!((report.reduction_factor - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deeper_trees_shrink_views_for_large_groups() {
        let flat = view_size_report(10_000, 1, 3);
        let shallow = view_size_report(100, 2, 3);
        let deep = view_size_report(10, 4, 3);
        // All three describe a group of 10 000 processes.
        assert_eq!(flat.group_size, 10_000);
        assert_eq!(shallow.group_size, 10_000);
        assert_eq!(deep.group_size, 10_000);
        assert!(shallow.tree_view_size < flat.tree_view_size);
        assert!(deep.tree_view_size < shallow.tree_view_size);
    }

    #[test]
    fn optimal_depth_is_interior_for_large_groups() {
        let depth = optimal_depth(10_000, 3, 10);
        assert!((3..=10).contains(&depth), "depth {depth}");
        // Small groups prefer flat membership.
        assert_eq!(optimal_depth(4, 3, 6), 1);
        assert!(optimal_depth(0, 3, 6) >= 1);
    }

    #[test]
    fn report_serde_round_trip() {
        let report = view_size_report(22, 3, 4);
        let json = serde_json::to_string(&report).unwrap();
        let back: ViewSizeReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
