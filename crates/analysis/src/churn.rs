//! Churn-adjusted environment: graceful leaves and crashes that shrink the
//! infectable population *during* dissemination.
//!
//! Section 4.1 models crashes as a static fraction `τ` that is simply folded
//! into the survival factor `(1 − ε)(1 − τ)`.  The simulator's scenario axis
//! is richer: `leave_at` / `crash_at` schedules remove processes at given
//! rounds after the publish, and a departed process counts as *undelivered*
//! (see `examples/churn_sweep.rs`), so reliability sinks roughly linearly
//! with the departed fraction — minus the deliveries that happened before
//! the departure.  [`ChurnProfile`] captures that schedule, and
//! [`ChurnProfile::delivered_before_departure`] combines it with a
//! [`delivery_cdf`] to estimate, per departure offset, how much of the
//! dissemination was already complete — the credit a leaver keeps.
//!
//! The profile deliberately stays *population-level* (fractions per round
//! offset, not process identities): the analysis predicts expectations, and
//! the simulator's deterministic schedules spread departures evenly over the
//! index space, so the identity-free expectation is the right abstraction.

use serde::{Deserialize, Serialize};

use crate::markov::pair_infection_probability;
use crate::EnvParams;

/// A population-level churn schedule: which fraction of the initial group
/// departs (graceful leave or crash) at which round offset after the
/// publish.
///
/// [`ChurnProfile::none`] is the static environment; every model consuming a
/// profile must reduce **bit-for-bit** to its static counterpart in that
/// case (asserted by `crates/analysis/tests/prop_analysis.rs`).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ChurnProfile {
    /// `(round offset after publish, fraction of the initial population
    /// departing at that offset)`.  Offsets at or before the publish are
    /// clamped to 0 by the caller; fractions are non-negative.
    pub departures: Vec<(u32, f64)>,
}

impl ChurnProfile {
    /// The static environment: nobody departs mid-run.
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds a profile from `(offset, fraction)` pairs, dropping empty
    /// entries.
    pub fn from_departures(departures: impl IntoIterator<Item = (u32, f64)>) -> Self {
        Self {
            departures: departures.into_iter().filter(|&(_, f)| f > 0.0).collect(),
        }
    }

    /// `true` when the profile carries no mid-run departures — the guard
    /// every churn-aware model uses to fall back to the static (`EnvParams`
    /// only) computation without any floating-point detour.
    pub fn is_static(&self) -> bool {
        self.departures.iter().all(|&(_, fraction)| fraction <= 0.0)
    }

    /// Total departed fraction of the initial population, clamped to
    /// `[0, 1]`.
    pub fn departed_fraction(&self) -> f64 {
        self.departures
            .iter()
            .map(|&(_, fraction)| fraction.max(0.0))
            .sum::<f64>()
            .min(1.0)
    }

    /// Expected fraction of departed processes that delivered *before*
    /// departing, weighting each departure offset by the delivery timeline
    /// (`cdf[t]` = fraction of eventual deliveries complete by round `t`).
    pub fn delivered_before_departure(&self, cdf: &[f64]) -> f64 {
        let total = self.departed_fraction();
        if total <= 0.0 {
            return 0.0;
        }
        let weighted: f64 = self
            .departures
            .iter()
            .map(|&(offset, fraction)| {
                let at = cdf
                    .get(offset as usize)
                    .or(cdf.last())
                    .copied()
                    .unwrap_or(0.0);
                fraction.max(0.0) * at
            })
            .sum();
        (weighted / total).clamp(0.0, 1.0)
    }

    /// Extra effective crash probability the *survivors* see: the mean
    /// departed fraction over the dissemination window, i.e. how much of a
    /// survivor's fanout is wasted on processes that are no longer there.
    /// Generalizes the static `τ` of [`EnvParams`]; 0 for a static profile.
    pub fn survivor_wastage(&self, total_rounds: u32) -> f64 {
        if total_rounds == 0 {
            return self.departed_fraction();
        }
        let rounds = total_rounds as f64;
        self.departures
            .iter()
            .map(|&(offset, fraction)| {
                let dead_rounds = rounds - (offset as f64).min(rounds);
                fraction.max(0.0) * (dead_rounds / rounds)
            })
            .sum::<f64>()
            .min(1.0)
    }
}

/// Mean-field delivery timeline of a flat gossiping group: `cdf[t]` is the
/// estimated fraction of eventual deliveries already made `t` rounds after
/// the publish.
///
/// Uses the deterministic mean-field companion of the exact
/// [`crate::markov::InfectionChain`] (`s_{t+1} = s_t + (n − s_t)(1 − q^{s_t})`)
/// so that million-process timelines stay O(rounds) instead of the chain's
/// O(n²) per round; the churn credit needs the *shape* of the curve, not
/// exact tail mass.  The returned vector has `rounds + 1` entries with
/// `cdf[0] = 0` and `cdf[rounds] = 1`.
pub fn delivery_cdf(population: f64, fanout: f64, env: &EnvParams, rounds: u32) -> Vec<f64> {
    let n = population.max(2.0);
    let p = pair_infection_probability(n, fanout, env);
    let q = 1.0 - p;
    let mut infected = 1.0f64;
    let mut curve = Vec::with_capacity(rounds as usize + 1);
    curve.push(infected);
    for _ in 0..rounds {
        let susceptible = (n - infected).max(0.0);
        infected += susceptible * (1.0 - q.powf(infected));
        curve.push(infected);
    }
    let finished = *curve.last().unwrap_or(&1.0);
    let baseline = curve[0];
    let span = (finished - baseline).max(f64::EPSILON);
    curve
        .iter()
        .map(|&s| ((s - baseline) / span).clamp(0.0, 1.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_profile_is_detected() {
        assert!(ChurnProfile::none().is_static());
        assert!(ChurnProfile::from_departures([(3, 0.0)]).is_static());
        assert!(!ChurnProfile::from_departures([(3, 0.1)]).is_static());
        assert_eq!(ChurnProfile::none().departed_fraction(), 0.0);
    }

    #[test]
    fn departed_fraction_sums_and_clamps() {
        let profile = ChurnProfile::from_departures([(2, 0.05), (3, 0.05)]);
        assert!((profile.departed_fraction() - 0.1).abs() < 1e-12);
        let all = ChurnProfile::from_departures([(1, 0.7), (2, 0.7)]);
        assert_eq!(all.departed_fraction(), 1.0);
    }

    #[test]
    fn delivery_cdf_is_monotone_and_normalised() {
        let cdf = delivery_cdf(10_648.0 * 0.5, 2.0, &EnvParams::default(), 20);
        assert_eq!(cdf.len(), 21);
        assert_eq!(cdf[0], 0.0);
        assert!((cdf[20] - 1.0).abs() < 1e-12);
        for pair in cdf.windows(2) {
            assert!(pair[1] >= pair[0]);
        }
        // Early rounds have delivered almost nothing at paper scale: this is
        // why leavers at rounds 2–6 count almost fully against reliability.
        assert!(cdf[4] < 0.05, "cdf[4] = {}", cdf[4]);
    }

    #[test]
    fn early_departures_keep_less_credit() {
        let cdf = delivery_cdf(5_000.0, 2.0, &EnvParams::default(), 20);
        let early = ChurnProfile::from_departures([(2, 0.1)]);
        let late = ChurnProfile::from_departures([(18, 0.1)]);
        assert!(early.delivered_before_departure(&cdf) < late.delivered_before_departure(&cdf));
        // Departures far past the dissemination keep full credit.
        let after = ChurnProfile::from_departures([(200, 0.1)]);
        assert!((after.delivered_before_departure(&cdf) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn survivor_wastage_scales_with_overlap() {
        let profile = ChurnProfile::from_departures([(0, 0.2)]);
        // Departing at the publish wastes the slot for the whole run.
        assert!((profile.survivor_wastage(20) - 0.2).abs() < 1e-12);
        let late = ChurnProfile::from_departures([(10, 0.2)]);
        assert!((late.survivor_wastage(20) - 0.1).abs() < 1e-12);
        assert_eq!(ChurnProfile::none().survivor_wastage(20), 0.0);
    }
}
