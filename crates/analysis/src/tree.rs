//! The per-depth propagation model in a regular tree (Section 4.3,
//! Equations 5, 7 and 12–18).
//!
//! A delegate of depth `i` represents the `a^(d−i)` processes of its subtree
//! (Equation 4); it is therefore interested in an event of matching rate
//! `p_d` with probability `p_i = 1 − (1 − p_d)^(a^(d−i))` (Equation 7).
//! Gossiping at depth `i` happens inside a view of `m_i` entries
//! (Equation 12); running the flat-group infection chain for the
//! Pittel-bounded number of rounds at every depth yields, per depth, the
//! probability `r_i` that a child node gets infected (Equation 15), and
//! combining the depths gives the expected number of infected processes and
//! the *reliability degree* (Equation 18).
//!
//! Two refinements over a literal reading of Section 4.3 keep the model
//! within a few hundredths of the Monte-Carlo simulation (the closed-loop
//! contract of `tests/analysis_vs_simulation.rs`):
//!
//! * **Interest-filtered fanout.**  The protocol draws its fanout targets
//!   *after* filtering the view by `subtree_interested` (Figure 3's
//!   GETDESTS), so no fanout is wasted on uninterested entries; the
//!   infection chain therefore runs with the full fanout `F` over the
//!   interested audience `m_i · p_i`.  The *round budget* still scales both
//!   size and fanout by the rate (Equation 11) — that is what the protocol
//!   itself computes at run time, pessimism included.
//! * **Conditional seeding.**  When depth `i`'s gossip starts inside a
//!   subgroup, the delegates promoted from depth `i − 1` already carry the
//!   event: the chain starts from the conditional expectation
//!   `R·f/(1 − (1 − f)^R)` of infected delegates given the subgroup was
//!   reached at all, not from a single seed.  Expected seed counts (and
//!   audience sizes) are fractional, so chains interpolate between the two
//!   neighbouring integer configurations instead of rounding — removing the
//!   discretization cliffs that would otherwise break monotonicity in the
//!   matching rate.

use serde::{Deserialize, Serialize};

use crate::markov::InfectionChain;
use crate::pittel;
use crate::{EnvParams, GroupParams};

/// The analytical model of event propagation in a regular pmcast tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeModel {
    group: GroupParams,
    env: EnvParams,
}

/// The outcome of the analytical reliability computation for one matching
/// rate (one point of the paper's Figure 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityReport {
    /// The matching rate `p_d` the report was computed for.
    pub matching_rate: f64,
    /// Round budget spent at every depth (Equation 13's summands).
    pub rounds_per_depth: Vec<u32>,
    /// Per-depth probability that an interested child node is infected
    /// after gossiping at that depth (`r_i`, Equation 15).
    pub node_infection_probability: Vec<f64>,
    /// Expected number of interested processes in the group (`n · p_d`).
    pub interested_processes: f64,
    /// Expected number of infected (event-carrying) interested processes
    /// (Equation 18).
    pub expected_infected_processes: f64,
    /// `expected_infected_processes / interested_processes`, clamped to
    /// `[0, 1]`: the probability that an interested process delivers.
    pub reliability_degree: f64,
    /// Total expected rounds across all depths (Equation 13).
    pub total_rounds: u32,
}

impl TreeModel {
    /// Creates a model for the given group shape and environment.
    pub fn new(group: GroupParams, env: EnvParams) -> Self {
        Self { group, env }
    }

    /// The group shape being modelled.
    pub fn group(&self) -> GroupParams {
        self.group
    }

    /// The environment being modelled.
    pub fn env(&self) -> EnvParams {
        self.env
    }

    /// Number of processes represented by one delegate of the given depth:
    /// `a^(d − i)` (Equation 4 in a regular tree).
    pub fn represented_processes(&self, depth: usize) -> f64 {
        (self.group.arity as f64).powi((self.group.depth - depth) as i32)
    }

    /// Probability that a node of the given depth is interested in an event
    /// of matching rate `p_d`, on behalf of the processes it represents
    /// (Equation 7).
    pub fn interest_probability(&self, matching_rate: f64, depth: usize) -> f64 {
        let below = self.represented_processes(depth);
        1.0 - (1.0 - matching_rate.clamp(0.0, 1.0)).powf(below)
    }

    /// The number of view entries a process holds for the given depth
    /// (Equation 12): `R·a` at inner depths, `a` at the leaf depth.
    pub fn view_size(&self, depth: usize) -> usize {
        if depth == self.group.depth {
            self.group.arity as usize
        } else {
            self.group.redundancy * self.group.arity as usize
        }
    }

    /// Round budget for gossiping at the given depth: Pittel's estimate over
    /// the *interested* part of the view, with fanout scaled by the interest
    /// probability (Equation 11 applied per depth as in Figure 3 line 7).
    pub fn rounds_at_depth(&self, matching_rate: f64, depth: usize) -> u32 {
        let p_i = self.interest_probability(matching_rate, depth);
        let effective_size = self.view_size(depth) as f64 * p_i;
        let effective_fanout = self.group.fanout as f64 * p_i;
        pittel::round_budget(effective_size, effective_fanout, &self.env)
    }

    /// Total expected rounds to complete the multicast (Equation 13).
    pub fn total_rounds(&self, matching_rate: f64) -> u32 {
        (1..=self.group.depth)
            .map(|depth| self.rounds_at_depth(matching_rate, depth))
            .sum()
    }

    /// Expected number of infected entities among the interested entities of
    /// a depth-`i` view after gossiping there (Equation 14), from a single
    /// initially infected entity.
    pub fn expected_infected_at_depth(&self, matching_rate: f64, depth: usize) -> f64 {
        let p_i = self.interest_probability(matching_rate, depth);
        let entities = self.view_size(depth) as f64 * p_i;
        let rounds = self.rounds_at_depth(matching_rate, depth);
        entities * infected_fraction(entities, self.group.fanout as f64, &self.env, rounds, 1.0)
    }

    /// Probability that an interested child node of depth `i` is infected
    /// after gossiping at that depth (Equation 15): one minus the
    /// probability that none of its `R` delegates (1 process at the leaf
    /// depth) got infected, from a single initially infected entity.
    pub fn node_infection_probability(&self, matching_rate: f64, depth: usize) -> f64 {
        let p_i = self.interest_probability(matching_rate, depth);
        let entities = self.view_size(depth) as f64 * p_i;
        let fraction = self.depth_fraction(matching_rate, depth, 1.0);
        let redundancy_exponent = self.view_size(depth) as f64 / self.group.arity as f64;
        node_probability(entities, fraction, redundancy_exponent)
    }

    /// Infected fraction of the interested depth-`i` audience after its
    /// round budget, starting from `seeds` infected entities.
    fn depth_fraction(&self, matching_rate: f64, depth: usize, seeds: f64) -> f64 {
        let p_i = self.interest_probability(matching_rate, depth);
        let entities = self.view_size(depth) as f64 * p_i;
        let rounds = self.rounds_at_depth(matching_rate, depth);
        infected_fraction(entities, self.group.fanout as f64, &self.env, rounds, seeds)
    }

    /// Full reliability computation for one matching rate (Equation 18 and
    /// the derived reliability degree).
    pub fn reliability(&self, matching_rate: f64) -> ReliabilityReport {
        self.reliability_with_floor(matching_rate, None)
    }

    /// Reliability with the Section 5.3 tuning applied: when fewer than
    /// `threshold` processes of a view are interested, the first `threshold`
    /// processes are treated as interested, artificially enlarging the
    /// audience so that Pittel's asymptote applies again.
    pub fn reliability_tuned(&self, matching_rate: f64, threshold: usize) -> ReliabilityReport {
        // The tuning is equivalent to clamping the per-depth interest
        // probability from below at h / m_i.
        self.reliability_with_floor(matching_rate, Some(threshold))
    }

    /// Gossip-audience interest probability at a depth: the genuine
    /// Equation 7 value, floored at `h / m_i` when audience inflation is
    /// active.
    fn gossip_interest(&self, matching_rate: f64, depth: usize, tuning: Option<usize>) -> f64 {
        let raw = self.interest_probability(matching_rate, depth);
        match tuning {
            Some(threshold) => {
                let floor = threshold as f64 / self.view_size(depth) as f64;
                raw.max(floor.min(1.0))
            }
            None => raw,
        }
    }

    /// The shared per-depth engine behind [`TreeModel::reliability`] and
    /// [`TreeModel::reliability_tuned`]: walk the depths, run the seeded
    /// infection chain inside each view, and refine the expected number of
    /// infected entities multiplicatively
    /// (`E[g_i] = r_i · a · p_i · E[g_{i-1}]`, `g_0 = 1`).
    fn reliability_with_floor(
        &self,
        matching_rate: f64,
        tuning: Option<usize>,
    ) -> ReliabilityReport {
        let matching_rate = matching_rate.clamp(0.0, 1.0);
        let n = self.group.group_size() as f64;
        let interested = n * matching_rate;
        let fanout = self.group.fanout as f64;
        let mut rounds_per_depth = Vec::with_capacity(self.group.depth);
        let mut node_probabilities = Vec::with_capacity(self.group.depth);
        let mut expected_infected_entities = 1.0;
        // The multicaster is the only seed when depth 1 starts.
        let mut seeds = 1.0;
        for depth in 1..=self.group.depth {
            let gossip_p = self.gossip_interest(matching_rate, depth, tuning);
            let entities = self.view_size(depth) as f64 * gossip_p;
            let effective_size = entities;
            let effective_fanout = fanout * gossip_p;
            let rounds = pittel::round_budget(effective_size, effective_fanout, &self.env);
            rounds_per_depth.push(rounds);
            let fraction = infected_fraction(entities, fanout, &self.env, rounds, seeds);
            let redundancy_exponent = self.view_size(depth) as f64 / self.group.arity as f64;
            let r_i = node_probability(entities, fraction, redundancy_exponent);
            node_probabilities.push(r_i);
            // The audience may be inflated for gossiping, but only genuinely
            // interested children count towards delivery.
            let p_i = self.interest_probability(matching_rate, depth);
            let children_per_node = (self.group.arity as f64 * p_i).min(self.group.arity as f64);
            expected_infected_entities *= (r_i * children_per_node).max(0.0);
            seeds = conditional_seeds(fraction, redundancy_exponent);
        }
        // At the leaf depth an entity is a single process.
        let expected_infected_processes = expected_infected_entities.min(interested.max(0.0));
        let reliability_degree = if interested > 0.0 {
            (expected_infected_processes / interested).clamp(0.0, 1.0)
        } else {
            0.0
        };
        ReliabilityReport {
            matching_rate,
            total_rounds: rounds_per_depth.iter().sum(),
            rounds_per_depth,
            node_infection_probability: node_probabilities,
            interested_processes: interested,
            expected_infected_processes,
            reliability_degree,
        }
    }
}

/// Infected fraction of a flat audience of (fractional) `entities` after
/// `rounds` rounds of gossiping with the interest-filtered fanout, starting
/// from `seeds` infected entities.
///
/// Fractional audiences interpolate linearly between the two neighbouring
/// integer chains so the model has no rounding cliffs; audiences below one
/// entity degenerate to the audience size itself (the historical pessimistic
/// reading: with less than one interested entity in expectation the
/// multicast fizzles).
pub(crate) fn infected_fraction(
    entities: f64,
    fanout: f64,
    env: &EnvParams,
    rounds: u32,
    seeds: f64,
) -> f64 {
    if entities < 1.0 {
        return entities.clamp(0.0, 1.0);
    }
    let lower = entities.floor() as usize;
    let upper = entities.ceil() as usize;
    let fraction_at = |size: usize| -> f64 {
        if size == 0 {
            return 0.0;
        }
        let mut chain = InfectionChain::with_initial_infected(size, fanout, env, seeds);
        chain.run(rounds);
        (chain.expected_infected() / size as f64).clamp(0.0, 1.0)
    };
    let low = fraction_at(lower);
    if upper == lower {
        return low;
    }
    let high = fraction_at(upper);
    let blend = entities - lower as f64;
    low + (high - low) * blend
}

/// Equation 15: probability that a child node with `redundancy_exponent`
/// delegates in the audience is reached, given the audience's infected
/// fraction.  Degenerate audiences (< 1 entity) keep the pessimistic
/// audience-sized value.
pub(crate) fn node_probability(entities: f64, fraction: f64, redundancy_exponent: f64) -> f64 {
    if entities < 1.0 {
        return entities.clamp(0.0, 1.0);
    }
    1.0 - (1.0 - fraction.clamp(0.0, 1.0)).powf(redundancy_exponent)
}

/// Conditional expectation of the number of already-infected delegates a
/// reached subgroup starts its next depth with: `R·f / (1 − (1 − f)^R)`,
/// clamped to `[1, R]`.
pub(crate) fn conditional_seeds(fraction: f64, redundancy_exponent: f64) -> f64 {
    let r = 1.0 - (1.0 - fraction.clamp(0.0, 1.0)).powf(redundancy_exponent);
    if r <= 0.0 {
        return 1.0;
    }
    (redundancy_exponent * fraction / r).clamp(1.0, redundancy_exponent.max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure4_model() -> TreeModel {
        TreeModel::new(
            GroupParams {
                arity: 22,
                depth: 3,
                redundancy: 3,
                fanout: 2,
            },
            EnvParams::default(),
        )
    }

    #[test]
    fn interest_probability_grows_towards_the_root() {
        let model = figure4_model();
        let pd = 0.1;
        let p3 = model.interest_probability(pd, 3);
        let p2 = model.interest_probability(pd, 2);
        let p1 = model.interest_probability(pd, 1);
        assert!((p3 - pd).abs() < 1e-12, "leaf depth equals p_d");
        assert!(p2 > p3);
        assert!(p1 > p2);
        assert!(p1 <= 1.0);
        // With pd = 1 all depths are certainly interested.
        for depth in 1..=3 {
            assert!((model.interest_probability(1.0, depth) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn represented_processes_follow_equation_4() {
        let model = figure4_model();
        assert_eq!(model.represented_processes(3), 1.0);
        assert_eq!(model.represented_processes(2), 22.0);
        assert_eq!(model.represented_processes(1), 484.0);
    }

    #[test]
    fn view_sizes_follow_equation_12() {
        let model = figure4_model();
        assert_eq!(model.view_size(1), 66);
        assert_eq!(model.view_size(2), 66);
        assert_eq!(model.view_size(3), 22);
    }

    #[test]
    fn high_matching_rates_yield_high_reliability() {
        let model = figure4_model();
        for &pd in &[0.5, 0.8, 1.0] {
            let report = model.reliability(pd);
            assert!(
                report.reliability_degree > 0.9,
                "pd={pd} degree {}",
                report.reliability_degree
            );
            assert!(report.total_rounds > 0);
            assert_eq!(report.rounds_per_depth.len(), 3);
            assert!(report.expected_infected_processes <= report.interested_processes + 1e-9);
        }
    }

    #[test]
    fn reliability_degrades_for_tiny_matching_rates() {
        // The degradation for very small p_d is precisely what Section 5.3
        // discusses (Pittel's asymptote loses accuracy).
        let model = figure4_model();
        let tiny = model.reliability(0.001);
        let comfortable = model.reliability(0.5);
        assert!(tiny.reliability_degree < comfortable.reliability_degree);
    }

    #[test]
    fn reliability_is_roughly_monotone_in_matching_rate() {
        let model = figure4_model();
        let low = model.reliability(0.05).reliability_degree;
        let mid = model.reliability(0.3).reliability_degree;
        let high = model.reliability(0.9).reliability_degree;
        assert!(mid >= low - 0.05);
        assert!(high >= mid - 0.05);
    }

    #[test]
    fn tuning_improves_small_rates_like_figure_7() {
        let model = figure4_model();
        let pd = 0.02;
        let untuned = model.reliability(pd).reliability_degree;
        let tuned = model.reliability_tuned(pd, 10).reliability_degree;
        assert!(
            tuned >= untuned,
            "tuned {tuned} must not be below untuned {untuned}"
        );
        // For comfortable rates tuning changes little.
        let untuned_mid = model.reliability(0.6).reliability_degree;
        let tuned_mid = model.reliability_tuned(0.6, 10).reliability_degree;
        assert!((tuned_mid - untuned_mid).abs() < 0.05);
    }

    #[test]
    fn rounds_estimates_are_finite_and_reasonable() {
        let model = figure4_model();
        for &pd in &[0.1, 0.5, 1.0] {
            let total = model.total_rounds(pd);
            assert!((1..100).contains(&total), "pd={pd} total {total}");
            for depth in 1..=3 {
                assert!(model.rounds_at_depth(pd, depth) < 50);
            }
        }
        // pd = 0: nothing to do.
        assert_eq!(model.reliability(0.0).reliability_degree, 0.0);
    }

    #[test]
    fn larger_fanout_needs_fewer_rounds() {
        let base = figure4_model();
        let fast = TreeModel::new(
            GroupParams {
                fanout: 5,
                ..base.group()
            },
            base.env(),
        );
        assert!(fast.total_rounds(0.5) <= base.total_rounds(0.5));
    }

    #[test]
    fn scalability_trend_matches_figure_6() {
        // Growing the subgroup size a (and thus n = a^3) keeps the
        // reliability degree high — the scalability claim of Figure 6.
        let env = EnvParams::default();
        for &arity in &[10u32, 20, 30, 40] {
            let model = TreeModel::new(
                GroupParams {
                    arity,
                    depth: 3,
                    redundancy: 4,
                    fanout: 3,
                },
                env,
            );
            let report = model.reliability(0.5);
            assert!(
                report.reliability_degree > 0.85,
                "a={arity} degree {}",
                report.reliability_degree
            );
        }
    }

    #[test]
    fn report_serialisation_round_trips() {
        let report = figure4_model().reliability(0.4);
        let json = serde_json::to_string(&report).unwrap();
        let back: ReliabilityReport = serde_json::from_str(&json).unwrap();
        // JSON may round the least significant float bits; compare with a
        // tolerance rather than bit-for-bit.
        assert_eq!(report.rounds_per_depth, back.rounds_per_depth);
        assert_eq!(report.total_rounds, back.total_rounds);
        assert!((report.reliability_degree - back.reliability_degree).abs() < 1e-9);
        assert!((report.expected_infected_processes - back.expected_infected_processes).abs() < 1e-6);
    }
}
