//! Pittel's asymptote for rumour spreading (Equation 3) and its
//! loss/crash-adjusted form (Equation 11).
//!
//! According to Pittel \[10\], the number of rounds needed to infect an
//! entire group of (large) size `n`, where every infected process gossips to
//! `F` others per round, is
//!
//! ```text
//! T(n, F) = log n · (1/F + 1/log(F + 1)) + c + O(1)
//! ```
//!
//! `pmcast` uses this expression at *every depth* of the tree to bound the
//! number of rounds an event keeps being gossiped in a subgroup ("bound
//! gossiping", Section 3.3): both the group size and the fanout are scaled
//! by the matching rate at that depth, and Equation 11 additionally scales
//! them by `(1 − ε)(1 − τ)` to account for message loss and crashes.

use crate::EnvParams;

/// Pittel's round estimate `T(n, F)` (Equation 3) with additive constant `c`.
///
/// Degenerate inputs are handled conservatively: a group of one (or fewer)
/// processes needs 0 rounds, and a non-positive fanout can never complete,
/// returning infinity.
pub fn rounds_estimate(group_size: f64, fanout: f64, constant: f64) -> f64 {
    if group_size <= 1.0 {
        return 0.0;
    }
    if fanout <= 0.0 {
        return f64::INFINITY;
    }
    group_size.ln() * (1.0 / fanout + 1.0 / (fanout + 1.0).ln()) + constant
}

/// The loss/crash-adjusted round estimate `T_f(n, F)` of Equation 11: both
/// the effective group size and the effective fanout are multiplied by the
/// survival factor `(1 − ε)(1 − τ)`.
pub fn rounds_estimate_faulty(group_size: f64, fanout: f64, env: &EnvParams) -> f64 {
    let survival = env.survival_factor();
    rounds_estimate(group_size * survival, fanout * survival, env.pittel_constant)
}

/// The integer round budget used by the protocol: the estimate rounded up,
/// never less than 1 for a group of at least 2 processes.
pub fn round_budget(group_size: f64, fanout: f64, env: &EnvParams) -> u32 {
    let estimate = rounds_estimate_faulty(group_size, fanout, env);
    if estimate <= 0.0 {
        return 0;
    }
    if !estimate.is_finite() {
        return u32::MAX;
    }
    estimate.ceil().max(1.0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_closed_form() {
        // T(n, F) = ln n (1/F + 1/ln(F+1)) + c
        let n: f64 = 10_000.0;
        let f = 2.0;
        let expected = n.ln() * (0.5 + 1.0 / (3.0f64).ln()) + 0.0;
        assert!((rounds_estimate(n, f, 0.0) - expected).abs() < 1e-12);
    }

    #[test]
    fn grows_logarithmically_with_group_size() {
        let f = 3.0;
        let t1 = rounds_estimate(1_000.0, f, 0.0);
        let t2 = rounds_estimate(1_000_000.0, f, 0.0);
        // Squaring the group size doubles the estimate (pure log growth).
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn decreases_with_fanout() {
        let n = 10_000.0;
        let low = rounds_estimate(n, 1.0, 0.0);
        let mid = rounds_estimate(n, 3.0, 0.0);
        let high = rounds_estimate(n, 10.0, 0.0);
        assert!(low > mid && mid > high);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(rounds_estimate(1.0, 3.0, 5.0), 0.0);
        assert_eq!(rounds_estimate(0.5, 3.0, 5.0), 0.0);
        assert_eq!(rounds_estimate(100.0, 0.0, 5.0), f64::INFINITY);
        assert_eq!(rounds_estimate(100.0, -1.0, 5.0), f64::INFINITY);
    }

    #[test]
    fn constant_is_additive() {
        let base = rounds_estimate(500.0, 2.0, 0.0);
        assert!((rounds_estimate(500.0, 2.0, 2.5) - base - 2.5).abs() < 1e-12);
    }

    #[test]
    fn faulty_environment_needs_more_rounds() {
        let env_ok = EnvParams::lossless();
        let env_bad = EnvParams {
            loss_probability: 0.2,
            crash_probability: 0.05,
            pittel_constant: 1.0,
        };
        let clean = rounds_estimate_faulty(10_000.0, 3.0, &env_ok);
        let faulty = rounds_estimate_faulty(10_000.0, 3.0, &env_bad);
        assert!(faulty > clean);
    }

    #[test]
    fn round_budget_is_a_positive_integer_ceiling() {
        let env = EnvParams::lossless();
        let budget = round_budget(10_000.0, 2.0, &env);
        let estimate = rounds_estimate_faulty(10_000.0, 2.0, &env);
        assert_eq!(budget, estimate.ceil() as u32);
        assert!(budget >= 1);
        // Tiny groups need no gossip.
        assert_eq!(round_budget(1.0, 2.0, &env), 0);
        assert_eq!(round_budget(0.0, 2.0, &env), 0);
        // Zero fanout saturates instead of overflowing.
        assert_eq!(round_budget(100.0, 0.0, &env), u32::MAX);
    }

    #[test]
    fn paper_figure_parameters_are_in_a_sensible_range() {
        // n ≈ 10 000, F = 2: the whole group is infected in a couple of
        // dozen rounds, not in thousands.
        let env = EnvParams::default();
        let budget = round_budget(10_648.0, 2.0, &env);
        assert!(budget > 5 && budget < 40, "budget {budget} out of range");
    }
}
