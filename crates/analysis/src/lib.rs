//! # pmcast-analysis — stochastic analysis of Probabilistic Multicast
//!
//! This crate implements Section 4 of *Probabilistic Multicast* (Eugster &
//! Guerraoui, DSN 2002): the analytical machinery that both drives the
//! protocol's *bound gossiping* (the number of rounds an event is gossiped
//! at each depth, Section 3.3) and predicts its reliability.
//!
//! * [`pittel`] — Pittel's asymptote for the number of rounds needed to
//!   infect a group by gossiping (Equation 3) and its loss/crash-adjusted
//!   variant (Equation 11).
//! * [`markov`] — the flat-group infection Markov chain (Equations 8–10):
//!   the exact distribution of the number of infected processes after a
//!   given number of gossip rounds.
//! * [`tree`] — the per-depth propagation model in a regular tree
//!   (Equations 5, 7, 12–18), culminating in the expected *reliability
//!   degree*: the expected fraction of interested processes that deliver a
//!   multicast event.
//! * [`views`] — the membership-scalability model (Equations 2 and 12):
//!   per-process view sizes as a function of `a`, `d` and `R`.
//! * [`churn`] — population-level departure schedules (graceful leaves and
//!   crashes at given round offsets) and the delivery-timeline credit a
//!   departing process keeps.
//! * [`decentralized`] — the closed-loop model of the simulator's
//!   decentralized configurations: membership providers (global tables,
//!   capped delegate tables, flat partial views) layered with churn.
//!
//! The protocol crate (`pmcast-core`) uses [`pittel`] at run time; the
//! simulation harness (`pmcast-sim`) compares its Monte-Carlo results with
//! the predictions produced here.
//!
//! ## Example
//!
//! ```rust
//! use pmcast_analysis::{tree::TreeModel, EnvParams, GroupParams};
//!
//! // The configuration of the paper's Figure 4: n ≈ 10 000 (a = 22, d = 3).
//! let group = GroupParams { arity: 22, depth: 3, redundancy: 3, fanout: 2 };
//! let env = EnvParams::default();
//! let model = TreeModel::new(group, env);
//! let report = model.reliability(0.5);
//! // Half the group being interested, delivery should be very likely.
//! assert!(report.reliability_degree > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod binomial;
pub mod churn;
pub mod decentralized;
pub mod markov;
pub mod pittel;
pub mod tree;
pub mod views;

use serde::{Deserialize, Serialize};

/// The shape of a regular pmcast group: `n = a^d` processes, `R` delegates
/// per subgroup, fanout `F`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupParams {
    /// Number of subgroups per level (`a`).
    pub arity: u32,
    /// Tree depth (`d`).
    pub depth: usize,
    /// Redundancy factor: delegates per subgroup (`R`).
    pub redundancy: usize,
    /// Gossip fanout (`F`).
    pub fanout: usize,
}

impl GroupParams {
    /// Total number of processes `n = a^d`.
    pub fn group_size(&self) -> usize {
        (self.arity as usize).pow(self.depth as u32)
    }
}

/// Environmental parameters of the analysis model (Section 4.1): message
/// loss probability `ε` and crash fraction `τ = f / n`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnvParams {
    /// Probability that a gossip message is lost in transit (`ε`).
    pub loss_probability: f64,
    /// Probability that a process crashes during the run (`τ`).
    pub crash_probability: f64,
    /// The additive constant `c` of Pittel's asymptote (Equation 3);
    /// conservative values improve reliability at the cost of extra rounds.
    pub pittel_constant: f64,
}

impl Default for EnvParams {
    fn default() -> Self {
        Self {
            loss_probability: 0.01,
            crash_probability: 0.001,
            pittel_constant: 1.0,
        }
    }
}

impl EnvParams {
    /// A perfectly reliable environment (no losses, no crashes), useful to
    /// compare against Pittel's original model.
    pub fn lossless() -> Self {
        Self {
            loss_probability: 0.0,
            crash_probability: 0.0,
            pittel_constant: 1.0,
        }
    }

    /// The combined survival factor `(1 − ε)(1 − τ)` scaling effective group
    /// size and fanout in Equation 11.
    pub fn survival_factor(&self) -> f64 {
        (1.0 - self.loss_probability) * (1.0 - self.crash_probability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_size_is_a_to_the_d() {
        let group = GroupParams {
            arity: 22,
            depth: 3,
            redundancy: 3,
            fanout: 2,
        };
        assert_eq!(group.group_size(), 10_648);
        let flat = GroupParams {
            arity: 100,
            depth: 1,
            redundancy: 3,
            fanout: 4,
        };
        assert_eq!(flat.group_size(), 100);
    }

    #[test]
    fn env_survival_factor() {
        let env = EnvParams {
            loss_probability: 0.05,
            crash_probability: 0.01,
            pittel_constant: 0.0,
        };
        assert!((env.survival_factor() - 0.95 * 0.99).abs() < 1e-12);
        assert_eq!(EnvParams::lossless().survival_factor(), 1.0);
        let default = EnvParams::default();
        assert!(default.survival_factor() < 1.0);
        assert!(default.pittel_constant > 0.0);
    }
}
