//! The flat-group infection Markov chain of Section 4.2 (Equations 8–10).
//!
//! In a "flat" group (a tree of depth 1) of effective size `n` with
//! effective fanout `F`, the probability that a given infected process
//! reaches a given susceptible process in one round is
//!
//! ```text
//! p(n, F) = (F / (n − 1)) · (1 − ε)(1 − τ)          (Equation 8)
//! ```
//!
//! With `j` processes currently infected, the number infected after the next
//! round follows the transition probabilities of Equation 9, and iterating
//! the recursion of Equation 10 from a single initially infected process
//! yields the full distribution of the number of infected processes after
//! any number of rounds.

use crate::binomial::LnFactorial;
use crate::EnvParams;

/// The per-round, per-pair infection probability `p(n, F)` of Equation 8.
///
/// `n` and `F` are the *effective* group size and fanout (already scaled by
/// the matching rate when used for a multicast depth).
pub fn pair_infection_probability(group_size: f64, fanout: f64, env: &EnvParams) -> f64 {
    if group_size <= 1.0 {
        return 1.0;
    }
    let choice = (fanout / (group_size - 1.0)).min(1.0);
    (choice * env.survival_factor()).clamp(0.0, 1.0)
}

/// The exact infection chain over a flat group of `n` (integer) processes.
///
/// State: a probability distribution over the number of infected processes
/// `1..=n`.  The chain is homogeneous; advancing it one round applies the
/// transition matrix of Equation 9.
#[derive(Debug, Clone)]
pub struct InfectionChain {
    group_size: usize,
    /// Probability that a given susceptible process is *not* infected by a
    /// given infected process in one round (`q` in the paper).
    q: f64,
    /// `distribution[k]` = P\[s_t = k\] for `k in 0..=n` (index 0 unused
    /// except for the empty-group corner case).
    distribution: Vec<f64>,
    lnf: LnFactorial,
    rounds_elapsed: u32,
}

impl InfectionChain {
    /// Creates the chain for a flat group of `group_size` processes with the
    /// given fanout and environment, starting from exactly one infected
    /// process (the multicaster).
    pub fn new(group_size: usize, fanout: f64, env: &EnvParams) -> Self {
        Self::with_initial_infected(group_size, fanout, env, 1.0)
    }

    /// Creates the chain starting from an *expected* number of initially
    /// infected processes.
    ///
    /// The tree model seeds inner depths with the delegates already carrying
    /// the event when a subgroup's gossip phase starts; that expectation is
    /// rarely an integer, so a fractional `initially_infected` places its
    /// probability mass on the two neighbouring integer states (keeping the
    /// expectation exact and the model free of rounding cliffs).  Values are
    /// clamped to `[1, group_size]`; `with_initial_infected(n, f, env, 1.0)`
    /// is exactly [`InfectionChain::new`].
    pub fn with_initial_infected(
        group_size: usize,
        fanout: f64,
        env: &EnvParams,
        initially_infected: f64,
    ) -> Self {
        let p = pair_infection_probability(group_size as f64, fanout, env);
        let mut distribution = vec![0.0; group_size + 1];
        if group_size == 0 {
            distribution = vec![1.0];
        } else {
            let seeds = initially_infected.clamp(1.0, group_size as f64);
            let lower = seeds.floor() as usize;
            let upper = seeds.ceil() as usize;
            let upper_mass = seeds - lower as f64;
            distribution[lower.min(group_size)] += 1.0 - upper_mass;
            if upper_mass > 0.0 {
                distribution[upper.min(group_size)] += upper_mass;
            }
        }
        Self {
            group_size,
            q: 1.0 - p,
            distribution,
            lnf: LnFactorial::new(),
            rounds_elapsed: 0,
        }
    }

    /// Number of processes in the group.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Number of rounds simulated so far.
    pub fn rounds_elapsed(&self) -> u32 {
        self.rounds_elapsed
    }

    /// The current distribution `P[s_t = k]` for `k = 0..=n`.
    pub fn distribution(&self) -> &[f64] {
        &self.distribution
    }

    /// Transition probability `P[s_{t+1} = k | s_t = j]` (Equation 9).
    pub fn transition(&mut self, j: usize, k: usize) -> f64 {
        if k < j || k > self.group_size || j == 0 {
            return 0.0;
        }
        // Probability that a given susceptible process is infected this
        // round by at least one of the j infected processes.
        let q_j = self.q.powi(j as i32);
        let p_infect = 1.0 - q_j;
        crate::binomial::binomial_pmf(&mut self.lnf, self.group_size - j, k - j, p_infect)
    }

    /// Advances the chain by one gossip round (Equation 10).
    pub fn step(&mut self) {
        let n = self.group_size;
        if n == 0 {
            return;
        }
        let mut next = vec![0.0; n + 1];
        for j in 1..=n {
            let mass = self.distribution[j];
            if mass <= 0.0 {
                continue;
            }
            for (k, slot) in next.iter_mut().enumerate().skip(j) {
                let t = self.transition(j, k);
                if t > 0.0 {
                    *slot += mass * t;
                }
            }
        }
        self.distribution = next;
        self.rounds_elapsed += 1;
    }

    /// Advances the chain by the given number of rounds.
    pub fn run(&mut self, rounds: u32) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Expected number of infected processes under the current distribution.
    pub fn expected_infected(&self) -> f64 {
        self.distribution
            .iter()
            .enumerate()
            .map(|(k, &p)| k as f64 * p)
            .sum()
    }

    /// Probability that every process of the group is infected.
    pub fn probability_all_infected(&self) -> f64 {
        *self.distribution.last().unwrap_or(&1.0)
    }

    /// Probability that a *given* process is infected (by symmetry,
    /// `E[s_t] / n`).
    pub fn probability_process_infected(&self) -> f64 {
        if self.group_size == 0 {
            return 0.0;
        }
        self.expected_infected() / self.group_size as f64
    }
}

/// Convenience: expected number of infected processes in a flat group of
/// `group_size` processes after `rounds` rounds of gossip with the given
/// fanout (Equation 14 uses this per depth).
pub fn expected_infected_after(
    group_size: usize,
    fanout: f64,
    rounds: u32,
    env: &EnvParams,
) -> f64 {
    let mut chain = InfectionChain::new(group_size, fanout, env);
    chain.run(rounds);
    chain.expected_infected()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossless() -> EnvParams {
        EnvParams::lossless()
    }

    #[test]
    fn pair_probability_matches_equation_8() {
        let env = EnvParams {
            loss_probability: 0.05,
            crash_probability: 0.01,
            pittel_constant: 0.0,
        };
        let p = pair_infection_probability(100.0, 3.0, &env);
        let expected = 3.0 / 99.0 * 0.95 * 0.99;
        assert!((p - expected).abs() < 1e-12);
        // Tiny group: certain contact.
        assert_eq!(pair_infection_probability(1.0, 3.0, &env), 1.0);
        // Fanout larger than the group saturates at the survival factor.
        let saturated = pair_infection_probability(3.0, 10.0, &env);
        assert!((saturated - env.survival_factor()).abs() < 1e-12);
    }

    #[test]
    fn distribution_stays_normalised() {
        let mut chain = InfectionChain::new(40, 2.0, &EnvParams::default());
        for _ in 0..15 {
            chain.step();
            let total: f64 = chain.distribution().iter().sum();
            assert!((total - 1.0).abs() < 1e-7, "round {} total {total}", chain.rounds_elapsed());
        }
    }

    #[test]
    fn infection_is_monotone_in_rounds() {
        let mut chain = InfectionChain::new(60, 2.0, &lossless());
        let mut previous = chain.expected_infected();
        for _ in 0..12 {
            chain.step();
            let current = chain.expected_infected();
            assert!(current >= previous - 1e-9, "expected infected must not decrease");
            previous = current;
        }
    }

    #[test]
    fn everyone_gets_infected_eventually_without_losses() {
        let mut chain = InfectionChain::new(30, 3.0, &lossless());
        chain.run(25);
        assert!(chain.probability_all_infected() > 0.999);
        assert!((chain.expected_infected() - 30.0).abs() < 0.01);
        assert!(chain.probability_process_infected() > 0.999);
    }

    #[test]
    fn heavy_losses_slow_the_spread() {
        let lossy = EnvParams {
            loss_probability: 0.4,
            crash_probability: 0.0,
            pittel_constant: 0.0,
        };
        let clean = expected_infected_after(50, 2.0, 5, &lossless());
        let degraded = expected_infected_after(50, 2.0, 5, &lossy);
        assert!(degraded < clean);
    }

    #[test]
    fn pittel_budget_infects_most_of_the_group() {
        // Running the exact chain for the number of rounds suggested by
        // Pittel's asymptote should infect almost everybody — this ties the
        // two halves of the analysis together.
        let env = lossless();
        let n = 80usize;
        let fanout = 3.0;
        let budget = crate::pittel::round_budget(n as f64, fanout, &env);
        let expected = expected_infected_after(n, fanout, budget, &env);
        assert!(
            expected > 0.95 * n as f64,
            "Pittel budget {budget} only infects {expected:.1} of {n}"
        );
    }

    #[test]
    fn transition_probabilities_form_a_distribution() {
        let mut chain = InfectionChain::new(25, 2.0, &EnvParams::default());
        for j in 1..=25usize {
            let total: f64 = (j..=25).map(|k| chain.transition(j, k)).sum();
            assert!((total - 1.0).abs() < 1e-8, "row {j} sums to {total}");
        }
        // Impossible transitions are zero.
        assert_eq!(chain.transition(5, 3), 0.0);
        assert_eq!(chain.transition(0, 3), 0.0);
        assert_eq!(chain.transition(5, 26), 0.0);
    }

    #[test]
    fn fractional_seeds_interpolate_between_integer_states() {
        let env = lossless();
        let chain = InfectionChain::with_initial_infected(20, 2.0, &env, 2.5);
        assert!((chain.expected_infected() - 2.5).abs() < 1e-12);
        assert!((chain.distribution()[2] - 0.5).abs() < 1e-12);
        assert!((chain.distribution()[3] - 0.5).abs() < 1e-12);
        // Integer seeds collapse to a single state; 1.0 is `new`.
        let unit = InfectionChain::with_initial_infected(20, 2.0, &env, 1.0);
        assert_eq!(unit.distribution(), InfectionChain::new(20, 2.0, &env).distribution());
        // Out-of-range seeds clamp to the group.
        let all = InfectionChain::with_initial_infected(5, 2.0, &env, 99.0);
        assert!((all.expected_infected() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn more_seeds_never_slow_the_spread() {
        let env = EnvParams::default();
        let mut one = InfectionChain::new(30, 2.0, &env);
        let mut three = InfectionChain::with_initial_infected(30, 2.0, &env, 3.0);
        one.run(4);
        three.run(4);
        assert!(three.expected_infected() > one.expected_infected());
    }

    #[test]
    fn initial_state_is_one_infected_process() {
        let chain = InfectionChain::new(10, 2.0, &lossless());
        assert_eq!(chain.group_size(), 10);
        assert_eq!(chain.rounds_elapsed(), 0);
        assert!((chain.expected_infected() - 1.0).abs() < 1e-12);
        assert_eq!(chain.distribution()[1], 1.0);
    }

    #[test]
    fn empty_and_singleton_groups_are_harmless() {
        let mut empty = InfectionChain::new(0, 2.0, &lossless());
        empty.step();
        assert_eq!(empty.expected_infected(), 0.0);
        assert_eq!(empty.probability_process_infected(), 0.0);

        let mut single = InfectionChain::new(1, 2.0, &lossless());
        single.run(3);
        assert!((single.expected_infected() - 1.0).abs() < 1e-12);
        assert!((single.probability_all_infected() - 1.0).abs() < 1e-12);
    }
}
