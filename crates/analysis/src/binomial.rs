//! Log-space combinatorics helpers used by the infection Markov chains.
//!
//! The transition probabilities of Equations 9 and 16 involve binomial
//! coefficients of the form `C(n·p_d − j, k − j)` together with powers of
//! probabilities close to 0 or 1; computing them in log space keeps the
//! recursion numerically stable for groups of thousands of processes.

/// Memoised table of `ln(k!)` values.
///
/// The table grows on demand; lookups are `O(1)` after the first computation
/// of a given size.
#[derive(Debug, Clone, Default)]
pub struct LnFactorial {
    table: Vec<f64>,
}

impl LnFactorial {
    /// Creates an empty table (only `ln 0! = 0` precomputed).
    pub fn new() -> Self {
        Self { table: vec![0.0] }
    }

    /// Returns `ln(k!)`, extending the memo table if needed.
    pub fn ln_factorial(&mut self, k: usize) -> f64 {
        while self.table.len() <= k {
            let next = self.table.len();
            let last = *self.table.last().expect("table starts non-empty");
            self.table.push(last + (next as f64).ln());
        }
        self.table[k]
    }

    /// Returns `ln C(n, k)`; zero-probability cases (`k > n`) return
    /// negative infinity.
    pub fn ln_choose(&mut self, n: usize, k: usize) -> f64 {
        if k > n {
            return f64::NEG_INFINITY;
        }
        self.ln_factorial(n) - self.ln_factorial(k) - self.ln_factorial(n - k)
    }

    /// Returns `C(n, k)` as a float (may overflow to `inf` for very large
    /// inputs; use [`LnFactorial::ln_choose`] in products instead).
    pub fn choose(&mut self, n: usize, k: usize) -> f64 {
        self.ln_choose(n, k).exp()
    }
}

/// Computes `ln(x^k)` treating `0^0 = 1` (so the result is 0) and clamping
/// `x` away from negative values caused by floating point noise.
pub fn ln_pow(x: f64, k: f64) -> f64 {
    if k == 0.0 {
        return 0.0;
    }
    if x <= 0.0 {
        return f64::NEG_INFINITY;
    }
    k * x.ln()
}

/// Numerically stable binomial probability mass function
/// `C(n, k) p^k (1-p)^(n-k)`.
pub fn binomial_pmf(lnf: &mut LnFactorial, n: usize, k: usize, p: f64) -> f64 {
    if k > n {
        return 0.0;
    }
    let p = p.clamp(0.0, 1.0);
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln = lnf.ln_choose(n, k) + ln_pow(p, k as f64) + ln_pow(1.0 - p, (n - k) as f64);
    ln.exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorials_match_direct_computation() {
        let mut lnf = LnFactorial::new();
        assert_eq!(lnf.ln_factorial(0), 0.0);
        assert!((lnf.ln_factorial(1) - 0.0).abs() < 1e-12);
        assert!((lnf.ln_factorial(5) - (120.0f64).ln()).abs() < 1e-9);
        assert!((lnf.ln_factorial(10) - (3_628_800.0f64).ln()).abs() < 1e-9);
        // Repeat lookups hit the memo table.
        assert_eq!(lnf.ln_factorial(5), lnf.ln_factorial(5));
    }

    #[test]
    fn choose_matches_pascals_triangle() {
        let mut lnf = LnFactorial::new();
        assert!((lnf.choose(5, 2) - 10.0).abs() < 1e-9);
        assert!((lnf.choose(10, 5) - 252.0).abs() < 1e-6);
        assert!((lnf.choose(0, 0) - 1.0).abs() < 1e-12);
        assert_eq!(lnf.ln_choose(3, 5), f64::NEG_INFINITY);
        assert_eq!(lnf.choose(3, 5), 0.0);
    }

    #[test]
    fn choose_is_symmetric() {
        let mut lnf = LnFactorial::new();
        for n in 0..30usize {
            for k in 0..=n {
                let a = lnf.ln_choose(n, k);
                let b = lnf.ln_choose(n, n - k);
                assert!((a - b).abs() < 1e-9, "C({n},{k}) symmetry");
            }
        }
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let mut lnf = LnFactorial::new();
        for &(n, p) in &[(10usize, 0.3f64), (50, 0.01), (200, 0.7), (500, 0.999)] {
            let total: f64 = (0..=n).map(|k| binomial_pmf(&mut lnf, n, k, p)).sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n} p={p} sums to {total}");
        }
    }

    #[test]
    fn binomial_pmf_degenerate_probabilities() {
        let mut lnf = LnFactorial::new();
        assert_eq!(binomial_pmf(&mut lnf, 10, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(&mut lnf, 10, 3, 0.0), 0.0);
        assert_eq!(binomial_pmf(&mut lnf, 10, 10, 1.0), 1.0);
        assert_eq!(binomial_pmf(&mut lnf, 10, 9, 1.0), 0.0);
        assert_eq!(binomial_pmf(&mut lnf, 5, 7, 0.5), 0.0);
        // Out-of-range probabilities are clamped rather than propagating NaN.
        assert_eq!(binomial_pmf(&mut lnf, 5, 5, 1.5), 1.0);
    }

    #[test]
    fn ln_pow_handles_corner_cases() {
        assert_eq!(ln_pow(0.0, 0.0), 0.0);
        assert_eq!(ln_pow(0.0, 3.0), f64::NEG_INFINITY);
        assert_eq!(ln_pow(-1.0, 2.0), f64::NEG_INFINITY);
        assert!((ln_pow(2.0, 3.0) - (8.0f64).ln()).abs() < 1e-12);
    }
}
