//! Closed-loop model of the *decentralized* configurations the simulator
//! actually runs: membership providers that bound what each process knows
//! (Section 2's delegate tables, lpbcast-style partial views) and churn
//! schedules that shrink the infectable population mid-dissemination.
//!
//! The plain [`TreeModel`] assumes every process
//! holds the full delegate table for its branch (the `Global` provider) and
//! a static environment.  [`DecentralizedModel`] generalizes both axes:
//!
//! * **Provider shape** — [`ProviderShape::Global`] is the tree model
//!   verbatim.  [`ProviderShape::Delegate`] caps the number of delegate
//!   slots a maintained view seats per node, which is exactly the tree model
//!   with `R_eff = min(slots, R)` (the simulator's delegate provider seats
//!   delegates per depth in table order, so `slots ≥ R` is `Global`).
//!   [`ProviderShape::Partial`] models flat bounded views of `ℓ` uniform
//!   entries: a depth-`i` gossiper only knows each of its `m_i − 1`
//!   audience peers with probability `c = ℓ/(n−1)`, so dissemination inside
//!   the view becomes percolation over a sparse fixed sample rather than a
//!   complete graph (see [`DecentralizedModel::predict`] for the recursion
//!   and its trust region).
//! * **Churn** — a [`ChurnProfile`] splits reliability into the survivor
//!   population (whose environment degrades by the mean dead-slot fraction,
//!   folded into an effective `τ`) and the departed fraction, which only
//!   retains the deliveries made *before* departure, estimated from a
//!   phase-structured delivery timeline ([`DecentralizedModel::delivery_cdf`]).
//!
//! A static profile reduces **bit-for-bit** to the static computation: the
//! churn branch is guarded by [`ChurnProfile::is_static`] before any
//! floating-point adjustment, so `predict` with `ChurnProfile::none()`
//! returns exactly what the underlying static model returns.

use serde::{Deserialize, Serialize};

use crate::churn::{delivery_cdf, ChurnProfile};
use crate::tree::{conditional_seeds, infected_fraction, node_probability, TreeModel};
use crate::{pittel, views, EnvParams, GroupParams};

/// Which membership provider backs the views the protocol gossips over.
///
/// Mirrors the simulator's `MembershipSpec` (global tables, bounded partial
/// views, capped delegate tables) at the level of detail the analysis needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProviderShape {
    /// Full per-branch delegate tables: the paper's baseline assumption.
    Global,
    /// lpbcast-style flat views of `view_size` uniformly random entries.
    Partial {
        /// Number of membership entries (`ℓ`) each process maintains.
        view_size: usize,
    },
    /// Maintained Section 2 delegate tables with at most `slots` delegates
    /// seated per node (per depth).
    Delegate {
        /// Delegate seats per node; `slots ≥ R` is equivalent to `Global`.
        slots: usize,
    },
}

/// A [`TreeModel`] generalized over provider shape and churn.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecentralizedModel {
    /// Tree geometry and protocol fanout/redundancy.
    pub group: GroupParams,
    /// Static environment (loss `ε`, crash `τ`, Pittel constant `c`).
    pub env: EnvParams,
    /// Membership provider backing the gossip views.
    pub provider: ProviderShape,
    /// Mid-run departure schedule; [`ChurnProfile::none`] for static runs.
    pub churn: ChurnProfile,
    /// Section 5.3 audience-inflation threshold (`Some(h)` applies
    /// [`TreeModel::reliability_tuned`] semantics).
    pub tuning: Option<usize>,
}

/// Prediction produced by [`DecentralizedModel::predict`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecentralizedReport {
    /// Predicted reliability degree over the *initial* interested
    /// population (departed processes count as undelivered, matching the
    /// simulator's report semantics).
    pub reliability: f64,
    /// Total round budget (sum of per-depth Pittel budgets).
    pub total_rounds: u32,
    /// Membership entries a process maintains under this provider.
    pub view_entries: usize,
    /// Reliability among processes that stay for the whole run.
    pub survivor_reliability: f64,
    /// Estimated fraction of departed processes that delivered before
    /// leaving (0 for static profiles).
    pub departed_credit: f64,
}

impl DecentralizedModel {
    /// A static, untuned model over the given provider.
    pub fn new(group: GroupParams, env: EnvParams, provider: ProviderShape) -> Self {
        Self {
            group,
            env,
            provider,
            churn: ChurnProfile::none(),
            tuning: None,
        }
    }

    /// Attaches a churn profile.
    #[must_use]
    pub fn with_churn(mut self, churn: ChurnProfile) -> Self {
        self.churn = churn;
        self
    }

    /// Enables the Section 5.3 audience-inflation tuning with threshold `h`.
    #[must_use]
    pub fn with_tuning(mut self, threshold: usize) -> Self {
        self.tuning = Some(threshold);
        self
    }

    /// Membership entries per process under this provider
    /// (Section 3.2's `m = R·a·(d−1) + a` for maintained tables).
    pub fn view_entries(&self) -> usize {
        match self.provider {
            ProviderShape::Global => {
                views::tree_view_size(self.group.arity, self.group.depth, self.group.redundancy)
            }
            ProviderShape::Partial { view_size } => view_size,
            ProviderShape::Delegate { slots } => views::tree_view_size(
                self.group.arity,
                self.group.depth,
                slots.min(self.group.redundancy).max(1),
            ),
        }
    }

    /// The effective tree geometry: `Delegate` caps the redundancy, the
    /// other providers keep it.
    fn effective_group(&self) -> GroupParams {
        match self.provider {
            ProviderShape::Delegate { slots } => GroupParams {
                redundancy: slots.min(self.group.redundancy).max(1),
                ..self.group
            },
            _ => self.group,
        }
    }

    /// Static reliability and per-depth budgets with the given environment.
    fn static_run(&self, matching_rate: f64, env: &EnvParams) -> (f64, Vec<u32>) {
        let group = self.effective_group();
        match self.provider {
            ProviderShape::Global | ProviderShape::Delegate { .. } => {
                let model = TreeModel::new(group, *env);
                let report = match self.tuning {
                    Some(threshold) => model.reliability_tuned(matching_rate, threshold),
                    None => model.reliability(matching_rate),
                };
                (report.reliability_degree, report.rounds_per_depth)
            }
            ProviderShape::Partial { view_size } => {
                self.partial_run(matching_rate, env, view_size)
            }
        }
    }

    /// Fixed-sample percolation recursion for flat bounded views.
    ///
    /// Per depth `i` the audience is the `m_i · p_i` interested entities of
    /// the depth's view, but a gossiper only *knows* each audience peer with
    /// probability `c = ℓ/(n−1)`, so its usable out-degree over the whole
    /// phase is `λ_i = min((m_i−1)·c·p_i, F·T_i) · (1−ε)(1−τ)`.  The
    /// reached fraction follows the branching-process recursion
    /// `y ← 1 − (1−σ)·e^{−λ·y}` iterated for the phase's `T_i` generations
    /// from the seeded fraction `σ`.
    ///
    /// **Trust region**: the simulator's lpbcast views are *re-gossiped*
    /// every round, so mid-percolation (`λ ≈ 1`) the fixed sample is too
    /// pessimistic and fresh-sample mixing too optimistic.  The model is
    /// validated at paper scale (`n ≥ 10⁴`), where views are sparse enough
    /// that re-gossip barely helps; small-`n` flat rows are out of the
    /// drift-gate domain (see `ARCHITECTURE.md`, invariant 9).
    fn partial_run(
        &self,
        matching_rate: f64,
        env: &EnvParams,
        view_size: usize,
    ) -> (f64, Vec<u32>) {
        let group = self.group;
        let model = TreeModel::new(group, *env);
        let n = group.group_size() as f64;
        let interested = n * matching_rate;
        let connectivity = (view_size as f64 / (n - 1.0).max(1.0)).min(1.0);
        let fanout = group.fanout as f64;
        let mut rounds_per_depth = Vec::with_capacity(group.depth);
        let mut expected_infected_entities = 1.0;
        let mut seeds = 1.0;
        for depth in 1..=group.depth {
            let p_i = model.interest_probability(matching_rate, depth);
            let m_i = model.view_size(depth) as f64;
            let gossip_p = match self.tuning {
                Some(threshold) => p_i.max((threshold as f64 / m_i).min(1.0)),
                None => p_i,
            };
            let rounds = pittel::round_budget(m_i * gossip_p, fanout * gossip_p, env);
            rounds_per_depth.push(rounds);
            let entities = m_i * p_i;
            let fraction = if entities < 1.0 {
                entities.clamp(0.0, 1.0)
            } else {
                let known_peers = (m_i - 1.0) * connectivity * p_i;
                let lambda = known_peers.min(fanout * rounds as f64) * env.survival_factor();
                let sigma = (seeds / entities).clamp(0.0, 1.0);
                let mut reached = sigma;
                for _ in 0..rounds {
                    reached = 1.0 - (1.0 - sigma) * (-lambda * reached).exp();
                }
                reached.clamp(0.0, 1.0)
            };
            let redundancy_exponent = m_i / group.arity as f64;
            let r_i = node_probability(entities, fraction, redundancy_exponent);
            let children_per_node = (group.arity as f64 * p_i).min(group.arity as f64);
            expected_infected_entities *= (r_i * children_per_node).max(0.0);
            seeds = conditional_seeds(fraction, redundancy_exponent);
        }
        let expected = expected_infected_entities.min(interested.max(0.0));
        let degree = if interested > 0.0 {
            (expected / interested).clamp(0.0, 1.0)
        } else {
            0.0
        };
        (degree, rounds_per_depth)
    }

    /// Phase-structured delivery timeline: `cdf[t]` is the estimated
    /// fraction of eventual deliveries complete `t` rounds after the
    /// publish.
    ///
    /// Unlike a flat mean-field curve over the whole group, the tree
    /// disseminates in *phases*: while depth `i < d` gossips, only the
    /// `R·aⁱ` delegates of depth-`i` nodes are being delivered to (≈ 14% of
    /// the paper-scale group across both inner depths); the leaf phase
    /// carries the rest.  Each phase contributes its population share,
    /// shaped by the mean-field curve of that depth's audience.
    pub fn delivery_cdf(&self, matching_rate: f64, rounds_per_depth: &[u32]) -> Vec<f64> {
        let group = self.effective_group();
        let model = TreeModel::new(group, self.env);
        let n = group.group_size() as f64;
        let redundancy = group.redundancy as f64;
        let fanout = group.fanout as f64;
        // Population share first delivered during each depth's phase.
        let mut shares = Vec::with_capacity(group.depth);
        let mut inner_total = 0.0f64;
        for depth in 1..group.depth {
            let share = (redundancy * (group.arity as f64).powi(depth as i32) / n)
                .min(1.0 - inner_total);
            shares.push(share);
            inner_total += share;
        }
        shares.push((1.0 - inner_total).max(0.0));
        let mut curve = vec![0.0];
        let mut delivered = 0.0f64;
        for (depth, (&rounds, &share)) in
            rounds_per_depth.iter().zip(shares.iter()).enumerate()
        {
            let audience =
                model.view_size(depth + 1) as f64 * model.interest_probability(matching_rate, depth + 1);
            let phase = delivery_cdf(audience.max(2.0), fanout, &self.env, rounds);
            // phase[0] = 0, phase[rounds] = 1: skip the leading zero so each
            // appended point advances one round.
            for &point in &phase[1..] {
                curve.push(delivered + share * point);
            }
            delivered += share;
        }
        if let Some(last) = curve.last_mut() {
            *last = 1.0;
        }
        curve
    }

    /// Predicts reliability for one matching rate.
    ///
    /// With churn, reliability over the initial interested population splits
    /// as `survivor · ((1−λ) + λ·credit)`: the survivor fraction `1−λ`
    /// delivers with the survivor reliability (computed with the dead-slot
    /// wastage folded into an effective `τ`), and the departed fraction `λ`
    /// only keeps the deliveries made before leaving.
    pub fn predict(&self, matching_rate: f64) -> DecentralizedReport {
        let matching_rate = matching_rate.clamp(0.0, 1.0);
        let (static_reliability, rounds_per_depth) = self.static_run(matching_rate, &self.env);
        let total_rounds: u32 = rounds_per_depth.iter().sum();
        let view_entries = self.view_entries();
        // Bit-for-bit contract: a static profile returns the static model's
        // numbers without any churn arithmetic touching them.
        if self.churn.is_static() {
            return DecentralizedReport {
                reliability: static_reliability,
                total_rounds,
                view_entries,
                survivor_reliability: static_reliability,
                departed_credit: 0.0,
            };
        }
        let departed = self.churn.departed_fraction();
        let wastage = self.churn.survivor_wastage(total_rounds);
        let degraded = EnvParams {
            crash_probability: 1.0
                - (1.0 - self.env.crash_probability) * (1.0 - wastage),
            ..self.env
        };
        // Survivors keep the round budgets the protocol computed from its
        // *configured* environment (the protocol does not know about the
        // churn), but gossip into a population where `wastage` of the slots
        // are dead on average.
        let survivor_reliability = self.survivor_run(matching_rate, &degraded, &rounds_per_depth);
        let cdf = self.delivery_cdf(matching_rate, &rounds_per_depth);
        let credit = self.churn.delivered_before_departure(&cdf);
        let reliability = (survivor_reliability
            * ((1.0 - departed) + departed * credit * static_reliability.max(0.0)))
        .clamp(0.0, 1.0);
        DecentralizedReport {
            reliability,
            total_rounds,
            view_entries,
            survivor_reliability,
            departed_credit: credit,
        }
    }

    /// Static reliability with a degraded environment but the *original*
    /// round budgets (the protocol's budgets come from its configured
    /// environment, not the churned one).
    fn survivor_run(
        &self,
        matching_rate: f64,
        degraded: &EnvParams,
        rounds_per_depth: &[u32],
    ) -> f64 {
        match self.provider {
            ProviderShape::Global | ProviderShape::Delegate { .. } => {
                let group = self.effective_group();
                let model = TreeModel::new(group, *degraded);
                let interested = group.group_size() as f64 * matching_rate;
                let fanout = group.fanout as f64;
                let mut expected = 1.0f64;
                let mut seeds = 1.0f64;
                for depth in 1..=group.depth {
                    let p_i = model.interest_probability(matching_rate, depth);
                    let entities = model.view_size(depth) as f64 * p_i;
                    let rounds = rounds_per_depth.get(depth - 1).copied().unwrap_or(0);
                    let fraction = infected_fraction(entities, fanout, degraded, rounds, seeds);
                    let exponent = model.view_size(depth) as f64 / group.arity as f64;
                    let r_i = node_probability(entities, fraction, exponent);
                    let children = (group.arity as f64 * p_i).min(group.arity as f64);
                    expected *= (r_i * children).max(0.0);
                    seeds = conditional_seeds(fraction, exponent);
                }
                if interested > 0.0 {
                    (expected.min(interested) / interested).clamp(0.0, 1.0)
                } else {
                    0.0
                }
            }
            ProviderShape::Partial { view_size } => {
                self.partial_run(matching_rate, degraded, view_size).0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_group() -> GroupParams {
        GroupParams {
            arity: 22,
            depth: 3,
            redundancy: 3,
            fanout: 2,
        }
    }

    fn quick_group() -> GroupParams {
        GroupParams {
            arity: 6,
            depth: 3,
            redundancy: 3,
            fanout: 2,
        }
    }

    #[test]
    fn global_provider_is_the_tree_model_bit_for_bit() {
        let group = paper_group();
        let env = EnvParams::default();
        let model = DecentralizedModel::new(group, env, ProviderShape::Global);
        let tree = TreeModel::new(group, env);
        for rate in [0.1, 0.35, 0.5, 1.0] {
            let lhs = model.predict(rate);
            let rhs = tree.reliability(rate);
            assert_eq!(lhs.reliability, rhs.reliability_degree);
            assert_eq!(lhs.total_rounds, rhs.total_rounds);
            let tuned = model.clone().with_tuning(10).predict(rate);
            assert_eq!(
                tuned.reliability,
                tree.reliability_tuned(rate, 10).reliability_degree
            );
        }
    }

    #[test]
    fn delegate_provider_caps_redundancy() {
        let env = EnvParams::default();
        let group = paper_group();
        let full = DecentralizedModel::new(group, env, ProviderShape::Delegate { slots: 3 });
        let global = DecentralizedModel::new(group, env, ProviderShape::Global);
        assert_eq!(full.predict(0.5).reliability, global.predict(0.5).reliability);
        let r1 = DecentralizedModel::new(group, env, ProviderShape::Delegate { slots: 1 });
        let r2 = DecentralizedModel::new(group, env, ProviderShape::Delegate { slots: 2 });
        let (p1, p2, p3) = (
            r1.predict(0.5).reliability,
            r2.predict(0.5).reliability,
            full.predict(0.5).reliability,
        );
        assert!(p1 <= p2 + 1e-9 && p2 <= p3 + 1e-9, "{p1} {p2} {p3}");
        assert!(p1 > 0.9, "R=1 should still mostly work: {p1}");
        // m = R·a·(d−1) + a with R capped at 1 → 1·22·2 + 22 = 66.
        assert_eq!(r1.view_entries(), 66);
    }

    #[test]
    fn partial_views_degrade_with_sparsity() {
        let env = EnvParams::default();
        let group = paper_group();
        let at = |entries: usize| {
            DecentralizedModel::new(group, env, ProviderShape::Partial { view_size: entries })
                .predict(0.5)
                .reliability
        };
        let sparse = at(154);
        let mid = at(512);
        let dense = at(8_000);
        assert!(sparse < mid && mid < dense, "{sparse} {mid} {dense}");
        // Calibration anchors from the committed partial-view sweep: the
        // ℓ=512 row simulates at ≈ 0.36 at paper scale.
        assert!((mid - 0.36).abs() < 0.10, "ℓ=512 predicted {mid}");
        assert!(sparse < 0.15, "ℓ=154 predicted {sparse}");
    }

    #[test]
    fn static_churn_profile_is_bitwise_static() {
        let env = EnvParams::default();
        let model = DecentralizedModel::new(quick_group(), env, ProviderShape::Global);
        let churned = model.clone().with_churn(ChurnProfile::from_departures([(3, 0.0)]));
        let lhs = model.predict(0.5);
        let rhs = churned.predict(0.5);
        assert_eq!(lhs.reliability.to_bits(), rhs.reliability.to_bits());
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn churn_costs_roughly_the_departed_fraction() {
        let env = EnvParams::default();
        let base = DecentralizedModel::new(quick_group(), env, ProviderShape::Global);
        let static_reliability = base.predict(0.5).reliability;
        let mut previous = static_reliability;
        for rate in [0.05, 0.10, 0.20] {
            let spread = (0..5).map(|i| (2 + i as u32, rate / 5.0));
            let churned = base
                .clone()
                .with_churn(ChurnProfile::from_departures(spread))
                .predict(0.5);
            assert!(churned.reliability < previous);
            // Early leavers keep almost no credit, so the drop is close to
            // the full departed fraction.
            let floor = static_reliability * (1.0 - rate) * 0.9;
            assert!(churned.reliability > floor, "rate {rate}: {churned:?}");
            previous = churned.reliability;
        }
    }

    #[test]
    fn late_departures_cost_less_than_early_ones() {
        let env = EnvParams::default();
        let base = DecentralizedModel::new(paper_group(), env, ProviderShape::Global);
        let early = base
            .clone()
            .with_churn(ChurnProfile::from_departures([(2, 0.1)]))
            .predict(0.5);
        let late = base
            .clone()
            .with_churn(ChurnProfile::from_departures([(40, 0.1)]))
            .predict(0.5);
        assert!(late.reliability > early.reliability);
        assert!(late.departed_credit > 0.99, "{late:?}");
    }

    #[test]
    fn phase_cdf_shows_the_leaf_hump() {
        let env = EnvParams::default();
        let model = DecentralizedModel::new(paper_group(), env, ProviderShape::Global);
        let report = model.predict(0.5);
        let tree = TreeModel::new(paper_group(), env);
        let rounds: Vec<u32> = (1..=3).map(|d| tree.rounds_at_depth(0.5, d)).collect();
        let cdf = model.delivery_cdf(0.5, &rounds);
        assert_eq!(cdf.len() as u32, report.total_rounds + 1);
        assert_eq!(cdf[0], 0.0);
        assert_eq!(*cdf.last().unwrap(), 1.0);
        for pair in cdf.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-12);
        }
        // Inner depths only deliver to R·(a + a²) of the a³ processes
        // (≈ 14% at paper scale): the curve must still be low when the leaf
        // phase starts.
        let inner_rounds: u32 = rounds[..2].iter().sum();
        let at_leaf_start = cdf[inner_rounds as usize];
        assert!(
            at_leaf_start < 0.2,
            "inner phases delivered {at_leaf_start}"
        );
    }
}
