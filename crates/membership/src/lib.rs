//! # pmcast-membership — tree-structured membership for pmcast
//!
//! This crate implements the membership scheme of *Probabilistic Multicast*
//! (Eugster & Guerraoui, DSN 2002), Section 2: a pmcast group is split into
//! subgroups following the hierarchical address space; each subgroup is
//! represented by `R` *delegates* (the processes with the smallest
//! addresses), and the recursive select/merge of delegates yields a compound
//! spanning tree.  Every process only knows the delegates along its path to
//! the root plus its immediate neighbours, giving per-process views of size
//! `R·a·(d−1) + a ∈ O(d·R·n^(1/d))` instead of `n` (Equation 2 / 12).
//!
//! Provided building blocks:
//!
//! * [`TreeTopology`] — the abstract "who is where in the tree" interface the
//!   dissemination layer builds on, with two implementations:
//!   [`ImplicitRegularTree`] (a fully populated regular tree, computed on the
//!   fly — what the paper's analysis assumes) and [`GroupTree`] (an explicit
//!   membership with arbitrary populated addresses and per-process
//!   subscriptions).
//! * [`ViewTable`] / [`DepthView`] / [`ViewEntry`] — the per-depth membership
//!   tables of Figure 2, including regrouped interests and process counts.
//! * [`DelegatePolicy`] — deterministic delegate election (smallest
//!   addresses by default, as in the paper).
//! * [`InterestOracle`] — the interface used by the protocol to decide
//!   whether a process / subtree is interested in an event, with an exact
//!   subscription-based implementation and an assignment-based one used by
//!   the evaluation workloads.
//! * [`MembershipManager`] + [`ViewExchange`] — loosely coordinated
//!   membership maintenance: gossip-pull anti-entropy on timestamped view
//!   lines, joins, leaves and failure detection (Section 2.3).
//! * [`MembershipView`] — the *provider* boundary the dissemination layer
//!   draws fanout candidates from, with three implementations: a global one
//!   ([`GlobalOracleView`], everyone knows everyone — the evaluation
//!   model), an lpbcast-style flat bounded gossip one ([`PartialView`]),
//!   and the paper's own hierarchical view-table maintenance
//!   ([`DelegateView`]: per-depth delegate slots structured by the tree
//!   coordinates, gossip-piggybacked delegate tables, smallest-address
//!   re-election under churn).  See the [`provider`] module docs for the
//!   sampling-determinism and eviction contract and the [`delegate`]
//!   module docs for the hierarchical design.  Both gossip providers also
//!   bootstrap over **sparse** populations (`bootstrap_sparse`), seating
//!   delegates gap-aware over partially occupied subgroups.
//! * [`Population`] — a sparse, time-varying population over the regular
//!   address space: initial occupancy plus a deterministic join/leave
//!   schedule, with [`GroupTree`] snapshots per round (see the
//!   [`population`] module docs).
//!
//! ## Example
//!
//! ```rust
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use pmcast_addr::AddressSpace;
//! use pmcast_membership::{GroupTree, TreeTopology};
//! use pmcast_interest::{Filter, Predicate};
//!
//! let space = AddressSpace::regular(3, 4)?;
//! let mut tree = GroupTree::new(space.clone());
//! for address in space.iter() {
//!     tree.join(address, Filter::new().with("b", Predicate::gt(0.0)))?;
//! }
//! assert_eq!(tree.member_count(), 64);
//!
//! // Delegates of the root subgroup are the 3 smallest addresses.
//! let delegates = tree.delegates(&pmcast_addr::Prefix::root(), 3);
//! assert_eq!(delegates.len(), 3);
//! assert_eq!(delegates[0].to_string(), "0.0.0");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod antientropy;
mod churn;
pub mod delegate;
mod election;
mod error;
mod lazy;
mod oracle;
pub mod population;
pub mod provider;
mod summaries;
mod topic;
mod topology;
mod tree;
mod view;

pub use antientropy::{LineKey, ViewDigest, ViewExchange};
pub use churn::{FailureDetector, MembershipEvent, MembershipManager};
pub use delegate::{DelegateView, DelegateViewConfig};
pub use election::{CapacityWeightedPolicy, DelegatePolicy, SmallestAddressPolicy};
pub use error::MembershipError;
pub use lazy::LazyDelegateView;
pub use oracle::{AssignmentOracle, InterestOracle, SubscriptionOracle, UniformOracle};
pub use summaries::SubtreeSummaries;
pub use topic::{TopicOracle, TOPIC_ATTRIBUTE};
pub use population::{LifecycleEvent, LifecycleEventKind, Population, PopulationSizes};
pub use provider::{GlobalOracleView, MembershipView, PartialView, PartialViewConfig};
pub use topology::{ImplicitRegularTree, TreeTopology};
pub use tree::GroupTree;
pub use view::{DepthView, ViewEntry, ViewTable};

/// Default redundancy factor `R` suggested by the paper (`R > 1`, the
/// evaluation uses `R = 3` or `R = 4`).
pub const DEFAULT_REDUNDANCY: usize = 3;
