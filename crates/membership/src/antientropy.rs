use serde::{Deserialize, Serialize};

use pmcast_addr::{Address, Component, Depth};

use crate::{ViewEntry, ViewTable};

/// Identifies one line of a view table: the depth of the table and the
/// infix of the subgroup the line describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LineKey {
    /// Depth of the view the line belongs to.
    pub depth: Depth,
    /// Infix (next address component) of the subgroup described by the line.
    pub infix: Component,
}

/// A compact description of a process's view table: one `(line, timestamp)`
/// pair per line of every per-depth table, exactly what the paper's
/// membership gossip carries (Section 2.3, "Membership information").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViewDigest {
    owner: Address,
    lines: Vec<(LineKey, u64)>,
}

impl ViewDigest {
    /// Builds the digest of a view table.
    pub fn of(table: &ViewTable) -> Self {
        let mut lines = Vec::new();
        for view in table.iter() {
            for entry in view.entries() {
                lines.push((
                    LineKey {
                        depth: view.depth(),
                        infix: entry.infix(),
                    },
                    entry.timestamp(),
                ));
            }
        }
        Self {
            owner: table.owner().clone(),
            lines,
        }
    }

    /// The process whose table this digest describes.
    pub fn owner(&self) -> &Address {
        &self.owner
    }

    /// Number of lines in the digest.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Returns `true` if the digest describes an empty table.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The timestamp the digest's owner holds for a given line, if any.
    pub fn timestamp(&self, key: &LineKey) -> Option<u64> {
        self.lines
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, timestamp)| *timestamp)
    }

    /// Rough wire size of the digest in bytes.
    pub fn wire_size(&self) -> usize {
        self.lines.len() * (std::mem::size_of::<LineKey>() + std::mem::size_of::<u64>())
            + std::mem::size_of_val(self.owner.components())
    }
}

/// The gossip-pull view exchange of Section 2.3.
///
/// The exchange is *pull*-oriented: the gossiper sends only a digest of its
/// lines; the receiver answers with the full content of every line for which
/// the gossiper's timestamp is smaller than its own (i.e. the receiver
/// "updates the gossiper").  Membership information can be piggybacked onto
/// event gossip or sent in dedicated messages — this type only implements
/// the state reconciliation itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ViewExchange;

impl ViewExchange {
    /// Creates the exchange helper.
    pub fn new() -> Self {
        Self
    }

    /// Computes the pull response: the lines of `responder` that are
    /// strictly newer than (or unknown to) the gossiper according to its
    /// digest.
    pub fn newer_lines(&self, responder: &ViewTable, digest: &ViewDigest) -> Vec<(LineKey, ViewEntry)> {
        let mut updates = Vec::new();
        for view in responder.iter() {
            for entry in view.entries() {
                let key = LineKey {
                    depth: view.depth(),
                    infix: entry.infix(),
                };
                let gossiper_timestamp = digest.timestamp(&key);
                let is_newer = match gossiper_timestamp {
                    Some(timestamp) => entry.timestamp() > timestamp,
                    None => true,
                };
                if is_newer {
                    updates.push((key, entry.clone()));
                }
            }
        }
        updates
    }

    /// Applies a pull response to the gossiper's table.  Lines already known
    /// are overwritten only if the incoming line is strictly newer; unknown
    /// lines that fall under a view the gossiper maintains are inserted.
    /// Lines for depths the gossiper does not maintain are ignored.
    ///
    /// Returns the number of lines that changed.
    pub fn apply(&self, table: &mut ViewTable, updates: &[(LineKey, ViewEntry)]) -> usize {
        let mut changed = 0;
        for (key, incoming) in updates {
            if key.depth == 0 || key.depth > table.depth() {
                continue;
            }
            let view = table.view_mut(key.depth);
            // Only accept lines describing subgroups directly under this
            // view's prefix; anything else belongs to a different branch of
            // the tree and would corrupt the table.
            if incoming.prefix().parent().as_ref() != Some(view.prefix()) {
                continue;
            }
            match view
                .entries_mut()
                .iter_mut()
                .find(|existing| existing.infix() == key.infix)
            {
                Some(existing) => {
                    if existing.merge_newer(incoming) {
                        changed += 1;
                    }
                }
                None => {
                    view.entries_mut().push(incoming.clone());
                    view.entries_mut().sort_by_key(ViewEntry::infix);
                    changed += 1;
                }
            }
        }
        changed
    }

    /// Runs one full bidirectional exchange between two processes: each
    /// pulls the lines the other holds with newer timestamps.  Returns the
    /// number of lines updated on `(first, second)` respectively.
    pub fn reconcile(&self, first: &mut ViewTable, second: &mut ViewTable) -> (usize, usize) {
        let first_digest = ViewDigest::of(first);
        let second_digest = ViewDigest::of(second);
        let for_first = self.newer_lines(second, &first_digest);
        let for_second = self.newer_lines(first, &second_digest);
        let first_changed = self.apply(first, &for_first);
        let second_changed = self.apply(second, &for_second);
        (first_changed, second_changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcast_addr::AddressSpace;
    use pmcast_interest::{Filter, InterestSummary, Predicate};

    use crate::GroupTree;

    fn tables() -> (ViewTable, ViewTable) {
        let space = AddressSpace::regular(2, 3).unwrap();
        let tree = GroupTree::fully_populated(space, Filter::match_all());
        // Two processes of the same leaf subgroup see the same lines.
        let a = tree.view_table_for(&"1.0".parse().unwrap(), 2).unwrap();
        let b = tree.view_table_for(&"1.2".parse().unwrap(), 2).unwrap();
        (a, b)
    }

    #[test]
    fn digest_covers_every_line() {
        let (a, _) = tables();
        let digest = ViewDigest::of(&a);
        let line_count: usize = a.iter().map(|v| v.len()).sum();
        assert_eq!(digest.len(), line_count);
        assert!(!digest.is_empty());
        assert_eq!(digest.owner(), a.owner());
        assert!(digest.wire_size() > 0);
        assert_eq!(
            digest.timestamp(&LineKey { depth: 1, infix: 0 }),
            Some(0)
        );
        assert_eq!(digest.timestamp(&LineKey { depth: 1, infix: 9 }), None);
    }

    #[test]
    fn newer_lines_and_apply_propagate_updates() {
        let (mut a, mut b) = tables();
        // Process a learns fresher information about subgroup 2 at depth 1.
        a.view_mut(1)
            .entries_mut()
            .iter_mut()
            .find(|e| e.infix() == 2)
            .unwrap()
            .update(
                vec!["2.0".parse().unwrap()],
                InterestSummary::from_filter(Filter::new().with("b", Predicate::gt(0.0))),
                7,
                42,
            );

        let exchange = ViewExchange::new();
        let digest_b = ViewDigest::of(&b);
        let updates = exchange.newer_lines(&a, &digest_b);
        assert_eq!(updates.len(), 1);
        assert_eq!(updates[0].0, LineKey { depth: 1, infix: 2 });

        let changed = exchange.apply(&mut b, &updates);
        assert_eq!(changed, 1);
        let entry = b.view(1).entry(2).unwrap();
        assert_eq!(entry.timestamp(), 42);
        assert_eq!(entry.process_count(), 7);

        // Re-applying the same updates is a no-op (idempotence).
        assert_eq!(exchange.apply(&mut b, &updates), 0);
    }

    #[test]
    fn stale_updates_are_rejected() {
        let (mut a, b) = tables();
        let exchange = ViewExchange::new();
        // b has only timestamp-0 lines; a already has timestamp 5 somewhere.
        a.view_mut(1)
            .entries_mut()
            .iter_mut()
            .find(|e| e.infix() == 0)
            .unwrap()
            .update(vec![], InterestSummary::empty(), 1, 5);
        let digest_a = ViewDigest::of(&a);
        let updates = exchange.newer_lines(&b, &digest_a);
        // Nothing b holds is newer than a's lines.
        assert!(updates.iter().all(|(k, _)| !(k.depth == 1 && k.infix == 0)));
    }

    #[test]
    fn reconcile_converges_bidirectionally() {
        let (mut a, mut b) = tables();
        a.view_mut(1)
            .entries_mut()
            .iter_mut()
            .find(|e| e.infix() == 0)
            .unwrap()
            .update(vec![], InterestSummary::empty(), 11, 10);
        b.view_mut(1)
            .entries_mut()
            .iter_mut()
            .find(|e| e.infix() == 1)
            .unwrap()
            .update(vec![], InterestSummary::empty(), 22, 20);

        let exchange = ViewExchange::new();
        let (a_changed, b_changed) = exchange.reconcile(&mut a, &mut b);
        assert_eq!(a_changed, 1);
        assert_eq!(b_changed, 1);
        assert_eq!(a.view(1).entry(1).unwrap().process_count(), 22);
        assert_eq!(b.view(1).entry(0).unwrap().process_count(), 11);

        // A second reconciliation changes nothing: they converged.
        assert_eq!(exchange.reconcile(&mut a, &mut b), (0, 0));
    }

    #[test]
    fn updates_for_foreign_branches_are_ignored() {
        let space = AddressSpace::regular(2, 3).unwrap();
        let tree = GroupTree::fully_populated(space, Filter::match_all());
        let mut a = tree.view_table_for(&"1.0".parse().unwrap(), 2).unwrap();
        // A line describing a leaf subgroup of branch 2 does not belong in
        // a's depth-2 view (whose prefix is 1).
        let foreign = ViewEntry::new(
            pmcast_addr::Prefix::from_components(vec![2, 1]),
            vec!["2.1".parse().unwrap()],
            InterestSummary::match_all(),
            1,
            99,
        );
        let exchange = ViewExchange::new();
        let changed = exchange.apply(
            &mut a,
            &[(LineKey { depth: 2, infix: 1 }, foreign)],
        );
        assert_eq!(changed, 0);
        // Depths outside the table are also ignored.
        let out_of_depth = ViewEntry::new(
            pmcast_addr::Prefix::from_components(vec![0]),
            vec![],
            InterestSummary::empty(),
            1,
            99,
        );
        assert_eq!(
            exchange.apply(&mut a, &[(LineKey { depth: 7, infix: 0 }, out_of_depth)]),
            0
        );
    }

    #[test]
    fn pairwise_gossip_converges_a_small_group() {
        // Three replicas of the same subgroup's views with disjoint fresh
        // updates converge after a couple of pairwise exchanges.
        let space = AddressSpace::regular(2, 3).unwrap();
        let tree = GroupTree::fully_populated(space, Filter::match_all());
        let mut tables: Vec<ViewTable> = ["0.0", "0.1", "0.2"]
            .iter()
            .map(|s| tree.view_table_for(&s.parse().unwrap(), 2).unwrap())
            .collect();
        for (index, table) in tables.iter_mut().enumerate() {
            table
                .view_mut(1)
                .entries_mut()
                .iter_mut()
                .find(|e| e.infix() == index as u32)
                .unwrap()
                .update(vec![], InterestSummary::empty(), 100 + index, 50 + index as u64);
        }
        let exchange = ViewExchange::new();
        // Ring of exchanges, two sweeps.
        for _ in 0..2 {
            for i in 0..3 {
                let j = (i + 1) % 3;
                let (left, right) = tables.split_at_mut(j.max(i));
                if i < j {
                    exchange.reconcile(&mut left[i], &mut right[0]);
                } else {
                    exchange.reconcile(&mut right[0], &mut left[j]);
                }
            }
        }
        for table in &tables {
            for index in 0..3u32 {
                assert_eq!(
                    table.view(1).entry(index).unwrap().process_count(),
                    100 + index as usize,
                    "all replicas must agree on line {index}"
                );
            }
        }
    }
}
