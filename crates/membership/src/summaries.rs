//! Per-subtree interest summaries: the aggregated-interest tables the
//! delegate hierarchy carries alongside its view tables.
//!
//! Section 2.3 of the paper regroups the interests of a subgroup into one
//! *Interests* cell per view-table line.  [`SubtreeSummaries`] materializes
//! that regrouping for a whole tree at once: one [`InterestSummary`] per
//! prefix, built bottom-up by merging the children of each subgroup, so a
//! gossiping process can ask "could *anyone* below this slot group want this
//! event?" in `O(disjuncts)` without consulting a global oracle.
//!
//! The table inherits the summary's over-approximation contract: a subtree
//! whose summary rejects an event provably contains **no** interested
//! process (skipping it is reliability-safe); a subtree whose summary
//! accepts may still contain nobody interested (the cost is only spurious
//! gossip).  Property tests in `tests/protocol_contract.rs` check the
//! end-to-end version of this invariant.

use pmcast_addr::{AddressSpace, Prefix};
use pmcast_interest::{Event, Filter, Interest, InterestSummary};

/// Interest summaries for every prefix of an address space, maintained
/// bottom-up from per-process subscription filters.
///
/// Intended for evaluation-scale groups (the table holds one summary per
/// prefix, ~`n·a/(a−1)` summaries total); the million-process sparse core
/// keeps using the oracle path.
#[derive(Debug, Clone)]
pub struct SubtreeSummaries {
    space: AddressSpace,
    /// Per-process subscription filters (dense index order); `None` marks a
    /// process with no subscription (or one that has left the group).
    filters: Vec<Option<Filter>>,
    /// `levels[l]` holds the summaries of all prefixes of length `l`, in
    /// lexicographic prefix order; `levels[0]` is the root summary.
    levels: Vec<Vec<InterestSummary>>,
}

impl SubtreeSummaries {
    /// Builds the full table from per-process filters, indexed by the dense
    /// address order of the space.
    ///
    /// # Panics
    ///
    /// Panics if `filters` does not cover the space exactly.
    pub fn build(space: AddressSpace, filters: Vec<Option<Filter>>) -> Self {
        assert_eq!(
            filters.len() as u128,
            space.capacity(),
            "one filter slot per address of the space"
        );
        let depth = space.depth();
        let mut levels: Vec<Vec<InterestSummary>> = Vec::with_capacity(depth + 1);
        // Leaves first: one summary per process.
        let leaf: Vec<InterestSummary> = filters
            .iter()
            .map(|filter| match filter {
                Some(f) => InterestSummary::from_filter(f.clone()),
                None => InterestSummary::empty(),
            })
            .collect();
        levels.push(leaf);
        // Merge `arity` children into each parent, up to the root.
        for level in (0..depth).rev() {
            let arity = space.arity(level + 1) as usize;
            let children = &levels[levels.len() - 1];
            let mut parents = Vec::with_capacity(children.len() / arity);
            for group in children.chunks(arity) {
                let mut summary = InterestSummary::empty();
                for child in group {
                    summary.merge(child);
                }
                parents.push(summary);
            }
            levels.push(parents);
        }
        levels.reverse();
        Self {
            space,
            filters,
            levels,
        }
    }

    /// Returns `true` unless the subtree below `prefix` **provably**
    /// contains no interested process.  Prefixes outside the space answer
    /// `true` (the over-approximating default — never skip on uncertainty).
    pub fn allows(&self, prefix: &Prefix, event: &Event) -> bool {
        match self.summary_at(prefix) {
            Some(summary) => summary.matches(event),
            None => true,
        }
    }

    /// The summary of the subtree below `prefix`, if the prefix is valid
    /// for the space.
    pub fn summary_at(&self, prefix: &Prefix) -> Option<&InterestSummary> {
        let level = prefix.len();
        if level > self.space.depth() || self.space.validate_prefix(prefix).is_err() {
            return None;
        }
        let mut index: usize = 0;
        for (depth, &component) in prefix.components().iter().enumerate() {
            index = index * self.space.arity(depth + 1) as usize + component as usize;
        }
        self.levels[level].get(index)
    }

    /// The whole-group summary (the root cell).
    pub fn root(&self) -> &InterestSummary {
        &self.levels[0][0]
    }

    /// Replaces (or clears, with `None`) the subscription of the process at
    /// the given dense index and rebuilds the summaries along its root path
    /// — the same incremental maintenance the delegate gossip performs when
    /// a view line changes.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_filter(&mut self, index: usize, filter: Option<Filter>) {
        self.filters[index] = filter;
        let depth = self.space.depth();
        self.levels[depth][index] = match &self.filters[index] {
            Some(f) => InterestSummary::from_filter(f.clone()),
            None => InterestSummary::empty(),
        };
        // Recompute each ancestor from its (already up-to-date) children.
        let mut child_index = index;
        for level in (0..depth).rev() {
            let arity = self.space.arity(level + 1) as usize;
            let parent_index = child_index / arity;
            let mut summary = InterestSummary::empty();
            for sibling in 0..arity {
                summary.merge(&self.levels[level + 1][parent_index * arity + sibling]);
            }
            self.levels[level][parent_index] = summary;
            child_index = parent_index;
        }
    }

    /// The address space the table covers.
    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    /// The per-process filters backing the table (dense address order).
    pub fn filters(&self) -> &[Option<Filter>] {
        &self.filters
    }
}

/// The interest side of a membership provider: the attached summary table
/// plus the pristine per-process filters, so a leave can clear a process's
/// contribution and a rejoin can restore it (the collapsed equivalent of
/// re-gossiping the subscription up the delegate tree).
#[derive(Debug)]
pub(crate) struct InterestAnnex {
    summaries: SubtreeSummaries,
    original: Vec<Option<Filter>>,
}

impl InterestAnnex {
    pub(crate) fn new(summaries: SubtreeSummaries) -> Self {
        let original = summaries.filters().to_vec();
        Self { summaries, original }
    }

    pub(crate) fn allows(&self, prefix: &Prefix, event: &Event) -> bool {
        self.summaries.allows(prefix, event)
    }

    /// A leave (or swept crash) retracts the process's interests along its
    /// root path.
    pub(crate) fn on_departure(&mut self, index: usize) {
        self.summaries.set_filter(index, None);
    }

    /// A rejoin re-announces the process's original subscription.
    pub(crate) fn on_join(&mut self, index: usize) {
        self.summaries.set_filter(index, self.original[index].clone());
    }

    pub(crate) fn member_capacity(&self) -> u128 {
        self.summaries.space().capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcast_interest::Predicate;

    fn topic_filter(topics: &[i64]) -> Filter {
        Filter::new().with("topic", Predicate::one_of(topics.to_vec()))
    }

    fn topic_event(topic: i64) -> Event {
        Event::builder(1).int("topic", topic).build()
    }

    fn table_2x2(filters: Vec<Option<Filter>>) -> SubtreeSummaries {
        SubtreeSummaries::build(AddressSpace::regular(2, 2).unwrap(), filters)
    }

    #[test]
    fn bottom_up_merge_covers_every_subscriber() {
        // Processes 0.0, 0.1, 1.0, 1.1 with assorted topic subscriptions.
        let table = table_2x2(vec![
            Some(topic_filter(&[0])),
            Some(topic_filter(&[1, 2])),
            Some(topic_filter(&[3])),
            None,
        ]);
        for topic in [0, 1, 2, 3] {
            assert!(table.allows(&Prefix::root(), &topic_event(topic)));
        }
        // Topic 3 lives only under subtree 1.
        assert!(!table.allows(&Prefix::from_components(vec![0]), &topic_event(3)));
        assert!(table.allows(&Prefix::from_components(vec![1]), &topic_event(3)));
        // Leaf-level prefixes answer per process.
        assert!(table.allows(&Prefix::from_components(vec![0, 1]), &topic_event(2)));
        assert!(!table.allows(&Prefix::from_components(vec![0, 0]), &topic_event(2)));
        // The empty subscriber's subtree rejects everything.
        assert!(!table.allows(&Prefix::from_components(vec![1, 1]), &topic_event(0)));
        // Nobody anywhere subscribes to topic 9.
        assert!(!table.allows(&Prefix::root(), &topic_event(9)));
    }

    #[test]
    fn invalid_prefixes_never_cause_a_skip() {
        let table = table_2x2(vec![None, None, None, None]);
        // Out-of-space component: answer true (over-approximation default).
        assert!(table.allows(&Prefix::from_components(vec![7]), &topic_event(0)));
        assert!(table.summary_at(&Prefix::from_components(vec![7])).is_none());
    }

    #[test]
    fn set_filter_rebuilds_the_root_path() {
        let mut table = table_2x2(vec![
            Some(topic_filter(&[0])),
            None,
            None,
            None,
        ]);
        assert!(!table.allows(&Prefix::from_components(vec![1]), &topic_event(5)));
        // Process 1.0 (dense index 2) subscribes to topic 5.
        table.set_filter(2, Some(topic_filter(&[5])));
        assert!(table.allows(&Prefix::from_components(vec![1]), &topic_event(5)));
        assert!(table.allows(&Prefix::root(), &topic_event(5)));
        // It leaves again: the summaries along the path shrink back.
        table.set_filter(2, None);
        assert!(!table.allows(&Prefix::from_components(vec![1]), &topic_event(5)));
        assert!(!table.allows(&Prefix::root(), &topic_event(5)));
        // The untouched sibling path is unaffected.
        assert!(table.allows(&Prefix::from_components(vec![0]), &topic_event(0)));
    }

    #[test]
    fn incremental_updates_match_a_fresh_build() {
        let space = AddressSpace::regular(2, 3).unwrap();
        let mut incremental =
            SubtreeSummaries::build(space.clone(), vec![None; space.capacity() as usize]);
        let mut filters = vec![None; space.capacity() as usize];
        for (index, topics) in [(0usize, vec![1i64]), (4, vec![2, 3]), (8, vec![1, 4])] {
            filters[index] = Some(topic_filter(&topics));
            incremental.set_filter(index, filters[index].clone());
        }
        let fresh = SubtreeSummaries::build(space.clone(), filters);
        for level in 0..=space.depth() {
            for prefix in space.iter().map(|a| {
                Prefix::from_components(a.components()[..level].to_vec())
            }) {
                for topic in 0..6 {
                    assert_eq!(
                        incremental.allows(&prefix, &topic_event(topic)),
                        fresh.allows(&prefix, &topic_event(topic)),
                        "prefix {prefix:?} topic {topic}"
                    );
                }
            }
        }
    }
}
