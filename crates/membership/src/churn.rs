use std::collections::BTreeMap;

use pmcast_addr::{Address, Depth};
use pmcast_interest::{Filter, InterestSummary};

use crate::{ViewEntry, ViewTable};

/// A membership change observed or decided by a process.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MembershipEvent {
    /// A new process joined the group.
    Joined(Address),
    /// A process left the group gracefully.
    Left(Address),
    /// A process is suspected to have crashed (no contact within the
    /// failure timeout).
    Suspected(Address),
}

/// Tracks the last time each immediate neighbour was heard from, and flags
/// processes that exceeded the failure timeout (Section 2.3, "Leaving and
/// Failures": every process keeps track of the last time it was contacted by
/// its most immediate neighbour processes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureDetector {
    timeout: u64,
    last_heard: BTreeMap<Address, u64>,
}

impl FailureDetector {
    /// Creates a detector with the given timeout (in the same logical time
    /// unit as the `now` arguments, typically gossip periods).
    pub fn new(timeout: u64) -> Self {
        Self {
            timeout,
            last_heard: BTreeMap::new(),
        }
    }

    /// Starts monitoring a neighbour, treating `now` as its last contact.
    pub fn monitor(&mut self, neighbour: Address, now: u64) {
        self.last_heard.entry(neighbour).or_insert(now);
    }

    /// Stops monitoring a neighbour (it left or was excluded).
    pub fn forget(&mut self, neighbour: &Address) {
        self.last_heard.remove(neighbour);
    }

    /// Records a contact from a neighbour.
    pub fn record_contact(&mut self, neighbour: &Address, now: u64) {
        if let Some(last) = self.last_heard.get_mut(neighbour) {
            *last = (*last).max(now);
        }
    }

    /// Number of monitored neighbours.
    pub fn monitored_count(&self) -> usize {
        self.last_heard.len()
    }

    /// Returns the neighbours whose silence exceeds the timeout.
    pub fn suspected(&self, now: u64) -> Vec<Address> {
        self.last_heard
            .iter()
            .filter(|(_, &last)| now.saturating_sub(last) > self.timeout)
            .map(|(address, _)| address.clone())
            .collect()
    }
}

/// The per-process membership maintenance state: the local [`ViewTable`]
/// plus a failure detector over the immediate neighbours, applying joins,
/// leaves and suspicions locally (the loose coordination of Section 2.3 —
/// the updates then spread through gossip-pull anti-entropy).
#[derive(Debug, Clone, PartialEq)]
pub struct MembershipManager {
    table: ViewTable,
    r: usize,
    clock: u64,
    detector: FailureDetector,
}

impl MembershipManager {
    /// Creates a manager around an initial view table (obtained from the
    /// contact process at join time).
    pub fn new(table: ViewTable, r: usize, failure_timeout: u64) -> Self {
        let mut detector = FailureDetector::new(failure_timeout);
        let leaf_depth = table.depth();
        for entry in table.view(leaf_depth).entries() {
            for neighbour in entry.delegates() {
                if neighbour != table.owner() {
                    detector.monitor(neighbour.clone(), 0);
                }
            }
        }
        Self {
            table,
            r,
            clock: 0,
            detector,
        }
    }

    /// The local view table.
    pub fn table(&self) -> &ViewTable {
        &self.table
    }

    /// Mutable access to the local view table (e.g. for anti-entropy).
    pub fn table_mut(&mut self) -> &mut ViewTable {
        &mut self.table
    }

    /// The redundancy factor `R` used for delegate bookkeeping.
    pub fn redundancy(&self) -> usize {
        self.r
    }

    /// The current logical time of this process.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Advances logical time by one gossip period and returns the processes
    /// newly suspected of having crashed.
    pub fn tick(&mut self) -> Vec<MembershipEvent> {
        self.clock += 1;
        let suspected = self.detector.suspected(self.clock);
        suspected
            .into_iter()
            .map(MembershipEvent::Suspected)
            .collect()
    }

    /// Records that a neighbour contacted this process (any received gossip
    /// counts).
    pub fn record_contact(&mut self, neighbour: &Address) {
        self.detector.record_contact(neighbour, self.clock);
    }

    /// Applies a join: the new process is added to the views of every depth
    /// whose subgroup contains it, possibly displacing a delegate (the
    /// smallest-address rule is preserved locally).
    pub fn apply_join(&mut self, joiner: Address, filter: Filter) -> MembershipEvent {
        self.clock += 1;
        let owner = self.table.owner().clone();
        let depth = self.table.depth();
        let timestamp = self.clock;
        for view_depth in 1..=depth {
            let own_prefix = owner.prefix_of_depth(view_depth);
            if !joiner.has_prefix(&own_prefix) {
                continue;
            }
            let view = self.table.view_mut(view_depth);
            if view_depth == depth {
                // Leaf depth: one line per neighbour process.
                let already_known = view.entries().iter().any(|e| e.delegates().contains(&joiner));
                if !already_known {
                    view.entries_mut().push(ViewEntry::new(
                        joiner.as_prefix(),
                        vec![joiner.clone()],
                        InterestSummary::from_filter(filter.clone()),
                        1,
                        timestamp,
                    ));
                    view.entries_mut().sort_by_key(ViewEntry::infix);
                }
                self.detector.monitor(joiner.clone(), self.clock);
            } else {
                // Inner depth: the joiner belongs to exactly one subgroup line.
                let infix = joiner.components()[view_depth - 1];
                let r = self.r;
                if let Some(entry) = view
                    .entries_mut()
                    .iter_mut()
                    .find(|e| e.infix() == infix)
                {
                    let mut delegates = entry.delegates().to_vec();
                    if !delegates.contains(&joiner) {
                        delegates.push(joiner.clone());
                        delegates.sort();
                        delegates.truncate(r);
                    }
                    let summary = entry.summary().merged_with(&InterestSummary::from_filter(filter.clone()));
                    let count = entry.process_count() + 1;
                    entry.update(delegates, summary, count, timestamp);
                } else {
                    // First process of a brand new sibling subgroup.
                    let prefix = own_prefix.child(infix);
                    view.entries_mut().push(ViewEntry::new(
                        prefix,
                        vec![joiner.clone()],
                        InterestSummary::from_filter(filter.clone()),
                        1,
                        timestamp,
                    ));
                    view.entries_mut().sort_by_key(ViewEntry::infix);
                }
            }
        }
        MembershipEvent::Joined(joiner)
    }

    /// Applies a graceful leave or an exclusion after a crash suspicion.
    ///
    /// Process counts are decremented and the process is removed from every
    /// delegate list it appears in; the replacement delegates are learnt
    /// later through anti-entropy (a process cannot always determine them
    /// locally).
    pub fn apply_leave(&mut self, leaver: &Address) -> MembershipEvent {
        self.clock += 1;
        let timestamp = self.clock;
        let depth = self.table.depth();
        let owner = self.table.owner().clone();
        for view_depth in 1..=depth {
            let own_prefix = owner.prefix_of_depth(view_depth);
            if !leaver.has_prefix(&own_prefix) {
                continue;
            }
            let view = self.table.view_mut(view_depth);
            if view_depth == depth {
                view.entries_mut()
                    .retain(|entry| !entry.delegates().contains(leaver));
            } else {
                let infix = leaver.components()[view_depth - 1];
                let mut remove_line = false;
                if let Some(entry) = view
                    .entries_mut()
                    .iter_mut()
                    .find(|e| e.infix() == infix)
                {
                    let mut delegates = entry.delegates().to_vec();
                    delegates.retain(|d| d != leaver);
                    let count = entry.process_count().saturating_sub(1);
                    if count == 0 {
                        remove_line = true;
                    } else {
                        let summary = entry.summary().clone();
                        entry.update(delegates, summary, count, timestamp);
                    }
                }
                if remove_line {
                    view.entries_mut().retain(|e| e.infix() != infix);
                }
            }
        }
        self.detector.forget(leaver);
        MembershipEvent::Left(leaver.clone())
    }

    /// Returns the neighbours currently suspected of having crashed.
    pub fn suspected(&self) -> Vec<Address> {
        self.detector.suspected(self.clock)
    }

    /// Number of neighbours currently monitored by the failure detector.
    pub fn monitored_neighbours(&self) -> usize {
        self.detector.monitored_count()
    }

    /// The depth of the local tree view.
    pub fn depth(&self) -> Depth {
        self.table.depth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcast_addr::AddressSpace;
    use pmcast_interest::Predicate;

    use crate::GroupTree;

    fn manager() -> MembershipManager {
        let space = AddressSpace::regular(3, 3).unwrap();
        let tree = GroupTree::fully_populated(space, Filter::match_all());
        let table = tree.view_table_for(&"1.1.1".parse().unwrap(), 2).unwrap();
        MembershipManager::new(table, 2, 3)
    }

    #[test]
    fn construction_monitors_leaf_neighbours() {
        let m = manager();
        // Leaf subgroup 1.1.* has 3 members; the owner itself is not monitored.
        assert_eq!(m.monitored_neighbours(), 2);
        assert_eq!(m.depth(), 3);
        assert_eq!(m.redundancy(), 2);
        assert_eq!(m.now(), 0);
        assert!(m.suspected().is_empty());
    }

    #[test]
    fn failure_detection_after_silence() {
        let mut m = manager();
        let noisy: Address = "1.1.0".parse().unwrap();
        let mut suspected_events = Vec::new();
        for _ in 0..6 {
            m.record_contact(&noisy);
            suspected_events.extend(m.tick());
        }
        let suspected: Vec<Address> = suspected_events
            .iter()
            .filter_map(|e| match e {
                MembershipEvent::Suspected(a) => Some(a.clone()),
                _ => None,
            })
            .collect();
        // The silent neighbour 1.1.2 gets suspected, the noisy one does not.
        assert!(suspected.contains(&"1.1.2".parse().unwrap()));
        assert!(!suspected.contains(&noisy));
    }

    #[test]
    fn join_updates_all_relevant_depths() {
        let space = AddressSpace::regular(2, 4).unwrap();
        let mut tree = GroupTree::new(space);
        for raw in ["0.0", "0.1", "1.0", "2.0"] {
            tree.join(raw.parse().unwrap(), Filter::match_all()).unwrap();
        }
        let table = tree.view_table_for(&"0.1".parse().unwrap(), 2).unwrap();
        let mut m = MembershipManager::new(table, 2, 5);

        // A process joins the owner's own leaf subgroup.
        let event = m.apply_join("0.2".parse().unwrap(), Filter::new().with("b", Predicate::gt(0.0)));
        assert_eq!(event, MembershipEvent::Joined("0.2".parse().unwrap()));
        // Leaf view now has 3 neighbours, depth-1 line for subgroup 0 counts 3.
        assert_eq!(m.table().view(2).len(), 3);
        assert_eq!(m.table().view(1).entry(0).unwrap().process_count(), 3);
        assert_eq!(m.monitored_neighbours(), 2);

        // A process joins a sibling subgroup that did not exist yet.
        m.apply_join("3.3".parse().unwrap(), Filter::match_all());
        assert!(m.table().view(1).entry(3).is_some());
        assert_eq!(m.table().view(1).entry(3).unwrap().process_count(), 1);
        // The leaf view is untouched by a remote join.
        assert_eq!(m.table().view(2).len(), 3);
    }

    #[test]
    fn join_with_smaller_address_displaces_a_delegate() {
        let space = AddressSpace::regular(2, 4).unwrap();
        let mut tree = GroupTree::new(space);
        for raw in ["0.0", "1.2", "1.3"] {
            tree.join(raw.parse().unwrap(), Filter::match_all()).unwrap();
        }
        let table = tree.view_table_for(&"0.0".parse().unwrap(), 2).unwrap();
        let mut m = MembershipManager::new(table, 2, 5);
        // Subgroup 1's delegates are currently 1.2 and 1.3.
        let before: Vec<String> = m
            .table()
            .view(1)
            .entry(1)
            .unwrap()
            .delegates()
            .iter()
            .map(|a| a.to_string())
            .collect();
        assert_eq!(before, vec!["1.2", "1.3"]);
        // 1.0 joins: with R = 2 it displaces 1.3.
        m.apply_join("1.0".parse().unwrap(), Filter::match_all());
        let after: Vec<String> = m
            .table()
            .view(1)
            .entry(1)
            .unwrap()
            .delegates()
            .iter()
            .map(|a| a.to_string())
            .collect();
        assert_eq!(after, vec!["1.0", "1.2"]);
    }

    #[test]
    fn leave_decrements_and_removes_lines() {
        let mut m = manager();
        // A leaf neighbour leaves.
        m.apply_leave(&"1.1.0".parse().unwrap());
        assert_eq!(m.table().view(3).len(), 2);
        assert_eq!(m.monitored_neighbours(), 1);
        // A delegate of a sibling depth-1 subgroup leaves.
        let before = m.table().view(1).entry(0).unwrap().process_count();
        m.apply_leave(&"0.0.0".parse().unwrap());
        let entry = m.table().view(1).entry(0).unwrap();
        assert_eq!(entry.process_count(), before - 1);
        assert!(!entry
            .delegates()
            .contains(&"0.0.0".parse::<Address>().unwrap()));
    }

    #[test]
    fn leave_of_last_member_removes_the_subgroup_line() {
        let space = AddressSpace::regular(2, 3).unwrap();
        let mut tree = GroupTree::new(space);
        for raw in ["0.0", "1.0"] {
            tree.join(raw.parse().unwrap(), Filter::match_all()).unwrap();
        }
        let table = tree.view_table_for(&"0.0".parse().unwrap(), 2).unwrap();
        let mut m = MembershipManager::new(table, 2, 5);
        assert!(m.table().view(1).entry(1).is_some());
        m.apply_leave(&"1.0".parse().unwrap());
        assert!(m.table().view(1).entry(1).is_none());
    }

    #[test]
    fn clock_advances_with_every_membership_operation() {
        let mut m = manager();
        let t0 = m.now();
        m.apply_join("1.1.2".parse().unwrap(), Filter::match_all());
        m.apply_leave(&"1.1.2".parse().unwrap());
        m.tick();
        assert!(m.now() >= t0 + 3);
        // table_mut exposes the table for anti-entropy.
        let depth = m.depth();
        assert!(!m.table_mut().view_mut(depth).entries_mut().is_empty());
    }
}
