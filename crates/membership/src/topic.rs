//! Topic-based interest workloads: many overlapping audiences, one
//! hashconsed [`AssignmentOracle`] per **distinct** audience.
//!
//! The evaluation workloads of PR 3–9 exercise one matching rate per trial
//! — a single audience.  Production-style pub/sub traffic instead publishes
//! thousands of events over a few dozen topics, and the paper's Fig. 5
//! story (per-depth interest filtering keeps spurious deliveries low) only
//! gets interesting there.  [`TopicOracle`] models this axis: each process
//! subscribes to a set of topics, each event carries a topic attribute, and
//! interest queries route to the per-topic audience.  Audiences are interned
//! through [`Interner`], so topics with coinciding subscriber sets share one
//! oracle (and one interest bitmap) allocation, and
//! [`InterestOracle::audience_key`] exposes the topic index so downstream
//! audience caches never rescan the group for a repeated topic.

use std::sync::Arc;

use pmcast_addr::{Address, AddressSpace, Prefix};
use pmcast_interest::{AttributeValue, Event, Filter, InternStats, Interner, Predicate};

use crate::{AssignmentOracle, InterestOracle, SubtreeSummaries};

/// The event attribute carrying the topic index (an integer in
/// `0..topic_count`).
pub const TOPIC_ATTRIBUTE: &str = "topic";

/// Interest oracle for a multi-topic workload over a fully populated
/// regular tree: per-process topic subscriptions, per-topic interned
/// audiences.
#[derive(Debug)]
pub struct TopicOracle {
    space: AddressSpace,
    topic_count: usize,
    /// Process (dense index) → sorted subscribed topic indices.
    subscriptions: Vec<Vec<u32>>,
    /// Topic → hashconsed audience; overlapping topics with identical
    /// subscriber sets share one entry.
    audiences: Vec<Arc<AssignmentOracle>>,
    /// The hashcons table the audiences went through, kept for its hit/miss
    /// counters and the generation reclaim.
    interner: Interner<AssignmentOracle>,
}

impl TopicOracle {
    /// Builds the oracle from per-process subscription sets (dense address
    /// order, one entry per address of the space; topic indices must be
    /// below `topic_count`).
    ///
    /// # Panics
    ///
    /// Panics if `subscriptions` does not cover the space exactly or any
    /// topic index is out of range.
    pub fn new(
        space: AddressSpace,
        mut subscriptions: Vec<Vec<u32>>,
        topic_count: usize,
    ) -> Self {
        assert_eq!(
            subscriptions.len() as u128,
            space.capacity(),
            "one subscription set per address of the space"
        );
        for set in &mut subscriptions {
            set.sort_unstable();
            set.dedup();
            if let Some(&topic) = set.last() {
                assert!(
                    (topic as usize) < topic_count,
                    "topic index {topic} out of range for {topic_count} topics"
                );
            }
        }
        // Collect each topic's subscribers in one pass over the processes.
        let mut members: Vec<Vec<Address>> = vec![Vec::new(); topic_count];
        for (index, set) in subscriptions.iter().enumerate() {
            if set.is_empty() {
                continue;
            }
            let address = space.address_of_index(index as u128);
            for &topic in set {
                members[topic as usize].push(address.clone());
            }
        }
        let interner = Interner::new();
        let audiences = members
            .into_iter()
            .map(|addresses| {
                interner.intern(&AssignmentOracle::with_space(addresses, space.clone()))
            })
            .collect();
        Self {
            space,
            topic_count,
            subscriptions,
            audiences,
            interner,
        }
    }

    /// Number of topics.
    pub fn topic_count(&self) -> usize {
        self.topic_count
    }

    /// The address space the oracle covers.
    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    /// The topic carried by an event, if it is one of ours.
    pub fn topic_of(&self, event: &Event) -> Option<usize> {
        match event.get(TOPIC_ATTRIBUTE) {
            Some(&AttributeValue::Int(topic)) if topic >= 0 && (topic as usize) < self.topic_count => {
                Some(topic as usize)
            }
            _ => None,
        }
    }

    /// The (interned) audience of a topic.
    ///
    /// # Panics
    ///
    /// Panics if `topic` is out of range.
    pub fn audience(&self, topic: usize) -> &Arc<AssignmentOracle> {
        &self.audiences[topic]
    }

    /// The sorted topic subscriptions of the process at the given dense
    /// index.
    pub fn subscriptions_of(&self, index: usize) -> &[u32] {
        &self.subscriptions[index]
    }

    /// The subscription of each process as a content filter over the topic
    /// attribute (`None` for processes subscribed to nothing) — the input
    /// [`SubtreeSummaries::build`] wants.
    ///
    /// Single-attribute `one_of` filters union *exactly*, so the summaries
    /// aggregated up the tree stay precise until the disjunct bound widens
    /// them — and even then only ever over-approximate.
    pub fn filters(&self) -> Vec<Option<Filter>> {
        self.subscriptions
            .iter()
            .map(|set| {
                if set.is_empty() {
                    None
                } else {
                    Some(Filter::new().with(
                        TOPIC_ATTRIBUTE,
                        Predicate::one_of(set.iter().map(|&t| t as i64).collect::<Vec<_>>()),
                    ))
                }
            })
            .collect()
    }

    /// Builds the per-subtree aggregated-interest table for this workload.
    pub fn subtree_summaries(&self) -> SubtreeSummaries {
        SubtreeSummaries::build(self.space.clone(), self.filters())
    }

    /// Hashcons counters of the audience table: `misses` is the number of
    /// **distinct** audiences ever built, `hits` the lookups served without
    /// an allocation.
    pub fn intern_stats(&self) -> InternStats {
        self.interner.stats()
    }
}

impl InterestOracle for TopicOracle {
    fn is_interested(&self, address: &Address, event: &Event) -> bool {
        match self.topic_of(event) {
            Some(topic) => self.audiences[topic].is_interested(address, event),
            None => false,
        }
    }

    fn interested_count_under(&self, prefix: &Prefix, event: &Event) -> usize {
        match self.topic_of(event) {
            Some(topic) => self.audiences[topic].interested_count_under(prefix, event),
            None => 0,
        }
    }

    fn subtree_interested(&self, prefix: &Prefix, event: &Event) -> bool {
        match self.topic_of(event) {
            Some(topic) => self.audiences[topic].subtree_interested(prefix, event),
            None => false,
        }
    }

    /// Same topic ⇒ same audience, so the topic index is the cache key.
    fn audience_key(&self, event: &Event) -> Option<u64> {
        self.topic_of(event).map(|topic| topic as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topic_event(topic: i64) -> Event {
        Event::builder(1).int(TOPIC_ATTRIBUTE, topic).build()
    }

    fn oracle_2x2(subs: [&[u32]; 4], topics: usize) -> TopicOracle {
        TopicOracle::new(
            AddressSpace::regular(2, 2).unwrap(),
            subs.iter().map(|s| s.to_vec()).collect(),
            topics,
        )
    }

    #[test]
    fn interest_routes_to_the_topic_audience() {
        let oracle = oracle_2x2([&[0], &[0, 1], &[1], &[]], 2);
        let e0 = topic_event(0);
        let e1 = topic_event(1);
        assert!(oracle.is_interested(&"0.0".parse().unwrap(), &e0));
        assert!(!oracle.is_interested(&"0.0".parse().unwrap(), &e1));
        assert!(oracle.is_interested(&"1.0".parse().unwrap(), &e1));
        assert!(!oracle.is_interested(&"1.1".parse().unwrap(), &e0));
        assert_eq!(oracle.interested_total(&e0), 2);
        assert_eq!(oracle.interested_total(&e1), 2);
        assert!(oracle.subtree_interested(&Prefix::from_components(vec![0]), &e0));
        assert!(!oracle.subtree_interested(&Prefix::from_components(vec![1]), &e0));
        assert_eq!(oracle.audience_key(&e0), Some(0));
        assert_eq!(oracle.audience_key(&e1), Some(1));
    }

    #[test]
    fn events_without_a_topic_interest_nobody() {
        let oracle = oracle_2x2([&[0], &[0], &[0], &[0]], 1);
        let untopical = Event::builder(9).int("b", 1).build();
        assert!(!oracle.is_interested(&"0.0".parse().unwrap(), &untopical));
        assert_eq!(oracle.interested_total(&untopical), 0);
        assert_eq!(oracle.audience_key(&untopical), None);
        // Out-of-range topics too.
        assert_eq!(oracle.audience_key(&topic_event(7)), None);
        assert_eq!(oracle.audience_key(&topic_event(-3)), None);
    }

    #[test]
    fn coinciding_audiences_share_one_allocation() {
        // Topics 0 and 2 have identical subscriber sets; topic 1 differs.
        let oracle = oracle_2x2([&[0, 2], &[0, 1, 2], &[1], &[]], 3);
        assert!(Arc::ptr_eq(oracle.audience(0), oracle.audience(2)));
        assert!(!Arc::ptr_eq(oracle.audience(0), oracle.audience(1)));
        let stats = oracle.intern_stats();
        assert_eq!(stats.misses, 2); // two distinct audiences, three topics
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn summaries_cover_exactly_the_subscribed_topics() {
        let oracle = oracle_2x2([&[0], &[1], &[2], &[]], 4);
        let summaries = oracle.subtree_summaries();
        for topic in 0..3 {
            assert!(summaries.allows(&Prefix::root(), &topic_event(topic)));
        }
        assert!(!summaries.allows(&Prefix::root(), &topic_event(3)));
        assert!(!summaries.allows(&Prefix::from_components(vec![1]), &topic_event(0)));
        assert!(summaries.allows(&Prefix::from_components(vec![1]), &topic_event(2)));
    }

    #[test]
    fn summary_never_rejects_an_interested_subtree() {
        // The end-to-end over-approximation check, small scale: for every
        // process and every topic it subscribes to, every prefix on its
        // root path must allow the event.
        let space = AddressSpace::regular(3, 3).unwrap();
        let subs: Vec<Vec<u32>> = (0..space.capacity() as usize)
            .map(|i| vec![(i % 5) as u32, ((i * 7) % 5) as u32])
            .collect();
        let oracle = TopicOracle::new(space.clone(), subs, 5);
        let summaries = oracle.subtree_summaries();
        for (index, address) in space.iter().enumerate() {
            for &topic in oracle.subscriptions_of(index) {
                let event = topic_event(topic as i64);
                for level in 0..=space.depth() {
                    let prefix =
                        Prefix::from_components(address.components()[..level].to_vec());
                    assert!(
                        summaries.allows(&prefix, &event),
                        "false negative at {prefix:?} for topic {topic}"
                    );
                }
            }
        }
    }
}
