use pmcast_addr::Address;

/// A deterministic delegate-election policy.
///
/// Delegates must be chosen from a deterministic characteristic, since all
/// processes of a subgroup must agree on the same delegates *without any
/// explicit agreement protocol* (Section 2.3).  The paper elects the
/// processes with the smallest addresses; alternative policies may weigh
/// resources (computing power, memory) or the nature of interests to reduce
/// pure forwarding.
///
/// Implementations must be pure functions of their inputs: electing twice
/// from the same candidate set yields the same delegates.
pub trait DelegatePolicy {
    /// Selects up to `r` delegates from the candidate set.
    ///
    /// `candidates` is sorted by address in increasing order and free of
    /// duplicates; the returned vector preserves that order and contains at
    /// most `r` addresses drawn from `candidates`.
    fn elect(&self, candidates: &[Address], r: usize) -> Vec<Address>;
}

/// The paper's default policy: the `r` smallest addresses become delegates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmallestAddressPolicy;

impl DelegatePolicy for SmallestAddressPolicy {
    fn elect(&self, candidates: &[Address], r: usize) -> Vec<Address> {
        candidates.iter().take(r).cloned().collect()
    }
}

/// An alternative policy sketched in Section 2.3: weigh candidates by an
/// externally provided capacity score (computing power, memory, …) and pick
/// the strongest, breaking ties by smallest address.
///
/// The capacity of a process is obtained through a deterministic scoring
/// function so that all group members still agree on the outcome without
/// coordination.
pub struct CapacityWeightedPolicy<F> {
    score: F,
}

impl<F> std::fmt::Debug for CapacityWeightedPolicy<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CapacityWeightedPolicy").finish_non_exhaustive()
    }
}

impl<F> CapacityWeightedPolicy<F>
where
    F: Fn(&Address) -> u64,
{
    /// Creates a policy using the given deterministic capacity score.
    pub fn new(score: F) -> Self {
        Self { score }
    }
}

impl<F> DelegatePolicy for CapacityWeightedPolicy<F>
where
    F: Fn(&Address) -> u64,
{
    fn elect(&self, candidates: &[Address], r: usize) -> Vec<Address> {
        let mut scored: Vec<(&Address, u64)> =
            candidates.iter().map(|a| (a, (self.score)(a))).collect();
        // Highest capacity first, ties broken by the smaller address; the
        // input order (ascending addresses) makes the sort stable w.r.t. it.
        scored.sort_by(|(a_addr, a_score), (b_addr, b_score)| {
            b_score.cmp(a_score).then_with(|| a_addr.cmp(b_addr))
        });
        let mut elected: Vec<Address> = scored.into_iter().take(r).map(|(a, _)| a.clone()).collect();
        elected.sort();
        elected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addresses(specs: &[&str]) -> Vec<Address> {
        let mut v: Vec<Address> = specs.iter().map(|s| s.parse().unwrap()).collect();
        v.sort();
        v
    }

    #[test]
    fn smallest_address_policy_takes_prefix() {
        let candidates = addresses(&["0.3", "0.1", "1.0", "2.2"]);
        let policy = SmallestAddressPolicy;
        let elected = policy.elect(&candidates, 2);
        assert_eq!(elected.len(), 2);
        assert_eq!(elected[0].to_string(), "0.1");
        assert_eq!(elected[1].to_string(), "0.3");
        // Fewer candidates than r.
        assert_eq!(policy.elect(&candidates, 10).len(), 4);
        // Zero delegates requested.
        assert!(policy.elect(&candidates, 0).is_empty());
    }

    #[test]
    fn smallest_address_policy_is_deterministic() {
        let candidates = addresses(&["5.5", "1.2", "3.4", "0.9"]);
        let policy = SmallestAddressPolicy;
        assert_eq!(policy.elect(&candidates, 3), policy.elect(&candidates, 3));
    }

    #[test]
    fn capacity_weighted_policy_prefers_high_scores() {
        let candidates = addresses(&["0.1", "0.2", "0.3", "0.4"]);
        // Score is the last component: 0.4 and 0.3 are the strongest.
        let policy = CapacityWeightedPolicy::new(|a: &Address| a.last_component() as u64);
        let elected = policy.elect(&candidates, 2);
        let rendered: Vec<String> = elected.iter().map(|a| a.to_string()).collect();
        assert_eq!(rendered, vec!["0.3", "0.4"]);
    }

    #[test]
    fn capacity_weighted_policy_breaks_ties_by_address() {
        let candidates = addresses(&["0.1", "0.2", "0.3"]);
        let policy = CapacityWeightedPolicy::new(|_: &Address| 7);
        let elected = policy.elect(&candidates, 2);
        let rendered: Vec<String> = elected.iter().map(|a| a.to_string()).collect();
        assert_eq!(rendered, vec!["0.1", "0.2"]);
    }

    #[test]
    fn capacity_weighted_policy_debug_is_nonempty() {
        let policy = CapacityWeightedPolicy::new(|_: &Address| 1);
        assert!(!format!("{policy:?}").is_empty());
    }
}
