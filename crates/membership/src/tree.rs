use std::collections::{BTreeMap, BTreeSet};

use pmcast_addr::{Address, AddressSpace, Component, Prefix};
use pmcast_interest::{Event, Filter, Interest, InterestSummary};

use crate::{
    DelegatePolicy, MembershipError, SmallestAddressPolicy, TreeTopology, ViewTable,
};

/// An explicit group membership: the set of populated addresses together
/// with each process's subscription.
///
/// `GroupTree` is the reference (oracle-side) implementation of the tree of
/// Section 2: it supports arbitrary populated subsets of the address space,
/// joins and leaves, per-subtree process counts, regrouped interest
/// summaries and per-process view-table construction (Figure 2).  It is the
/// structure a simulation or a bootstrap service would hold; individual
/// processes hold only their [`ViewTable`].
///
/// # Example
///
/// ```rust
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use pmcast_addr::{AddressSpace, Prefix};
/// use pmcast_interest::{Filter, Predicate};
/// use pmcast_membership::{GroupTree, TreeTopology};
///
/// let space = AddressSpace::regular(2, 8)?;
/// let mut tree = GroupTree::new(space);
/// tree.join("0.1".parse()?, Filter::new().with("b", Predicate::gt(0.0)))?;
/// tree.join("0.5".parse()?, Filter::new().with("b", Predicate::lt(0.0)))?;
/// tree.join("3.2".parse()?, Filter::match_all())?;
///
/// assert_eq!(tree.member_count(), 3);
/// assert_eq!(tree.subtree_size(&Prefix::from_components(vec![0])), 2);
/// assert_eq!(tree.populated_children(&Prefix::root()), vec![0, 3]);
/// # Ok(())
/// # }
/// ```
pub struct GroupTree {
    space: AddressSpace,
    members: BTreeMap<Address, Filter>,
    /// Number of processes below every populated prefix (including the root
    /// and full addresses).
    subtree_counts: BTreeMap<Prefix, usize>,
    /// Populated child components of every populated internal prefix.
    children: BTreeMap<Prefix, BTreeSet<Component>>,
    policy: Box<dyn DelegatePolicy + Send + Sync>,
}

impl std::fmt::Debug for GroupTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupTree")
            .field("space", &self.space)
            .field("member_count", &self.members.len())
            .finish_non_exhaustive()
    }
}

impl GroupTree {
    /// Creates an empty group over the given address space, using the
    /// paper's smallest-address delegate election.
    pub fn new(space: AddressSpace) -> Self {
        Self::with_policy(space, SmallestAddressPolicy)
    }

    /// Creates an empty group with a custom delegate-election policy.
    pub fn with_policy<P>(space: AddressSpace, policy: P) -> Self
    where
        P: DelegatePolicy + Send + Sync + 'static,
    {
        Self {
            space,
            members: BTreeMap::new(),
            subtree_counts: BTreeMap::new(),
            children: BTreeMap::new(),
            policy: Box::new(policy),
        }
    }

    /// Creates a fully populated group where every process uses the given
    /// subscription.  Intended for tests and examples over small spaces.
    pub fn fully_populated(space: AddressSpace, filter: Filter) -> Self {
        let mut tree = Self::new(space.clone());
        for address in space.iter() {
            tree.join(address, filter.clone())
                .expect("addresses from the space are valid and unique");
        }
        tree
    }

    /// Adds a process with its subscription.
    ///
    /// # Errors
    ///
    /// Returns an error if the address is invalid for the space or already a
    /// member.
    pub fn join(&mut self, address: Address, filter: Filter) -> Result<(), MembershipError> {
        self.space.validate(&address)?;
        if self.members.contains_key(&address) {
            return Err(MembershipError::AlreadyMember(address));
        }
        // Count the process under every one of its prefixes (from the root
        // down to its full address) and record the populated child links.
        for len in 0..=self.space.depth() {
            let prefix = Prefix::from_components(address.components()[..len].to_vec());
            *self.subtree_counts.entry(prefix.clone()).or_insert(0) += 1;
            if len < self.space.depth() {
                self.children
                    .entry(prefix)
                    .or_default()
                    .insert(address.components()[len]);
            }
        }
        self.members.insert(address, filter);
        Ok(())
    }

    /// Removes a process (graceful leave or crash exclusion).
    ///
    /// # Errors
    ///
    /// Returns an error if the address is not a member.
    pub fn leave(&mut self, address: &Address) -> Result<Filter, MembershipError> {
        let filter = self
            .members
            .remove(address)
            .ok_or_else(|| MembershipError::NotAMember(address.clone()))?;
        // Decrement the process count of every prefix of the address.
        for len in 0..=self.space.depth() {
            let prefix = Prefix::from_components(address.components()[..len].to_vec());
            if let Some(count) = self.subtree_counts.get_mut(&prefix) {
                *count -= 1;
                if *count == 0 {
                    self.subtree_counts.remove(&prefix);
                }
            }
        }
        // Remove child links whose subtree emptied out.
        for len in 0..self.space.depth() {
            let parent = Prefix::from_components(address.components()[..len].to_vec());
            let child = parent.child(address.components()[len]);
            if !self.subtree_counts.contains_key(&child) {
                if let Some(set) = self.children.get_mut(&parent) {
                    set.remove(&address.components()[len]);
                    if set.is_empty() {
                        self.children.remove(&parent);
                    }
                }
            }
        }
        Ok(filter)
    }

    /// Replaces a member's subscription, returning the previous one.
    ///
    /// # Errors
    ///
    /// Returns an error if the address is not a member.
    pub fn resubscribe(
        &mut self,
        address: &Address,
        filter: Filter,
    ) -> Result<Filter, MembershipError> {
        match self.members.get_mut(address) {
            Some(existing) => Ok(std::mem::replace(existing, filter)),
            None => Err(MembershipError::NotAMember(address.clone())),
        }
    }

    /// Returns a member's subscription.
    pub fn subscription(&self, address: &Address) -> Option<&Filter> {
        self.members.get(address)
    }

    /// Iterates over `(address, subscription)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (&Address, &Filter)> {
        self.members.iter()
    }

    /// The regrouped interests of the whole subtree below the prefix
    /// (Section 2.3: interest regrouping).
    pub fn subtree_summary(&self, prefix: &Prefix) -> InterestSummary {
        InterestSummary::from_filters(
            self.members_range(prefix).map(|(_, filter)| filter.clone()),
        )
    }

    /// Number of processes below the prefix interested in the given event,
    /// evaluated exactly against the individual subscriptions.
    pub fn interested_count_under(&self, prefix: &Prefix, event: &Event) -> usize {
        self.members_range(prefix)
            .filter(|(_, filter)| filter.matches(event))
            .count()
    }

    /// The processes below the prefix interested in the given event.
    pub fn interested_under(&self, prefix: &Prefix, event: &Event) -> Vec<Address> {
        self.members_range(prefix)
            .filter(|(_, filter)| filter.matches(event))
            .map(|(address, _)| address.clone())
            .collect()
    }

    /// Builds the per-depth view table of a member process (Figure 2),
    /// including delegate lists, regrouped interests and process counts.
    ///
    /// # Errors
    ///
    /// Returns an error if the address is not a member.
    pub fn view_table_for(
        &self,
        address: &Address,
        r: usize,
    ) -> Result<ViewTable, MembershipError> {
        if !self.members.contains_key(address) {
            return Err(MembershipError::NotAMember(address.clone()));
        }
        Ok(ViewTable::build(self, address, r))
    }

    /// Iterates over the members below a prefix without allocating.
    fn members_range(&self, prefix: &Prefix) -> impl Iterator<Item = (&Address, &Filter)> {
        // Addresses sharing a prefix are contiguous in the ordered map; a
        // range scan from the first possible address under the prefix until
        // the prefix no longer matches enumerates exactly the subtree.
        let prefix = prefix.clone();
        self.members
            .range(std::ops::RangeFrom {
                start: lower_bound_address(&prefix, &self.space),
            })
            .take_while(move |(address, _)| address.has_prefix(&prefix))
    }

    /// Returns the delegate-election policy in use.
    pub fn policy(&self) -> &(dyn DelegatePolicy + Send + Sync) {
        self.policy.as_ref()
    }
}

/// Smallest possible address under a prefix (used as a range scan lower
/// bound).  For the root prefix this is the all-zero address.
fn lower_bound_address(prefix: &Prefix, space: &AddressSpace) -> Address {
    let mut components = prefix.components().to_vec();
    components.resize(space.depth(), 0);
    Address::new(components)
}

impl TreeTopology for GroupTree {
    fn space(&self) -> &AddressSpace {
        &self.space
    }

    fn member_count(&self) -> usize {
        self.members.len()
    }

    fn contains(&self, address: &Address) -> bool {
        self.members.contains_key(address)
    }

    fn members(&self) -> Vec<Address> {
        self.members.keys().cloned().collect()
    }

    fn populated_children(&self, prefix: &Prefix) -> Vec<Component> {
        self.children
            .get(prefix)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default()
    }

    fn subtree_size(&self, prefix: &Prefix) -> usize {
        if prefix.is_empty() {
            return self.members.len();
        }
        self.subtree_counts.get(prefix).copied().unwrap_or(0)
    }

    fn delegates(&self, prefix: &Prefix, r: usize) -> Vec<Address> {
        let candidates: Vec<Address> = self
            .members_range(prefix)
            .map(|(address, _)| address.clone())
            .collect();
        self.policy.elect(&candidates, r)
    }

    fn members_under(&self, prefix: &Prefix) -> Vec<Address> {
        self.members_range(prefix)
            .map(|(address, _)| address.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcast_interest::Predicate;

    fn space() -> AddressSpace {
        AddressSpace::regular(3, 4).unwrap()
    }

    fn populated_tree() -> GroupTree {
        GroupTree::fully_populated(space(), Filter::match_all())
    }

    #[test]
    fn join_and_leave_maintain_counts() {
        let mut tree = GroupTree::new(space());
        assert_eq!(tree.member_count(), 0);
        tree.join("0.1.2".parse().unwrap(), Filter::match_all()).unwrap();
        tree.join("0.1.3".parse().unwrap(), Filter::match_all()).unwrap();
        tree.join("2.0.0".parse().unwrap(), Filter::match_all()).unwrap();
        assert_eq!(tree.member_count(), 3);
        assert_eq!(tree.subtree_size(&Prefix::from_components(vec![0])), 2);
        assert_eq!(tree.subtree_size(&Prefix::from_components(vec![0, 1])), 2);
        assert_eq!(tree.subtree_size(&Prefix::from_components(vec![2])), 1);
        assert_eq!(tree.subtree_size(&Prefix::from_components(vec![3])), 0);
        assert_eq!(tree.populated_children(&Prefix::root()), vec![0, 2]);

        tree.leave(&"0.1.3".parse().unwrap()).unwrap();
        assert_eq!(tree.member_count(), 2);
        assert_eq!(tree.subtree_size(&Prefix::from_components(vec![0, 1])), 1);
        tree.leave(&"0.1.2".parse().unwrap()).unwrap();
        assert_eq!(tree.subtree_size(&Prefix::from_components(vec![0])), 0);
        assert_eq!(tree.populated_children(&Prefix::root()), vec![2]);
    }

    #[test]
    fn join_rejects_duplicates_and_invalid_addresses() {
        let mut tree = GroupTree::new(space());
        let address: Address = "1.1.1".parse().unwrap();
        tree.join(address.clone(), Filter::match_all()).unwrap();
        assert_eq!(
            tree.join(address.clone(), Filter::match_all()),
            Err(MembershipError::AlreadyMember(address))
        );
        assert!(matches!(
            tree.join("9.9.9".parse().unwrap(), Filter::match_all()),
            Err(MembershipError::InvalidAddress(_))
        ));
        assert!(matches!(
            tree.join("1.1".parse().unwrap(), Filter::match_all()),
            Err(MembershipError::InvalidAddress(_))
        ));
    }

    #[test]
    fn leave_rejects_non_members() {
        let mut tree = GroupTree::new(space());
        assert!(matches!(
            tree.leave(&"1.1.1".parse().unwrap()),
            Err(MembershipError::NotAMember(_))
        ));
    }

    #[test]
    fn delegates_are_deterministic_smallest() {
        let tree = populated_tree();
        let delegates = tree.delegates(&Prefix::from_components(vec![1]), 3);
        let rendered: Vec<String> = delegates.iter().map(|a| a.to_string()).collect();
        assert_eq!(rendered, vec!["1.0.0", "1.0.1", "1.0.2"]);
    }

    #[test]
    fn explicit_and_implicit_trees_agree_when_fully_populated() {
        let explicit = populated_tree();
        let implicit = crate::ImplicitRegularTree::new(space());
        assert_eq!(explicit.member_count(), implicit.member_count());
        for prefix in [
            Prefix::root(),
            Prefix::from_components(vec![2]),
            Prefix::from_components(vec![3, 1]),
        ] {
            assert_eq!(explicit.subtree_size(&prefix), implicit.subtree_size(&prefix));
            assert_eq!(
                explicit.populated_children(&prefix),
                implicit.populated_children(&prefix)
            );
            assert_eq!(explicit.delegates(&prefix, 3), implicit.delegates(&prefix, 3));
        }
        let address: Address = "2.3.1".parse().unwrap();
        assert_eq!(
            explicit.view_of(&address, 2, 3),
            implicit.view_of(&address, 2, 3)
        );
        assert_eq!(
            explicit.knowledge_size(&address, 3),
            implicit.knowledge_size(&address, 3)
        );
    }

    #[test]
    fn subscriptions_and_interest_queries() {
        let mut tree = GroupTree::new(space());
        tree.join(
            "0.0.0".parse().unwrap(),
            Filter::new().with("b", Predicate::gt(5.0)),
        )
        .unwrap();
        tree.join(
            "0.1.0".parse().unwrap(),
            Filter::new().with("b", Predicate::lt(0.0)),
        )
        .unwrap();
        tree.join(
            "3.0.0".parse().unwrap(),
            Filter::new().with("e", Predicate::eq_str("Bob")),
        )
        .unwrap();

        let hot = Event::builder(1).int("b", 10).build();
        let cold = Event::builder(2).int("b", -3).build();
        let bob = Event::builder(3).str("e", "Bob").build();

        let zero_subtree = Prefix::from_components(vec![0]);
        assert_eq!(tree.interested_count_under(&zero_subtree, &hot), 1);
        assert_eq!(tree.interested_count_under(&zero_subtree, &cold), 1);
        assert_eq!(tree.interested_count_under(&zero_subtree, &bob), 0);
        assert_eq!(tree.interested_count_under(&Prefix::root(), &bob), 1);
        assert_eq!(
            tree.interested_under(&Prefix::root(), &hot),
            vec!["0.0.0".parse::<Address>().unwrap()]
        );

        // The regrouped summary of subtree 0 accepts both hot and cold.
        let summary = tree.subtree_summary(&zero_subtree);
        assert!(summary.matches(&hot));
        assert!(summary.matches(&cold));
        assert!(!summary.matches(&bob));
    }

    #[test]
    fn resubscribe_changes_matching() {
        let mut tree = GroupTree::new(space());
        let address: Address = "1.2.3".parse().unwrap();
        tree.join(address.clone(), Filter::new().with("b", Predicate::gt(0.0)))
            .unwrap();
        let event = Event::builder(1).int("b", -1).build();
        assert_eq!(tree.interested_count_under(&Prefix::root(), &event), 0);
        let previous = tree
            .resubscribe(&address, Filter::new().with("b", Predicate::lt(0.0)))
            .unwrap();
        assert_eq!(previous, Filter::new().with("b", Predicate::gt(0.0)));
        assert_eq!(tree.interested_count_under(&Prefix::root(), &event), 1);
        assert!(tree
            .resubscribe(&"0.0.0".parse().unwrap(), Filter::match_all())
            .is_err());
    }

    #[test]
    fn view_table_for_requires_membership() {
        let tree = populated_tree();
        assert!(tree.view_table_for(&"0.0.0".parse().unwrap(), 3).is_ok());
        let mut partial = GroupTree::new(space());
        partial
            .join("0.0.0".parse().unwrap(), Filter::match_all())
            .unwrap();
        assert!(partial.view_table_for(&"1.1.1".parse().unwrap(), 3).is_err());
    }

    #[test]
    fn custom_policy_is_used() {
        // Prefer the *largest* addresses by scoring them by their index.
        let policy = crate::CapacityWeightedPolicy::new(|a: &Address| {
            a.components().iter().map(|&c| c as u64).sum()
        });
        let mut tree = GroupTree::with_policy(space(), policy);
        for raw in ["0.0.0", "0.0.1", "0.3.3"] {
            tree.join(raw.parse().unwrap(), Filter::match_all()).unwrap();
        }
        let delegates = tree.delegates(&Prefix::from_components(vec![0]), 1);
        assert_eq!(delegates[0].to_string(), "0.3.3");
        assert!(!format!("{tree:?}").is_empty());
    }

    #[test]
    fn members_iteration_is_sorted() {
        let tree = populated_tree();
        let members = tree.members();
        let mut sorted = members.clone();
        sorted.sort();
        assert_eq!(members, sorted);
        assert_eq!(tree.iter().count(), 64);
    }
}
