//! Lazily computed delegate views: the seat rule as arithmetic, not tables.
//!
//! [`DelegateView`](crate::DelegateView) materializes every process's slot
//! table up front — `O(n·a·d·slots)` memory and build time, which is what
//! keeps the delegate column of `scale_sweep` off the million-process row.
//! [`LazyDelegateView`] answers the *same* seat questions without building
//! anything: the converged delegate table is a pure function of the tree
//! shape and the alive set (each slot group holds the smallest alive members
//! of its subgroup, the deterministic smallest-address election of
//! Section 2), so `knows_at_depth` can simply *count* alive predecessors
//! inside the subgroup — two binary searches over a sorted alive list —
//! and `peer_at` can enumerate a single process's seats on demand.
//!
//! The provider models the idealized instantly-converged hierarchy:
//! lifecycle observations re-elect immediately, `round_elapsed` is a no-op,
//! and — crucially for the golden contract — **no randomness is consumed
//! anywhere** (rule: membership alternatives must be stream-neutral on the
//! workload and network streams, and this one does not even need its own
//! stream).  At bootstrap it is seat-for-seat identical to
//! [`DelegateView::bootstrap_sparse`](crate::DelegateView::bootstrap_sparse);
//! the equivalence is asserted over every `(process, depth, peer)` triple in
//! this module's tests.

use std::sync::RwLock;

use crate::delegate::TreeShape;
use crate::MembershipView;

/// Alive bookkeeping behind one lock: a flag per address for `O(1)`
/// membership checks plus the sorted alive indices for `O(log n)` rank
/// queries.
#[derive(Debug)]
struct LazyState {
    alive: Vec<bool>,
    /// Sorted dense indices of the alive processes.
    sorted: Vec<u32>,
}

impl LazyState {
    /// Number of alive processes in `[base, end)`, excluding `of`.
    fn alive_before(&self, base: usize, end: usize, of: usize) -> usize {
        let lo = self.sorted.partition_point(|&x| (x as usize) < base);
        let hi = self.sorted.partition_point(|&x| (x as usize) < end);
        let mut count = hi - lo;
        if base <= of && of < end && self.alive[of] {
            count -= 1;
        }
        count
    }

    /// The first `capacity` alive members of `[base, base + size)` excluding
    /// `of`, ascending — the seated delegates of one slot group.
    fn seats(&self, base: usize, size: usize, of: usize, capacity: usize) -> Vec<u32> {
        let lo = self.sorted.partition_point(|&x| (x as usize) < base);
        let hi = self.sorted.partition_point(|&x| (x as usize) < base + size);
        self.sorted[lo..hi]
            .iter()
            .filter(|&&m| m as usize != of)
            .take(capacity)
            .copied()
            .collect()
    }

    /// The next alive index strictly after `of`, cyclically (the pinned ring
    /// contact; falls back to the plain successor when nobody else lives).
    fn next_alive(&self, of: usize) -> u32 {
        let n = self.alive.len();
        (1..n)
            .map(|offset| (of + offset) % n)
            .find(|&j| self.alive[j])
            .unwrap_or((of + 1) % n.max(1)) as u32
    }
}

/// A delegate-tree membership provider whose tables are computed, never
/// stored: `O(live)` memory regardless of `n`, constant-time bootstrap.
///
/// Semantically this is the fixed point the gossiping
/// [`DelegateView`](crate::DelegateView) converges to — suitable for the
/// sparse simulation core's scale sweeps, where per-round gossip dynamics
/// are not under test but the *seating rule* (and therefore which peers a
/// depth-`l` gossip can reach) is.
#[derive(Debug)]
pub struct LazyDelegateView {
    shape: TreeShape,
    state: RwLock<LazyState>,
}

impl LazyDelegateView {
    /// Creates the provider over a regular `arity^depth` tree with `slots`
    /// delegates per inner slot group.  `occupied` carries the initial
    /// population (`None` = fully populated), exactly like
    /// [`DelegateView::bootstrap_sparse`](crate::DelegateView::bootstrap_sparse)
    /// — but nothing is built here beyond the alive bookkeeping.
    ///
    /// # Panics
    ///
    /// Panics if `arity`, `depth` or `slots` is zero, or if an occupancy
    /// slice does not cover all `arity^depth` addresses.
    pub fn new(arity: u32, depth: usize, slots: usize, occupied: Option<&[bool]>) -> Self {
        assert!(arity > 0, "arity must be positive");
        assert!(depth > 0, "depth must be positive");
        assert!(slots > 0, "delegate slots must be positive");
        let shape = TreeShape::new(arity as usize, depth, slots);
        let n = shape.member_count();
        let alive = match occupied {
            Some(flags) => {
                assert_eq!(flags.len(), n, "occupancy flags must cover all {n} addresses");
                flags.to_vec()
            }
            None => vec![true; n],
        };
        let sorted = alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| i as u32)
            .collect();
        Self {
            shape,
            state: RwLock::new(LazyState { alive, sorted }),
        }
    }

    /// Capacity of one depth-`l` slot group (inner groups hold `slots`
    /// delegates, the leaf level one sibling per component).
    fn group_capacity(&self, l: usize) -> usize {
        if l == self.shape.depth {
            1
        } else {
            self.shape.slots
        }
    }

    /// Enumerates `of`'s flat peer set in the dense provider's discovery
    /// order: every seated delegate (levels ascending, sibling components
    /// ascending, members ascending), deduplicated, then the ring contact.
    /// `O(a·d·slots)` per call — intended for small-group inspection, not
    /// the hot path (the protocol queries [`MembershipView::knows_at_depth`]
    /// instead).
    fn flat_of(&self, of: usize) -> Vec<u32> {
        let state = self.state.read().expect("lazy delegate lock poisoned");
        if !state.alive[of] {
            return Vec::new();
        }
        let mut known: Vec<u32> = Vec::new();
        for l in 1..=self.shape.depth {
            let capacity = self.group_capacity(l);
            for g in 0..self.shape.arity {
                let base = self.shape.subgroup_base(of, l, g);
                let size = self.shape.subgroup_size(l);
                for member in state.seats(base, size, of, capacity) {
                    if !known.contains(&member) {
                        known.push(member);
                    }
                }
            }
        }
        if state.sorted.len() > 1 {
            let contact = state.next_alive(of);
            if !known.contains(&contact) {
                known.push(contact);
            }
        }
        known
    }
}

impl MembershipView for LazyDelegateView {
    fn estimated_size(&self) -> usize {
        self.state.read().expect("lazy delegate lock poisoned").sorted.len()
    }

    fn peer_count(&self, of: usize) -> usize {
        self.flat_of(of).len()
    }

    fn peer_at(&self, of: usize, k: usize) -> usize {
        self.flat_of(of)[k] as usize
    }

    fn knows(&self, of: usize, peer: usize) -> bool {
        if of == peer {
            return false;
        }
        {
            let state = self.state.read().expect("lazy delegate lock poisoned");
            if !state.alive[of] || !state.alive[peer] {
                return false;
            }
            if state.sorted.len() > 1 && state.next_alive(of) as usize == peer {
                return true;
            }
        }
        (1..=self.shape.depth).any(|l| self.knows_at_depth(of, l, peer))
    }

    /// `peer` is seated in `of`'s depth-`l` slot group iff fewer than the
    /// group's capacity of alive subgroup members precede it — a rank
    /// query, answered with two binary searches.
    fn knows_at_depth(&self, of: usize, depth: usize, peer: usize) -> bool {
        if of == peer || depth == 0 || depth > self.shape.depth {
            return false;
        }
        if self.shape.common_prefix(of, peer) + 1 < depth {
            return false; // not under the shared prefix of this view depth
        }
        let state = self.state.read().expect("lazy delegate lock poisoned");
        if !state.alive[of] || !state.alive[peer] {
            return false;
        }
        let g = self.shape.digit(peer, depth - 1);
        let base = self.shape.subgroup_base(of, depth, g);
        state.alive_before(base, peer, of) < self.group_capacity(depth)
    }

    /// No gossip dynamics to advance: the view is always converged.
    /// Consumes no randomness (stream-neutral by construction).
    fn round_elapsed(&self) {}

    fn observe_join(&self, process: usize) {
        let state = &mut *self.state.write().expect("lazy delegate lock poisoned");
        if state.alive[process] {
            return;
        }
        state.alive[process] = true;
        let pos = state.sorted.partition_point(|&x| (x as usize) < process);
        state.sorted.insert(pos, process as u32);
    }

    fn observe_leave(&self, process: usize) {
        let state = &mut *self.state.write().expect("lazy delegate lock poisoned");
        if !state.alive[process] {
            return;
        }
        state.alive[process] = false;
        let pos = state.sorted.partition_point(|&x| (x as usize) < process);
        state.sorted.remove(pos);
    }

    /// A crash re-elects instantly (idealized failure detection): same
    /// effect as a leave.
    fn observe_crash(&self, process: usize) {
        self.observe_leave(process);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DelegateView, DelegateViewConfig};

    fn dense(arity: u32, depth: usize, slots: usize, occupied: &[bool]) -> DelegateView {
        DelegateView::bootstrap_sparse(
            arity,
            depth,
            DelegateViewConfig::default().with_slots(slots),
            42,
            occupied,
        )
    }

    fn assert_seat_equivalence(arity: u32, depth: usize, slots: usize, occupied: &[bool]) {
        let lazy = LazyDelegateView::new(arity, depth, slots, Some(occupied));
        let table = dense(arity, depth, slots, occupied);
        let n = occupied.len();
        assert_eq!(lazy.estimated_size(), table.estimated_size());
        for of in 0..n {
            for peer in 0..n {
                for l in 0..=depth + 1 {
                    assert_eq!(
                        lazy.knows_at_depth(of, l, peer),
                        table.knows_at_depth(of, l, peer),
                        "knows_at_depth({of}, {l}, {peer})"
                    );
                }
                assert_eq!(lazy.knows(of, peer), table.knows(of, peer), "knows({of}, {peer})");
            }
            let peers: Vec<usize> = (0..lazy.peer_count(of)).map(|k| lazy.peer_at(of, k)).collect();
            let dense_peers: Vec<usize> =
                (0..table.peer_count(of)).map(|k| table.peer_at(of, k)).collect();
            assert_eq!(peers, dense_peers, "flat enumeration of {of}");
        }
    }

    #[test]
    fn matches_the_dense_bootstrap_on_a_full_tree() {
        assert_seat_equivalence(3, 3, 2, &[true; 27]);
    }

    #[test]
    fn matches_the_dense_bootstrap_on_sparse_occupancy() {
        // Every third address occupied, plus a hole-free run at the end.
        let occupied: Vec<bool> = (0..16).map(|i| i % 3 == 0 || i >= 12).collect();
        assert_seat_equivalence(2, 4, 2, &occupied);
        // A lone process and an empty tree are degenerate but must not panic.
        let mut lone = vec![false; 8];
        lone[5] = true;
        assert_seat_equivalence(2, 3, 1, &lone);
        assert_seat_equivalence(2, 3, 1, &[false; 8]);
    }

    #[test]
    fn churn_reelects_instantly() {
        let lazy = LazyDelegateView::new(2, 2, 1, None);
        // Process 3 sees the smallest member of subtree 0 at depth 1.
        assert!(lazy.knows_at_depth(3, 1, 0));
        assert!(!lazy.knows_at_depth(3, 1, 1));
        lazy.observe_crash(0);
        // The next-smallest alive member is seated immediately.
        assert!(!lazy.knows_at_depth(3, 1, 0));
        assert!(lazy.knows_at_depth(3, 1, 1));
        lazy.observe_join(0);
        assert!(lazy.knows_at_depth(3, 1, 0));
        assert!(!lazy.knows_at_depth(3, 1, 1));
        assert_eq!(lazy.estimated_size(), 4);
    }

    #[test]
    fn bootstrap_cost_is_independent_of_slot_tables() {
        // A tree far too large for a dense table build: the lazy provider
        // only keeps the alive bookkeeping.
        let lazy = LazyDelegateView::new(32, 4, 3, None);
        let n = 32usize.pow(4);
        assert_eq!(lazy.estimated_size(), n);
        // Spot-check the seat rule at scale: the three smallest members of
        // the first depth-1 subtree are global delegates for everyone
        // outside it.
        assert!(lazy.knows_at_depth(n - 1, 1, 0));
        assert!(lazy.knows_at_depth(n - 1, 1, 1));
        assert!(lazy.knows_at_depth(n - 1, 1, 2));
        assert!(!lazy.knows_at_depth(n - 1, 1, 3));
    }
}
