use std::fmt;

use serde::{Deserialize, Serialize};

use pmcast_addr::{Address, Component, Depth, Prefix};
use pmcast_interest::{Event, Interest, InterestSummary};

use crate::{GroupTree, TreeTopology};

/// One line of a view table (Figure 2): a populated sibling subgroup,
/// identified by its *infix* (the next address component), with its
/// regrouped interests, its delegates (or the single neighbour process at
/// the leaf depth), the total process count below it, and a logical
/// timestamp used by the gossip-pull anti-entropy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViewEntry {
    infix: Component,
    prefix: Prefix,
    delegates: Vec<Address>,
    summary: InterestSummary,
    process_count: usize,
    timestamp: u64,
}

impl ViewEntry {
    /// Creates a view entry.
    pub fn new(
        prefix: Prefix,
        delegates: Vec<Address>,
        summary: InterestSummary,
        process_count: usize,
        timestamp: u64,
    ) -> Self {
        let infix = prefix.last_component().unwrap_or(0);
        Self {
            infix,
            prefix,
            delegates,
            summary,
            process_count,
            timestamp,
        }
    }

    /// The next address component distinguishing this subgroup from its
    /// siblings (the *Infix* column of Figure 2).
    pub fn infix(&self) -> Component {
        self.infix
    }

    /// The full prefix of the subgroup this entry describes.
    pub fn prefix(&self) -> &Prefix {
        &self.prefix
    }

    /// The delegates representing the subgroup (a single process at the leaf
    /// depth).
    pub fn delegates(&self) -> &[Address] {
        &self.delegates
    }

    /// The regrouped interests of all processes below the subgroup.
    pub fn summary(&self) -> &InterestSummary {
        &self.summary
    }

    /// The total number of processes below the subgroup (used by the
    /// round-estimation heuristics, Section 2.3 "Process count").
    pub fn process_count(&self) -> usize {
        self.process_count
    }

    /// The logical timestamp of the last update of this line.
    pub fn timestamp(&self) -> u64 {
        self.timestamp
    }

    /// Returns `true` if, according to the regrouped interests, some process
    /// below this subgroup is interested in the event.
    pub fn interested_in(&self, event: &Event) -> bool {
        self.summary.matches(event)
    }

    /// Replaces the content of the line if `other` carries a strictly newer
    /// timestamp, returning whether an update happened.  This is the merge
    /// rule of the gossip-pull anti-entropy (Section 2.3).
    pub fn merge_newer(&mut self, other: &ViewEntry) -> bool {
        if other.timestamp > self.timestamp {
            *self = other.clone();
            true
        } else {
            false
        }
    }

    /// Refreshes the mutable payload of the line in place, bumping the
    /// timestamp.
    pub fn update(
        &mut self,
        delegates: Vec<Address>,
        summary: InterestSummary,
        process_count: usize,
        timestamp: u64,
    ) {
        self.delegates = delegates;
        self.summary = summary;
        self.process_count = process_count;
        self.timestamp = timestamp;
    }
}

impl fmt::Display for ViewEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} | {} | {} processes | delegates: ",
            self.infix, self.summary, self.process_count
        )?;
        let mut first = true;
        for d in &self.delegates {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
            first = false;
        }
        Ok(())
    }
}

/// The view a process has of one depth of the tree: the populated sibling
/// subgroups below its own prefix of that depth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DepthView {
    depth: Depth,
    prefix: Prefix,
    entries: Vec<ViewEntry>,
}

impl DepthView {
    /// Creates a view of the given depth, under the given (own) prefix.
    pub fn new(depth: Depth, prefix: Prefix, entries: Vec<ViewEntry>) -> Self {
        Self {
            depth,
            prefix,
            entries,
        }
    }

    /// The depth of this view (1 = root level).
    pub fn depth(&self) -> Depth {
        self.depth
    }

    /// The prefix shared by all subgroups of this view (the owner's prefix
    /// of this depth).
    pub fn prefix(&self) -> &Prefix {
        &self.prefix
    }

    /// The view lines, ordered by infix.
    pub fn entries(&self) -> &[ViewEntry] {
        &self.entries
    }

    /// Mutable access to the view lines (used by anti-entropy merges).
    pub fn entries_mut(&mut self) -> &mut Vec<ViewEntry> {
        &mut self.entries
    }

    /// Returns the line describing the subgroup with the given infix.
    pub fn entry(&self, infix: Component) -> Option<&ViewEntry> {
        self.entries.iter().find(|e| e.infix == infix)
    }

    /// Number of lines (`|view[depth]|` in Figure 3).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if this view has no lines.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All processes appearing in this view (delegates of every line).
    pub fn known_processes(&self) -> Vec<Address> {
        let mut processes: Vec<Address> = self
            .entries
            .iter()
            .flat_map(|e| e.delegates.iter().cloned())
            .collect();
        processes.sort();
        processes.dedup();
        processes
    }

    /// Total number of processes represented (sum of line process counts).
    pub fn represented_processes(&self) -> usize {
        self.entries.iter().map(|e| e.process_count).sum()
    }

    /// The *matching rate* of an event at this depth: the fraction of lines
    /// whose regrouped interests match the event (the `GETRATE` function of
    /// Figure 3 evaluates hits over `|view[depth]| · R`; dividing hits by the
    /// line count gives the same rate because every line contributes `R`
    /// delegates).
    pub fn matching_rate(&self, event: &Event) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let hits = self.entries.iter().filter(|e| e.interested_in(event)).count();
        hits as f64 / self.entries.len() as f64
    }
}

impl fmt::Display for DepthView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "View of Depth {} (Prefix = {})", self.depth, self.prefix)?;
        for entry in &self.entries {
            writeln!(f, "  {entry}")?;
        }
        Ok(())
    }
}

/// The complete per-process membership state: one [`DepthView`] per depth,
/// from the root (depth 1) down to the process's immediate neighbourhood
/// (depth `d`), exactly as pictured in Figure 2 of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViewTable {
    owner: Address,
    views: Vec<DepthView>,
}

impl ViewTable {
    /// Creates a view table from its per-depth views.
    ///
    /// # Panics
    ///
    /// Panics if `views` is empty or the depths are not `1..=d` in order.
    pub fn new(owner: Address, views: Vec<DepthView>) -> Self {
        assert!(!views.is_empty(), "a view table has at least one depth");
        for (index, view) in views.iter().enumerate() {
            assert_eq!(view.depth(), index + 1, "views must be ordered by depth");
        }
        Self { owner, views }
    }

    /// Builds the table of the given member from the authoritative group
    /// tree (what the bootstrap/contact procedure of Section 2.3 transfers
    /// to a joining process).
    pub fn build(tree: &GroupTree, owner: &Address, r: usize) -> Self {
        let depth = tree.depth();
        let mut views = Vec::with_capacity(depth);
        for view_depth in 1..=depth {
            let parent = owner.prefix_of_depth(view_depth);
            let mut entries = Vec::new();
            if view_depth == depth {
                for neighbour in tree.members_under(&parent) {
                    let summary = InterestSummary::from_filters(
                        tree.subscription(&neighbour).cloned(),
                    );
                    entries.push(ViewEntry::new(
                        neighbour.as_prefix(),
                        vec![neighbour.clone()],
                        summary,
                        1,
                        0,
                    ));
                }
            } else {
                for component in tree.populated_children(&parent) {
                    let child = parent.child(component);
                    entries.push(ViewEntry::new(
                        child.clone(),
                        tree.delegates(&child, r),
                        tree.subtree_summary(&child),
                        tree.subtree_size(&child),
                        0,
                    ));
                }
            }
            views.push(DepthView::new(view_depth, parent, entries));
        }
        Self {
            owner: owner.clone(),
            views,
        }
    }

    /// The process owning this table.
    pub fn owner(&self) -> &Address {
        &self.owner
    }

    /// The tree depth `d` covered by this table.
    pub fn depth(&self) -> Depth {
        self.views.len()
    }

    /// The view of the given depth (1-based).
    ///
    /// # Panics
    ///
    /// Panics if the depth is out of range.
    pub fn view(&self, depth: Depth) -> &DepthView {
        assert!(
            depth >= 1 && depth <= self.views.len(),
            "depth {depth} out of range 1..={}",
            self.views.len()
        );
        &self.views[depth - 1]
    }

    /// Mutable access to the view of the given depth.
    ///
    /// # Panics
    ///
    /// Panics if the depth is out of range.
    pub fn view_mut(&mut self, depth: Depth) -> &mut DepthView {
        assert!(
            depth >= 1 && depth <= self.views.len(),
            "depth {depth} out of range 1..={}",
            self.views.len()
        );
        &mut self.views[depth - 1]
    }

    /// Iterates over the views from the root depth downwards.
    pub fn iter(&self) -> impl Iterator<Item = &DepthView> {
        self.views.iter()
    }

    /// Total number of process entries known by the owner across all depths
    /// (Equation 2 of the paper).
    pub fn knowledge_size(&self) -> usize {
        self.views
            .iter()
            .map(|view| {
                view.entries()
                    .iter()
                    .map(|e| e.delegates().len())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Rough memory footprint of the table in bytes (address components plus
    /// interest summaries), used to validate the membership-scalability
    /// claim experimentally.
    pub fn footprint(&self) -> usize {
        self.views
            .iter()
            .flat_map(|view| view.entries())
            .map(|e| {
                e.delegates()
                    .iter()
                    .map(|d| std::mem::size_of_val(d.components()))
                    .sum::<usize>()
                    + e.summary().footprint()
                    + std::mem::size_of::<u64>()
                    + std::mem::size_of::<usize>()
            })
            .sum()
    }
}

impl fmt::Display for ViewTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "View table of {}", self.owner)?;
        for view in &self.views {
            write!(f, "{view}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcast_addr::AddressSpace;
    use pmcast_interest::{Filter, Predicate};

    fn small_tree() -> GroupTree {
        let space = AddressSpace::regular(3, 3).unwrap();
        let mut tree = GroupTree::new(space.clone());
        for (index, address) in space.iter().enumerate() {
            // Half the processes want b > 0, the other half want b < 0.
            let filter = if index % 2 == 0 {
                Filter::new().with("b", Predicate::gt(0.0))
            } else {
                Filter::new().with("b", Predicate::lt(0.0))
            };
            tree.join(address, filter).unwrap();
        }
        tree
    }

    #[test]
    fn build_produces_one_view_per_depth() {
        let tree = small_tree();
        let owner: Address = "1.2.0".parse().unwrap();
        let table = ViewTable::build(&tree, &owner, 2);
        assert_eq!(table.depth(), 3);
        assert_eq!(table.owner(), &owner);
        // Depth 1: one line per depth-2 subgroup (3 of them), R delegates each.
        assert_eq!(table.view(1).len(), 3);
        assert!(table.view(1).entries().iter().all(|e| e.delegates().len() == 2));
        // Depth 3: the owner's 3 immediate neighbours, one process per line.
        assert_eq!(table.view(3).len(), 3);
        assert!(table.view(3).entries().iter().all(|e| e.delegates().len() == 1));
        assert_eq!(table.view(3).prefix(), &owner.prefix_of_depth(3));
    }

    #[test]
    fn knowledge_size_matches_equation_2() {
        let tree = small_tree();
        let owner: Address = "2.2.2".parse().unwrap();
        let table = ViewTable::build(&tree, &owner, 2);
        // R·a·(d−1) + a = 2·3·2 + 3 = 15.
        assert_eq!(table.knowledge_size(), 15);
        assert!(table.footprint() > 0);
    }

    #[test]
    fn matching_rate_reflects_interests() {
        let tree = small_tree();
        let owner: Address = "0.0.0".parse().unwrap();
        let table = ViewTable::build(&tree, &owner, 2);
        let hot = Event::builder(1).int("b", 5).build();
        // Every depth-2 subgroup contains both kinds of subscribers, so all
        // lines of depth 1 match: rate 1.0.
        assert!((table.view(1).matching_rate(&hot) - 1.0).abs() < f64::EPSILON);
        // At the leaf depth roughly half the neighbours match.
        let leaf_rate = table.view(3).matching_rate(&hot);
        assert!(leaf_rate > 0.0 && leaf_rate < 1.0);
        // An event matching nobody has rate 0 at every depth.
        let nobody = Event::builder(2).str("e", "Eve").build();
        for depth in 1..=3 {
            assert_eq!(table.view(depth).matching_rate(&nobody), 0.0);
        }
    }

    #[test]
    fn entry_accessors_and_lookup() {
        let tree = small_tree();
        let table = ViewTable::build(&tree, &"0.0.0".parse().unwrap(), 2);
        let view = table.view(2);
        assert_eq!(view.depth(), 2);
        let entry = view.entry(1).expect("subgroup 0.1 is populated");
        assert_eq!(entry.infix(), 1);
        assert_eq!(entry.prefix(), &Prefix::from_components(vec![0, 1]));
        assert_eq!(entry.process_count(), 3);
        assert_eq!(entry.timestamp(), 0);
        assert!(view.entry(9).is_none());
        assert_eq!(view.known_processes().len(), 6);
        assert_eq!(view.represented_processes(), 9);
        assert!(!view.is_empty());
    }

    #[test]
    fn merge_newer_only_accepts_strictly_newer_lines() {
        let prefix = Prefix::from_components(vec![1]);
        let mut line = ViewEntry::new(prefix.clone(), vec![], InterestSummary::empty(), 3, 5);
        let stale = ViewEntry::new(prefix.clone(), vec![], InterestSummary::empty(), 9, 5);
        let fresh = ViewEntry::new(prefix, vec![], InterestSummary::match_all(), 7, 6);
        assert!(!line.merge_newer(&stale));
        assert_eq!(line.process_count(), 3);
        assert!(line.merge_newer(&fresh));
        assert_eq!(line.process_count(), 7);
        assert_eq!(line.timestamp(), 6);
    }

    #[test]
    fn update_bumps_timestamp_in_place() {
        let prefix = Prefix::from_components(vec![2]);
        let mut line = ViewEntry::new(prefix, vec![], InterestSummary::empty(), 1, 0);
        line.update(
            vec!["2.0.0".parse().unwrap()],
            InterestSummary::match_all(),
            4,
            9,
        );
        assert_eq!(line.delegates().len(), 1);
        assert_eq!(line.process_count(), 4);
        assert_eq!(line.timestamp(), 9);
    }

    #[test]
    fn display_renders_figure_2_like_tables() {
        let tree = small_tree();
        let table = ViewTable::build(&tree, &"0.0.0".parse().unwrap(), 2);
        let text = table.to_string();
        assert!(text.contains("View of Depth 1"));
        assert!(text.contains("View of Depth 3"));
        assert!(text.contains("processes"));
    }

    #[test]
    #[should_panic(expected = "ordered by depth")]
    fn new_rejects_out_of_order_views() {
        let owner: Address = "0.0.0".parse().unwrap();
        let view = DepthView::new(2, Prefix::root(), vec![]);
        let _ = ViewTable::new(owner, vec![view]);
    }

    #[test]
    fn view_and_entry_serde_round_trip() {
        let tree = small_tree();
        let table = ViewTable::build(&tree, &"1.1.1".parse().unwrap(), 2);
        let json = serde_json::to_string(&table).unwrap();
        let back: ViewTable = serde_json::from_str(&json).unwrap();
        assert_eq!(table, back);
    }
}
