use pmcast_addr::{Address, AddressSpace, Component, Depth, Prefix};

/// The "who is where" interface of the compound spanning tree.
///
/// The dissemination layer only needs to know, for any subgroup (prefix):
/// which child subgroups are populated, how many processes live below it,
/// and which processes are its `R` delegates.  Two implementations are
/// provided:
///
/// * [`ImplicitRegularTree`] — every address of the space is populated; all
///   answers are computed arithmetically.  This is the *regular tree* of the
///   paper's analysis (Section 4.1) and is what the large-scale evaluation
///   runs use, because it needs no per-process state at all.
/// * [`crate::GroupTree`] — an explicit membership supporting arbitrary
///   populated addresses, per-process subscriptions, joins and leaves.
pub trait TreeTopology {
    /// The address space shaping the tree.
    fn space(&self) -> &AddressSpace;

    /// Number of processes currently in the group.
    fn member_count(&self) -> usize;

    /// Returns `true` if the given address is populated.
    fn contains(&self, address: &Address) -> bool;

    /// All members, in address order.  Intended for small groups (tests,
    /// examples, explicit view construction); large-scale simulations should
    /// iterate indices instead.
    fn members(&self) -> Vec<Address>;

    /// The populated child components directly below the given prefix, in
    /// increasing order.
    fn populated_children(&self, prefix: &Prefix) -> Vec<Component>;

    /// Number of processes in the subtree rooted at the given prefix
    /// (`‖prefix‖` in Equation 4).
    fn subtree_size(&self, prefix: &Prefix) -> usize;

    /// The delegates representing the subtree rooted at `prefix`: the `r`
    /// smallest populated addresses below it (fewer if the subtree holds
    /// fewer than `r` processes).
    fn delegates(&self, prefix: &Prefix, r: usize) -> Vec<Address>;

    /// Tree depth `d`.
    fn depth(&self) -> Depth {
        self.space().depth()
    }

    /// All members of the *leaf* subgroup of the given process: the
    /// processes sharing its depth-`d` prefix (its immediate neighbours).
    fn leaf_neighbours(&self, address: &Address) -> Vec<Address> {
        let prefix = address.prefix_of_depth(self.depth());
        self.members_under(&prefix)
    }

    /// All members below a prefix, in address order.
    fn members_under(&self, prefix: &Prefix) -> Vec<Address> {
        self.members()
            .into_iter()
            .filter(|a| a.has_prefix(prefix))
            .collect()
    }

    /// Whether the process takes part in the gossip of the given depth.
    ///
    /// Every process takes part at the leaf depth `d`; at a depth `i < d` a
    /// process participates iff it is one of the `r` delegates of its own
    /// subgroup of depth `i + 1` (the subtree denoted by its first `i`
    /// address components).
    fn participates_at(&self, address: &Address, depth: Depth, r: usize) -> bool {
        if depth == self.depth() {
            return self.contains(address);
        }
        let own_subgroup = address.prefix_of_depth(depth + 1);
        self.delegates(&own_subgroup, r).contains(address)
    }

    /// The upmost (smallest) depth at which the process appears
    /// (Section 3.2: it then also appears at every larger depth).
    fn topmost_depth(&self, address: &Address, r: usize) -> Depth {
        for depth in 1..self.depth() {
            if self.participates_at(address, depth, r) {
                return depth;
            }
        }
        self.depth()
    }

    /// The membership view of a process at the given depth: one entry per
    /// populated sibling subgroup, holding that subgroup's delegates — or,
    /// at the leaf depth, one entry per immediate neighbour process.
    ///
    /// The total number of processes appearing across all depths is the
    /// paper's Equation 2.
    fn view_of(&self, address: &Address, depth: Depth, r: usize) -> Vec<(Prefix, Vec<Address>)> {
        assert!(
            depth >= 1 && depth <= self.depth(),
            "depth {depth} out of range 1..={}",
            self.depth()
        );
        let parent = address.prefix_of_depth(depth);
        if depth == self.depth() {
            self.members_under(&parent)
                .into_iter()
                .map(|a| (a.as_prefix(), vec![a]))
                .collect()
        } else {
            self.populated_children(&parent)
                .into_iter()
                .map(|component| {
                    let child = parent.child(component);
                    let delegates = self.delegates(&child, r);
                    (child, delegates)
                })
                .collect()
        }
    }

    /// Total number of process entries in the views of the given process
    /// across all depths (Equation 2 of the paper; delegates appearing at
    /// several depths are counted once per depth, as in the paper).
    fn knowledge_size(&self, address: &Address, r: usize) -> usize {
        (1..=self.depth())
            .map(|depth| {
                self.view_of(address, depth, r)
                    .iter()
                    .map(|(_, processes)| processes.len())
                    .sum::<usize>()
            })
            .sum()
    }
}

/// A fully populated regular tree: every address of the space hosts exactly
/// one process.
///
/// This is the membership assumed by the paper's analysis and evaluation
/// (`n = a^d`); all topology queries are answered arithmetically from the
/// address space, so the structure costs `O(1)` memory regardless of `n`.
///
/// # Example
///
/// ```rust
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use pmcast_addr::{AddressSpace, Prefix};
/// use pmcast_membership::{ImplicitRegularTree, TreeTopology};
///
/// let tree = ImplicitRegularTree::new(AddressSpace::regular(3, 22)?);
/// assert_eq!(tree.member_count(), 10_648);
/// assert_eq!(tree.subtree_size(&Prefix::from_components(vec![7])), 484);
/// let root_delegates = tree.delegates(&Prefix::root(), 3);
/// assert_eq!(root_delegates[2].to_string(), "0.0.2");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImplicitRegularTree {
    space: AddressSpace,
}

impl ImplicitRegularTree {
    /// Creates the fully populated tree over the given address space.
    ///
    /// # Panics
    ///
    /// Panics if the space capacity exceeds `usize::MAX` processes, which
    /// cannot be simulated anyway.
    pub fn new(space: AddressSpace) -> Self {
        assert!(
            space.capacity() <= usize::MAX as u128,
            "address space too large to enumerate"
        );
        Self { space }
    }

    /// Returns the dense index of an address (delegating to the space).
    pub fn index_of(&self, address: &Address) -> Option<usize> {
        self.space.index_of_address(address).ok().map(|i| i as usize)
    }

    /// Returns the address at the given dense index.
    pub fn address_of(&self, index: usize) -> Address {
        self.space.address_of_index(index as u128)
    }

    /// Returns the dense index range `[start, end)` of the subtree below a
    /// prefix; all addresses of a subtree are contiguous in index order.
    pub fn index_range(&self, prefix: &Prefix) -> (usize, usize) {
        let (start, end) = self
            .space
            .index_range_under(prefix)
            .expect("prefix is valid for the tree's space");
        (start as usize, end as usize)
    }
}

impl TreeTopology for ImplicitRegularTree {
    fn space(&self) -> &AddressSpace {
        &self.space
    }

    fn member_count(&self) -> usize {
        self.space.capacity() as usize
    }

    fn contains(&self, address: &Address) -> bool {
        self.space.validate(address).is_ok()
    }

    fn members(&self) -> Vec<Address> {
        self.space.iter().collect()
    }

    fn populated_children(&self, prefix: &Prefix) -> Vec<Component> {
        if prefix.len() >= self.space.depth() {
            return Vec::new();
        }
        self.space.child_components(prefix).collect()
    }

    fn subtree_size(&self, prefix: &Prefix) -> usize {
        self.space.capacity_under(prefix) as usize
    }

    fn delegates(&self, prefix: &Prefix, r: usize) -> Vec<Address> {
        let (start, end) = self.index_range(prefix);
        (start..end.min(start + r))
            .map(|index| self.address_of(index))
            .collect()
    }

    fn members_under(&self, prefix: &Prefix) -> Vec<Address> {
        let (start, end) = self.index_range(prefix);
        (start..end).map(|index| self.address_of(index)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(depth: usize, arity: u32) -> ImplicitRegularTree {
        ImplicitRegularTree::new(AddressSpace::regular(depth, arity).unwrap())
    }

    #[test]
    fn member_count_is_capacity() {
        assert_eq!(tree(3, 4).member_count(), 64);
        assert_eq!(tree(3, 22).member_count(), 10_648);
        assert_eq!(tree(1, 7).member_count(), 7);
    }

    #[test]
    fn delegates_are_smallest_addresses() {
        let t = tree(3, 4);
        let root_delegates = t.delegates(&Prefix::root(), 3);
        let rendered: Vec<String> = root_delegates.iter().map(|a| a.to_string()).collect();
        assert_eq!(rendered, vec!["0.0.0", "0.0.1", "0.0.2"]);

        let sub = Prefix::from_components(vec![2, 1]);
        let sub_delegates = t.delegates(&sub, 3);
        let rendered: Vec<String> = sub_delegates.iter().map(|a| a.to_string()).collect();
        assert_eq!(rendered, vec!["2.1.0", "2.1.1", "2.1.2"]);

        // A subtree smaller than r yields fewer delegates.
        let leafish = tree(2, 2);
        assert_eq!(leafish.delegates(&Prefix::from_components(vec![1]), 5).len(), 2);
    }

    #[test]
    fn subtree_sizes_follow_capacity() {
        let t = tree(3, 22);
        assert_eq!(t.subtree_size(&Prefix::root()), 10_648);
        assert_eq!(t.subtree_size(&Prefix::from_components(vec![3])), 484);
        assert_eq!(t.subtree_size(&Prefix::from_components(vec![3, 9])), 22);
    }

    #[test]
    fn index_range_is_contiguous_and_consistent() {
        let t = tree(3, 5);
        let prefix = Prefix::from_components(vec![2, 3]);
        let (start, end) = t.index_range(&prefix);
        assert_eq!(end - start, 5);
        for index in start..end {
            assert!(t.address_of(index).has_prefix(&prefix));
        }
        // The address right before and right after are outside the subtree.
        assert!(!t.address_of(start - 1).has_prefix(&prefix));
        assert!(!t.address_of(end).has_prefix(&prefix));
    }

    #[test]
    fn participation_nests_upwards() {
        let t = tree(3, 4);
        let r = 2;
        for address in t.members() {
            // Every process participates at the leaf depth.
            assert!(t.participates_at(&address, 3, r));
            // Participation at a depth implies participation at all larger depths.
            for depth in 1..3 {
                if t.participates_at(&address, depth, r) {
                    for deeper in depth..=3 {
                        assert!(
                            t.participates_at(&address, deeper, r),
                            "{address} participates at {depth} but not at {deeper}"
                        );
                    }
                }
            }
        }
        // The globally smallest addresses are root (depth 1) participants.
        assert!(t.participates_at(&"0.0.0".parse().unwrap(), 1, r));
        assert!(t.participates_at(&"0.0.1".parse().unwrap(), 1, r));
        assert!(!t.participates_at(&"0.0.2".parse().unwrap(), 1, r));
        assert_eq!(t.topmost_depth(&"0.0.0".parse().unwrap(), r), 1);
        assert_eq!(t.topmost_depth(&"3.3.3".parse().unwrap(), r), 3);
    }

    #[test]
    fn view_sizes_match_equation_2() {
        // In a regular tree every process knows R·a·(d−1) + a processes (Eq. 12).
        let t = tree(3, 4);
        let r = 2;
        let expected = r * 4 * (3 - 1) + 4;
        for address in t.members() {
            assert_eq!(t.knowledge_size(&address, r), expected);
        }
    }

    #[test]
    fn view_of_structure() {
        let t = tree(3, 4);
        let address: Address = "2.1.3".parse().unwrap();
        // Depth 1: one entry per depth-2 subgroup, each with R delegates.
        let depth1 = t.view_of(&address, 1, 3);
        assert_eq!(depth1.len(), 4);
        assert!(depth1.iter().all(|(_, d)| d.len() == 3));
        // Depth 3: the immediate neighbours, one process per entry.
        let depth3 = t.view_of(&address, 3, 3);
        assert_eq!(depth3.len(), 4);
        assert!(depth3.iter().all(|(_, d)| d.len() == 1));
        assert!(depth3
            .iter()
            .any(|(_, d)| d[0].to_string() == "2.1.3"));
        // The view only depends on the process's prefix.
        let sibling: Address = "2.1.0".parse().unwrap();
        assert_eq!(t.view_of(&sibling, 1, 3), depth1);
    }

    #[test]
    fn leaf_neighbours_share_the_leaf_prefix() {
        let t = tree(3, 4);
        let address: Address = "1.2.3".parse().unwrap();
        let neighbours = t.leaf_neighbours(&address);
        assert_eq!(neighbours.len(), 4);
        assert!(neighbours
            .iter()
            .all(|n| n.prefix_of_depth(3) == address.prefix_of_depth(3)));
    }

    #[test]
    fn depth_one_tree_is_flat() {
        let t = tree(1, 8);
        assert_eq!(t.depth(), 1);
        let address: Address = "5".parse().unwrap();
        let view = t.view_of(&address, 1, 3);
        assert_eq!(view.len(), 8);
        assert_eq!(t.knowledge_size(&address, 3), 8);
    }
}
