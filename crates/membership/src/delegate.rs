//! The paper's Section 2 view-table maintenance as a membership provider:
//! a [`DelegateView`] keeps each process's membership knowledge **structured
//! by the tree coordinates** of the `pmcast` address space instead of as one
//! flat bounded list.
//!
//! ## Why a third provider
//!
//! The flat [`PartialView`](crate::PartialView) models lpbcast: a bounded
//! *uniform random* sample of the group.  pmcast, however, gossips through
//! the **delegates** of its per-depth views — the `R` smallest-address
//! processes of every sibling subgroup — and at paper scale (`n ≈ 10 648`,
//! views of a few hundred entries) those specific processes are almost never
//! inside a small random sample, so pmcast's reliability collapses (see
//! `examples/partial_view_sweep.rs`).  Section 2 of the paper never
//! maintains a flat sample in the first place: a process's view *is* the
//! hierarchy — per depth `i`, one slot group per sibling subgroup, holding
//! that subgroup's delegates.  `DelegateView` reproduces exactly that
//! shape:
//!
//! * **Per-depth delegate slots.**  For every depth `l ∈ 1..d` a process
//!   keeps, for each of the `a` subgroups sharing its depth-`(l−1)` prefix,
//!   up to [`DelegateViewConfig::slots`] delegate entries — the smallest
//!   known-live members of that subgroup, mirroring the paper's
//!   smallest-address delegate election.  At the leaf depth it keeps its
//!   `a − 1` subgroup neighbours.  Total view size is
//!   `(d−1)·a·slots + a ∈ O(d·R·n^{1/d})` (Equation 2), **not** `n`.
//! * **Bootstrap = the join handoff.**  A joining process receives its view
//!   table from a delegate of each subgroup along its path (Section 2.3);
//!   the simulation collapses that handshake into a fully populated
//!   bootstrap, so at round zero every slot holds the subgroup's current
//!   delegates — the same processes
//!   [`SharedViews`](../../pmcast_core/struct.SharedViews.html) elects,
//!   whenever `slots ≥ R`.
//! * **Gossip piggybacks delegate tables per subtree.**  Once per
//!   simulation round every live process contacts
//!   [`DelegateViewConfig::gossip_fanout`] known peers and pushes its own
//!   subscription plus a random [`DelegateViewConfig::digest_size`]-entry
//!   digest of its view; the receiver files each candidate into the slot
//!   groups of **every depth at which the candidate qualifies** (a peer
//!   sharing a length-`k` prefix is a candidate for depths `1..=k+1`).
//! * **Eviction keeps delegates, not randomness.**  A slot group only
//!   overflows when a *smaller* live candidate arrives, in which case the
//!   largest entry is evicted — so each group deterministically converges to
//!   the `slots` smallest live members of its subgroup, which is precisely
//!   the paper's re-election rule.  Slot entries are **monitored** like
//!   delegates in Section 2.3: a crash is swept from every table within one
//!   membership round (unlike the deliberately lazy failure detection of
//!   [`PartialView`](crate::PartialView)), and the sweep immediately
//!   re-elects replacements from the already-gossiped candidates in the
//!   evictor's view, keeping at least one live delegate per occupied
//!   subtree whenever one is known.
//! * **Pinned ring contact as the connectivity fallback.**  Exactly as in
//!   [`PartialView`](crate::PartialView), every process pins its live ring
//!   successor (monitored, never evicted), so the live overlay stays
//!   connected even through churn that empties slot groups — gossip can
//!   always route candidates back in.
//!
//! ## Determinism
//!
//! All randomness (gossip target picks, digest sampling) flows from the
//! seed the view was constructed with — for simulation trials, the same
//! per-trial membership stream [`PartialView`](crate::PartialView) uses
//! (rule 3 of the seed contract in `pmcast-sim`'s runner docs), so parallel
//! Monte-Carlo trials stay bit-identical to sequential ones.  Slot
//! admission and eviction are fully deterministic (smallest-address order)
//! and consume no randomness at all.
//!
//! `DelegateView` implements the whole [`MembershipView`] contract: the
//! flat [`peer_count`](MembershipView::peer_count) /
//! [`peer_at`](MembershipView::peer_at) enumeration (used by the flooding
//! and genuine baselines) walks the deduplicated union of all slot entries
//! plus the pinned contact, while
//! [`knows_at_depth`](MembershipView::knows_at_depth) — the query the
//! pmcast fanout draw asks — resolves in `O(slots)` straight from the slot
//! group of the queried depth.

use std::sync::RwLock;

use pmcast_addr::Prefix;
use pmcast_interest::Event;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::provider::MembershipView;
use crate::summaries::InterestAnnex;
use crate::SubtreeSummaries;

/// Sentinel marking an unoccupied delegate slot.  `u32::MAX` sorts after
/// every valid index, so a slot group is simply kept sorted ascending.
const EMPTY: u32 = u32::MAX;

/// Parameters of the [`DelegateView`] hierarchical membership layer.
///
/// # Examples
///
/// ```rust
/// use pmcast_membership::DelegateViewConfig;
///
/// let config = DelegateViewConfig::default().with_slots(3);
/// // A 22-ary depth-3 tree (the paper-scale group, n = 10 648) needs only
/// // (3 − 1) · 22 · 3 + 22 = 154 view entries per process.
/// assert_eq!(config.table_entries(22, 3), 154);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelegateViewConfig {
    /// Delegate slots per subgroup per depth — the membership-side mirror of
    /// the protocol's redundancy factor `R`; keep `slots ≥ R` so every
    /// delegate the dissemination layer elects is representable.
    pub slots: usize,
    /// Number of known peers each process contacts per membership round.
    pub gossip_fanout: usize,
    /// Number of view entries piggybacked on each contact (besides the
    /// sender's own subscription).
    pub digest_size: usize,
}

impl Default for DelegateViewConfig {
    fn default() -> Self {
        Self {
            slots: 3,
            gossip_fanout: 3,
            digest_size: 4,
        }
    }
}

impl DelegateViewConfig {
    /// Sets the per-subgroup delegate slot count, returning the config for
    /// chaining.
    pub fn with_slots(mut self, slots: usize) -> Self {
        self.slots = slots;
        self
    }

    /// The bounded per-process view size this configuration yields on a
    /// regular `arity^depth` tree: `(d−1)·a·slots + a` (Equation 2 of the
    /// paper), the hierarchical counterpart of `PartialViewConfig::view_size`.
    pub fn table_entries(&self, arity: u32, depth: usize) -> usize {
        let a = arity as usize;
        depth.saturating_sub(1) * a * self.slots + a
    }
}

/// Dense-index arithmetic over a regular `arity^depth` tree.
///
/// Dense identifiers enumerate addresses in lexicographic order, so index
/// `i`'s address components are simply its base-`arity` digits, most
/// significant first — every tree coordinate a view table needs is computed,
/// never stored.  Shared with the lazy provider (`crate::lazy`), which
/// computes seat answers from exactly this arithmetic instead of storing
/// tables.
#[derive(Debug, Clone)]
pub(crate) struct TreeShape {
    pub(crate) arity: usize,
    pub(crate) depth: usize,
    /// `pows[k] = arity^k`, `k ∈ 0..=depth`.
    pows: Vec<usize>,
    pub(crate) slots: usize,
}

impl TreeShape {
    pub(crate) fn new(arity: usize, depth: usize, slots: usize) -> Self {
        let mut pows = Vec::with_capacity(depth + 1);
        let mut p = 1usize;
        for _ in 0..=depth {
            pows.push(p);
            p = p.checked_mul(arity).expect("group size overflows usize");
        }
        Self {
            arity,
            depth,
            pows,
            slots,
        }
    }

    pub(crate) fn member_count(&self) -> usize {
        self.pows[self.depth]
    }

    /// The `k`-th address component (0-based, most significant first) of
    /// dense index `i`.
    pub(crate) fn digit(&self, i: usize, k: usize) -> usize {
        (i / self.pows[self.depth - 1 - k]) % self.arity
    }

    /// Number of leading address components `p` and `q` share.
    pub(crate) fn common_prefix(&self, p: usize, q: usize) -> usize {
        (0..self.depth)
            .take_while(|&k| self.digit(p, k) == self.digit(q, k))
            .count()
    }

    /// Total slots in one process's table: `(d−1)·a·slots` inner entries
    /// plus `a` leaf-neighbour entries.
    fn table_len(&self) -> usize {
        (self.depth - 1) * self.arity * self.slots + self.arity
    }

    /// Slot range of the depth-`l` group for sibling component `g`
    /// (`l ∈ 1..=depth`; the leaf depth has one slot per component).
    fn group_range(&self, l: usize, g: usize) -> std::ops::Range<usize> {
        if l == self.depth {
            let start = (self.depth - 1) * self.arity * self.slots + g;
            start..start + 1
        } else {
            let start = ((l - 1) * self.arity + g) * self.slots;
            start..start + self.slots
        }
    }

    /// First dense index of the depth-`l` sibling subgroup `g` of process
    /// `q` (the subgroup `q.prefix(l−1) · g`).
    pub(crate) fn subgroup_base(&self, q: usize, l: usize, g: usize) -> usize {
        let span = self.pows[self.depth - l + 1];
        (q / span) * span + g * self.pows[self.depth - l]
    }

    /// Number of processes in any depth-`l` subgroup.
    pub(crate) fn subgroup_size(&self, l: usize) -> usize {
        self.pows[self.depth - l]
    }
}

/// Mutable provider state behind one lock: the per-process slot tables, the
/// flat (deduplicated) peer enumerations, pinned contacts, liveness and the
/// provider-private PRNG stream.
#[derive(Debug)]
struct DelegateState {
    shape: TreeShape,
    /// `tables[q]` is the fixed-layout slot table of `q` (see
    /// [`TreeShape::group_range`]); inner groups are sorted ascending with
    /// [`EMPTY`] sentinels at the end.
    tables: Vec<Vec<u32>>,
    /// `flat[q]` is the dense peer enumeration backing `peer_count` /
    /// `peer_at`: the deduplicated union of `q`'s slot entries plus its
    /// pinned contact.
    flat: Vec<Vec<u32>>,
    /// `contact[q]` is `q`'s pinned live ring successor (monitored, never
    /// evicted) — the connectivity fallback.
    contact: Vec<u32>,
    alive: Vec<bool>,
    live: usize,
    /// Crashes observed since the last membership round, awaiting the
    /// monitored-delegate sweep.
    pending_dead: Vec<u32>,
    rng: ChaCha8Rng,
}

impl DelegateState {
    /// The next live index strictly after `of`, cyclically.
    fn next_live(&self, of: usize) -> Option<usize> {
        let n = self.alive.len();
        (1..n).map(|offset| (of + offset) % n).find(|&i| self.alive[i])
    }

    /// Returns `true` if `peer` occupies any slot of `q`'s table.
    fn table_contains(&self, q: usize, peer: usize) -> bool {
        let cp = self.shape.common_prefix(q, peer);
        let deepest = (cp + 1).min(self.shape.depth);
        (1..=deepest).any(|l| {
            let g = self.shape.digit(peer, l - 1);
            self.tables[q][self.shape.group_range(l, g)].contains(&(peer as u32))
        })
    }

    /// Drops `peer` from `q`'s flat enumeration unless a slot or the pinned
    /// contact still references it.
    fn maybe_drop_from_flat(&mut self, q: usize, peer: usize) {
        if self.contact[q] as usize == peer || self.table_contains(q, peer) {
            return;
        }
        if let Some(pos) = self.flat[q].iter().position(|&e| e as usize == peer) {
            self.flat[q].swap_remove(pos);
        }
    }

    /// Files `peer` into the depth-`l` slot group it belongs to in `q`'s
    /// table.  The group holds the `slots` smallest known-live members of
    /// the subgroup: a smaller candidate evicts the largest entry (the
    /// deterministic smallest-address re-election of Section 2).  Returns
    /// `true` if the table changed.
    fn admit_at_level(&mut self, q: usize, l: usize, peer: usize) -> bool {
        let g = self.shape.digit(peer, l - 1);
        let range = self.shape.group_range(l, g);
        let peer = peer as u32;
        let group = &mut self.tables[q][range];
        if group.contains(&peer) {
            return false;
        }
        let last = group.len() - 1;
        let evicted = group[last];
        if peer >= evicted {
            return false; // group is full of smaller (or equal) entries
        }
        // Insert in sorted position, shifting the tail out.
        let pos = group.partition_point(|&e| e < peer);
        group[pos..].rotate_right(1);
        group[pos] = peer;
        if evicted != EMPTY {
            self.maybe_drop_from_flat(q, evicted as usize);
        }
        true
    }

    /// Admits `peer` into `q`'s view: every slot group it qualifies for
    /// (depths `1..=cp+1`), plus the flat enumeration if any slot took it.
    fn admit_peer(&mut self, q: usize, peer: usize) {
        if q == peer {
            return;
        }
        let cp = self.shape.common_prefix(q, peer);
        let deepest = (cp + 1).min(self.shape.depth);
        let mut admitted = false;
        for l in 1..=deepest {
            admitted |= self.admit_at_level(q, l, peer);
        }
        if admitted && !self.flat[q].contains(&(peer as u32)) {
            self.flat[q].push(peer as u32);
        }
    }

    /// Removes `x` from every slot group of `q`'s table, re-electing
    /// replacements from the candidates already gossiped into `q`'s flat
    /// view so every occupied subtree keeps a live delegate if one is
    /// known.
    fn evict_from_table(&mut self, q: usize, x: usize) {
        let cp = self.shape.common_prefix(q, x);
        let deepest = (cp + 1).min(self.shape.depth);
        for l in 1..=deepest {
            let g = self.shape.digit(x, l - 1);
            let range = self.shape.group_range(l, g);
            let group = &mut self.tables[q][range.clone()];
            let Some(pos) = group.iter().position(|&e| e as usize == x) else {
                continue;
            };
            group[pos..].rotate_left(1);
            let last = group.len() - 1;
            group[last] = EMPTY;
            if l == self.shape.depth {
                continue; // leaf slots name one fixed process; nothing to re-elect
            }
            // Re-election: promote the smallest live already-known member
            // of the subgroup that is not yet seated.
            let base = self.shape.subgroup_base(q, l, g);
            let size = self.shape.subgroup_size(l);
            let mut candidate: Option<usize> = None;
            for &e in &self.flat[q] {
                let e = e as usize;
                if e != q
                    && e >= base
                    && e < base + size
                    && self.alive[e]
                    && candidate.is_none_or(|best| e < best)
                    && !self.tables[q][range.clone()].contains(&(e as u32))
                {
                    candidate = Some(e);
                }
            }
            if let Some(winner) = candidate {
                self.admit_at_level(q, l, winner);
            }
        }
    }

    /// Evicts `x` from every process's view (slot tables and flat
    /// enumerations) and re-pins any process whose ring contact it was.
    fn evict_everywhere(&mut self, x: usize) {
        for q in 0..self.alive.len() {
            if q == x {
                continue;
            }
            self.evict_from_table(q, x);
            if let Some(pos) = self.flat[q].iter().position(|&e| e as usize == x) {
                self.flat[q].swap_remove(pos);
            }
            if self.alive[q] && self.contact[q] as usize == x {
                self.pin_contact(q);
            }
        }
    }

    /// Pins `q`'s contact to `peer`, keeping it in `q`'s flat view (and
    /// its slot groups when it qualifies).
    fn pin_to(&mut self, q: usize, peer: usize) {
        self.contact[q] = peer as u32;
        self.admit_peer(q, peer);
        if !self.flat[q].contains(&(peer as u32)) {
            self.flat[q].push(peer as u32);
        }
    }

    /// Re-pins `q`'s contact to its current live ring successor.
    fn pin_contact(&mut self, q: usize) {
        if let Some(successor) = self.next_live(q) {
            self.pin_to(q, successor);
        }
    }
}

/// The Section 2 hierarchical membership provider: per-depth delegate slot
/// tables over a regular tree, maintained by gossip (see the
/// [module docs](self) for the full design).
///
/// # Examples
///
/// ```rust
/// use pmcast_membership::{DelegateView, DelegateViewConfig, MembershipView};
///
/// // A 4-ary tree of depth 2 (n = 16), three delegate slots per subgroup.
/// let view = DelegateView::bootstrap(4, 2, DelegateViewConfig::default(), 7);
/// // Process 0 knows the three smallest members of the sibling subgroup
/// // starting at index 12 as its depth-1 delegates …
/// assert!(view.knows_at_depth(0, 1, 12));
/// assert!(view.knows_at_depth(0, 1, 14));
/// // … but not that subgroup's largest member: views stay bounded.
/// assert!(!view.knows_at_depth(0, 1, 15));
/// // Its leaf view holds every subgroup neighbour.
/// assert!(view.knows_at_depth(0, 2, 1) && view.knows_at_depth(0, 2, 3));
/// ```
#[derive(Debug)]
pub struct DelegateView {
    config: DelegateViewConfig,
    state: RwLock<DelegateState>,
    /// Aggregated-interest tables attached via
    /// [`MembershipView::attach_interest_summaries`]: each slot group's
    /// subtree carries the over-approximating summary of the interests
    /// below it, maintained through the same (collapsed) gossip that
    /// carries view digests — a leave retracts the departed filter along
    /// its root path, a rejoin re-announces it.
    interest: RwLock<Option<InterestAnnex>>,
}

impl DelegateView {
    /// Bootstraps the delegate views of a fully populated regular
    /// `arity^depth` tree (the paper's analysis topology); all provider
    /// randomness flows from `seed`.
    ///
    /// Bootstrap models the paper's join handoff: every slot group starts
    /// out holding its subgroup's current delegates (the `slots` smallest
    /// members, the sitting process excluded from its own view).
    ///
    /// # Panics
    ///
    /// Panics if `arity`, `depth`, `slots` or `gossip_fanout` is zero.
    pub fn bootstrap(arity: u32, depth: usize, config: DelegateViewConfig, seed: u64) -> Self {
        let n = TreeShape::new(arity as usize, depth, config.slots).member_count();
        Self::bootstrap_sparse(arity, depth, config, seed, &vec![true; n])
    }

    /// Bootstraps over a **sparse** population: `occupied[i]` says whether
    /// dense index `i` is a member at round zero.  The join handoff is
    /// gap-aware — every slot group seats the `slots` smallest *occupied*
    /// members of its subgroup, an empty subgroup's group stays entirely
    /// unseated (all sentinel slots), and the pinned ring contact is
    /// each process's nearest occupied successor, so the live overlay rings
    /// over the occupied subset.  Processes joining later (into occupied
    /// *or empty* subgroups) re-enter through
    /// [`observe_join`](MembershipView::observe_join) and are seated by
    /// gossip: `admit_peer` files a newcomer into every slot group it
    /// qualifies for, including groups that were empty until then.
    ///
    /// With every address occupied this is exactly
    /// [`bootstrap`](Self::bootstrap) — same tables, same untouched RNG
    /// stream — so static scenarios are unaffected.  Sparse bootstrap
    /// itself consumes **no** randomness.
    ///
    /// # Panics
    ///
    /// Panics if `arity`, `depth`, `slots` or `gossip_fanout` is zero, or
    /// if `occupied.len() != arity^depth`.
    pub fn bootstrap_sparse(
        arity: u32,
        depth: usize,
        config: DelegateViewConfig,
        seed: u64,
        occupied: &[bool],
    ) -> Self {
        assert!(arity > 0, "arity must be positive");
        assert!(depth > 0, "depth must be positive");
        assert!(config.slots > 0, "delegate slots must be positive");
        assert!(config.gossip_fanout > 0, "gossip_fanout must be positive");
        let shape = TreeShape::new(arity as usize, depth, config.slots);
        let n = shape.member_count();
        assert_eq!(occupied.len(), n, "occupancy flags must cover all {n} addresses");
        let live = occupied.iter().filter(|&&o| o).count();
        let next_occupied = |q: usize| crate::population::next_occupied_after(occupied, q);
        let mut tables = Vec::with_capacity(n);
        let mut flat = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        for q in 0..n {
            let mut table = vec![EMPTY; shape.table_len()];
            let mut known: Vec<u32> = Vec::new();
            if occupied[q] {
                for l in 1..=depth {
                    for g in 0..shape.arity {
                        let base = shape.subgroup_base(q, l, g);
                        let size = shape.subgroup_size(l);
                        let range = shape.group_range(l, g);
                        let mut slot = range.start;
                        for (member, discovered) in
                            seen.iter_mut().enumerate().skip(base).take(size)
                        {
                            if member == q || !occupied[member] {
                                continue;
                            }
                            if slot == range.end {
                                break;
                            }
                            table[slot] = member as u32;
                            slot += 1;
                            if !*discovered {
                                *discovered = true;
                                known.push(member as u32);
                            }
                        }
                    }
                }
                let contact = next_occupied(q);
                if live > 1 && !seen[contact as usize] {
                    known.push(contact);
                }
                for &member in &known {
                    seen[member as usize] = false;
                }
            }
            tables.push(table);
            flat.push(known);
        }
        Self {
            config,
            state: RwLock::new(DelegateState {
                shape,
                tables,
                flat,
                contact: (0..n).map(next_occupied).collect(),
                alive: occupied.to_vec(),
                live,
                pending_dead: Vec::new(),
                rng: ChaCha8Rng::seed_from_u64(seed),
            }),
            interest: RwLock::new(None),
        }
    }

    /// The provider's configuration.
    pub fn config(&self) -> &DelegateViewConfig {
        &self.config
    }

    /// Returns `true` if the process is currently believed alive.
    pub fn is_live(&self, process: usize) -> bool {
        self.state.read().expect("delegate view lock poisoned").alive[process]
    }

    /// The live delegates `of` currently seats for the depth-`l` sibling
    /// subgroup with component `g` — an inspection hook for tests and
    /// diagnostics (the re-election invariant is asserted over exactly this
    /// set).
    pub fn live_delegates_of(&self, of: usize, depth: usize, g: usize) -> Vec<usize> {
        let state = self.state.read().expect("delegate view lock poisoned");
        state.tables[of][state.shape.group_range(depth, g)]
            .iter()
            .filter(|&&e| e != EMPTY && state.alive[e as usize])
            .map(|&e| e as usize)
            .collect()
    }
}

impl MembershipView for DelegateView {
    fn estimated_size(&self) -> usize {
        self.state.read().expect("delegate view lock poisoned").live
    }

    fn peer_count(&self, of: usize) -> usize {
        self.state.read().expect("delegate view lock poisoned").flat[of].len()
    }

    fn peer_at(&self, of: usize, k: usize) -> usize {
        self.state.read().expect("delegate view lock poisoned").flat[of][k] as usize
    }

    fn knows(&self, of: usize, peer: usize) -> bool {
        self.state.read().expect("delegate view lock poisoned").flat[of]
            .contains(&(peer as u32))
    }

    fn knows_at_depth(&self, of: usize, depth: usize, peer: usize) -> bool {
        if of == peer {
            return false;
        }
        let state = self.state.read().expect("delegate view lock poisoned");
        if depth > state.shape.depth || depth == 0 {
            return false;
        }
        if state.shape.common_prefix(of, peer) + 1 < depth {
            return false; // not under the shared prefix of this view depth
        }
        let g = state.shape.digit(peer, depth - 1);
        state.tables[of][state.shape.group_range(depth, g)].contains(&(peer as u32))
    }

    /// Attaches the aggregated-interest tables the slot groups carry:
    /// after this, [`MembershipView::summary_allows`] answers from the
    /// subtree summaries instead of the over-approximating default.
    ///
    /// # Panics
    ///
    /// Panics if the summary table does not cover exactly this group's
    /// member capacity.
    fn attach_interest_summaries(&self, summaries: SubtreeSummaries) {
        let annex = InterestAnnex::new(summaries);
        let members = {
            let state = self.state.read().expect("delegate view lock poisoned");
            state.shape.member_count()
        };
        assert_eq!(
            annex.member_capacity(),
            members as u128,
            "summary table must cover the delegate group's member capacity"
        );
        *self.interest.write().expect("interest annex lock poisoned") = Some(annex);
    }

    fn summary_allows(&self, subgroup: &Prefix, event: &Event) -> bool {
        match self
            .interest
            .read()
            .expect("interest annex lock poisoned")
            .as_ref()
        {
            Some(annex) => annex.allows(subgroup, event),
            None => true,
        }
    }

    /// One membership round: first the monitored-delegate sweep (crashes
    /// observed since the last round are evicted from every table, with
    /// immediate re-election from known candidates), then every live
    /// process pushes its subscription plus a random view digest to
    /// `gossip_fanout` known peers.
    fn round_elapsed(&self) {
        let mut swept: Vec<u32> = Vec::new();
        let state = &mut *self.state.write().expect("delegate view lock poisoned");
        // Monitored delegates: a crash is detected and swept within one
        // membership round (pinned-contact re-pinning included).
        while let Some(x) = state.pending_dead.pop() {
            state.evict_everywhere(x as usize);
            swept.push(x);
        }
        let n = state.alive.len();
        for sender in 0..n {
            if !state.alive[sender] {
                continue;
            }
            for _ in 0..self.config.gossip_fanout {
                if state.flat[sender].is_empty() {
                    break;
                }
                let pick = state.rng.gen_range(0..state.flat[sender].len());
                let target = state.flat[sender][pick] as usize;
                if !state.alive[target] {
                    // Stale entry (e.g. a crash observed mid-round): evict
                    // on contact, like any failure detector would.
                    state.flat[sender].swap_remove(pick);
                    state.evict_from_table(sender, target);
                    continue;
                }
                // Piggyback the sender's subscription plus a view digest;
                // the receiver files every candidate into the slot groups
                // of each depth it qualifies for.
                state.admit_peer(target, sender);
                for _ in 0..self.config.digest_size {
                    let len = state.flat[sender].len();
                    let candidate = state.flat[sender][state.rng.gen_range(0..len)] as usize;
                    if candidate != target && state.alive[candidate] {
                        state.admit_peer(target, candidate);
                    }
                }
            }
        }
        // The same sweep retracts the swept processes' interests from the
        // summary tables (the digest that evicts a delegate also carries
        // the shrunk subtree summary).
        if !swept.is_empty() {
            if let Some(annex) = self
                .interest
                .write()
                .expect("interest annex lock poisoned")
                .as_mut()
            {
                for x in swept {
                    annex.on_departure(x as usize);
                }
            }
        }
    }

    fn observe_join(&self, process: usize) {
        let state = &mut *self.state.write().expect("delegate view lock poisoned");
        if state.alive[process] {
            return;
        }
        state.alive[process] = true;
        state.live += 1;
        // Re-announce the rejoiner's subscription to the summary tables.
        if let Some(annex) = self
            .interest
            .write()
            .expect("interest annex lock poisoned")
            .as_mut()
        {
            annex.on_join(process);
        }
        // A crash-then-rejoin must not leave the process queued for the
        // monitored sweep: it is live again, so nothing to evict.
        state.pending_dead.retain(|&x| x as usize != process);
        // The joiner re-subscribes through its ring successor; its live
        // ring predecessor re-pins onto it.  Slot tables refill by gossip
        // (the join handoff, replayed incrementally).
        state.pin_contact(process);
        let n = state.alive.len();
        if let Some(offset) = (1..n).find(|offset| state.alive[(process + n - offset) % n]) {
            let predecessor = (process + n - offset) % n;
            if predecessor != process {
                state.pin_to(predecessor, process);
            }
        }
    }

    fn observe_leave(&self, process: usize) {
        let state = &mut *self.state.write().expect("delegate view lock poisoned");
        if !state.alive[process] {
            return;
        }
        state.alive[process] = false;
        state.live -= 1;
        // An unsub propagates eagerly: evict the leaver everywhere (with
        // re-election) and drop the leaver's own knowledge.
        state.evict_everywhere(process);
        for slot in state.tables[process].iter_mut() {
            *slot = EMPTY;
        }
        state.flat[process].clear();
        // The eager unsub also retracts the leaver's interests.
        if let Some(annex) = self
            .interest
            .write()
            .expect("interest annex lock poisoned")
            .as_mut()
        {
            annex.on_departure(process);
        }
    }

    fn observe_crash(&self, process: usize) {
        let state = &mut *self.state.write().expect("delegate view lock poisoned");
        if !state.alive[process] {
            return;
        }
        state.alive[process] = false;
        state.live -= 1;
        // Swept by the monitored-delegate pass of the next membership round.
        state.pending_dead.push(process as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// Number of live processes reachable from `start` over live-to-live
    /// view edges.
    fn reachable_live(view: &DelegateView, n: usize, start: usize) -> usize {
        let mut seen = vec![false; n];
        let mut queue = VecDeque::from([start]);
        seen[start] = true;
        let mut count = 1;
        while let Some(process) = queue.pop_front() {
            for k in 0..view.peer_count(process) {
                let peer = view.peer_at(process, k);
                if view.is_live(peer) && !seen[peer] {
                    seen[peer] = true;
                    count += 1;
                    queue.push_back(peer);
                }
            }
        }
        count
    }

    #[test]
    fn bootstrap_seats_the_subgroup_delegates_per_depth() {
        // 3-ary tree of depth 3 (n = 27), 2 slots per subgroup.
        let config = DelegateViewConfig::default().with_slots(2);
        let view = DelegateView::bootstrap(3, 3, config, 1);
        // Process 0's depth-1 view: the two smallest members of each root
        // subgroup (itself excluded from its own).
        for (g, expected) in [(0, [1, 2]), (1, [9, 10]), (2, [18, 19])] {
            for peer in expected {
                assert!(view.knows_at_depth(0, 1, peer), "depth 1 group {g} delegate {peer}");
            }
        }
        assert!(!view.knows_at_depth(0, 1, 11), "non-delegates stay unknown");
        // Depth-2 view of process 13 (digits 1.1.1): delegates of subgroups
        // 1.0 / 1.1 / 1.2.
        for peer in [9, 10, 12, 14, 15, 16] {
            assert!(view.knows_at_depth(13, 2, peer), "depth 2 delegate {peer}");
        }
        // Leaf neighbours.
        assert!(view.knows_at_depth(13, 3, 12) && view.knows_at_depth(13, 3, 14));
        assert!(!view.knows_at_depth(13, 3, 9), "9 is outside 13's leaf subgroup");
        // Flat view is bounded by (d−1)·a·slots + a (+1 for the contact),
        // far below n would be for larger trees; never includes self.
        assert!(view.peer_count(13) <= config.table_entries(3, 3) + 1);
        assert!(!view.knows(13, 13));
        assert_eq!(view.estimated_size(), 27);
    }

    #[test]
    fn knows_at_depth_defaults_to_flat_knows_for_other_providers() {
        use crate::provider::{GlobalOracleView, PartialView, PartialViewConfig};
        let global = GlobalOracleView::new(8);
        assert!(global.knows_at_depth(0, 1, 5));
        assert!(!global.knows_at_depth(0, 2, 0));
        let partial = PartialView::bootstrap(8, PartialViewConfig::default(), 3);
        for peer in 0..8 {
            for depth in 1..=3 {
                assert_eq!(
                    partial.knows_at_depth(2, depth, peer),
                    partial.knows(2, peer),
                    "flat providers ignore the depth"
                );
            }
        }
    }

    #[test]
    fn gossip_rounds_are_deterministic_per_seed_and_stay_bounded() {
        let snapshot = |seed: u64| {
            let view = DelegateView::bootstrap(3, 2, DelegateViewConfig::default(), seed);
            for _ in 0..10 {
                view.round_elapsed();
            }
            (0..9)
                .map(|p| {
                    let mut peers: Vec<usize> =
                        (0..view.peer_count(p)).map(|k| view.peer_at(p, k)).collect();
                    peers.sort_unstable();
                    peers
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(snapshot(9), snapshot(9));
        let view = DelegateView::bootstrap(4, 3, DelegateViewConfig::default(), 5);
        for _ in 0..20 {
            view.round_elapsed();
        }
        let bound = DelegateViewConfig::default().table_entries(4, 3) + 1;
        for p in 0..64 {
            assert!(view.peer_count(p) <= bound, "flat view stays bounded");
        }
    }

    #[test]
    fn crash_triggers_sweep_and_re_election_within_one_round() {
        // n = 16, a = 4, d = 2, 2 slots: process 15's depth-1 delegates of
        // subgroup 0 are {0, 1}.
        let config = DelegateViewConfig::default().with_slots(2);
        let view = DelegateView::bootstrap(4, 2, config, 11);
        assert_eq!(view.live_delegates_of(15, 1, 0), vec![0, 1]);
        view.observe_crash(0);
        // Crash detection is monitored: swept at the next membership round.
        assert!(view.knows(15, 0), "crash is not evicted before the sweep");
        view.round_elapsed();
        assert!(!view.knows(15, 0), "sweep evicts the crashed delegate everywhere");
        // Re-election promoted an already-known live member of subgroup 0
        // (1 kept its seat; 2 or 3 may join as gossip spreads candidates).
        let seated = view.live_delegates_of(15, 1, 0);
        assert!(seated.contains(&1), "surviving delegate keeps its seat: {seated:?}");
        assert!(!seated.is_empty(), "the occupied subtree keeps a live delegate");
        // The live overlay stays connected through the churn.
        assert_eq!(reachable_live(&view, 16, 1), 15);
    }

    #[test]
    fn smaller_candidates_displace_larger_delegates_deterministically() {
        let config = DelegateViewConfig::default().with_slots(1);
        let view = DelegateView::bootstrap(4, 2, config, 2);
        // With one slot, process 0 seats only the smallest member of
        // subgroup 3 (index 12).
        assert!(view.knows_at_depth(0, 1, 12));
        assert!(!view.knows_at_depth(0, 1, 13));
        view.observe_crash(12);
        view.round_elapsed();
        // 12's seat passes to the next-smallest live member once gossip
        // has carried a candidate over; run a few rounds to let it arrive.
        for _ in 0..10 {
            view.round_elapsed();
        }
        let seated = view.live_delegates_of(0, 1, 3);
        assert!(
            seated.first().is_some_and(|&d| d == 13),
            "smallest live member re-elected, got {seated:?}"
        );
    }

    #[test]
    fn leave_is_evicted_eagerly_and_rejoin_reconnects() {
        let view = DelegateView::bootstrap(3, 2, DelegateViewConfig::default(), 3);
        view.observe_leave(4);
        assert_eq!(view.estimated_size(), 8);
        for p in 0..9 {
            assert!(!view.knows(p, 4), "unsub evicts everywhere");
        }
        assert!(view.knows(3, 5), "ring predecessor re-pins past the leaver");
        view.observe_join(4);
        assert_eq!(view.estimated_size(), 9);
        assert!(view.knows(4, 5), "joiner knows its ring contact");
        assert!(view.knows(3, 4), "predecessor re-pins onto the joiner");
        for _ in 0..15 {
            view.round_elapsed();
        }
        assert_eq!(reachable_live(&view, 9, 0), 9, "gossip re-fills the joiner's view");
        // Duplicate notifications are idempotent.
        view.observe_join(4);
        view.observe_leave(7);
        view.observe_leave(7);
        assert_eq!(view.estimated_size(), 8);
    }

    #[test]
    fn crash_then_rejoin_is_not_swept() {
        let view = DelegateView::bootstrap(3, 2, DelegateViewConfig::default(), 13);
        view.observe_crash(4);
        view.observe_join(4);
        // The rejoin cancels the queued monitored sweep: the next round
        // must not evict the (live again) process from anyone's view.
        view.round_elapsed();
        assert!(view.is_live(4));
        assert_eq!(view.estimated_size(), 9);
        assert!(view.knows(3, 4), "ring predecessor still pins the rejoined process");
        assert!(view.knows(4, 5), "joiner still knows its ring contact");
    }

    #[test]
    fn connectivity_and_delegate_cover_survive_heavy_churn() {
        let view = DelegateView::bootstrap(3, 3, DelegateViewConfig::default().with_slots(2), 17);
        for round in 0..30usize {
            if round % 3 == 0 {
                view.observe_crash((round * 5 + 1) % 27);
            }
            if round % 4 == 0 {
                view.observe_leave((round * 7 + 2) % 27);
            }
            view.round_elapsed();
        }
        for _ in 0..10 {
            view.round_elapsed();
        }
        let live: Vec<usize> = (0..27).filter(|&p| view.is_live(p)).collect();
        assert!(live.len() >= 2, "churn left enough of the group alive");
        assert_eq!(
            reachable_live(&view, 27, live[0]),
            live.len(),
            "every live process stays reachable after churn"
        );
    }

    #[test]
    fn sparse_bootstrap_seats_delegates_over_gaps() {
        // 4-ary depth-2 tree (n = 16); subgroup 2 (8..12) keeps only its
        // largest member, subgroup 3 (12..16) starts entirely empty.
        let mut occupied = vec![true; 16];
        for absent in [8, 9, 10, 12, 13, 14, 15] {
            occupied[absent] = false;
        }
        let config = DelegateViewConfig::default().with_slots(2);
        let view = DelegateView::bootstrap_sparse(4, 2, config, 5, &occupied);
        assert_eq!(view.estimated_size(), 9);
        // Gap-aware election: subgroup 2's only delegate is 11 — the
        // smallest *occupied* member, not the smallest address.
        assert_eq!(view.live_delegates_of(0, 1, 2), vec![11]);
        assert!(view.knows_at_depth(0, 1, 11));
        assert!(!view.knows_at_depth(0, 1, 8), "absent addresses are never seated");
        // The empty subgroup has no delegates anywhere.
        assert!(view.live_delegates_of(0, 1, 3).is_empty());
        // The ring contact skips the trailing gap: 11's successor wraps to 0.
        assert!(view.knows(11, 0));
        // Absent processes hold no knowledge yet.
        assert_eq!(view.peer_count(12), 0);
        // The live overlay is connected from the start.
        assert_eq!(reachable_live(&view, 16, 0), 9);
    }

    #[test]
    fn join_into_an_empty_subgroup_gets_seated_by_gossip() {
        // Subgroup 3 of the 4-ary depth-2 tree starts empty; 12 joins later.
        let mut occupied = vec![true; 16];
        occupied[12..16].fill(false);
        let config = DelegateViewConfig::default().with_slots(2);
        let view = DelegateView::bootstrap_sparse(4, 2, config, 9, &occupied);
        assert!(view.live_delegates_of(0, 1, 3).is_empty());
        view.observe_join(12);
        assert_eq!(view.estimated_size(), 13);
        assert!(view.knows(12, 0), "joiner pins its occupied ring successor");
        assert!(view.knows(11, 12), "ring predecessor re-pins onto the joiner");
        // Gossip seats the newcomer in the (previously empty) slot groups.
        for _ in 0..25 {
            view.round_elapsed();
        }
        let mut seated = 0;
        for q in (0..12).filter(|&q| view.is_live(q)) {
            let delegates = view.live_delegates_of(q, 1, 3);
            if !delegates.is_empty() {
                assert_eq!(delegates, vec![12]);
                seated += 1;
            }
        }
        assert!(
            seated >= 10,
            "gossip must spread the joiner into almost every table, got {seated}/12"
        );
        assert_eq!(reachable_live(&view, 16, 0), 13);
    }

    #[test]
    fn sparse_bootstrap_over_a_full_population_is_the_plain_bootstrap() {
        let config = DelegateViewConfig::default();
        let full = DelegateView::bootstrap(3, 3, config, 21);
        let sparse = DelegateView::bootstrap_sparse(3, 3, config, 21, &[true; 27]);
        for p in 0..27 {
            let peers = |v: &DelegateView| -> Vec<usize> {
                (0..v.peer_count(p)).map(|k| v.peer_at(p, k)).collect()
            };
            assert_eq!(peers(&full), peers(&sparse));
            for depth in 1..=3 {
                for peer in 0..27 {
                    assert_eq!(
                        full.knows_at_depth(p, depth, peer),
                        sparse.knows_at_depth(p, depth, peer)
                    );
                }
            }
        }
        // And the gossip streams stay aligned (same RNG, same state).
        full.round_elapsed();
        sparse.round_elapsed();
        for p in 0..27 {
            assert_eq!(full.peer_count(p), sparse.peer_count(p));
        }
    }

    #[test]
    fn interest_annex_follows_churn() {
        use crate::SubtreeSummaries;
        use pmcast_addr::AddressSpace;
        use pmcast_interest::{Filter, Predicate};

        let view = DelegateView::bootstrap(2, 2, DelegateViewConfig::default(), 5);
        let space = AddressSpace::regular(2, 2).unwrap();
        let event = Event::builder(1).int("topic", 7).build();
        let subtree_1 = Prefix::from_components(vec![1]);
        // Without summaries every subgroup over-approximates to "maybe".
        assert!(view.summary_allows(&subtree_1, &event));
        // Only process 1.0 (dense index 2) subscribes to topic 7.
        let mut filters = vec![None; 4];
        filters[2] = Some(Filter::new().with("topic", Predicate::one_of([7i64])));
        view.attach_interest_summaries(SubtreeSummaries::build(space, filters));
        assert!(view.summary_allows(&subtree_1, &event));
        assert!(!view.summary_allows(&Prefix::from_components(vec![0]), &event));
        // The subscriber leaves: its interest is retracted along the path...
        view.observe_leave(2);
        assert!(!view.summary_allows(&subtree_1, &event));
        // ...and a rejoin re-announces the original subscription.
        view.observe_join(2);
        assert!(view.summary_allows(&subtree_1, &event));
        // A crash retracts too, but only once the monitored sweep runs.
        view.observe_crash(2);
        assert!(view.summary_allows(&subtree_1, &event));
        view.round_elapsed();
        assert!(!view.summary_allows(&subtree_1, &event));
    }

    #[test]
    #[should_panic(expected = "member capacity")]
    fn mismatched_summary_capacity_is_rejected() {
        use crate::SubtreeSummaries;
        use pmcast_addr::AddressSpace;

        let view = DelegateView::bootstrap(2, 2, DelegateViewConfig::default(), 5);
        let space = AddressSpace::regular(2, 3).unwrap();
        view.attach_interest_summaries(SubtreeSummaries::build(space, vec![None; 9]));
    }

    #[test]
    #[should_panic(expected = "delegate slots must be positive")]
    fn zero_slots_are_rejected() {
        let config = DelegateViewConfig {
            slots: 0,
            gossip_fanout: 1,
            digest_size: 1,
        };
        let _ = DelegateView::bootstrap(2, 2, config, 0);
    }
}
