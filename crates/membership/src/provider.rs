//! Membership *providers*: where a process's knowledge of "who else is in
//! the group" comes from.
//!
//! The dissemination protocols never enumerate the group themselves; they
//! draw fanout candidates from a [`MembershipView`].  This is the boundary
//! that turns "a group of `n` known processes" into "a population
//! discovered by gossip": the same protocol code runs against
//!
//! * [`GlobalOracleView`] — every process knows every other process.  This
//!   is the omniscient-membership model the evaluation workloads of the
//!   paper assume, and the provider every pre-existing scenario uses.  It is
//!   stateless, consumes no randomness and ignores churn notifications, so
//!   scenarios built on it are **bit-identical** to the historical
//!   oracle-based construction (the parallel-trial determinism invariant).
//! * [`PartialView`] — an lpbcast-style gossip membership layer: each
//!   process maintains a **bounded** partial view of the group
//!   ([`PartialViewConfig::view_size`] entries), membership knowledge
//!   spreads by piggybacking subscriptions on periodic gossip exchanges
//!   ([`PartialView::round_elapsed`], driven once per simulation round), and
//!   overflowing entries are evicted uniformly at random.  One entry per
//!   process is special: its **pinned contact**, the live ring successor it
//!   joined through.  The contact is monitored (crash detection) and never
//!   evicted, so the live overlay always contains a ring — every live
//!   process stays reachable by construction, the role HyParView assigns to
//!   its active view, while the remaining entries mix towards the uniform
//!   random bounded views lpbcast's analysis assumes.
//!
//! ## View trait contract
//!
//! Processes are identified by their **dense simulation index**
//! (`0..member_count`, the order of
//! [`TreeTopology::members`](crate::TreeTopology::members)); the provider
//! layer is deliberately independent of addresses so it can sit below any
//! topology.
//!
//! * [`peer_count`](MembershipView::peer_count) /
//!   [`peer_at`](MembershipView::peer_at) enumerate the peers a process
//!   currently knows, **never including the process itself**.  `peer_at(of,
//!   k)` must be a pure function of the view state (no interior RNG), so a
//!   fanout draw of `k` distinct indices in `0..peer_count(of)` maps to `k`
//!   distinct peers.
//! * [`knows`](MembershipView::knows) is consistent with the enumeration:
//!   `knows(of, p)` ⇔ `p == peer_at(of, k)` for some `k`.
//! * **Sampling determinism.** All randomness a provider consumes (view
//!   exchanges, evictions) flows from the seed it was constructed with —
//!   for simulation trials, a stream derived from the per-trial seed (see
//!   the seed contract in `pmcast-sim`'s runner docs) — and never from
//!   shared global state.  Two providers built with the same parameters and
//!   seed go through bit-identical states, which keeps parallel Monte-Carlo
//!   trials bit-identical to sequential ones.
//! * **Eviction rules.** [`observe_leave`](MembershipView::observe_leave)
//!   models an *unsubscription*: the process is evicted from every view
//!   immediately (lpbcast propagates "unsubs" eagerly; a synchronous-round
//!   simulation collapses that propagation into the notification), and
//!   processes whose pinned contact left re-pin to their next live
//!   successor.  [`observe_crash`](MembershipView::observe_crash) only
//!   marks the process dead: a crashed process keeps occupying view entries
//!   until a peer *attempts to contact it* (or, for the monitored pinned
//!   contact, until the next membership round) and evicts it — failure
//!   detection by missed contact, so crash staleness is observable, exactly
//!   the effect partial-membership papers study.
//!   [`observe_join`](MembershipView::observe_join) re-admits a process
//!   through its ring contact.
//! * [`estimated_size`](MembershipView::estimated_size) is the provider's
//!   belief about the number of live processes, used for round-budget
//!   estimation (Pittel's bound needs `n`, or an estimate of it).

use std::sync::RwLock;

use pmcast_addr::Prefix;
use pmcast_interest::Event;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::SubtreeSummaries;

/// A process's source of membership knowledge, keyed by dense process
/// index.  See the [module docs](self) for the full contract.
pub trait MembershipView: Send + Sync + std::fmt::Debug {
    /// The provider's estimate of the number of live group members.
    fn estimated_size(&self) -> usize;

    /// Number of peers the process currently knows (itself excluded).
    fn peer_count(&self, of: usize) -> usize;

    /// The `k`-th known peer of the process, `k < peer_count(of)`.
    ///
    /// # Panics
    ///
    /// May panic if `k` is out of range.
    fn peer_at(&self, of: usize, k: usize) -> usize;

    /// Returns `true` if `of` currently knows `peer`.
    fn knows(&self, of: usize, peer: usize) -> bool;

    /// Returns `true` if `of` currently knows `peer` as a gossip candidate
    /// **at tree depth `depth`** (1-based, the paper's per-depth views).
    ///
    /// This is the query the pmcast fanout draw asks: "may I contact this
    /// depth-`depth` view entry?".  Flat providers ([`GlobalOracleView`],
    /// [`PartialView`]) have no per-depth structure and fall back to
    /// [`knows`](Self::knows); the hierarchical
    /// [`DelegateView`](crate::DelegateView) answers straight from the slot
    /// group of that depth in `O(slots)` — the `delegate_draw` micro-bench
    /// guards that the depth-structured draw stays allocation-free.
    fn knows_at_depth(&self, of: usize, _depth: usize, peer: usize) -> bool {
        self.knows(of, peer)
    }

    /// Returns `true` if every process knows the whole group.  Protocols
    /// whose candidate sets are already subsets of the group (the genuine
    /// baseline's audiences) use this to skip materializing filtered
    /// candidate lists.
    fn is_global(&self) -> bool {
        false
    }

    /// Advances the membership layer by one gossip round (a no-op for
    /// providers that do not maintain state, like [`GlobalOracleView`]).
    fn round_elapsed(&self) {}

    /// Observes a process (re-)joining the group.
    fn observe_join(&self, _process: usize) {}

    /// Observes a graceful leave (an lpbcast "unsub"): the process is
    /// evicted from every view immediately.
    fn observe_leave(&self, _process: usize) {}

    /// Observes a crash: the process is marked dead and evicted lazily, on
    /// the next attempted contact.
    fn observe_crash(&self, _process: usize) {}

    /// Hands the provider the aggregated-interest tables of the group (one
    /// over-approximating [`InterestSummary`](pmcast_interest::InterestSummary)
    /// per subtree).  Providers that carry interest alongside membership —
    /// [`DelegateView`](crate::DelegateView), whose slot groups represent
    /// whole subtrees — store the table and serve
    /// [`summary_allows`](Self::summary_allows) from it; flat providers
    /// ignore the call (they have no subtree structure to hang summaries
    /// on, so their `summary_allows` stays vacuously `true`).
    fn attach_interest_summaries(&self, _summaries: SubtreeSummaries) {}

    /// Returns `true` unless the provider's aggregated interest knowledge
    /// **proves** that no process below `subgroup` wants `event`.
    ///
    /// This is the summary-routing query the pmcast fanout draw asks before
    /// spending a candidate slot on a subtree.  The contract mirrors the
    /// [`InterestSummary`](pmcast_interest::InterestSummary)
    /// over-approximation invariant: `false` is a *proof* of disinterest
    /// (skipping is reliability-safe), `true` is the safe default — a
    /// provider with no summaries attached never causes a skip.  The answer
    /// must be a pure function of the attached tables (no interior RNG), so
    /// routing decisions stay outside the three per-trial random streams.
    fn summary_allows(&self, _subgroup: &Prefix, _event: &Event) -> bool {
        true
    }
}

/// Global membership knowledge: every process knows every other process.
///
/// This wraps the historical "oracle" construction — the group is a closed
/// set of `n` processes known to everyone — behind the [`MembershipView`]
/// trait.  It holds no state, consumes no randomness and ignores churn
/// notifications, so protocols built on it behave **bit-identically** to
/// the pre-trait construction (crashed processes keep their view entries;
/// the network layer drops messages to them, as before).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalOracleView {
    member_count: usize,
}

impl GlobalOracleView {
    /// Creates the global view of a group with `member_count` processes.
    pub fn new(member_count: usize) -> Self {
        Self { member_count }
    }
}

impl MembershipView for GlobalOracleView {
    fn estimated_size(&self) -> usize {
        self.member_count
    }

    fn peer_count(&self, _of: usize) -> usize {
        self.member_count.saturating_sub(1)
    }

    fn peer_at(&self, of: usize, k: usize) -> usize {
        // Everyone but `of`, in dense-index order: indices at or above the
        // process's own shift up by one.
        if k >= of {
            k + 1
        } else {
            k
        }
    }

    fn knows(&self, of: usize, peer: usize) -> bool {
        peer != of && peer < self.member_count
    }

    fn is_global(&self) -> bool {
        true
    }
}

/// Parameters of the [`PartialView`] gossip membership layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartialViewConfig {
    /// Maximum number of peers a process keeps in its view (`ℓ` in
    /// lpbcast); overflowing entries are evicted uniformly at random
    /// (except the pinned ring contact).
    pub view_size: usize,
    /// Number of view peers each process contacts per membership round.
    pub gossip_fanout: usize,
    /// Number of additional view entries piggybacked on each contact
    /// (besides the sender's own subscription).
    pub digest_size: usize,
}

impl Default for PartialViewConfig {
    fn default() -> Self {
        Self {
            view_size: 12,
            gossip_fanout: 3,
            digest_size: 4,
        }
    }
}

impl PartialViewConfig {
    /// Sets the bounded view size, returning the config for chaining.
    pub fn with_view_size(mut self, view_size: usize) -> Self {
        self.view_size = view_size;
        self
    }
}

/// Mutable provider state, behind one lock: the per-process views, the
/// pinned contacts, the liveness map and the provider's own PRNG stream.
#[derive(Debug)]
struct PartialViewState {
    /// `views[i]` holds the dense indices of the peers `i` knows; bounded
    /// by [`PartialViewConfig::view_size`].
    views: Vec<Vec<u32>>,
    /// `contact[i]` is the pinned entry of `views[i]`: `i`'s live ring
    /// successor, monitored and never evicted (see the module docs).
    contact: Vec<u32>,
    alive: Vec<bool>,
    live: usize,
    rng: ChaCha8Rng,
    /// Scratch for the per-contact digest, reused across exchanges.
    digest: Vec<u32>,
}

impl PartialViewState {
    /// The next live index strictly after `of`, cyclically (`None` if `of`
    /// is the only live process).
    fn next_live(&self, of: usize) -> Option<usize> {
        let n = self.alive.len();
        (1..n).map(|offset| (of + offset) % n).find(|&i| self.alive[i])
    }

    /// Inserts `peer` into `of`'s view, evicting a uniformly random
    /// non-pinned entry if the view overflows its bound.
    fn admit(&mut self, of: usize, peer: u32, bound: usize) {
        if self.views[of].contains(&peer) {
            return;
        }
        self.views[of].push(peer);
        if self.views[of].len() > bound {
            let pinned = self.contact[of];
            loop {
                let evict = self.rng.gen_range(0..self.views[of].len());
                // At most one entry is pinned and the view holds at least
                // two, so this terminates.
                if self.views[of][evict] != pinned {
                    self.views[of].swap_remove(evict);
                    break;
                }
            }
        }
    }

    /// Re-pins `of`'s contact to its current live ring successor and makes
    /// sure that successor is in `of`'s view.
    fn pin_contact(&mut self, of: usize, bound: usize) {
        if let Some(successor) = self.next_live(of) {
            self.contact[of] = successor as u32;
            self.admit(of, successor as u32, bound);
        }
    }
}

/// An lpbcast-style partial membership view with a pinned ring contact
/// (see the [module docs](self) for the contract and eviction rules).
///
/// Bootstrap seeds every process's view with its ring successors — the
/// first of which becomes its pinned contact — so the initial overlay is
/// strongly connected by construction; gossip exchanges then mix the
/// unpinned entries towards uniformly random bounded subsets.
#[derive(Debug)]
pub struct PartialView {
    config: PartialViewConfig,
    state: RwLock<PartialViewState>,
}

impl PartialView {
    /// Bootstraps the views of a fully populated group of `member_count`
    /// processes; all provider randomness (exchange picks, evictions) flows
    /// from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `view_size` or `gossip_fanout` is zero.
    pub fn bootstrap(member_count: usize, config: PartialViewConfig, seed: u64) -> Self {
        Self::bootstrap_sparse(&vec![true; member_count], config, seed)
    }

    /// Bootstraps over a **sparse** population: `occupied[i]` says whether
    /// dense index `i` is a member at round zero.  Occupied processes seed
    /// their views with their nearest occupied ring successors (the first
    /// of which becomes the pinned contact, so the initial overlay is the
    /// ring over the *occupied* subset); absent processes start with empty
    /// views and re-enter through [`observe_join`](MembershipView::observe_join).
    ///
    /// With every slot occupied this is exactly [`bootstrap`](Self::bootstrap)
    /// — same views, same untouched RNG stream — so static scenarios are
    /// unaffected.  Sparse bootstrap itself consumes **no** randomness.
    ///
    /// # Panics
    ///
    /// Panics if `view_size` or `gossip_fanout` is zero.
    pub fn bootstrap_sparse(occupied: &[bool], config: PartialViewConfig, seed: u64) -> Self {
        assert!(config.view_size > 0, "view_size must be positive");
        assert!(config.gossip_fanout > 0, "gossip_fanout must be positive");
        let member_count = occupied.len();
        let live = occupied.iter().filter(|&&o| o).count();
        let initial = config.view_size.min(live.saturating_sub(1));
        let views = (0..member_count)
            .map(|i| {
                if !occupied[i] {
                    return Vec::new();
                }
                (1..member_count)
                    .map(|offset| (i + offset) % member_count)
                    .filter(|&j| occupied[j])
                    .take(initial)
                    .map(|j| j as u32)
                    .collect()
            })
            .collect();
        let contact = (0..member_count)
            .map(|i| crate::population::next_occupied_after(occupied, i))
            .collect();
        Self {
            config,
            state: RwLock::new(PartialViewState {
                views,
                contact,
                alive: occupied.to_vec(),
                live,
                rng: ChaCha8Rng::seed_from_u64(seed),
                digest: Vec::new(),
            }),
        }
    }

    /// The provider's configuration.
    pub fn config(&self) -> &PartialViewConfig {
        &self.config
    }

    /// Returns `true` if the process is currently believed alive.
    pub fn is_live(&self, process: usize) -> bool {
        self.state.read().expect("partial view lock poisoned").alive[process]
    }
}

impl MembershipView for PartialView {
    fn estimated_size(&self) -> usize {
        self.state.read().expect("partial view lock poisoned").live
    }

    fn peer_count(&self, of: usize) -> usize {
        self.state.read().expect("partial view lock poisoned").views[of].len()
    }

    fn peer_at(&self, of: usize, k: usize) -> usize {
        self.state.read().expect("partial view lock poisoned").views[of][k] as usize
    }

    fn knows(&self, of: usize, peer: usize) -> bool {
        self.state.read().expect("partial view lock poisoned").views[of]
            .contains(&(peer as u32))
    }

    /// One membership gossip round: every live process first checks its
    /// monitored pinned contact (evicting and re-pinning if it crashed),
    /// then pushes to `gossip_fanout` peers from its view; each reachable
    /// target learns the sender's subscription plus a random
    /// `digest_size`-entry digest of the sender's view, and targets found
    /// dead are evicted from the sender's view (failure detection by missed
    /// contact).
    fn round_elapsed(&self) {
        let state = &mut *self.state.write().expect("partial view lock poisoned");
        let bound = self.config.view_size;
        for sender in 0..state.views.len() {
            if !state.alive[sender] {
                continue;
            }
            // The pinned contact is monitored: a crashed contact is
            // detected within one round and the ring re-pins around it.
            let pinned = state.contact[sender] as usize;
            if !state.alive[pinned] {
                state.views[sender].retain(|&peer| peer as usize != pinned);
                state.pin_contact(sender, bound);
            }
            for _ in 0..self.config.gossip_fanout {
                if state.views[sender].is_empty() {
                    break;
                }
                let pick = state.rng.gen_range(0..state.views[sender].len());
                let target = state.views[sender][pick] as usize;
                if !state.alive[target] {
                    state.views[sender].swap_remove(pick);
                    continue;
                }
                // Piggyback the sender's subscription plus a view digest.
                let mut digest = std::mem::take(&mut state.digest);
                digest.clear();
                digest.push(sender as u32);
                for _ in 0..self.config.digest_size {
                    let len = state.views[sender].len();
                    digest.push(state.views[sender][state.rng.gen_range(0..len)]);
                }
                for &peer in digest.iter() {
                    if peer as usize != target && state.alive[peer as usize] {
                        state.admit(target, peer, bound);
                    }
                }
                state.digest = digest;
            }
        }
    }

    fn observe_join(&self, process: usize) {
        let state = &mut *self.state.write().expect("partial view lock poisoned");
        if state.alive[process] {
            return;
        }
        state.alive[process] = true;
        state.live += 1;
        let bound = self.config.view_size;
        // The joiner subscribes through its ring successor; its live ring
        // predecessor re-pins onto it, restoring the exact live ring.
        state.pin_contact(process, bound);
        if let Some(offset) = {
            let n = state.alive.len();
            (1..n).find(|offset| state.alive[(process + n - offset) % n])
        } {
            let n = state.alive.len();
            let predecessor = (process + n - offset) % n;
            if predecessor != process {
                state.contact[predecessor] = process as u32;
                state.admit(predecessor, process as u32, bound);
            }
        }
    }

    fn observe_leave(&self, process: usize) {
        let state = &mut *self.state.write().expect("partial view lock poisoned");
        if !state.alive[process] {
            return;
        }
        state.alive[process] = false;
        state.live -= 1;
        // An unsub is propagated eagerly: evict the leaver everywhere and
        // re-pin anyone whose ring contact it was.
        for view in &mut state.views {
            view.retain(|&peer| peer as usize != process);
        }
        state.views[process].clear();
        let bound = self.config.view_size;
        for of in 0..state.views.len() {
            if state.alive[of] && state.contact[of] as usize == process {
                state.pin_contact(of, bound);
            }
        }
    }

    fn observe_crash(&self, process: usize) {
        let state = &mut *self.state.write().expect("partial view lock poisoned");
        if !state.alive[process] {
            return;
        }
        state.alive[process] = false;
        state.live -= 1;
        // No eager eviction: peers discover the crash on their next
        // attempted contact (see `round_elapsed`).
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// Number of *live* processes reachable from `start` over live-to-live
    /// view edges.
    fn reachable_live(view: &PartialView, n: usize, start: usize) -> usize {
        let mut seen = vec![false; n];
        let mut queue = VecDeque::from([start]);
        seen[start] = true;
        let mut count = 1;
        while let Some(process) = queue.pop_front() {
            for k in 0..view.peer_count(process) {
                let peer = view.peer_at(process, k);
                if view.is_live(peer) && !seen[peer] {
                    seen[peer] = true;
                    count += 1;
                    queue.push_back(peer);
                }
            }
        }
        count
    }

    #[test]
    fn global_view_enumerates_everyone_but_self() {
        let view = GlobalOracleView::new(5);
        assert_eq!(view.estimated_size(), 5);
        assert_eq!(view.peer_count(2), 4);
        let peers: Vec<usize> = (0..view.peer_count(2)).map(|k| view.peer_at(2, k)).collect();
        assert_eq!(peers, vec![0, 1, 3, 4]);
        assert!(view.knows(2, 4));
        assert!(!view.knows(2, 2));
        assert!(!view.knows(2, 5));
        // Churn notifications and rounds are no-ops.
        view.observe_crash(1);
        view.observe_leave(3);
        view.round_elapsed();
        assert_eq!(view.peer_count(2), 4);
    }

    #[test]
    fn bootstrap_views_are_bounded_and_exclude_self() {
        let config = PartialViewConfig::default().with_view_size(6);
        let view = PartialView::bootstrap(40, config, 1);
        for process in 0..40 {
            assert_eq!(view.peer_count(process), 6);
            for k in 0..view.peer_count(process) {
                assert_ne!(view.peer_at(process, k), process);
            }
            assert!(!view.knows(process, process));
            assert!(view.knows(process, (process + 1) % 40), "ring contact present");
        }
        assert_eq!(view.estimated_size(), 40);
    }

    #[test]
    fn tiny_group_views_hold_everyone_else() {
        let view = PartialView::bootstrap(3, PartialViewConfig::default(), 2);
        assert_eq!(view.peer_count(0), 2);
        assert!(view.knows(0, 1) && view.knows(0, 2));
    }

    #[test]
    fn views_stay_bounded_and_connected_through_gossip() {
        let config = PartialViewConfig {
            view_size: 5,
            gossip_fanout: 3,
            digest_size: 4,
        };
        let view = PartialView::bootstrap(30, config, 7);
        for _ in 0..40 {
            view.round_elapsed();
        }
        for process in 0..30 {
            assert!(view.peer_count(process) <= 5);
            for k in 0..view.peer_count(process) {
                assert_ne!(view.peer_at(process, k), process);
            }
            // The pinned ring contact survives any amount of mixing.
            assert!(view.knows(process, (process + 1) % 30));
        }
        assert_eq!(reachable_live(&view, 30, 0), 30, "overlay stays connected");
    }

    #[test]
    fn gossip_rounds_are_deterministic_per_seed() {
        let snapshot = |seed: u64| {
            let view = PartialView::bootstrap(25, PartialViewConfig::default(), seed);
            for _ in 0..10 {
                view.round_elapsed();
            }
            (0..25)
                .map(|p| (0..view.peer_count(p)).map(|k| view.peer_at(p, k)).collect())
                .collect::<Vec<Vec<usize>>>()
        };
        assert_eq!(snapshot(9), snapshot(9));
        assert_ne!(snapshot(9), snapshot(10), "different seeds mix differently");
    }

    #[test]
    fn leave_is_evicted_eagerly_crash_lazily() {
        let config = PartialViewConfig::default().with_view_size(8);
        let view = PartialView::bootstrap(20, config, 3);
        view.observe_leave(4);
        assert_eq!(view.estimated_size(), 19);
        assert!(!view.is_live(4));
        for process in 0..20 {
            assert!(!view.knows(process, 4), "unsub evicts everywhere");
        }
        assert!(view.knows(3, 5), "predecessor re-pins past the leaver");

        view.observe_crash(5);
        assert_eq!(view.estimated_size(), 18);
        let still_known = (0..20).filter(|&p| view.knows(p, 5)).count();
        assert!(still_known > 0, "crashed process lingers until detected");
        for _ in 0..60 {
            view.round_elapsed();
        }
        let after = (0..20).filter(|&p| view.knows(p, 5)).count();
        assert_eq!(after, 0, "failure detection eventually evicts the crashed process");
        // The live overlay is whole again after the churn.
        assert_eq!(reachable_live(&view, 20, 0), 18);
        // Duplicate notifications are idempotent.
        view.observe_crash(5);
        view.observe_leave(4);
        assert_eq!(view.estimated_size(), 18);
    }

    #[test]
    fn rejoin_reconnects_through_the_ring_contact() {
        let view = PartialView::bootstrap(10, PartialViewConfig::default(), 5);
        view.observe_leave(3);
        view.observe_join(3);
        assert_eq!(view.estimated_size(), 10);
        assert!(view.knows(3, 4), "joiner knows its contact");
        assert!(view.knows(2, 3), "ring predecessor re-pins onto the joiner");
        // Already-live joins are idempotent.
        view.observe_join(3);
        assert_eq!(view.estimated_size(), 10);
    }

    #[test]
    fn connectivity_survives_heavy_churn() {
        let config = PartialViewConfig {
            view_size: 6,
            gossip_fanout: 2,
            digest_size: 3,
        };
        let view = PartialView::bootstrap(24, config, 11);
        for round in 0..30usize {
            if round % 3 == 0 {
                view.observe_crash((round * 5 + 1) % 24);
            }
            if round % 4 == 0 {
                view.observe_leave((round * 7 + 2) % 24);
            }
            view.round_elapsed();
        }
        // Settle: give failure detection time to repair the ring.
        for _ in 0..5 {
            view.round_elapsed();
        }
        let live: Vec<usize> = (0..24).filter(|&p| view.is_live(p)).collect();
        assert!(live.len() >= 2, "churn left enough of the group alive");
        assert_eq!(
            reachable_live(&view, 24, live[0]),
            live.len(),
            "every live process stays reachable after churn"
        );
    }

    #[test]
    fn sparse_bootstrap_rings_over_the_occupied_subset() {
        let mut occupied = vec![true; 20];
        for absent in [3, 4, 5, 11, 19] {
            occupied[absent] = false;
        }
        let config = PartialViewConfig::default().with_view_size(4);
        let view = PartialView::bootstrap_sparse(&occupied, config, 7);
        assert_eq!(view.estimated_size(), 15);
        for process in 0..20 {
            if !occupied[process] {
                assert_eq!(view.peer_count(process), 0, "absent views start empty");
                assert!(!view.is_live(process));
                continue;
            }
            assert_eq!(view.peer_count(process), 4);
            for k in 0..view.peer_count(process) {
                let peer = view.peer_at(process, k);
                assert!(occupied[peer], "bootstrap never seats an absent peer");
                assert_ne!(peer, process);
            }
        }
        // The pinned contact skips the occupancy gap: 2's ring successor is 6.
        assert!(view.knows(2, 6));
        // The live overlay is connected from the start.
        assert_eq!(reachable_live(&view, 20, 0), 15);
        // A gap process joining mid-run re-enters through the ring.
        view.observe_join(4);
        assert_eq!(view.estimated_size(), 16);
        assert!(view.knows(4, 6), "joiner pins its occupied ring successor");
        assert!(view.knows(2, 4), "ring predecessor re-pins onto the joiner");
        // Sparse bootstrap over a fully occupied group is the plain
        // bootstrap, state for state.
        let full = PartialView::bootstrap(9, PartialViewConfig::default(), 3);
        let sparse_full =
            PartialView::bootstrap_sparse(&[true; 9], PartialViewConfig::default(), 3);
        for p in 0..9 {
            let peers = |v: &PartialView| -> Vec<usize> {
                (0..v.peer_count(p)).map(|k| v.peer_at(p, k)).collect()
            };
            assert_eq!(peers(&full), peers(&sparse_full));
        }
    }

    #[test]
    #[should_panic(expected = "view_size must be positive")]
    fn zero_view_size_is_rejected() {
        let config = PartialViewConfig {
            view_size: 0,
            gossip_fanout: 1,
            digest_size: 1,
        };
        let _ = PartialView::bootstrap(4, config, 0);
    }
}
