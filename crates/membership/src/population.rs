//! Sparse, time-varying group populations: which addresses of a tree are
//! occupied, and how that occupancy changes as processes join and leave.
//!
//! The paper's membership is explicitly dynamic (processes subscribe and
//! unsubscribe, and the Section 2 view tables are *maintained* under those
//! transitions), but a simulation needs a declarative description of the
//! population before it can drive those transitions deterministically.
//! [`Population`] is that description: a capacity (`a^d` addresses), the
//! set of dense indices occupied at round zero, and a sorted schedule of
//! [`LifecycleEvent`]s (joins and graceful leaves — crashes are a *fault*
//! model and stay on the network layer's crash plan).
//!
//! `Population` is the scheduling abstraction **over [`GroupTree`]**: it
//! answers occupancy queries arithmetically (initial/peak/final sizes,
//! occupancy at any round) and can materialise the explicit sparse
//! [`GroupTree`] snapshot of any round via
//! [`group_tree_at`](Population::group_tree_at), which is what ties the
//! dense-index world of the simulation to the address/filter world of the
//! membership tree.
//!
//! Determinism: a population is pure data.  Building one, querying it and
//! snapshotting it consume no randomness, which is what lets scenario
//! lifecycle schedules preserve the simulator's seed contract (see the
//! `pmcast-sim` runner docs).

use pmcast_addr::AddressSpace;
use pmcast_interest::Filter;

use crate::GroupTree;

/// The kind of a scheduled membership lifecycle event.
///
/// The variant order is meaningful: events scheduled for the same round
/// apply joins first, then leaves (the sort order of the schedule), so
/// mixed schedules stay deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LifecycleEventKind {
    /// The process joins (subscribes) — an initial join or a re-join.
    Join,
    /// The process leaves gracefully (unsubscribes).
    Leave,
}

/// One scheduled membership transition of a [`Population`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LifecycleEvent {
    /// The simulation round at which the transition applies.
    pub round: u64,
    /// Join or leave.
    pub kind: LifecycleEventKind,
    /// The dense index of the process making the transition.
    pub process: usize,
}

/// The population sizes a lifecycle schedule produces over a trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PopulationSizes {
    /// Members at round zero (capacity minus the initially absent).
    pub initial: usize,
    /// The largest membership reached at any point of the schedule.
    pub peak: usize,
    /// Members once the whole schedule has been applied.
    pub end: usize,
}

/// A sparse, time-varying population over a regular `a^d` address space.
///
/// # Examples
///
/// ```rust
/// use pmcast_membership::{LifecycleEventKind, Population};
///
/// // 16 addresses; process 15 joins at round 3, process 0 leaves at round 5.
/// let population = Population::new(16, &[(3, 15)], &[(5, 0)]);
/// assert!(!population.is_static());
/// assert_eq!(population.initially_absent(), &[15]);
/// let sizes = population.sizes();
/// assert_eq!((sizes.initial, sizes.peak, sizes.end), (15, 16, 15));
/// assert!(!population.occupied_at_start()[15]);
/// assert!(population.occupancy_at(3)[15], "joined by round 3");
/// assert!(!population.occupancy_at(5)[0], "left at round 5");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Population {
    capacity: usize,
    /// Sorted, deduplicated dense indices absent at round zero.
    initially_absent: Vec<usize>,
    /// Sorted by `(round, kind, process)`.
    events: Vec<LifecycleEvent>,
}

impl Population {
    /// Builds the population implied by a join/leave schedule over a group
    /// of `capacity` addresses.
    ///
    /// A process starts **absent** iff its earliest scheduled event is a
    /// join (so `leave_at(2, p)` + `join_at(6, p)` describes a member that
    /// departs and later re-subscribes, while a lone `join_at(3, q)`
    /// describes a newcomer).
    ///
    /// # Panics
    ///
    /// Panics if any scheduled index is out of range for the capacity.
    pub fn new(capacity: usize, joins: &[(u64, usize)], leaves: &[(u64, usize)]) -> Self {
        let mut events: Vec<LifecycleEvent> = joins
            .iter()
            .map(|&(round, process)| LifecycleEvent {
                round,
                kind: LifecycleEventKind::Join,
                process,
            })
            .chain(leaves.iter().map(|&(round, process)| LifecycleEvent {
                round,
                kind: LifecycleEventKind::Leave,
                process,
            }))
            .collect();
        for event in &events {
            assert!(
                event.process < capacity,
                "lifecycle index {} out of range for a capacity of {capacity}",
                event.process
            );
        }
        events.sort();
        // A process whose earliest event is a join was not there at round
        // zero; the schedule is sorted, so the first sighting decides.
        let mut first_event_seen = vec![false; capacity];
        let mut initially_absent = Vec::new();
        for event in &events {
            if !std::mem::replace(&mut first_event_seen[event.process], true)
                && event.kind == LifecycleEventKind::Join
            {
                initially_absent.push(event.process);
            }
        }
        initially_absent.sort_unstable();
        Self {
            capacity,
            initially_absent,
            events,
        }
    }

    /// Lets a scheduled-**crash** plan participate in the initial-absence
    /// derivation: a process that crashes *before* its first join was
    /// evidently a member at round zero (the schedule describes a
    /// crash-then-rejoin, not a late newcomer), so it is removed from the
    /// initially-absent set.  Crashes still do not appear in the lifecycle
    /// [`events`](Self::events) — they are a fault model, not membership —
    /// and same-round ties resolve in the engine's join < leave < crash
    /// order, so a crash at the join's own round does not keep the process
    /// present.
    ///
    /// # Panics
    ///
    /// Panics if any crash index is out of range for the capacity.
    pub fn with_fault_schedule(mut self, crashes: &[(u64, usize)]) -> Self {
        for &(_, process) in crashes {
            assert!(
                process < self.capacity,
                "crash index {process} out of range for a capacity of {}",
                self.capacity
            );
        }
        let events = &self.events;
        self.initially_absent.retain(|&process| {
            let first_join = events
                .iter()
                .find(|e| e.process == process)
                .expect("an initially absent process has a join event");
            // Keep the process absent unless some crash strictly precedes
            // its first join (a same-round crash applies *after* the join,
            // so it does not prove earlier membership).
            !crashes
                .iter()
                .any(|&(round, crashed)| crashed == process && round < first_join.round)
        });
        self
    }

    /// The number of addresses of the underlying space (`a^d`).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns `true` if the population never changes (no scheduled events
    /// and nobody absent) — the fully populated regular tree of the paper's
    /// analysis.
    pub fn is_static(&self) -> bool {
        self.events.is_empty() && self.initially_absent.is_empty()
    }

    /// The sorted dense indices absent at round zero.
    pub fn initially_absent(&self) -> &[usize] {
        &self.initially_absent
    }

    /// The sorted lifecycle schedule.
    pub fn events(&self) -> &[LifecycleEvent] {
        &self.events
    }

    /// Occupancy flags at round zero (`true` = member).
    pub fn occupied_at_start(&self) -> Vec<bool> {
        let mut occupied = vec![true; self.capacity];
        for &absent in &self.initially_absent {
            occupied[absent] = false;
        }
        occupied
    }

    /// Occupancy flags *during* the given round: the start-of-trial state
    /// with every event scheduled at or before `round` applied (the engine
    /// applies lifecycle events at the beginning of their round).
    pub fn occupancy_at(&self, round: u64) -> Vec<bool> {
        let mut occupied = self.occupied_at_start();
        for event in self.events.iter().take_while(|e| e.round <= round) {
            occupied[event.process] = event.kind == LifecycleEventKind::Join;
        }
        occupied
    }

    /// The initial, peak and final population sizes of the schedule.
    pub fn sizes(&self) -> PopulationSizes {
        let mut occupied = self.occupied_at_start();
        let mut size = self.capacity - self.initially_absent.len();
        let initial = size;
        let mut peak = size;
        for event in &self.events {
            match event.kind {
                LifecycleEventKind::Join => {
                    if !std::mem::replace(&mut occupied[event.process], true) {
                        size += 1;
                    }
                }
                LifecycleEventKind::Leave => {
                    if std::mem::replace(&mut occupied[event.process], false) {
                        size -= 1;
                    }
                }
            }
            peak = peak.max(size);
        }
        PopulationSizes {
            initial,
            peak,
            end: size,
        }
    }

    /// Materialises the explicit sparse [`GroupTree`] snapshot of the given
    /// round: every occupied address joins with a clone of `filter`.  This
    /// is the bridge from the dense-index scheduling world to the
    /// address/subscription world of Section 2 — the structure a bootstrap
    /// service would hold for handing view tables to joiners.
    ///
    /// # Panics
    ///
    /// Panics if the space capacity does not match the population capacity.
    pub fn group_tree_at(&self, space: &AddressSpace, round: u64, filter: &Filter) -> GroupTree {
        assert_eq!(
            space.capacity() as usize,
            self.capacity,
            "address space capacity must match the population capacity"
        );
        let occupied = self.occupancy_at(round);
        let mut tree = GroupTree::new(space.clone());
        for (index, _) in occupied.iter().enumerate().filter(|(_, &o)| o) {
            tree.join(space.address_of_index(index as u128), filter.clone())
                .expect("occupied addresses are valid and unique");
        }
        tree
    }
}

/// The nearest occupied index strictly after `q`, cyclically; falls back to
/// the plain ring successor when nothing (else) is occupied.  Shared by the
/// sparse provider bootstraps (`PartialView` / `DelegateView`), which pin
/// their ring contacts with exactly this rule.
pub(crate) fn next_occupied_after(occupied: &[bool], q: usize) -> u32 {
    let n = occupied.len();
    (1..n)
        .map(|offset| (q + offset) % n)
        .find(|&j| occupied[j])
        .unwrap_or((q + 1) % n.max(1)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcast_addr::Prefix;
    use crate::TreeTopology;

    #[test]
    fn static_population_has_no_schedule() {
        let population = Population::new(27, &[], &[]);
        assert!(population.is_static());
        assert_eq!(population.capacity(), 27);
        let sizes = population.sizes();
        assert_eq!((sizes.initial, sizes.peak, sizes.end), (27, 27, 27));
        assert!(population.occupied_at_start().iter().all(|&o| o));
    }

    #[test]
    fn earliest_event_decides_initial_absence() {
        // 3 joins fresh; 5 leaves then re-joins; 7 only leaves.
        let population = Population::new(16, &[(4, 3), (6, 5)], &[(2, 5), (3, 7)]);
        assert_eq!(population.initially_absent(), &[3]);
        let sizes = population.sizes();
        assert_eq!(sizes.initial, 15);
        assert_eq!(sizes.end, 15); // 3 joined, 7 left, 5 round-tripped
        assert!(!population.occupancy_at(2)[5]);
        assert!(population.occupancy_at(6)[5]);
        assert!(!population.occupancy_at(10)[7]);
    }

    #[test]
    fn peak_tracks_the_largest_membership() {
        // Flash crowd: two joins before anyone leaves.
        let population = Population::new(8, &[(1, 6), (1, 7)], &[(4, 0), (4, 1), (4, 2)]);
        let sizes = population.sizes();
        assert_eq!((sizes.initial, sizes.peak, sizes.end), (6, 8, 5));
    }

    #[test]
    fn duplicate_events_are_idempotent_in_sizes() {
        let population = Population::new(4, &[(1, 3), (2, 3)], &[(5, 3), (6, 3)]);
        let sizes = population.sizes();
        assert_eq!((sizes.initial, sizes.peak, sizes.end), (3, 4, 3));
    }

    #[test]
    fn same_round_join_applies_before_leave() {
        let population = Population::new(4, &[(2, 1)], &[(2, 1)]);
        // Earliest event at round 2 is the join (kind order), so process 1
        // starts absent, joins and immediately leaves again.
        assert_eq!(population.initially_absent(), &[1]);
        assert!(!population.occupancy_at(2)[1]);
        assert_eq!(population.sizes().peak, 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_indices_are_rejected() {
        let _ = Population::new(4, &[(0, 9)], &[]);
    }

    #[test]
    fn a_crash_before_the_first_join_proves_initial_membership() {
        // crash(6) then join(12) is a crash-then-rejoin: the process was a
        // member at round zero, so the fault schedule removes it from the
        // initially-absent set.
        let population = Population::new(16, &[(12, 5)], &[]).with_fault_schedule(&[(6, 5)]);
        assert!(population.initially_absent().is_empty());
        assert_eq!(population.sizes().initial, 16);
        // A crash at (or after) the join round proves nothing: the join
        // still marks a newcomer (same-round ties apply join first).
        let newcomer = Population::new(16, &[(6, 5)], &[]).with_fault_schedule(&[(6, 5)]);
        assert_eq!(newcomer.initially_absent(), &[5]);
        let late_crash = Population::new(16, &[(6, 5)], &[]).with_fault_schedule(&[(9, 5)]);
        assert_eq!(late_crash.initially_absent(), &[5]);
        // Crashes of other processes change nothing.
        let unrelated = Population::new(16, &[(6, 5)], &[]).with_fault_schedule(&[(1, 3)]);
        assert_eq!(unrelated.initially_absent(), &[5]);
    }

    #[test]
    #[should_panic(expected = "crash index")]
    fn out_of_range_fault_indices_are_rejected() {
        let _ = Population::new(4, &[], &[]).with_fault_schedule(&[(0, 9)]);
    }

    #[test]
    fn next_occupied_wraps_over_gaps() {
        let occupied = [true, false, false, true, false];
        assert_eq!(next_occupied_after(&occupied, 0), 3);
        assert_eq!(next_occupied_after(&occupied, 3), 0);
        assert_eq!(next_occupied_after(&occupied, 4), 0);
        // Nothing else occupied: fall back to the plain ring successor.
        assert_eq!(next_occupied_after(&[false, false], 0), 1);
        assert_eq!(next_occupied_after(&[true], 0), 0, "lone process wraps to itself");
    }

    #[test]
    fn group_tree_snapshots_follow_the_schedule() {
        let space = AddressSpace::regular(2, 4).unwrap();
        // Subgroup 3 (indices 12..16) starts empty and fills at round 5 —
        // the join-into-an-empty-subgroup case.
        let joins: Vec<(u64, usize)> = (12..16).map(|p| (5, p)).collect();
        let population = Population::new(16, &joins, &[]);
        let filter = Filter::match_all();
        let before = population.group_tree_at(&space, 0, &filter);
        assert_eq!(before.member_count(), 12);
        assert_eq!(
            before.populated_children(&Prefix::root()),
            vec![0, 1, 2],
            "subgroup 3 starts empty"
        );
        assert!(before.delegates(&Prefix::from_components(vec![3]), 3).is_empty());
        let after = population.group_tree_at(&space, 5, &filter);
        assert_eq!(after.member_count(), 16);
        assert_eq!(after.populated_children(&Prefix::root()), vec![0, 1, 2, 3]);
        assert_eq!(
            after.delegates(&Prefix::from_components(vec![3]), 2).len(),
            2,
            "delegates electable once the subgroup fills"
        );
    }
}
