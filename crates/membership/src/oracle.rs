use std::collections::BTreeSet;

use pmcast_addr::{Address, AddressSpace, Prefix};
use pmcast_interest::{Event, Interest};
use rand::Rng;

use crate::{GroupTree, TreeTopology};

/// Answers interest queries for processes and whole subtrees.
///
/// The dissemination layer needs two questions answered when handling an
/// event (the `⊲` tests of Figure 3):
///
/// 1. is an individual process interested? (delivery at the leaves), and
/// 2. is *any* process below a given subgroup interested? (whether a
///    delegate, acting on behalf of its subtree, is "susceptible").
///
/// Implementations:
///
/// * [`SubscriptionOracle`] — exact answers from per-process subscriptions
///   held in a [`GroupTree`]; this is the content-based pub/sub path.
/// * [`AssignmentOracle`] — an explicit set of interested processes, e.g.
///   drawn i.i.d. with probability `p_d` per process, which is the workload
///   model of the paper's analysis and evaluation (Section 4.1).
/// * [`UniformOracle`] — everybody is interested (the broadcast special
///   case, useful for baselines and sanity checks).
pub trait InterestOracle {
    /// Returns `true` if the given process is interested in the event.
    fn is_interested(&self, address: &Address, event: &Event) -> bool;

    /// Number of interested processes below the given prefix.
    fn interested_count_under(&self, prefix: &Prefix, event: &Event) -> usize;

    /// Returns `true` if at least one process below the prefix is
    /// interested.  The default delegates to the count; implementations may
    /// shortcut.
    fn subtree_interested(&self, prefix: &Prefix, event: &Event) -> bool {
        self.interested_count_under(prefix, event) > 0
    }

    /// Total number of interested processes in the whole group.
    fn interested_total(&self, event: &Event) -> usize {
        self.interested_count_under(&Prefix::root(), event)
    }

    /// A cheap equivalence key over audiences: two events mapped to the same
    /// key are guaranteed to have **identical** audiences under this oracle,
    /// so audience caches (hashconsing directories) can reuse one computed
    /// set without rescanning the group.  `None` means "no such key is
    /// known" and every event must be resolved individually.
    ///
    /// [`AssignmentOracle`] answers `Some(0)` (its assignment ignores the
    /// event), and the topic oracle answers the event's topic index; exact
    /// per-subscription oracles keep the `None` default.
    fn audience_key(&self, _event: &Event) -> Option<u64> {
        None
    }
}

impl<T: InterestOracle + ?Sized> InterestOracle for &T {
    fn is_interested(&self, address: &Address, event: &Event) -> bool {
        (**self).is_interested(address, event)
    }
    fn interested_count_under(&self, prefix: &Prefix, event: &Event) -> usize {
        (**self).interested_count_under(prefix, event)
    }
    fn subtree_interested(&self, prefix: &Prefix, event: &Event) -> bool {
        (**self).subtree_interested(prefix, event)
    }
    fn interested_total(&self, event: &Event) -> usize {
        (**self).interested_total(event)
    }
    fn audience_key(&self, event: &Event) -> Option<u64> {
        (**self).audience_key(event)
    }
}

/// Exact interest answers derived from the subscriptions stored in a
/// [`GroupTree`].
#[derive(Debug)]
pub struct SubscriptionOracle<'a> {
    tree: &'a GroupTree,
}

impl<'a> SubscriptionOracle<'a> {
    /// Creates an oracle over the given group.
    pub fn new(tree: &'a GroupTree) -> Self {
        Self { tree }
    }
}

impl InterestOracle for SubscriptionOracle<'_> {
    fn is_interested(&self, address: &Address, event: &Event) -> bool {
        self.tree
            .subscription(address)
            .map(|filter| filter.matches(event))
            .unwrap_or(false)
    }

    fn interested_count_under(&self, prefix: &Prefix, event: &Event) -> usize {
        self.tree.interested_count_under(prefix, event)
    }
}

/// A [`GroupTree`] can itself serve as an oracle (owned variant of
/// [`SubscriptionOracle`], convenient behind an `Arc`).
impl InterestOracle for GroupTree {
    fn is_interested(&self, address: &Address, event: &Event) -> bool {
        self.subscription(address)
            .map(|filter| filter.matches(event))
            .unwrap_or(false)
    }

    fn interested_count_under(&self, prefix: &Prefix, event: &Event) -> usize {
        GroupTree::interested_count_under(self, prefix, event)
    }
}

/// An explicit assignment of interested processes, independent of any
/// attribute matching.
///
/// This models the analysis workload of Section 4.1, where every process is
/// interested in a given event with probability `p_d`, independently of all
/// others.  Queries are answered by binary search over the sorted interested
/// addresses, so subtree counts cost `O(log n)`.
#[derive(Debug, Clone)]
pub struct AssignmentOracle {
    interested: Vec<Address>,
    /// Dense-index acceleration, present when the oracle was sampled from a
    /// topology: the address space plus the sorted dense indices of the
    /// interested addresses (the same order as `interested`, since the
    /// lexicographic address order *is* the index order).  Queries then run
    /// over a flat integer array — address-to-index is pure arithmetic and
    /// every binary-search probe touches one cache line instead of chasing a
    /// heap-allocated component vector.  Million-process trials spend a
    /// large share of their time in these queries (one `is_interested` per
    /// received gossip, one `subtree_interested` per fanout pick).
    space: Option<AddressSpace>,
    indices: Vec<u128>,
    /// Direct-indexed interest bits (one per address of the space), present
    /// alongside `indices` when the space is small enough
    /// ([`BITMAP_CAPACITY_LIMIT`]): point and leaf-subtree queries then read
    /// a word or two of a compact, cache-resident array instead of binary
    /// searching — a 32⁴-process space is a 128 KiB bitmap.
    bitmap: Vec<u64>,
}

/// Largest space capacity for which [`AssignmentOracle`] keeps the
/// direct-indexed bitmap (8 MiB of bits); beyond it queries fall back to
/// binary search over the sorted dense indices.
const BITMAP_CAPACITY_LIMIT: u128 = 1 << 26;

/// Two assignments are equal iff they mark the same processes interested;
/// whether an oracle carries the dense-index acceleration is invisible.
impl PartialEq for AssignmentOracle {
    fn eq(&self, other: &Self) -> bool {
        self.interested == other.interested
    }
}

impl Eq for AssignmentOracle {}

/// Hashes the same projection `PartialEq` compares (the interested
/// addresses), so assignments can be hashconsed through
/// [`pmcast_interest::Interner`]: overlapping topics whose subscriber sets
/// coincide share one oracle — and one interest bitmap — allocation.
impl std::hash::Hash for AssignmentOracle {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.interested.hash(state);
    }
}

impl AssignmentOracle {
    /// Creates an oracle from an explicit set of interested processes.
    pub fn new<I: IntoIterator<Item = Address>>(interested: I) -> Self {
        let set: BTreeSet<Address> = interested.into_iter().collect();
        Self {
            interested: set.into_iter().collect(),
            space: None,
            indices: Vec::new(),
            bitmap: Vec::new(),
        }
    }

    /// Creates an oracle from an explicit set of interested processes, all
    /// valid addresses of the given space, enabling the dense-index fast
    /// path for every query.
    pub fn with_space<I: IntoIterator<Item = Address>>(interested: I, space: AddressSpace) -> Self {
        let mut oracle = Self::new(interested);
        oracle.indices = oracle
            .interested
            .iter()
            .map(|address| {
                space
                    .index_of_address(address)
                    .expect("interested addresses are valid for the space")
            })
            .collect();
        if space.capacity() <= BITMAP_CAPACITY_LIMIT {
            oracle.bitmap = vec![0u64; (space.capacity() as usize).div_ceil(64)];
            for &index in &oracle.indices {
                oracle.bitmap[index as usize / 64] |= 1u64 << (index as usize % 64);
            }
        }
        oracle.space = Some(space);
        oracle
    }

    /// Samples an assignment over the members of a topology: every process
    /// is interested independently with probability `matching_rate`
    /// (`p_d` in the paper).
    pub fn sample<T: TreeTopology, R: Rng>(
        topology: &T,
        matching_rate: f64,
        rng: &mut R,
    ) -> Self {
        let interested = topology
            .members()
            .into_iter()
            .filter(|_| rng.gen_bool(matching_rate.clamp(0.0, 1.0)))
            .collect::<Vec<_>>();
        Self::with_space(interested, topology.space().clone())
    }

    /// Samples an assignment with an exact number of interested processes,
    /// drawn uniformly without replacement.  Useful to pin `n·p_d` exactly in
    /// experiments with very small rates.
    pub fn sample_exact<T: TreeTopology, R: Rng>(
        topology: &T,
        interested_count: usize,
        rng: &mut R,
    ) -> Self {
        use rand::seq::SliceRandom;
        let mut members = topology.members();
        members.shuffle(rng);
        members.truncate(interested_count);
        Self::with_space(members, topology.space().clone())
    }

    /// Number of interested processes in the assignment.
    pub fn len(&self) -> usize {
        self.interested.len()
    }

    /// Returns `true` if nobody is interested.
    pub fn is_empty(&self) -> bool {
        self.interested.is_empty()
    }

    /// Iterates over the interested processes in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Address> {
        self.interested.iter()
    }

    /// Bitmap probe: is the dense index interested?  Only called when the
    /// bitmap is present, i.e. the index is within the space capacity.
    fn bit(&self, index: u128) -> bool {
        let index = index as usize;
        self.bitmap[index / 64] >> (index % 64) & 1 == 1
    }

    /// Bitmap range probe: is any index of `[low, high)` interested?
    /// Leaf subtrees span a word or two; the masked scan exits on the first
    /// non-zero word.
    fn any_bit_in(&self, low: u128, high: u128) -> bool {
        let (low, high) = (low as usize, high as usize);
        if low >= high {
            return false;
        }
        let (first, last) = (low / 64, (high - 1) / 64);
        let head_mask = !0u64 << (low % 64);
        let tail_mask = !0u64 >> (63 - (high - 1) % 64);
        if first == last {
            return self.bitmap[first] & head_mask & tail_mask != 0;
        }
        if self.bitmap[first] & head_mask != 0 {
            return true;
        }
        if self.bitmap[first + 1..last].iter().any(|&word| word != 0) {
            return true;
        }
        self.bitmap[last] & tail_mask != 0
    }

    /// Index of the first interested address that is `>=` every address
    /// strictly below the prefix (binary search helper).
    ///
    /// The probes compare raw component slices: slice ordering is the same
    /// lexicographic order as `Prefix`/`Address` ordering, without the
    /// per-probe `Prefix` allocation (`subtree_interested` sits on the
    /// per-gossip-target hot path).
    fn range_for(&self, prefix: &Prefix) -> (usize, usize) {
        let start = self
            .interested
            .partition_point(|address| address.components() < prefix.components());
        let end = start
            + self.interested[start..]
                .iter()
                .take_while(|address| address.has_prefix(prefix))
                .count();
        (start, end)
    }
}

impl InterestOracle for AssignmentOracle {
    fn is_interested(&self, address: &Address, _event: &Event) -> bool {
        if let Some(space) = &self.space {
            return match space.index_of_address(address) {
                Ok(index) if !self.bitmap.is_empty() => self.bit(index),
                Ok(index) => self.indices.binary_search(&index).is_ok(),
                // An address outside the space is never interested.
                Err(_) => false,
            };
        }
        self.interested.binary_search(address).is_ok()
    }

    fn interested_count_under(&self, prefix: &Prefix, _event: &Event) -> usize {
        if prefix.is_empty() {
            return self.interested.len();
        }
        if let Some(space) = &self.space {
            return match space.index_range_under(prefix) {
                Ok((low, high)) => {
                    let start = self.indices.partition_point(|&index| index < low);
                    let end = self.indices.partition_point(|&index| index < high);
                    end - start
                }
                // A prefix outside the space has no interested processes.
                Err(_) => 0,
            };
        }
        let (start, end) = self.range_for(prefix);
        end - start
    }

    /// The assignment ignores the event, so every event shares one audience.
    fn audience_key(&self, _event: &Event) -> Option<u64> {
        Some(0)
    }

    fn subtree_interested(&self, prefix: &Prefix, _event: &Event) -> bool {
        if prefix.is_empty() {
            return !self.interested.is_empty();
        }
        if let Some(space) = &self.space {
            return match space.index_range_under(prefix) {
                Ok((low, high)) if !self.bitmap.is_empty() => self.any_bit_in(low, high),
                Ok((low, high)) => {
                    let start = self.indices.partition_point(|&index| index < low);
                    self.indices
                        .get(start)
                        .map(|&index| index < high)
                        .unwrap_or(false)
                }
                Err(_) => false,
            };
        }
        let start = self
            .interested
            .partition_point(|address| address.components() < prefix.components());
        self.interested
            .get(start)
            .map(|address| address.has_prefix(prefix))
            .unwrap_or(false)
    }
}

impl FromIterator<Address> for AssignmentOracle {
    fn from_iter<I: IntoIterator<Item = Address>>(iter: I) -> Self {
        AssignmentOracle::new(iter)
    }
}

/// Every process is interested in every event: the broadcast special case.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UniformOracle {
    member_count: usize,
}

impl UniformOracle {
    /// Creates a broadcast oracle for a group of the given size.
    pub fn new(member_count: usize) -> Self {
        Self { member_count }
    }
}

impl InterestOracle for UniformOracle {
    fn is_interested(&self, _address: &Address, _event: &Event) -> bool {
        true
    }

    fn interested_count_under(&self, prefix: &Prefix, _event: &Event) -> usize {
        if prefix.is_empty() {
            self.member_count
        } else {
            // Without a topology the exact per-subtree count is unknown; the
            // conservative answer "at least one" is what matters for gossip
            // target selection.
            1
        }
    }

    fn subtree_interested(&self, _prefix: &Prefix, _event: &Event) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcast_addr::AddressSpace;
    use pmcast_interest::{Filter, Predicate};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    use crate::ImplicitRegularTree;

    fn event() -> Event {
        Event::builder(1).int("b", 10).build()
    }

    #[test]
    fn subscription_oracle_matches_filters() {
        let space = AddressSpace::regular(2, 3).unwrap();
        let mut tree = GroupTree::new(space);
        tree.join("0.0".parse().unwrap(), Filter::new().with("b", Predicate::gt(0.0)))
            .unwrap();
        tree.join("0.1".parse().unwrap(), Filter::new().with("b", Predicate::lt(0.0)))
            .unwrap();
        tree.join("2.2".parse().unwrap(), Filter::new().with("b", Predicate::gt(5.0)))
            .unwrap();
        let oracle = SubscriptionOracle::new(&tree);
        let e = event();
        assert!(oracle.is_interested(&"0.0".parse().unwrap(), &e));
        assert!(!oracle.is_interested(&"0.1".parse().unwrap(), &e));
        assert!(!oracle.is_interested(&"1.1".parse().unwrap(), &e));
        assert_eq!(oracle.interested_count_under(&Prefix::root(), &e), 2);
        assert_eq!(
            oracle.interested_count_under(&Prefix::from_components(vec![0]), &e),
            1
        );
        assert!(oracle.subtree_interested(&Prefix::from_components(vec![2]), &e));
        assert!(!oracle.subtree_interested(&Prefix::from_components(vec![1]), &e));
        assert_eq!(oracle.interested_total(&e), 2);
    }

    #[test]
    fn assignment_oracle_counts_by_prefix() {
        let interested: Vec<Address> = ["0.0.1", "0.2.2", "1.0.0", "1.0.1"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let oracle = AssignmentOracle::new(interested);
        let e = event();
        assert_eq!(oracle.len(), 4);
        assert!(!oracle.is_empty());
        assert!(oracle.is_interested(&"0.0.1".parse().unwrap(), &e));
        assert!(!oracle.is_interested(&"0.0.0".parse().unwrap(), &e));
        assert_eq!(oracle.interested_count_under(&Prefix::root(), &e), 4);
        assert_eq!(
            oracle.interested_count_under(&Prefix::from_components(vec![0]), &e),
            2
        );
        assert_eq!(
            oracle.interested_count_under(&Prefix::from_components(vec![1, 0]), &e),
            2
        );
        assert_eq!(
            oracle.interested_count_under(&Prefix::from_components(vec![2]), &e),
            0
        );
        assert!(oracle.subtree_interested(&Prefix::from_components(vec![0, 2]), &e));
        assert!(!oracle.subtree_interested(&Prefix::from_components(vec![0, 1]), &e));
    }

    #[test]
    fn assignment_oracle_deduplicates() {
        let a: Address = "0.0".parse().unwrap();
        let oracle = AssignmentOracle::new(vec![a.clone(), a.clone(), a]);
        assert_eq!(oracle.len(), 1);
        let collected: AssignmentOracle =
            vec!["1.1".parse::<Address>().unwrap()].into_iter().collect();
        assert_eq!(collected.len(), 1);
    }

    #[test]
    fn sampled_assignment_has_plausible_size() {
        let topology = ImplicitRegularTree::new(AddressSpace::regular(3, 8).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let oracle = AssignmentOracle::sample(&topology, 0.5, &mut rng);
        let n = topology.member_count() as f64;
        // A Bernoulli(0.5) sample over 512 processes stays well within 4 σ.
        assert!((oracle.len() as f64 - 0.5 * n).abs() < 4.0 * (0.25f64 * n).sqrt());

        let exact = AssignmentOracle::sample_exact(&topology, 37, &mut rng);
        assert_eq!(exact.len(), 37);
        // Counts under the root match the total.
        assert_eq!(exact.interested_count_under(&Prefix::root(), &event()), 37);
    }

    #[test]
    fn sampled_assignment_is_deterministic_per_seed() {
        let topology = ImplicitRegularTree::new(AddressSpace::regular(2, 10).unwrap());
        let a = AssignmentOracle::sample(&topology, 0.3, &mut ChaCha8Rng::seed_from_u64(42));
        let b = AssignmentOracle::sample(&topology, 0.3, &mut ChaCha8Rng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_oracle_is_always_interested() {
        let oracle = UniformOracle::new(100);
        let e = event();
        assert!(oracle.is_interested(&"1.2".parse().unwrap(), &e));
        assert!(oracle.subtree_interested(&Prefix::from_components(vec![5]), &e));
        assert_eq!(oracle.interested_total(&e), 100);
        assert_eq!(UniformOracle::default().interested_total(&e), 0);
    }

    #[test]
    fn oracle_references_delegate() {
        let oracle = UniformOracle::new(10);
        let by_ref: &dyn InterestOracle = &oracle;
        assert!(by_ref.is_interested(&"0.0".parse().unwrap(), &event()));
        assert_eq!(oracle.interested_total(&event()), 10);
    }

    #[test]
    fn assignment_counts_agree_with_linear_scan() {
        let topology = ImplicitRegularTree::new(AddressSpace::regular(3, 4).unwrap());
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let oracle = AssignmentOracle::sample(&topology, 0.35, &mut rng);
        let e = event();
        for prefix in [
            Prefix::root(),
            Prefix::from_components(vec![0]),
            Prefix::from_components(vec![3]),
            Prefix::from_components(vec![1, 2]),
            Prefix::from_components(vec![2, 3]),
        ] {
            let expected = oracle
                .iter()
                .filter(|address| address.has_prefix(&prefix))
                .count();
            assert_eq!(oracle.interested_count_under(&prefix, &e), expected);
            assert_eq!(oracle.subtree_interested(&prefix, &e), expected > 0);
        }
    }
}
