use std::fmt;

use pmcast_addr::{AddrError, Address};

/// Errors produced by membership operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MembershipError {
    /// The address is not valid for the group's address space.
    InvalidAddress(AddrError),
    /// The address is already a member of the group.
    AlreadyMember(Address),
    /// The address is not a member of the group.
    NotAMember(Address),
    /// A join was attempted through a contact process that is itself not a
    /// member.
    UnknownContact(Address),
    /// The group has no members, so the requested operation is meaningless.
    EmptyGroup,
}

impl fmt::Display for MembershipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MembershipError::InvalidAddress(e) => write!(f, "invalid address: {e}"),
            MembershipError::AlreadyMember(a) => write!(f, "process {a} is already a member"),
            MembershipError::NotAMember(a) => write!(f, "process {a} is not a member"),
            MembershipError::UnknownContact(a) => {
                write!(f, "contact process {a} is not a member of the group")
            }
            MembershipError::EmptyGroup => write!(f, "the group has no members"),
        }
    }
}

impl std::error::Error for MembershipError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MembershipError::InvalidAddress(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AddrError> for MembershipError {
    fn from(e: AddrError) -> Self {
        MembershipError::InvalidAddress(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let inner = AddrError::DepthMismatch {
            found: 2,
            expected: 3,
        };
        let e = MembershipError::from(inner.clone());
        assert!(e.to_string().contains("invalid address"));
        assert!(e.source().is_some());

        let addr: Address = "1.2.3".parse().unwrap();
        for e in [
            MembershipError::AlreadyMember(addr.clone()),
            MembershipError::NotAMember(addr.clone()),
            MembershipError::UnknownContact(addr),
            MembershipError::EmptyGroup,
        ] {
            assert!(!e.to_string().is_empty());
            assert!(e.source().is_none());
        }
    }
}
