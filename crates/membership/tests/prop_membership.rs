//! Property-based tests for the membership tree.
//!
//! The central invariants:
//!
//! * delegate election is deterministic and agrees between the explicit
//!   [`GroupTree`] and the arithmetic [`ImplicitRegularTree`] whenever the
//!   group is fully populated;
//! * join/leave bookkeeping (subtree counts, populated children) always
//!   matches a from-scratch recomputation;
//! * view tables follow Equation 2 for fully populated regular trees;
//! * gossip-pull anti-entropy never regresses a line to older content.

use pmcast_addr::{Address, AddressSpace, Prefix};
use pmcast_interest::{Filter, InterestSummary, Predicate};
use pmcast_membership::{
    GroupTree, ImplicitRegularTree, TreeTopology, ViewDigest, ViewExchange,
};
use proptest::prelude::*;

/// A small address-space shape plus a subset of its addresses.
fn arb_population() -> impl Strategy<Value = (AddressSpace, Vec<Address>)> {
    (2u32..5, 2usize..4).prop_flat_map(|(arity, depth)| {
        let space = AddressSpace::regular(depth, arity).expect("valid shape");
        let capacity = space.capacity() as usize;
        let space_for_map = space.clone();
        prop::collection::btree_set(0..capacity, 1..capacity.min(40))
            .prop_map(move |indices| {
                let members: Vec<Address> = indices
                    .into_iter()
                    .map(|index| space_for_map.address_of_index(index as u128))
                    .collect();
                (space_for_map.clone(), members)
            })
    })
}

fn build_tree(space: &AddressSpace, members: &[Address]) -> GroupTree {
    let mut tree = GroupTree::new(space.clone());
    for (i, address) in members.iter().enumerate() {
        let filter = Filter::new().with("b", Predicate::eq_int(i as i64 % 5));
        tree.join(address.clone(), filter).expect("fresh address");
    }
    tree
}

proptest! {
    /// Subtree sizes and populated children always match a brute-force
    /// recomputation from the member list.
    #[test]
    fn counts_match_brute_force((space, members) in arb_population()) {
        let tree = build_tree(&space, &members);
        prop_assert_eq!(tree.member_count(), members.len());
        for depth in 1..=space.depth() {
            for member in &members {
                let prefix = member.prefix_of_depth(depth);
                let expected = members.iter().filter(|m| m.has_prefix(&prefix)).count();
                prop_assert_eq!(tree.subtree_size(&prefix), expected);
                let mut expected_children: Vec<u32> = members
                    .iter()
                    .filter(|m| m.has_prefix(&prefix))
                    .map(|m| m.components()[prefix.len()])
                    .collect();
                expected_children.sort_unstable();
                expected_children.dedup();
                prop_assert_eq!(tree.populated_children(&prefix), expected_children);
            }
        }
    }

    /// Delegates are always the R smallest member addresses of the subtree.
    #[test]
    fn delegates_are_smallest_members((space, members) in arb_population(), r in 1usize..5) {
        let tree = build_tree(&space, &members);
        for member in &members {
            for depth in 1..=space.depth() {
                let prefix = member.prefix_of_depth(depth);
                let mut expected: Vec<Address> = members
                    .iter()
                    .filter(|m| m.has_prefix(&prefix))
                    .cloned()
                    .collect();
                expected.sort();
                expected.truncate(r);
                prop_assert_eq!(tree.delegates(&prefix, r), expected);
            }
        }
    }

    /// Leaving every member in any order empties the tree completely.
    #[test]
    fn leaves_empty_the_tree((space, members) in arb_population(), seed in 0u64..1000) {
        let mut tree = build_tree(&space, &members);
        // Deterministically shuffle the leave order from the seed.
        let mut order = members.clone();
        let len = order.len();
        for i in 0..len {
            let j = ((seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % len;
            order.swap(i, j);
        }
        for member in &order {
            tree.leave(member).expect("still a member");
        }
        prop_assert_eq!(tree.member_count(), 0);
        prop_assert!(tree.populated_children(&Prefix::root()).is_empty());
        prop_assert_eq!(tree.subtree_size(&Prefix::root()), 0);
        prop_assert!(tree.members().is_empty());
    }

    /// For a fully populated regular tree, the explicit and implicit
    /// topologies agree on everything the protocol uses, and view tables
    /// follow Equation 2.
    #[test]
    fn explicit_matches_implicit(arity in 2u32..5, depth in 2usize..4, r in 1usize..4) {
        // Equation 2/12 assumes every populated subgroup holds at least R
        // processes (the paper's own assumption in §2.2), so cap R at a.
        let r = r.min(arity as usize);
        let space = AddressSpace::regular(depth, arity).expect("valid shape");
        let explicit = GroupTree::fully_populated(space.clone(), Filter::match_all());
        let implicit = ImplicitRegularTree::new(space.clone());
        prop_assert_eq!(explicit.member_count(), implicit.member_count());
        // Spot-check a handful of members (checking all of them would be
        // quadratic in the group size).
        for index in [0u128, 1, (space.capacity() - 1) / 2, space.capacity() - 1] {
            let member = space.address_of_index(index);
            for view_depth in 1..=depth {
                prop_assert_eq!(
                    explicit.view_of(&member, view_depth, r),
                    implicit.view_of(&member, view_depth, r)
                );
            }
            let expected_knowledge = r * arity as usize * (depth - 1) + arity as usize;
            prop_assert_eq!(implicit.knowledge_size(&member, r), expected_knowledge);
            prop_assert_eq!(explicit.knowledge_size(&member, r), expected_knowledge);
            // The concrete view table agrees as well.
            let table = explicit.view_table_for(&member, r).expect("member");
            prop_assert_eq!(table.knowledge_size(), expected_knowledge);
        }
    }

    /// Participation is monotone in depth: a delegate at depth i also
    /// participates at every deeper depth.
    #[test]
    fn participation_is_monotone((space, members) in arb_population(), r in 1usize..4) {
        let tree = build_tree(&space, &members);
        for member in &members {
            let mut participating = false;
            for depth in 1..=space.depth() {
                let now = tree.participates_at(member, depth, r);
                if participating {
                    prop_assert!(now, "{member} dropped out at depth {depth}");
                }
                participating = participating || now;
            }
            // Everybody participates at the leaf depth.
            prop_assert!(tree.participates_at(member, space.depth(), r));
        }
    }

    /// Anti-entropy reconciliation is convergent and idempotent: after one
    /// bidirectional exchange both tables hold, per line, the newest
    /// timestamp seen anywhere; a second exchange changes nothing.
    #[test]
    fn antientropy_reaches_a_fixed_point(
        arity in 2u32..5,
        bump_a in 0u32..4,
        bump_b in 0u32..4,
        ts_a in 1u64..100,
        ts_b in 1u64..100,
    ) {
        let space = AddressSpace::regular(2, arity).expect("valid shape");
        let tree = GroupTree::fully_populated(space, Filter::match_all());
        let owner_a: Address = Address::new(vec![0, 0]);
        let owner_b: Address = Address::new(vec![0, 1]);
        let mut table_a = tree.view_table_for(&owner_a, 2).expect("member");
        let mut table_b = tree.view_table_for(&owner_b, 2).expect("member");
        let bump_a = bump_a % arity;
        let bump_b = bump_b % arity;
        table_a
            .view_mut(1)
            .entries_mut()
            .iter_mut()
            .find(|e| e.infix() == bump_a)
            .unwrap()
            .update(vec![], InterestSummary::empty(), 100, ts_a);
        table_b
            .view_mut(1)
            .entries_mut()
            .iter_mut()
            .find(|e| e.infix() == bump_b)
            .unwrap()
            .update(vec![], InterestSummary::empty(), 200, ts_b);

        let exchange = ViewExchange::new();
        exchange.reconcile(&mut table_a, &mut table_b);
        // Fixed point: a second exchange is a no-op.
        prop_assert_eq!(exchange.reconcile(&mut table_a, &mut table_b), (0, 0));
        // Every line now carries the same timestamp on both replicas.
        let digest_a = ViewDigest::of(&table_a);
        let digest_b = ViewDigest::of(&table_b);
        for view in table_a.iter() {
            for entry in view.entries() {
                let key = pmcast_membership::LineKey { depth: view.depth(), infix: entry.infix() };
                prop_assert_eq!(digest_a.timestamp(&key), digest_b.timestamp(&key));
            }
        }
    }
}
