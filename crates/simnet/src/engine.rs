use std::collections::VecDeque;

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::{CrashPlan, Envelope, NetworkConfig, ProcessId, RoundNetwork, TrafficStats};

/// A protocol state machine attached to one simulated process.
///
/// The [`Simulation`] drives all processes in lockstep rounds: at every
/// round each live process first handles the messages delivered to it (sent
/// during the previous round), then gets one [`RoundProcess::on_round`] call
/// to emit new messages.  This matches the synchronous-round model of the
/// paper's analysis while the protocol code itself stays oblivious to the
/// simulation details.
pub trait RoundProcess {
    /// The protocol's message type.
    type Message: Clone;

    /// Called once per round after message delivery; the process may send
    /// messages and inspect the round number through the context.
    fn on_round(&mut self, ctx: &mut RoundContext<'_, Self::Message>);

    /// Called for every message delivered to this process at the beginning
    /// of a round.
    fn on_message(
        &mut self,
        from: ProcessId,
        message: Self::Message,
        ctx: &mut RoundContext<'_, Self::Message>,
    );

    /// Returns `true` if the process has nothing left to do; a simulation
    /// may stop early once every process is quiescent and no messages are in
    /// flight.  Defaults to `false` (never quiescent).
    fn is_quiescent(&self) -> bool {
        false
    }

    /// How the engine may schedule this process's [`on_round`]
    /// (`RoundProcess::on_round`) calls.  The default is the conservative
    /// [`Activity::EveryRound`], which preserves the dense sweep for
    /// third-party implementations; protocols whose quiescent `on_round` is
    /// a pure no-op should return [`Activity::SkipWhenQuiescent`] to opt
    /// into active-set scheduling (see [`Activity`] for the exact contract).
    ///
    /// [`on_round`]: RoundProcess::on_round
    fn activity(&self) -> Activity {
        Activity::EveryRound
    }
}

/// A [`RoundProcess`]'s scheduling hint: whether the engine must drive its
/// [`on_round`](RoundProcess::on_round) every round, or may skip rounds in
/// which the process is quiescent.
///
/// Active-set scheduling is what makes million-process groups simulable:
/// with every process opted in, a round costs O(active) instead of O(n),
/// and a fully-quiescent round costs O(1).  The opt-in carries a proof
/// obligation, spelled out on [`SkipWhenQuiescent`](Self::SkipWhenQuiescent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activity {
    /// `on_round` must be called every round, quiescent or not — the
    /// conservative default, bit-identical to the historical dense sweep.
    EveryRound,
    /// While [`is_quiescent`](RoundProcess::is_quiescent) returns `true`,
    /// `on_round` is guaranteed to be a pure no-op: it sends nothing, draws
    /// nothing from the shared RNG and changes no observable state.  Under
    /// that guarantee skipping the call is stream-neutral — the shared
    /// protocol RNG advances exactly as it would under the dense sweep —
    /// so the engine schedules the process only when something could have
    /// woken it (a delivered message, a lifecycle join, or direct mutation
    /// through [`Simulation::process_mut`]).
    SkipWhenQuiescent,
}

/// The per-process, per-round execution context handed to [`RoundProcess`]
/// callbacks: the process's identity, the current round, a deterministic
/// PRNG and the outgoing-message queue.
pub struct RoundContext<'a, M> {
    process: ProcessId,
    round: u64,
    outbox: &'a mut Vec<(ProcessId, M, usize)>,
    rng: &'a mut ChaCha8Rng,
}

impl<M> std::fmt::Debug for RoundContext<'_, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoundContext")
            .field("process", &self.process)
            .field("round", &self.round)
            .finish_non_exhaustive()
    }
}

impl<'a, M> RoundContext<'a, M> {
    /// A context for driving a [`RoundProcess`] **outside** a
    /// [`Simulation`] — the seam the asynchronous runtime (`pmcast-net`)
    /// uses to fire gossip rounds off timers instead of lock-step rounds.
    /// The caller owns the outbox and the RNG: sends accumulate in
    /// `outbox` for the caller to flush through its own transport, and
    /// `rng` is whatever stream the external driver's determinism story
    /// prescribes (the simulator's own seed contract is untouched).
    pub fn external(
        process: ProcessId,
        round: u64,
        outbox: &'a mut Vec<(ProcessId, M, usize)>,
        rng: &'a mut ChaCha8Rng,
    ) -> Self {
        RoundContext {
            process,
            round,
            outbox,
            rng,
        }
    }
}

impl<M> RoundContext<'_, M> {
    /// The process this context belongs to.
    pub fn process(&self) -> ProcessId {
        self.process
    }

    /// The current round number.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Sends a message with no payload-size accounting.
    pub fn send(&mut self, to: ProcessId, message: M) {
        self.outbox.push((to, message, 0));
    }

    /// Sends a message, recording its payload size for traffic accounting.
    pub fn send_sized(&mut self, to: ProcessId, message: M, payload_size: usize) {
        self.outbox.push((to, message, payload_size));
    }

    /// Deterministic per-run PRNG (shared across processes).
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        self.rng
    }

    /// Picks up to `count` distinct random elements of `candidates`
    /// (convenience for fanout-style gossip target selection).
    ///
    /// Allocates the returned vector; hot paths should prefer
    /// [`choose_indices_into`](Self::choose_indices_into) with a reused
    /// buffer.
    pub fn choose_targets<'c, T>(&mut self, candidates: &'c [T], count: usize) -> Vec<&'c T> {
        candidates.choose_multiple(self.rng, count.min(candidates.len())).collect()
    }

    /// Allocation-free target selection: clears `out` and fills it with up
    /// to `count` distinct indices into `0..pool`, drawn uniformly.  With a
    /// caller-reused buffer the steady-state cost is O(count) time and zero
    /// allocation.
    pub fn choose_indices_into(&mut self, pool: usize, count: usize, out: &mut Vec<usize>) {
        out.clear();
        let count = count.min(pool);
        while out.len() < count {
            let candidate = self.rng.gen_range(0..pool);
            if !out.contains(&candidate) {
                out.push(candidate);
            }
        }
    }
}

/// The kind of a membership lifecycle transition the engine applies and
/// reports: a process coming up, leaving gracefully, or failing.
///
/// The variant order is meaningful: transitions scheduled for the same
/// round apply joins first, then leaves, then crashes (the sort order of
/// the merged lifecycle schedule), so mixed schedules stay deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LifecycleKind {
    /// The process activates (an initial join or a re-join): it starts
    /// taking part in rounds and receiving messages sent from now on.
    Join,
    /// The process deactivates gracefully (an unsubscribe): it announces
    /// its departure, so membership layers may evict it eagerly.
    Leave,
    /// The process fails: it goes silent without announcement, so
    /// membership layers can only detect it by missed contact.
    Crash,
}

/// One membership lifecycle transition, reported to the observer installed
/// with [`Simulation::with_lifecycle_observer`] at the moment it happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleTransition {
    /// The process making the transition.
    pub process: ProcessId,
    /// What happened to it.
    pub kind: LifecycleKind,
}

/// A trial's membership lifecycle: which processes start outside the group
/// and which join/leave at which rounds.  Scheduled crashes stay on
/// [`crate::CrashPlan`] (the fault model); this plan is the *membership*
/// model — graceful, announced transitions.  Both schedules merge into one
/// deterministic queue applied at the start of each round, ordered by
/// `(round, kind, process)` with [`LifecycleKind`]'s `Join < Leave < Crash`
/// order breaking same-round ties.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LifecyclePlan {
    /// Processes that are not members when the simulation starts (they are
    /// expected to appear in `joins`); marked down silently — no observer
    /// notification, because no transition happened yet.
    pub initially_absent: Vec<usize>,
    /// `(round, process)` pairs joining during the run.
    pub joins: Vec<(u64, usize)>,
    /// `(round, process)` pairs leaving gracefully during the run.
    pub leaves: Vec<(u64, usize)>,
}

impl LifecyclePlan {
    /// Returns `true` if the plan contains no lifecycle activity at all.
    pub fn is_empty(&self) -> bool {
        self.initially_absent.is_empty() && self.joins.is_empty() && self.leaves.is_empty()
    }
}

/// Holdback state of one straggling process (the engine-level half of the
/// [`crate::FaultPlan`]): messages its outbox emitted on non-flush rounds,
/// waiting for the next flush round.
struct StragglerState<M> {
    process: usize,
    period: u64,
    holdback: Vec<(ProcessId, M, usize)>,
}

/// A straggler with period `k` flushes its outbox only on rounds `k`, `2k`,
/// `3k`, … — round 0 is never a flush round, so even traffic emitted at the
/// very start of a run is slowed down.
fn is_flush_round(round: u64, period: u64) -> bool {
    round != 0 && round.is_multiple_of(period)
}

/// Drives a set of [`RoundProcess`] state machines over a [`RoundNetwork`].
///
/// The round loop is allocation-free after warm-up: the inbox and outbox
/// buffers are owned by the simulation and reused every round, and the crash
/// schedule drains through a [`VecDeque`] cursor instead of repeatedly
/// shifting a vector.
pub struct Simulation<P: RoundProcess> {
    processes: Vec<P>,
    network: RoundNetwork<P::Message>,
    protocol_rng: ChaCha8Rng,
    /// Active stragglers from the [`crate::FaultPlan`] (neutral declarations
    /// are dropped at construction, so an empty vector is the no-fault hot
    /// path).  Flushed holdbacks send during the flush round in emission
    /// order, before the round's fresh traffic; a crash or leave discards
    /// the process's held messages.
    stragglers: Vec<StragglerState<P::Message>>,
    /// The merged lifecycle schedule (scheduled crashes from the
    /// [`CrashPlan`] plus the [`LifecyclePlan`] joins/leaves), sorted by
    /// `(round, kind, process)` and drained through a deque cursor.
    scheduled_lifecycle: VecDeque<(u64, LifecycleKind, usize)>,
    round: u64,
    /// `true` when at least one process declared [`Activity::EveryRound`]
    /// (or [`force_dense_stepping`](Self::force_dense_stepping) was called):
    /// the engine then keeps the historical dense 0..n sweep.  When every
    /// process opted into [`Activity::SkipWhenQuiescent`], rounds run over
    /// the active set instead.
    dense: bool,
    /// Dense indices scheduled for the next `on_round` phase, unsorted;
    /// deduplicated through `active_stamp` and sorted ascending right
    /// before the sweep, so active-set rounds visit processes in the same
    /// index order as the dense sweep.
    active_pending: Vec<usize>,
    /// Per-process stamp of the round the process was last scheduled for
    /// (`u64::MAX` = never); makes `mark_active` idempotent per round.
    active_stamp: Vec<u64>,
    /// Reused sweep buffer (the sorted snapshot of `active_pending`).
    active_scratch: Vec<usize>,
    /// Dense indices handed at least one message during the most recent
    /// [`step`](Self::step), deduplicated via `receiver_stamp` — the
    /// delivery delta observers use instead of re-scanning all n processes.
    receivers: Vec<usize>,
    /// Per-process stamp (`round + 1`) deduplicating `receivers`.
    receiver_stamp: Vec<u64>,
    /// Reused across rounds: messages delivered at the current boundary.
    inbox: Vec<Envelope<P::Message>>,
    /// Reused across rounds: messages emitted by the process being driven.
    outbox: Vec<(ProcessId, P::Message, usize)>,
    /// Invoked exactly once per lifecycle transition, at the moment it
    /// happens (initial [`CrashPlan`] fraction, scheduled joins/leaves/
    /// crashes and manual [`crash`](Self::crash) calls alike).  Lets layers
    /// living outside the engine — e.g. a gossip membership provider —
    /// observe churn without re-deriving the crash plan's random stream.
    lifecycle_observer: Option<Box<dyn FnMut(LifecycleTransition)>>,
}

impl<P: RoundProcess> std::fmt::Debug for Simulation<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("processes", &self.processes.len())
            .field("round", &self.round)
            .finish_non_exhaustive()
    }
}

impl<P: RoundProcess> Simulation<P> {
    /// Creates a simulation over the given processes and network
    /// configuration, applying any initial crash plan.
    pub fn new(processes: Vec<P>, config: NetworkConfig) -> Self {
        Self::build(processes, config, LifecyclePlan::default(), None)
    }

    /// Like [`new`](Self::new), but with a crash observer: `observer` is
    /// invoked exactly once per crashed process, at crash time — including
    /// the crashes the initial [`CrashPlan`] fraction applies during this
    /// very call.  The observer must not touch the simulation (it runs
    /// while the engine holds it mutably); it is meant for notifying
    /// co-simulated layers such as a gossip membership provider.
    ///
    /// This is the crash-only convenience over
    /// [`with_lifecycle_observer`](Self::with_lifecycle_observer), which
    /// additionally schedules joins and graceful leaves.
    pub fn with_crash_observer(
        processes: Vec<P>,
        config: NetworkConfig,
        mut observer: impl FnMut(ProcessId) + 'static,
    ) -> Self {
        Self::build(
            processes,
            config,
            LifecyclePlan::default(),
            Some(Box::new(move |transition: LifecycleTransition| {
                if transition.kind == LifecycleKind::Crash {
                    observer(transition.process);
                }
            })),
        )
    }

    /// Creates a simulation with a full membership lifecycle: the plan's
    /// `initially_absent` processes start off the network (silently — no
    /// transition happened yet), its joins activate them mid-run, its
    /// leaves deactivate members gracefully, and the [`CrashPlan`] injects
    /// failures as before.  `observer` is invoked exactly once per
    /// transition — join, leave or crash — at the moment it happens, so a
    /// co-simulated membership layer can mirror the population without
    /// re-deriving any schedule.  Same-round transitions apply in
    /// join-then-leave-then-crash order (see [`LifecycleKind`]).
    pub fn with_lifecycle_observer(
        processes: Vec<P>,
        config: NetworkConfig,
        lifecycle: LifecyclePlan,
        observer: impl FnMut(LifecycleTransition) + 'static,
    ) -> Self {
        Self::build(processes, config, lifecycle, Some(Box::new(observer)))
    }

    fn build(
        processes: Vec<P>,
        config: NetworkConfig,
        lifecycle: LifecyclePlan,
        mut lifecycle_observer: Option<Box<dyn FnMut(LifecycleTransition)>>,
    ) -> Self {
        config.validate();
        config.fault_plan.validate_for(processes.len());
        let mut seed_rng = ChaCha8Rng::seed_from_u64(config.seed);
        let network_rng = ChaCha8Rng::seed_from_u64(seed_rng.gen());
        let protocol_rng = ChaCha8Rng::seed_from_u64(seed_rng.gen());
        let mut network = RoundNetwork::with_faults(
            processes.len(),
            config.loss_probability,
            network_rng,
            &config.fault_plan,
        );
        // The engine-level fault axis: only non-neutral stragglers become
        // state, so a declared-but-inactive straggler (period <= 1) leaves
        // the round loop on its historical path.
        let stragglers: Vec<StragglerState<P::Message>> = config
            .fault_plan
            .stragglers
            .iter()
            .filter(|s| !s.is_neutral())
            .map(|s| StragglerState {
                process: s.process,
                period: s.period,
                holdback: Vec::new(),
            })
            .collect();
        let mut schedule: Vec<(u64, LifecycleKind, usize)> = Vec::new();
        let crash_fraction = |network: &mut RoundNetwork<P::Message>,
                                  seed_rng: &mut ChaCha8Rng,
                                  observer: &mut Option<Box<dyn FnMut(LifecycleTransition)>>,
                                  fraction: f64| {
            let mut crash_rng = ChaCha8Rng::seed_from_u64(seed_rng.gen());
            for index in 0..processes.len() {
                if crash_rng.gen_bool(fraction.clamp(0.0, 1.0)) {
                    network.crash(ProcessId(index));
                    if let Some(observer) = observer {
                        observer(LifecycleTransition {
                            process: ProcessId(index),
                            kind: LifecycleKind::Crash,
                        });
                    }
                }
            }
        };
        match &config.crash_plan {
            CrashPlan::None => {}
            CrashPlan::InitialFraction(fraction) => {
                crash_fraction(&mut network, &mut seed_rng, &mut lifecycle_observer, *fraction);
            }
            CrashPlan::Scheduled(crashes) => {
                schedule.extend(crashes.iter().map(|&(r, p)| (r, LifecycleKind::Crash, p)));
            }
            CrashPlan::Mixed { fraction, schedule: crashes } => {
                crash_fraction(&mut network, &mut seed_rng, &mut lifecycle_observer, *fraction);
                schedule.extend(crashes.iter().map(|&(r, p)| (r, LifecycleKind::Crash, p)));
            }
        }
        schedule.extend(lifecycle.joins.iter().map(|&(r, p)| (r, LifecycleKind::Join, p)));
        schedule.extend(lifecycle.leaves.iter().map(|&(r, p)| (r, LifecycleKind::Leave, p)));
        schedule.sort();
        // Initial absence is state, not a transition: the processes were
        // never members, so the observer is not notified.
        for &absent in &lifecycle.initially_absent {
            network.crash(ProcessId(absent));
        }
        // Active-set scheduling is all-or-nothing: one conservative
        // process forces the dense sweep for everyone, because a partial
        // skip would still reorder nothing but would complicate the
        // stream-neutrality argument for no gain (mixed-protocol groups
        // share one process type in this engine anyway).
        let dense = processes.iter().any(|p| p.activity() == Activity::EveryRound);
        let count = processes.len();
        Self {
            processes,
            network,
            protocol_rng,
            stragglers,
            scheduled_lifecycle: schedule.into(),
            round: 0,
            dense,
            // Round 0 schedules everybody: initial state (buffered
            // publications, seeded tokens) predates the simulation, so no
            // delivery could have marked it.  Crashed processes are
            // dropped by the first sweep.  The stamp encodes
            // `scheduled_round + 1` (0 = never), hence 1 here.
            active_pending: (0..count).collect(),
            active_stamp: vec![1; count],
            active_scratch: Vec::new(),
            receivers: Vec::new(),
            receiver_stamp: vec![0; count],
            inbox: Vec::new(),
            outbox: Vec::new(),
            lifecycle_observer,
        }
    }

    /// Schedules a process for the next `on_round` phase (idempotent per
    /// round).  A no-op under dense stepping, where every live process is
    /// visited anyway.
    fn mark_active(&mut self, index: usize) {
        if self.dense {
            return;
        }
        // The stamp encodes `scheduled_round + 1`.  `self.round` is the
        // round of the next `on_round` phase at every call site of this
        // method: between steps and during the delivery phase it is the
        // round about to sweep (sweep-time rescheduling, which targets
        // `round + 1`, stamps inline in `step`).
        if self.active_stamp[index] != self.round + 1 {
            self.active_stamp[index] = self.round + 1;
            self.active_pending.push(index);
        }
    }

    /// Forces the historical dense 0..n sweep even when every process
    /// opted into [`Activity::SkipWhenQuiescent`] — a validation hook for
    /// asserting that active-set and dense stepping produce bit-identical
    /// outcomes (dense stepping is always correct; active-set stepping is
    /// the optimisation under test).
    pub fn force_dense_stepping(&mut self) {
        self.dense = true;
        self.active_pending.clear();
    }

    /// Discards a departing process's held-back messages (its unsent queue
    /// dies with it) so a crashed straggler can never block quiescence.
    fn drop_holdback(&mut self, id: ProcessId) {
        if !self.stragglers.is_empty() {
            for state in &mut self.stragglers {
                if state.process == id.0 {
                    state.holdback.clear();
                }
            }
        }
    }

    /// Routes a drained outbox to the network — or into the sender's
    /// holdback buffer when the sender is a straggler off its flush round.
    fn dispatch_outbox(
        &mut self,
        from: ProcessId,
        outbox: &mut Vec<(ProcessId, P::Message, usize)>,
    ) {
        if !self.stragglers.is_empty() {
            let round = self.round;
            if let Some(state) = self.stragglers.iter_mut().find(|s| s.process == from.0) {
                if !is_flush_round(round, state.period) {
                    state.holdback.append(outbox);
                    return;
                }
            }
        }
        for (to, message, size) in outbox.drain(..) {
            self.network.send(from, to, message, size);
        }
    }

    /// Sends every straggler's held-back messages whose flush round has
    /// arrived, in emission order, before the round's fresh traffic.
    fn flush_stragglers(&mut self) {
        if self.stragglers.is_empty() {
            return;
        }
        let mut stragglers = std::mem::take(&mut self.stragglers);
        for state in &mut stragglers {
            if is_flush_round(self.round, state.period) && !state.holdback.is_empty() {
                let from = ProcessId(state.process);
                for (to, message, size) in state.holdback.drain(..) {
                    self.network.send(from, to, message, size);
                }
            }
        }
        self.stragglers = stragglers;
    }

    fn notify(&mut self, id: ProcessId, kind: LifecycleKind) {
        if let Some(observer) = &mut self.lifecycle_observer {
            observer(LifecycleTransition { process: id, kind });
        }
    }

    /// Crashes a process (if it is not already down) and notifies the
    /// lifecycle observer on the transition.
    fn crash_and_notify(&mut self, id: ProcessId) {
        if self.network.is_crashed(id) {
            return;
        }
        self.network.crash(id);
        self.drop_holdback(id);
        self.notify(id, LifecycleKind::Crash);
    }

    /// Deactivates a process gracefully (if it is up) and notifies the
    /// lifecycle observer of the leave.
    fn leave_and_notify(&mut self, id: ProcessId) {
        if self.network.is_crashed(id) {
            return;
        }
        self.network.crash(id);
        self.drop_holdback(id);
        self.notify(id, LifecycleKind::Leave);
    }

    /// Activates a process (if it is down) and notifies the lifecycle
    /// observer of the join.
    fn join_and_notify(&mut self, id: ProcessId) {
        if !self.network.is_crashed(id) {
            return;
        }
        self.network.activate(id);
        // A rejoiner may still hold state frozen at crash/leave time
        // (buffered gossip it never flushed), so it must be scheduled.
        self.mark_active(id.0);
        self.notify(id, LifecycleKind::Join);
    }

    /// Number of simulated processes.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// The current round number.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Immutable access to a process's protocol state.
    pub fn process(&self, id: ProcessId) -> &P {
        &self.processes[id.0]
    }

    /// Mutable access to a process's protocol state (e.g. to inject an
    /// application-level multicast before running).
    ///
    /// Conservatively schedules the process for the next round: the caller
    /// may wake it (inject a publication, hand it a token), and under
    /// active-set scheduling a wake the engine cannot see would otherwise
    /// never be swept.
    pub fn process_mut(&mut self, id: ProcessId) -> &mut P {
        self.mark_active(id.0);
        &mut self.processes[id.0]
    }

    /// Iterates over all protocol states.
    pub fn processes(&self) -> impl Iterator<Item = &P> {
        self.processes.iter()
    }

    /// The dense indices of the live processes handed at least one message
    /// during the most recent [`step`](Self::step), deduplicated (a
    /// process receiving several messages appears once), in delivery
    /// order.  Empty before the first step.
    ///
    /// This is the per-round delivery delta: state observers (such as a
    /// delivery-latency tracker) can inspect just these processes instead
    /// of re-scanning the whole group after every round, because a
    /// receipt-driven protocol only changes delivery state while handling
    /// a message or while the caller mutates it directly.
    pub fn last_step_receivers(&self) -> &[usize] {
        &self.receivers
    }

    /// The network traffic statistics.
    pub fn stats(&self) -> &TrafficStats {
        self.network.stats()
    }

    /// Returns `true` if the given process is down — crashed, gracefully
    /// departed, or not yet joined.
    pub fn is_crashed(&self, id: ProcessId) -> bool {
        self.network.is_crashed(id)
    }

    /// Crashes a process immediately.
    pub fn crash(&mut self, id: ProcessId) {
        self.crash_and_notify(id);
    }

    /// Number of down processes (crashed, departed or not yet joined).
    pub fn crashed_count(&self) -> usize {
        self.network.crashed_count()
    }

    /// Number of scheduled lifecycle transitions (joins, leaves, scheduled
    /// crashes) that have not been applied yet.  Callers stopping a run
    /// early on quiescence should also wait for this to reach zero, so a
    /// trial never ends with part of its declared schedule silently
    /// unapplied.
    pub fn pending_lifecycle(&self) -> usize {
        self.scheduled_lifecycle.len()
    }

    /// Executes one synchronous round: deliver last round's messages, then
    /// let every live process act.  Reuses the simulation-owned inbox and
    /// outbox buffers, so steady-state rounds allocate nothing.
    pub fn step(&mut self) {
        // Apply this round's lifecycle transitions (joins, then leaves,
        // then crashes — the schedule's sort order; O(1) per transition
        // thanks to the deque cursor).
        while let Some(&(when, kind, index)) = self.scheduled_lifecycle.front() {
            if when > self.round {
                break;
            }
            match kind {
                LifecycleKind::Join => self.join_and_notify(ProcessId(index)),
                LifecycleKind::Leave => self.leave_and_notify(ProcessId(index)),
                LifecycleKind::Crash => self.crash_and_notify(ProcessId(index)),
            }
            self.scheduled_lifecycle.pop_front();
        }

        let mut inbox = std::mem::take(&mut self.inbox);
        let mut outbox = std::mem::take(&mut self.outbox);
        self.network.deliver_round_into(&mut inbox);
        // Stragglers whose flush round has arrived send their backlog
        // before the round's fresh traffic (a no-op without stragglers).
        self.flush_stragglers();

        self.receivers.clear();
        for envelope in inbox.drain(..) {
            if self.network.is_crashed(envelope.to) {
                continue;
            }
            // Record the delivery delta (deduplicated) and schedule the
            // receiver: a message may have woken it.
            if self.receiver_stamp[envelope.to.0] != self.round + 1 {
                self.receiver_stamp[envelope.to.0] = self.round + 1;
                self.receivers.push(envelope.to.0);
            }
            self.mark_active(envelope.to.0);
            let mut ctx = RoundContext {
                process: envelope.to,
                round: self.round,
                outbox: &mut outbox,
                rng: &mut self.protocol_rng,
            };
            let process = &mut self.processes[envelope.to.0];
            let from = envelope.from;
            process.on_message(from, envelope.message, &mut ctx);
            // Messages emitted while handling are sent from the receiver.
            self.dispatch_outbox(envelope.to, &mut outbox);
        }

        if self.dense {
            for index in 0..self.processes.len() {
                let id = ProcessId(index);
                if self.network.is_crashed(id) {
                    continue;
                }
                let mut ctx = RoundContext {
                    process: id,
                    round: self.round,
                    outbox: &mut outbox,
                    rng: &mut self.protocol_rng,
                };
                self.processes[index].on_round(&mut ctx);
                self.dispatch_outbox(id, &mut outbox);
            }
        } else {
            // The active-set sweep: visit exactly the scheduled processes,
            // in ascending index order — the same order the dense sweep
            // visits them in.  Every process skipped here is quiescent and
            // declared `SkipWhenQuiescent`, so its `on_round` would have
            // been a no-op drawing nothing from the shared RNG: the RNG
            // stream, the traffic and every process state are bit-identical
            // to the dense sweep's.
            let mut current = std::mem::take(&mut self.active_scratch);
            current.clear();
            current.append(&mut self.active_pending);
            current.sort_unstable();
            for &index in &current {
                let id = ProcessId(index);
                if self.network.is_crashed(id) {
                    continue;
                }
                let mut ctx = RoundContext {
                    process: id,
                    round: self.round,
                    outbox: &mut outbox,
                    rng: &mut self.protocol_rng,
                };
                self.processes[index].on_round(&mut ctx);
                self.dispatch_outbox(id, &mut outbox);
                // Still busy?  Reschedule for the next round (stamp
                // encoding `scheduled_round + 1` = `(round + 1) + 1`).
                if !self.processes[index].is_quiescent()
                    && self.active_stamp[index] != self.round + 2
                {
                    self.active_stamp[index] = self.round + 2;
                    self.active_pending.push(index);
                }
            }
            self.active_scratch = current;
        }
        self.inbox = inbox;
        self.outbox = outbox;
        self.round += 1;
    }

    /// Runs the given number of rounds.
    pub fn run_rounds(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Returns `true` if every live process is quiescent and no messages
    /// are in flight — the stopping condition of
    /// [`run_until_quiescent`](Self::run_until_quiescent), exposed so
    /// callers driving the simulation step by step (e.g. to inject
    /// publications on a schedule) can stop on the same condition.
    pub fn is_quiescent(&self) -> bool {
        let protocol_quiet = if self.dense {
            self.processes
                .iter()
                .enumerate()
                .all(|(index, p)| self.network.is_crashed(ProcessId(index)) || p.is_quiescent())
        } else {
            // Invariant of active-set scheduling: every live non-quiescent
            // process is in `active_pending` (it was scheduled by the wake
            // that made it non-quiescent — a delivery, a join, or a
            // `process_mut` touch — or rescheduled by its own sweep).  So
            // scanning the pending set is enough, and a fully-quiescent
            // simulation answers in O(1) because the set is empty.
            self.active_pending
                .iter()
                .all(|&index| self.network.is_crashed(ProcessId(index)) || self.processes[index].is_quiescent())
        };
        protocol_quiet
            && self.network.is_idle()
            // A straggler's held-back backlog is in-flight traffic the
            // network cannot see yet; the run keeps stepping until the
            // flush round sends it (or the straggler departs).
            && self.stragglers.iter().all(|s| s.holdback.is_empty())
    }

    /// Runs until every process is quiescent, no messages are in flight
    /// **and** the declared lifecycle schedule has fully applied, or until
    /// `max_rounds` have elapsed.  Returns the number of rounds executed.
    ///
    /// Waiting on [`pending_lifecycle`](Self::pending_lifecycle) keeps a
    /// run from ending with part of its schedule silently unapplied: a
    /// join at round 50 still happens even if the protocol went quiet at
    /// round 10.
    pub fn run_until_quiescent(&mut self, max_rounds: u64) -> u64 {
        let mut executed = 0;
        while executed < max_rounds {
            self.step();
            executed += 1;
            if self.pending_lifecycle() == 0 && self.is_quiescent() {
                break;
            }
        }
        executed
    }

    /// Consumes the simulation and returns the protocol states (useful for
    /// post-run inspection of deliveries).
    pub fn into_processes(self) -> Vec<P> {
        self.processes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultPlan;

    /// A process that floods a token to everybody once it has seen it.
    struct Flood {
        everyone: Vec<ProcessId>,
        has_token: bool,
        announced: bool,
        deliveries: u32,
    }

    impl Flood {
        fn new(everyone: Vec<ProcessId>, seeded: bool) -> Self {
            Self {
                everyone,
                has_token: seeded,
                announced: false,
                deliveries: 0,
            }
        }
    }

    impl RoundProcess for Flood {
        type Message = u64;

        fn on_round(&mut self, ctx: &mut RoundContext<'_, u64>) {
            if self.has_token && !self.announced {
                for &peer in &self.everyone {
                    if peer != ctx.process() {
                        ctx.send_sized(peer, 99, 8);
                    }
                }
                self.announced = true;
            }
        }

        fn on_message(&mut self, _from: ProcessId, message: u64, _ctx: &mut RoundContext<'_, u64>) {
            assert_eq!(message, 99);
            self.deliveries += 1;
            self.has_token = true;
        }

        fn is_quiescent(&self) -> bool {
            !self.has_token || self.announced
        }

        fn activity(&self) -> Activity {
            // `on_round` acts exactly when `has_token && !announced`, i.e.
            // when not quiescent, and never draws from the RNG — so a
            // quiescent `on_round` is a pure no-op and skipping is safe.
            Activity::SkipWhenQuiescent
        }
    }

    fn flood_simulation(count: usize, config: NetworkConfig) -> Simulation<Flood> {
        let everyone: Vec<ProcessId> = (0..count).map(ProcessId).collect();
        let processes: Vec<Flood> = (0..count)
            .map(|i| Flood::new(everyone.clone(), i == 0))
            .collect();
        Simulation::new(processes, config)
    }

    #[test]
    fn reliable_flood_reaches_everyone() {
        let mut sim = flood_simulation(10, NetworkConfig::reliable(3));
        let rounds = sim.run_until_quiescent(50);
        assert!(rounds < 50);
        let reached = sim.processes().filter(|p| p.has_token).count();
        assert_eq!(reached, 10);
        // 9 messages from the seed + 9·8 from the others echoing once.
        assert_eq!(sim.stats().messages_sent, 9 + 9 * 9);
        assert_eq!(sim.stats().messages_lost, 0);
        assert!(sim.stats().payload_bytes > 0);
    }

    #[test]
    fn lossy_flood_misses_some_processes() {
        let mut sim = flood_simulation(30, NetworkConfig::default().with_loss(0.9).with_seed(5));
        sim.run_rounds(3);
        let reached = sim.processes().filter(|p| p.has_token).count();
        assert!(reached < 30, "with 90% loss not everybody is reached in 3 rounds");
        assert!(sim.stats().messages_lost > 0);
    }

    #[test]
    fn initial_crash_fraction_disables_processes() {
        let config = NetworkConfig::faulty(0.0, 0.5, 11);
        let mut sim = flood_simulation(100, config);
        let crashed = sim.crashed_count();
        assert!(crashed > 20 && crashed < 80, "crashed {crashed}");
        sim.run_until_quiescent(10);
        let reached = sim
            .processes()
            .enumerate()
            .filter(|(i, p)| p.has_token && !sim.is_crashed(ProcessId(*i)))
            .count();
        // All live processes are reached directly by the seed (unless the
        // seed itself crashed, in which case nobody new is reached).
        if !sim.is_crashed(ProcessId(0)) {
            assert_eq!(reached, 100 - crashed);
        }
    }

    #[test]
    fn mixed_crash_plan_applies_both_models() {
        let plan = CrashPlan::Mixed {
            fraction: 0.5,
            schedule: vec![(2, 0)],
        };
        let config = NetworkConfig::reliable(11).with_crash_plan(plan);
        let mut sim = flood_simulation(100, config);
        let initially_crashed = sim.crashed_count();
        assert!(initially_crashed > 20 && initially_crashed < 80, "{initially_crashed}");
        // The initial fraction draws from the same stream as
        // `InitialFraction`, so the crash set matches it exactly.
        let fraction_only = flood_simulation(100, NetworkConfig::faulty(0.0, 0.5, 11));
        for index in 0..100 {
            assert_eq!(
                sim.is_crashed(ProcessId(index)),
                fraction_only.is_crashed(ProcessId(index))
            );
        }
        sim.step();
        sim.step();
        sim.step(); // round 2 → scheduled crash of process 0 applies
        assert!(sim.is_crashed(ProcessId(0)));
        assert!(sim.crashed_count() >= initially_crashed);
    }

    #[test]
    fn quiescence_query_matches_run_until_quiescent() {
        let mut sim = flood_simulation(10, NetworkConfig::reliable(3));
        assert!(!sim.is_quiescent(), "seed process has a token to announce");
        sim.run_until_quiescent(50);
        assert!(sim.is_quiescent());
    }

    #[test]
    fn scheduled_crashes_happen_at_the_right_round() {
        let schedule = CrashPlan::Scheduled(vec![(2, 1)]);
        let config = NetworkConfig::reliable(1).with_crash_plan(schedule);
        let mut sim = flood_simulation(3, config);
        assert!(!sim.is_crashed(ProcessId(1)));
        sim.step(); // round 0
        sim.step(); // round 1
        assert!(!sim.is_crashed(ProcessId(1)));
        sim.step(); // round 2 → crash applies
        assert!(sim.is_crashed(ProcessId(1)));
    }

    #[test]
    fn runs_are_reproducible_for_equal_seeds() {
        let run = |seed| {
            let mut sim = flood_simulation(40, NetworkConfig::default().with_loss(0.4).with_seed(seed));
            sim.run_rounds(4);
            let reached = sim.processes().filter(|p| p.has_token).count();
            (reached, sim.stats().messages_lost)
        };
        assert_eq!(run(21), run(21));
    }

    #[test]
    fn accessors_work() {
        let mut sim = flood_simulation(4, NetworkConfig::reliable(0));
        assert_eq!(sim.process_count(), 4);
        assert_eq!(sim.round(), 0);
        assert!(sim.process(ProcessId(0)).has_token);
        sim.process_mut(ProcessId(2)).has_token = true;
        sim.run_rounds(2);
        assert_eq!(sim.round(), 2);
        let states = sim.into_processes();
        assert_eq!(states.len(), 4);
        assert!(states[3].has_token);
    }

    #[test]
    fn manual_crash_mid_run() {
        let mut sim = flood_simulation(5, NetworkConfig::reliable(9));
        sim.crash(ProcessId(4));
        sim.run_until_quiescent(10);
        assert!(!sim.process(ProcessId(4)).has_token);
        assert!(sim.stats().messages_to_crashed > 0);
    }

    #[test]
    fn crash_observer_sees_every_crash_exactly_once() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let seen: Rc<RefCell<Vec<ProcessId>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&seen);
        let plan = CrashPlan::Mixed {
            fraction: 0.3,
            schedule: vec![(1, 2)],
        };
        let config = NetworkConfig::reliable(11).with_crash_plan(plan);
        let everyone: Vec<ProcessId> = (0..50).map(ProcessId).collect();
        let processes: Vec<Flood> = (0..50)
            .map(|i| Flood::new(everyone.clone(), i == 0))
            .collect();
        let mut sim = Simulation::with_crash_observer(processes, config, move |id| {
            sink.borrow_mut().push(id)
        });
        // The initial fraction is observed during construction.
        assert_eq!(seen.borrow().len(), sim.crashed_count());
        sim.step();
        sim.step(); // round 1 → the scheduled crash of process 2 applies
        assert!(sim.is_crashed(ProcessId(2)));
        // Manual crashes notify too; re-crashing is not re-notified.
        sim.crash(ProcessId(7));
        sim.crash(ProcessId(7));
        sim.crash(ProcessId(2));
        assert_eq!(seen.borrow().len(), sim.crashed_count());
        let mut unique = seen.borrow().clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), sim.crashed_count(), "no duplicate notifications");
    }

    #[test]
    fn lifecycle_plan_activates_joiners_and_departs_leavers() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let seen: Rc<RefCell<Vec<(usize, LifecycleKind)>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&seen);
        let everyone: Vec<ProcessId> = (0..6).map(ProcessId).collect();
        let processes: Vec<Flood> = (0..6)
            .map(|i| Flood::new(everyone.clone(), i == 0))
            .collect();
        let plan = LifecyclePlan {
            initially_absent: vec![5],
            joins: vec![(2, 5)],
            leaves: vec![(3, 1)],
        };
        assert!(!plan.is_empty());
        assert!(LifecyclePlan::default().is_empty());
        let mut sim = Simulation::with_lifecycle_observer(
            processes,
            NetworkConfig::reliable(4),
            plan,
            move |t| sink.borrow_mut().push((t.process.0, t.kind)),
        );
        // Initial absence is silent and keeps the process off the network.
        assert!(sim.is_crashed(ProcessId(5)));
        assert!(seen.borrow().is_empty());
        sim.step(); // round 0: seed floods to everyone; 5 is down, misses it
        sim.step(); // round 1: deliveries
        assert!(!sim.process(ProcessId(5)).has_token, "absent process missed the flood");
        sim.step(); // round 2: 5 joins
        assert!(!sim.is_crashed(ProcessId(5)));
        sim.step(); // round 3: 1 leaves
        assert!(sim.is_crashed(ProcessId(1)));
        assert!(sim.process(ProcessId(1)).has_token, "the leaver was a member before");
        assert_eq!(
            *seen.borrow(),
            vec![(5, LifecycleKind::Join), (1, LifecycleKind::Leave)]
        );
    }

    #[test]
    fn same_round_lifecycle_transitions_apply_join_leave_crash() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let seen: Rc<RefCell<Vec<(usize, LifecycleKind)>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&seen);
        let everyone: Vec<ProcessId> = (0..4).map(ProcessId).collect();
        let processes: Vec<Flood> = (0..4)
            .map(|i| Flood::new(everyone.clone(), i == 0))
            .collect();
        let config = NetworkConfig::reliable(7)
            .with_crash_plan(CrashPlan::Scheduled(vec![(1, 2)]));
        let plan = LifecyclePlan {
            initially_absent: vec![3],
            joins: vec![(1, 3)],
            leaves: vec![(1, 1)],
        };
        let mut sim = Simulation::with_lifecycle_observer(processes, config, plan, move |t| {
            sink.borrow_mut().push((t.process.0, t.kind))
        });
        sim.step(); // round 0
        sim.step(); // round 1: join(3), leave(1), crash(2) in that order
        assert_eq!(
            *seen.borrow(),
            vec![
                (3, LifecycleKind::Join),
                (1, LifecycleKind::Leave),
                (2, LifecycleKind::Crash)
            ]
        );
        // A joiner can re-join the dissemination: give 3 the token and it
        // floods like any live process.
        sim.process_mut(ProcessId(3)).has_token = true;
        let before = sim.stats().messages_sent;
        sim.step();
        assert!(sim.stats().messages_sent > before, "re-activated process sends");
    }

    #[test]
    fn rejoin_after_leave_is_notified_once_each() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let seen: Rc<RefCell<Vec<(usize, LifecycleKind)>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&seen);
        let everyone: Vec<ProcessId> = (0..3).map(ProcessId).collect();
        let processes: Vec<Flood> = (0..3)
            .map(|i| Flood::new(everyone.clone(), i == 0))
            .collect();
        let plan = LifecyclePlan {
            initially_absent: Vec::new(),
            joins: vec![(2, 1), (2, 1)], // duplicate join is idempotent
            leaves: vec![(1, 1)],
        };
        let mut sim = Simulation::with_lifecycle_observer(
            processes,
            NetworkConfig::reliable(2),
            plan,
            move |t| sink.borrow_mut().push((t.process.0, t.kind)),
        );
        sim.step(); // round 0
        sim.step(); // round 1: leave
        sim.step(); // round 2: re-join (second join is a no-op)
        assert_eq!(
            *seen.borrow(),
            vec![(1, LifecycleKind::Leave), (1, LifecycleKind::Join)]
        );
        assert!(!sim.is_crashed(ProcessId(1)));
    }

    #[test]
    fn choose_targets_respects_bounds() {
        let mut outbox: Vec<(ProcessId, u64, usize)> = Vec::new();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut ctx = RoundContext {
            process: ProcessId(0),
            round: 0,
            outbox: &mut outbox,
            rng: &mut rng,
        };
        let candidates = vec![1, 2, 3, 4, 5];
        assert_eq!(ctx.choose_targets(&candidates, 3).len(), 3);
        assert_eq!(ctx.choose_targets(&candidates, 10).len(), 5);
        assert!(ctx.choose_targets::<i32>(&[], 3).is_empty());
        assert!(!format!("{ctx:?}").is_empty());
    }

    #[test]
    fn straggler_holds_back_sends_until_its_flush_round() {
        // Process 0 (the seed) flushes only every 3rd round: its announce
        // in round 0 is held until round 3, so nobody has the token after
        // two full rounds.
        let plan = FaultPlan::default().with_straggler(0, 3);
        let config = NetworkConfig::reliable(3).with_fault_plan(plan);
        let mut sim = flood_simulation(10, config);
        sim.run_rounds(3);
        let reached = sim.processes().filter(|p| p.has_token).count();
        assert_eq!(reached, 1, "held-back announce must not be delivered yet");
        assert_eq!(sim.stats().messages_sent, 0, "holdback precedes the network");
        // Round 3 flushes the holdback; the boundary of round 4 delivers it.
        sim.run_rounds(2);
        let reached = sim.processes().filter(|p| p.has_token).count();
        assert_eq!(reached, 10);
    }

    #[test]
    fn straggler_delays_but_does_not_change_outcomes() {
        let plan = FaultPlan::default().with_straggler(0, 4);
        let mut slow = flood_simulation(10, NetworkConfig::reliable(3).with_fault_plan(plan));
        let mut fast = flood_simulation(10, NetworkConfig::reliable(3));
        let slow_rounds = slow.run_until_quiescent(50);
        let fast_rounds = fast.run_until_quiescent(50);
        assert!(slow_rounds > fast_rounds, "{slow_rounds} vs {fast_rounds}");
        assert_eq!(slow.stats().messages_sent, fast.stats().messages_sent);
        assert_eq!(slow.processes().filter(|p| p.has_token).count(), 10);
    }

    #[test]
    fn quiescence_waits_for_straggler_holdbacks() {
        let plan = FaultPlan::default().with_straggler(0, 5);
        let config = NetworkConfig::reliable(3).with_fault_plan(plan);
        let mut sim = flood_simulation(4, config);
        sim.run_rounds(2);
        // The seed announced (protocol-quiescent, network idle) but its
        // messages still sit in the holdback queue.
        assert!(!sim.is_quiescent(), "holdback must block quiescence");
        sim.run_until_quiescent(20);
        assert_eq!(sim.processes().filter(|p| p.has_token).count(), 4);
    }

    #[test]
    fn crashing_a_straggler_drops_its_holdback() {
        let plan = FaultPlan::default().with_straggler(0, 10);
        let config = NetworkConfig::reliable(3)
            .with_fault_plan(plan)
            .with_crash_plan(CrashPlan::Scheduled(vec![(2, 0)]));
        let mut sim = flood_simulation(4, config);
        let rounds = sim.run_until_quiescent(30);
        assert!(rounds < 30, "dropped holdback must not wedge quiescence");
        assert_eq!(sim.stats().messages_sent, 0);
        assert_eq!(sim.processes().filter(|p| p.has_token).count(), 1);
    }

    #[test]
    fn neutral_stragglers_are_ignored() {
        let plan = FaultPlan::default().with_straggler(0, 1);
        let mut with_plan = flood_simulation(10, NetworkConfig::reliable(3).with_fault_plan(plan));
        let mut without = flood_simulation(10, NetworkConfig::reliable(3));
        assert_eq!(
            with_plan.run_until_quiescent(50),
            without.run_until_quiescent(50)
        );
        assert_eq!(with_plan.stats(), without.stats());
    }

    /// A rumor-mongering process that *draws from the shared protocol RNG*
    /// while active: each round it holds the rumor and has budget left, it
    /// picks two random peers and forwards.  This makes the bit-identical
    /// tests below sensitive to any divergence in which processes run and
    /// in which order — a single extra or missing `on_round` call of a
    /// non-quiescent process shifts every later draw of the shared stream.
    struct Rumor {
        count: usize,
        has_rumor: bool,
        budget: u32,
        deliveries: u32,
        picks: Vec<usize>,
    }

    impl Rumor {
        fn new(count: usize, seeded: bool) -> Self {
            Self {
                count,
                has_rumor: seeded,
                budget: if seeded { 3 } else { 0 },
                deliveries: 0,
                picks: Vec::new(),
            }
        }

        fn fingerprint(&self) -> (bool, u32, u32) {
            (self.has_rumor, self.budget, self.deliveries)
        }
    }

    impl RoundProcess for Rumor {
        type Message = u8;

        fn on_round(&mut self, ctx: &mut RoundContext<'_, u8>) {
            if !self.has_rumor || self.budget == 0 {
                return;
            }
            self.budget -= 1;
            let own = ctx.process().0;
            ctx.choose_indices_into(self.count - 1, 2, &mut self.picks);
            for &pick in &self.picks {
                let target = if pick >= own { pick + 1 } else { pick };
                ctx.send_sized(ProcessId(target), 7, 1);
            }
        }

        fn on_message(&mut self, _from: ProcessId, message: u8, _ctx: &mut RoundContext<'_, u8>) {
            assert_eq!(message, 7);
            self.deliveries += 1;
            if !self.has_rumor {
                self.has_rumor = true;
                self.budget = 3;
            }
        }

        fn is_quiescent(&self) -> bool {
            !self.has_rumor || self.budget == 0
        }

        fn activity(&self) -> Activity {
            Activity::SkipWhenQuiescent
        }
    }

    fn rumor_simulation(count: usize, config: NetworkConfig, plan: LifecyclePlan) -> Simulation<Rumor> {
        let processes: Vec<Rumor> = (0..count).map(|i| Rumor::new(count, i == 0)).collect();
        Simulation::with_lifecycle_observer(processes, config, plan, |_| {})
    }

    #[test]
    fn active_set_is_bit_identical_to_dense_sweep() {
        // A deliberately adversarial scenario: lossy links, an initial
        // crash fraction, a scheduled crash, a straggler, a leave, and a
        // join of an initially-absent process.  The active-set run and the
        // dense run must agree on every observable: rounds to quiescence,
        // full traffic statistics (loss draws consume the network RNG, so
        // equality here means the streams stayed aligned) and the complete
        // per-process state.
        let build = || {
            let plan = CrashPlan::Mixed {
                fraction: 0.1,
                schedule: vec![(4, 2)],
            };
            let config = NetworkConfig::default()
                .with_loss(0.15)
                .with_seed(13)
                .with_crash_plan(plan)
                .with_fault_plan(FaultPlan::default().with_straggler(3, 2));
            let lifecycle = LifecyclePlan {
                initially_absent: vec![5],
                joins: vec![(2, 5)],
                leaves: vec![(6, 1)],
            };
            rumor_simulation(40, config, lifecycle)
        };
        let mut sparse = build();
        let mut dense = build();
        dense.force_dense_stepping();
        let sparse_rounds = sparse.run_until_quiescent(100);
        let dense_rounds = dense.run_until_quiescent(100);
        assert_eq!(sparse_rounds, dense_rounds);
        assert_eq!(sparse.stats(), dense.stats());
        assert_eq!(sparse.round(), dense.round());
        assert_eq!(sparse.crashed_count(), dense.crashed_count());
        let sparse_states: Vec<_> = sparse.processes().map(Rumor::fingerprint).collect();
        let dense_states: Vec<_> = dense.processes().map(Rumor::fingerprint).collect();
        assert_eq!(sparse_states, dense_states);
        // The scenario actually spread the rumor (the test is vacuous if
        // nothing happened).
        assert!(sparse_states.iter().filter(|(has, ..)| *has).count() > 5);
    }

    #[test]
    fn run_until_quiescent_waits_for_the_lifecycle_schedule() {
        // The flood is over by round ~2, but the schedule extends to round
        // 50: the run must keep stepping until the join has applied
        // instead of ending with part of the declared schedule unapplied.
        let everyone: Vec<ProcessId> = (0..4).map(ProcessId).collect();
        let processes: Vec<Flood> = (0..4)
            .map(|i| Flood::new(everyone.clone(), i == 0))
            .collect();
        let plan = LifecyclePlan {
            initially_absent: vec![3],
            joins: vec![(50, 3)],
            leaves: Vec::new(),
        };
        let mut sim = Simulation::with_lifecycle_observer(
            processes,
            NetworkConfig::reliable(6),
            plan,
            |_| {},
        );
        let rounds = sim.run_until_quiescent(100);
        assert!(rounds > 50, "stopped at {rounds}, before the scheduled join");
        assert_eq!(sim.pending_lifecycle(), 0);
        assert!(!sim.is_crashed(ProcessId(3)), "the join applied");
        assert!(sim.is_quiescent());
    }

    #[test]
    fn last_step_receivers_reports_the_delivery_delta() {
        let mut sim = flood_simulation(5, NetworkConfig::reliable(3));
        assert!(sim.last_step_receivers().is_empty(), "no deliveries before stepping");
        sim.step(); // round 0: the seed floods; nothing delivered yet
        assert!(sim.last_step_receivers().is_empty());
        sim.step(); // round 1: everyone else receives the token
        let mut receivers = sim.last_step_receivers().to_vec();
        receivers.sort_unstable();
        assert_eq!(receivers, vec![1, 2, 3, 4]);
        sim.step(); // round 2: the echoes land on the seed and each other
        assert_eq!(sim.last_step_receivers().len(), 5, "deduplicated per process");
        sim.run_until_quiescent(20);
        assert!(sim.last_step_receivers().is_empty(), "quiet rounds deliver nothing");
    }

    #[test]
    fn process_mut_reactivates_a_quiescent_process() {
        // Let the simulation go fully quiescent, then wake process 2 by
        // direct mutation: the next step must sweep it even though no
        // message or lifecycle event pointed at it.
        let mut sim = flood_simulation(6, NetworkConfig::reliable(3));
        sim.run_until_quiescent(20);
        assert!(sim.is_quiescent());
        sim.process_mut(ProcessId(2)).announced = false;
        assert!(!sim.is_quiescent(), "the woken process is visible to the scan");
        let before = sim.stats().messages_sent;
        sim.step();
        assert!(sim.stats().messages_sent > before, "the woken process re-announced");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn build_rejects_fault_plans_referencing_missing_processes() {
        let plan = FaultPlan::default().with_straggler(10, 2);
        flood_simulation(4, NetworkConfig::reliable(3).with_fault_plan(plan));
    }

    #[test]
    #[should_panic(expected = "loss_probability must lie in [0, 1]")]
    fn build_validates_the_network_config() {
        flood_simulation(4, NetworkConfig::reliable(3).with_loss(2.0));
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The active-set optimisation's core safety property, checked
            /// over random group sizes, seeds, loss rates and churn: a
            /// process skipped by the active set never changes observable
            /// state — every skipped `on_round` was a no-op, so the sparse
            /// run is bit-identical to the dense run (rounds, traffic
            /// statistics including RNG-consuming loss draws, and the full
            /// per-process state).
            #[test]
            fn skipped_processes_never_change_observable_state(
                seed in 0u64..300,
                count in 6usize..32,
                loss in 0u32..25,
                crash_round in 1u64..6,
                churn_target in 1usize..6,
            ) {
                let build = || {
                    let config = NetworkConfig::default()
                        .with_loss(f64::from(loss) / 100.0)
                        .with_seed(seed)
                        .with_crash_plan(CrashPlan::Scheduled(vec![(crash_round, churn_target)]));
                    // The crashed process rejoins two rounds later — the
                    // join must reschedule it even though no message
                    // pointed at it while it was down.
                    let plan = LifecyclePlan {
                        initially_absent: Vec::new(),
                        joins: vec![(crash_round + 2, churn_target)],
                        leaves: Vec::new(),
                    };
                    rumor_simulation(count, config, plan)
                };
                let mut sparse = build();
                let mut dense = build();
                dense.force_dense_stepping();
                prop_assert_eq!(sparse.run_until_quiescent(200), dense.run_until_quiescent(200));
                prop_assert_eq!(sparse.stats(), dense.stats());
                prop_assert_eq!(sparse.round(), dense.round());
                let sparse_states: Vec<_> = sparse.processes().map(Rumor::fingerprint).collect();
                let dense_states: Vec<_> = dense.processes().map(Rumor::fingerprint).collect();
                prop_assert_eq!(sparse_states, dense_states);
            }
        }
    }
}
