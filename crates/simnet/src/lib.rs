//! # pmcast-simnet — deterministic round-based network simulation
//!
//! The analysis and evaluation of *Probabilistic Multicast* (Section 4.1)
//! assume processes gossip in synchronous rounds over an unreliable network:
//! every message is lost independently with probability `ε`, a fraction
//! `τ = f/n` of the processes crash during a run, and the network latency is
//! bounded by the gossip period.  This crate provides exactly that substrate
//! as a deterministic, seedable discrete-round simulator:
//!
//! * [`RoundNetwork`] — a message switch with per-message loss, crashed
//!   destinations and full traffic accounting;
//! * [`Simulation`] + [`RoundProcess`] — a driver that owns one protocol
//!   state machine per process and advances them in lockstep rounds;
//! * [`CrashPlan`] — failure injection: crash chosen processes at chosen
//!   rounds, or a random fraction of the group;
//! * [`LifecyclePlan`] — the membership lifecycle: processes that start
//!   outside the group, join mid-run, or leave gracefully, with every
//!   transition reported to a [`Simulation::with_lifecycle_observer`]
//!   callback as a [`LifecycleTransition`];
//! * [`FaultPlan`] — adversarial structured faults layered on the paper's
//!   uniform `ε`/`τ` model: per-link extra latency ([`LinkDelay`]), healing
//!   partitions ([`PartitionWindow`]), correlated per-range loss
//!   ([`LossOverride`]) and slow-node stragglers ([`Straggler`]);
//! * [`TrafficStats`] — messages sent / delivered / lost / suppressed /
//!   partitioned / delayed, used by the evaluation to compare pmcast against
//!   flooding baselines.
//!
//! Determinism: all randomness flows from a single [`rand_chacha`] PRNG
//! seeded by the caller, so any run can be replayed bit-for-bit.
//!
//! Performance: the round loop is allocation-free at steady state.
//! [`Simulation::step`] reuses simulation-owned inbox/outbox buffers,
//! [`RoundNetwork::deliver_round_into`] recycles the in-flight queue's
//! capacity, scheduled crashes drain through a `VecDeque` cursor, and
//! [`RoundContext::choose_indices_into`] offers allocation-free fanout
//! target selection for protocols (messages themselves should carry their
//! payloads in `Arc`s, as `pmcast-core` does, so per-target clones are
//! refcount bumps).
//!
//! ## Example
//!
//! ```rust
//! use pmcast_simnet::{NetworkConfig, ProcessId, RoundContext, RoundProcess, Simulation};
//!
//! /// Every process forwards the token to the next one once.
//! struct Relay { next: ProcessId, has_token: bool }
//!
//! impl RoundProcess for Relay {
//!     type Message = ();
//!     fn on_round(&mut self, ctx: &mut RoundContext<'_, ()>) {
//!         if self.has_token {
//!             ctx.send(self.next, ());
//!             self.has_token = false;
//!         }
//!     }
//!     fn on_message(&mut self, _from: ProcessId, _message: (), _ctx: &mut RoundContext<'_, ()>) {
//!         self.has_token = true;
//!     }
//! }
//!
//! let processes: Vec<Relay> = (0..4)
//!     .map(|i| Relay { next: ProcessId((i + 1) % 4), has_token: i == 0 })
//!     .collect();
//! let mut sim = Simulation::new(processes, NetworkConfig::reliable(1));
//! sim.run_rounds(4);
//! assert_eq!(sim.stats().messages_sent, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod engine;
mod fault;
mod network;
mod stats;

pub use config::{CrashPlan, NetworkConfig};
pub use engine::{
    Activity, LifecycleKind, LifecyclePlan, LifecycleTransition, RoundContext, RoundProcess,
    Simulation,
};
pub use fault::{FaultPlan, LinkDelay, LossOverride, PartitionWindow, Straggler};
pub use network::{Envelope, ProcessId, RoundNetwork};
pub use stats::TrafficStats;
