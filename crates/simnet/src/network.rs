use std::fmt;

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::TrafficStats;

/// Dense identifier of a simulated process (an index into the simulation's
/// process table).  The mapping to a pmcast `Address` is kept
/// by the layer above.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ProcessId(pub usize);

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(value: usize) -> Self {
        ProcessId(value)
    }
}

/// A message in flight: sender, destination and payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sending process.
    pub from: ProcessId,
    /// Destination process.
    pub to: ProcessId,
    /// Protocol payload.
    pub message: M,
}

/// The round-based message switch.
///
/// Messages sent during round `t` are delivered at the beginning of round
/// `t + 1` (the paper assumes the network latency is bounded by the gossip
/// period).  Each message is lost independently with probability `ε`;
/// messages to or from crashed processes are dropped and accounted
/// separately.
pub struct RoundNetwork<M> {
    loss_probability: f64,
    crashed: Vec<bool>,
    in_flight: Vec<Envelope<M>>,
    stats: TrafficStats,
    round: u64,
    rng: ChaCha8Rng,
}

impl<M> fmt::Debug for RoundNetwork<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RoundNetwork")
            .field("processes", &self.crashed.len())
            .field("round", &self.round)
            .field("in_flight", &self.in_flight.len())
            .field("loss_probability", &self.loss_probability)
            .finish_non_exhaustive()
    }
}

impl<M> RoundNetwork<M> {
    /// Creates a network connecting `process_count` processes.
    ///
    /// # Panics
    ///
    /// Panics if the loss probability is not within `[0, 1]`.
    pub fn new(process_count: usize, loss_probability: f64, rng: ChaCha8Rng) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss_probability),
            "loss probability {loss_probability} must lie in [0, 1]"
        );
        Self {
            loss_probability,
            crashed: vec![false; process_count],
            in_flight: Vec::new(),
            stats: TrafficStats::new(),
            round: 0,
            rng,
        }
    }

    /// Number of attached processes.
    pub fn process_count(&self) -> usize {
        self.crashed.len()
    }

    /// The current round number (0 before the first delivery).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The traffic statistics accumulated so far.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Marks a process as down; it no longer sends or receives anything.
    /// The flag covers every way of being off the network — a crash, a
    /// graceful leave, or not having joined yet; the [`crate::Simulation`]
    /// layer distinguishes the transitions.
    pub fn crash(&mut self, process: ProcessId) {
        if let Some(flag) = self.crashed.get_mut(process.0) {
            *flag = true;
        }
    }

    /// Re-activates a process previously marked down (a join or re-join).
    /// Messages addressed to it while it was down stay dropped: a joiner
    /// only sees traffic sent after its activation.
    pub fn activate(&mut self, process: ProcessId) {
        if let Some(flag) = self.crashed.get_mut(process.0) {
            *flag = false;
        }
    }

    /// Returns `true` if the process has crashed.
    pub fn is_crashed(&self, process: ProcessId) -> bool {
        self.crashed.get(process.0).copied().unwrap_or(true)
    }

    /// Number of crashed processes.
    pub fn crashed_count(&self) -> usize {
        self.crashed.iter().filter(|&&c| c).count()
    }

    /// Sends a message, to be delivered at the next round boundary.
    /// `payload_size` feeds the byte accounting (pass 0 when irrelevant).
    pub fn send(&mut self, from: ProcessId, to: ProcessId, message: M, payload_size: usize) {
        self.stats.messages_sent += 1;
        self.stats.payload_bytes += payload_size as u64;
        if self.is_crashed(from) {
            self.stats.messages_from_crashed += 1;
            return;
        }
        if self.is_crashed(to) {
            self.stats.messages_to_crashed += 1;
            return;
        }
        if self.loss_probability > 0.0 && self.rng.gen_bool(self.loss_probability) {
            self.stats.messages_lost += 1;
            return;
        }
        self.in_flight.push(Envelope { from, to, message });
    }

    /// Closes the current round: returns every message sent during it and
    /// advances the round counter.  Messages to processes that crashed
    /// *after* the send are still filtered out here.
    pub fn deliver_round(&mut self) -> Vec<Envelope<M>> {
        let mut delivered = Vec::with_capacity(self.in_flight.len());
        self.deliver_round_into(&mut delivered);
        delivered
    }

    /// Allocation-free variant of [`deliver_round`](Self::deliver_round):
    /// clears `delivered` and moves this round's messages into it, so a
    /// caller-held buffer (and the internal in-flight buffer) keep their
    /// capacity across rounds.
    pub fn deliver_round_into(&mut self, delivered: &mut Vec<Envelope<M>>) {
        self.round += 1;
        delivered.clear();
        for envelope in self.in_flight.drain(..) {
            if self.crashed.get(envelope.to.0).copied().unwrap_or(true) {
                self.stats.messages_to_crashed += 1;
                continue;
            }
            self.stats.messages_delivered += 1;
            delivered.push(envelope);
        }
    }

    /// Returns `true` if no messages are currently in flight.
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Mutable access to the deterministic PRNG, so protocols can share the
    /// same randomness stream as the network (keeping whole runs replayable
    /// from one seed).
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn network(count: usize, loss: f64) -> RoundNetwork<u32> {
        RoundNetwork::new(count, loss, ChaCha8Rng::seed_from_u64(1))
    }

    #[test]
    fn messages_are_delivered_next_round() {
        let mut net = network(3, 0.0);
        net.send(ProcessId(0), ProcessId(1), 42, 8);
        assert!(!net.is_idle());
        assert_eq!(net.round(), 0);
        let delivered = net.deliver_round();
        assert_eq!(net.round(), 1);
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].from, ProcessId(0));
        assert_eq!(delivered[0].to, ProcessId(1));
        assert_eq!(delivered[0].message, 42);
        assert!(net.is_idle());
        assert_eq!(net.stats().messages_sent, 1);
        assert_eq!(net.stats().messages_delivered, 1);
        assert_eq!(net.stats().payload_bytes, 8);
    }

    #[test]
    fn total_loss_drops_everything() {
        let mut net = network(2, 1.0);
        for _ in 0..20 {
            net.send(ProcessId(0), ProcessId(1), 1, 0);
        }
        let delivered = net.deliver_round();
        assert!(delivered.is_empty());
        assert_eq!(net.stats().messages_lost, 20);
        assert_eq!(net.stats().delivery_ratio(), 0.0);
    }

    #[test]
    fn partial_loss_is_roughly_proportional() {
        let mut net = network(2, 0.3);
        for _ in 0..2_000 {
            net.send(ProcessId(0), ProcessId(1), 1, 0);
        }
        let delivered = net.deliver_round().len() as f64;
        // 70% expected, allow generous tolerance.
        assert!(delivered > 1_200.0 && delivered < 1_600.0, "delivered {delivered}");
    }

    #[test]
    fn crashed_processes_neither_send_nor_receive() {
        let mut net = network(3, 0.0);
        net.crash(ProcessId(2));
        assert!(net.is_crashed(ProcessId(2)));
        assert!(!net.is_crashed(ProcessId(0)));
        assert_eq!(net.crashed_count(), 1);

        net.send(ProcessId(2), ProcessId(0), 1, 0); // from crashed
        net.send(ProcessId(0), ProcessId(2), 2, 0); // to crashed
        net.send(ProcessId(0), ProcessId(1), 3, 0); // fine
        let delivered = net.deliver_round();
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].message, 3);
        assert_eq!(net.stats().messages_from_crashed, 1);
        assert_eq!(net.stats().messages_to_crashed, 1);
    }

    #[test]
    fn crash_after_send_still_prevents_delivery() {
        let mut net = network(2, 0.0);
        net.send(ProcessId(0), ProcessId(1), 9, 0);
        net.crash(ProcessId(1));
        let delivered = net.deliver_round();
        assert!(delivered.is_empty());
        assert_eq!(net.stats().messages_to_crashed, 1);
    }

    #[test]
    fn activation_brings_a_process_back_on_the_network() {
        let mut net = network(3, 0.0);
        net.crash(ProcessId(1));
        // Traffic addressed to the down process is dropped …
        net.send(ProcessId(0), ProcessId(1), 1, 0);
        assert!(net.deliver_round().is_empty());
        net.activate(ProcessId(1));
        assert!(!net.is_crashed(ProcessId(1)));
        // … and only messages sent after activation arrive.
        net.send(ProcessId(0), ProcessId(1), 2, 0);
        let delivered = net.deliver_round();
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].message, 2);
        // Out-of-range activation is a no-op.
        net.activate(ProcessId(9));
        assert!(net.is_crashed(ProcessId(9)));
    }

    #[test]
    fn out_of_range_processes_count_as_crashed() {
        let mut net = network(1, 0.0);
        assert!(net.is_crashed(ProcessId(5)));
        net.send(ProcessId(0), ProcessId(5), 1, 0);
        assert_eq!(net.deliver_round().len(), 0);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut net = RoundNetwork::new(2, 0.5, ChaCha8Rng::seed_from_u64(seed));
            for _ in 0..100 {
                net.send(ProcessId(0), ProcessId(1), 1u32, 0);
            }
            net.deliver_round().len()
        };
        assert_eq!(run(7), run(7));
        // Different seeds are very likely to differ for 100 coin flips.
        assert_ne!(run(7), run(8));
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn invalid_loss_probability_panics() {
        let _ = network(2, 1.5);
    }

    #[test]
    fn process_id_display_and_from() {
        let p: ProcessId = 3usize.into();
        assert_eq!(p.to_string(), "p3");
        assert_eq!(ProcessId::default(), ProcessId(0));
    }
}
