use std::collections::VecDeque;
use std::fmt;

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::fault::splitmix64;
use crate::{FaultPlan, LinkDelay, LossOverride, PartitionWindow, TrafficStats};

/// Dense identifier of a simulated process (an index into the simulation's
/// process table).  The mapping to a pmcast `Address` is kept
/// by the layer above.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ProcessId(pub usize);

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(value: usize) -> Self {
        ProcessId(value)
    }
}

/// A message in flight: sender, destination and payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sending process.
    pub from: ProcessId,
    /// Destination process.
    pub to: ProcessId,
    /// Protocol payload.
    pub message: M,
}

/// The round-based message switch.
///
/// Messages sent during round `t` are delivered at the beginning of round
/// `t + 1` (the paper assumes the network latency is bounded by the gossip
/// period).  Each message is lost independently with probability `ε`;
/// messages to or from crashed processes are dropped and accounted
/// separately.
///
/// A [`FaultPlan`] (see [`with_faults`](Self::with_faults)) layers the
/// adversarial axes on top: per-link extra latency routes messages through
/// a timing wheel instead of the next-round buffer, active
/// [`PartitionWindow`]s drop cross-cell sends (before the loss draw, so
/// partition drops consume no randomness), and [`LossOverride`]s compose
/// extra correlated loss onto `ε`.  A neutral plan leaves every code path
/// and every random draw bit-identical to a plan-free network.
pub struct RoundNetwork<M> {
    loss_probability: f64,
    crashed: Vec<bool>,
    /// Count of `true` flags in `crashed`, kept in lockstep so
    /// [`crashed_count`](Self::crashed_count) is O(1).
    crashed_count: usize,
    in_flight: Vec<Envelope<M>>,
    /// Timing wheel for per-link extra latency: a message with `extra` more
    /// rounds to wait sits at `delayed[extra]`; every round boundary pops
    /// the front slot into the deliveries and the emptied `Vec` is recycled
    /// through `spare_slots`, so steady-state delayed traffic allocates
    /// nothing.  Empty whenever the delay axis is inactive.
    delayed: VecDeque<Vec<Envelope<M>>>,
    /// Messages currently sitting in the wheel (`is_idle` must see them).
    delayed_count: usize,
    /// Emptied wheel slots kept for reuse.
    spare_slots: Vec<Vec<Envelope<M>>>,
    link_delay: Option<LinkDelay>,
    /// One salt drawn from the network stream iff the delay span has jitter
    /// (`min_extra < max_extra`); a constant or inactive span draws nothing.
    delay_salt: u64,
    partitions: Vec<PartitionWindow>,
    loss_overrides: Vec<LossOverride>,
    stats: TrafficStats,
    round: u64,
    rng: ChaCha8Rng,
}

impl<M> fmt::Debug for RoundNetwork<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RoundNetwork")
            .field("processes", &self.crashed.len())
            .field("round", &self.round)
            .field("in_flight", &self.in_flight.len())
            .field("loss_probability", &self.loss_probability)
            .finish_non_exhaustive()
    }
}

impl<M> RoundNetwork<M> {
    /// Creates a network connecting `process_count` processes.
    ///
    /// # Panics
    ///
    /// Panics if the loss probability is not within `[0, 1]`.
    pub fn new(process_count: usize, loss_probability: f64, rng: ChaCha8Rng) -> Self {
        Self::with_faults(process_count, loss_probability, rng, &FaultPlan::default())
    }

    /// Creates a network with an adversarial [`FaultPlan`] applied: link
    /// delays, healing partitions and correlated loss overrides (the plan's
    /// stragglers are an engine-level axis and are ignored here — the
    /// [`crate::Simulation`] holds back their outboxes before messages ever
    /// reach the network).
    ///
    /// Draws exactly one `u64` salt from `rng` iff the delay span has
    /// jitter (`min_extra < max_extra`); every other axis consumes no
    /// randomness at construction, so a neutral plan leaves the stream
    /// untouched and the run bit-identical to [`new`](Self::new).
    ///
    /// # Panics
    ///
    /// Panics if the loss probability is not within `[0, 1]` or the plan
    /// fails [`FaultPlan::validate_for`] the process count.
    pub fn with_faults(
        process_count: usize,
        loss_probability: f64,
        mut rng: ChaCha8Rng,
        faults: &FaultPlan,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss_probability),
            "loss probability {loss_probability} must lie in [0, 1]"
        );
        faults.validate_for(process_count);
        // Drop neutral declarations up front so the hot path only ever
        // iterates over axes that can actually change something.
        let link_delay = faults.link_delay.filter(|d| !d.is_neutral());
        let delay_salt = match link_delay {
            Some(d) if d.min_extra < d.max_extra => rng.gen(),
            _ => 0,
        };
        Self {
            loss_probability,
            crashed: vec![false; process_count],
            crashed_count: 0,
            in_flight: Vec::new(),
            delayed: VecDeque::new(),
            delayed_count: 0,
            spare_slots: Vec::new(),
            link_delay,
            delay_salt,
            partitions: faults.partitions.iter().copied().filter(|w| !w.is_neutral()).collect(),
            loss_overrides: faults
                .loss_overrides
                .iter()
                .copied()
                .filter(|o| !o.is_neutral())
                .collect(),
            stats: TrafficStats::new(),
            round: 0,
            rng,
        }
    }

    /// Number of attached processes.
    pub fn process_count(&self) -> usize {
        self.crashed.len()
    }

    /// The current round number (0 before the first delivery).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The traffic statistics accumulated so far.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Marks a process as down; it no longer sends or receives anything.
    /// The flag covers every way of being off the network — a crash, a
    /// graceful leave, or not having joined yet; the [`crate::Simulation`]
    /// layer distinguishes the transitions.
    pub fn crash(&mut self, process: ProcessId) {
        if let Some(flag) = self.crashed.get_mut(process.0) {
            // Adjust the counter only on an actual flip: re-crashing a
            // down process (and out-of-range ids) must stay a no-op.
            if !*flag {
                *flag = true;
                self.crashed_count += 1;
            }
        }
    }

    /// Re-activates a process previously marked down (a join or re-join).
    /// Messages addressed to it while it was down stay dropped: a joiner
    /// only sees traffic sent after its activation.
    pub fn activate(&mut self, process: ProcessId) {
        if let Some(flag) = self.crashed.get_mut(process.0) {
            if *flag {
                *flag = false;
                self.crashed_count -= 1;
            }
        }
    }

    /// Returns `true` if the process has crashed.
    pub fn is_crashed(&self, process: ProcessId) -> bool {
        self.crashed.get(process.0).copied().unwrap_or(true)
    }

    /// Number of crashed processes.  O(1): maintained as a counter on
    /// [`crash`](Self::crash)/[`activate`](Self::activate) flips so
    /// million-process quiescence checks never rescan the flag vector.
    pub fn crashed_count(&self) -> usize {
        self.crashed_count
    }

    /// Sends a message, to be delivered at the next round boundary (or
    /// `extra` boundaries later under an active [`LinkDelay`]).
    /// `payload_size` feeds the byte accounting (pass 0 when irrelevant).
    ///
    /// The fault checks run in a fixed order — crashed sender, crashed
    /// receiver, active partition, loss draw, delay routing — and only the
    /// loss draw consumes randomness, so inactive fault axes cannot shift
    /// the network stream.
    pub fn send(&mut self, from: ProcessId, to: ProcessId, message: M, payload_size: usize) {
        self.stats.messages_sent += 1;
        self.stats.payload_bytes += payload_size as u64;
        if self.is_crashed(from) {
            self.stats.messages_from_crashed += 1;
            return;
        }
        if self.is_crashed(to) {
            self.stats.messages_to_crashed += 1;
            return;
        }
        if !self.partitions.is_empty() && self.is_partitioned(from, to) {
            self.stats.messages_partitioned += 1;
            return;
        }
        let loss = self.effective_loss(from, to);
        if loss > 0.0 && self.rng.gen_bool(loss) {
            self.stats.messages_lost += 1;
            return;
        }
        let extra = self.link_extra_delay(from, to);
        if extra == 0 {
            self.in_flight.push(Envelope { from, to, message });
        } else {
            self.stats.messages_delayed += 1;
            self.schedule_delayed(extra, Envelope { from, to, message });
        }
    }

    /// Returns `true` if any currently active partition window separates
    /// the two endpoints.  Purely deterministic — no randomness consumed.
    fn is_partitioned(&self, from: ProcessId, to: ProcessId) -> bool {
        let n = self.crashed.len();
        self.partitions.iter().any(|w| {
            w.active_at(self.round) && w.cell_of(from.0, n) != w.cell_of(to.0, n)
        })
    }

    /// The composed loss probability for a message on this link: the global
    /// `ε` multiplied (as survival probabilities) with every override
    /// covering the sender or the receiver.  Returns the global `ε`
    /// *unchanged* — not merely an equal value — when no override matches,
    /// so override-free links keep their historical bit-exact draws.
    fn effective_loss(&self, from: ProcessId, to: ProcessId) -> f64 {
        let mut keep = 1.0 - self.loss_probability;
        let mut composed = false;
        for o in &self.loss_overrides {
            if o.covers(from.0) || o.covers(to.0) {
                keep *= 1.0 - o.loss_probability;
                composed = true;
            }
        }
        if composed {
            1.0 - keep
        } else {
            self.loss_probability
        }
    }

    /// The fixed extra latency of the ordered link `(from, to)`: 0 without
    /// an active delay axis, the constant `min_extra` for a zero-jitter
    /// span, otherwise `min + mix(salt, from, to) % (span + 1)` — stable
    /// per link for the whole run (links stay FIFO) and reproducible from
    /// the seed via the one salt drawn at construction.
    fn link_extra_delay(&self, from: ProcessId, to: ProcessId) -> u64 {
        let Some(delay) = self.link_delay else {
            return 0;
        };
        if delay.min_extra == delay.max_extra {
            return delay.min_extra;
        }
        let span = delay.max_extra - delay.min_extra;
        let mixed =
            splitmix64(self.delay_salt ^ splitmix64(from.0 as u64 ^ splitmix64(to.0 as u64)));
        delay.min_extra + mixed % (span + 1)
    }

    /// Parks an envelope in the timing wheel, `extra` boundaries beyond the
    /// next one.  Wheel slots are recycled `Vec`s, so steady-state delayed
    /// traffic does not allocate.
    fn schedule_delayed(&mut self, extra: u64, envelope: Envelope<M>) {
        let slot = extra as usize;
        while self.delayed.len() <= slot {
            self.delayed.push_back(self.spare_slots.pop().unwrap_or_default());
        }
        self.delayed[slot].push(envelope);
        self.delayed_count += 1;
    }

    /// Closes the current round: returns every message sent during it and
    /// advances the round counter.  Messages to processes that crashed
    /// *after* the send are still filtered out here.
    pub fn deliver_round(&mut self) -> Vec<Envelope<M>> {
        let mut delivered = Vec::with_capacity(self.in_flight.len());
        self.deliver_round_into(&mut delivered);
        delivered
    }

    /// Allocation-free variant of [`deliver_round`](Self::deliver_round):
    /// clears `delivered` and moves this round's messages into it, so a
    /// caller-held buffer (and the internal in-flight buffer) keep their
    /// capacity across rounds.
    pub fn deliver_round_into(&mut self, delivered: &mut Vec<Envelope<M>>) {
        self.round += 1;
        delivered.clear();
        for envelope in self.in_flight.drain(..) {
            if self.crashed.get(envelope.to.0).copied().unwrap_or(true) {
                self.stats.messages_to_crashed += 1;
                continue;
            }
            self.stats.messages_delivered += 1;
            delivered.push(envelope);
        }
        // Delayed messages whose extra latency has elapsed arrive at the
        // same boundary, after the undelayed traffic; the wheel rotates one
        // slot per boundary and emptied slots go back to the spare pool.
        if let Some(mut due) = self.delayed.pop_front() {
            self.delayed_count -= due.len();
            for envelope in due.drain(..) {
                if self.crashed.get(envelope.to.0).copied().unwrap_or(true) {
                    self.stats.messages_to_crashed += 1;
                    continue;
                }
                self.stats.messages_delivered += 1;
                delivered.push(envelope);
            }
            self.spare_slots.push(due);
        }
    }

    /// Returns `true` if no messages are currently in flight (including
    /// messages parked in the link-delay timing wheel).
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty() && self.delayed_count == 0
    }

    /// Mutable access to the deterministic PRNG, so protocols can share the
    /// same randomness stream as the network (keeping whole runs replayable
    /// from one seed).
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn network(count: usize, loss: f64) -> RoundNetwork<u32> {
        RoundNetwork::new(count, loss, ChaCha8Rng::seed_from_u64(1))
    }

    #[test]
    fn messages_are_delivered_next_round() {
        let mut net = network(3, 0.0);
        net.send(ProcessId(0), ProcessId(1), 42, 8);
        assert!(!net.is_idle());
        assert_eq!(net.round(), 0);
        let delivered = net.deliver_round();
        assert_eq!(net.round(), 1);
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].from, ProcessId(0));
        assert_eq!(delivered[0].to, ProcessId(1));
        assert_eq!(delivered[0].message, 42);
        assert!(net.is_idle());
        assert_eq!(net.stats().messages_sent, 1);
        assert_eq!(net.stats().messages_delivered, 1);
        assert_eq!(net.stats().payload_bytes, 8);
    }

    #[test]
    fn total_loss_drops_everything() {
        let mut net = network(2, 1.0);
        for _ in 0..20 {
            net.send(ProcessId(0), ProcessId(1), 1, 0);
        }
        let delivered = net.deliver_round();
        assert!(delivered.is_empty());
        assert_eq!(net.stats().messages_lost, 20);
        assert_eq!(net.stats().delivery_ratio(), 0.0);
    }

    #[test]
    fn partial_loss_is_roughly_proportional() {
        let mut net = network(2, 0.3);
        for _ in 0..2_000 {
            net.send(ProcessId(0), ProcessId(1), 1, 0);
        }
        let delivered = net.deliver_round().len() as f64;
        // 70% expected, allow generous tolerance.
        assert!(delivered > 1_200.0 && delivered < 1_600.0, "delivered {delivered}");
    }

    #[test]
    fn crashed_processes_neither_send_nor_receive() {
        let mut net = network(3, 0.0);
        net.crash(ProcessId(2));
        assert!(net.is_crashed(ProcessId(2)));
        assert!(!net.is_crashed(ProcessId(0)));
        assert_eq!(net.crashed_count(), 1);

        net.send(ProcessId(2), ProcessId(0), 1, 0); // from crashed
        net.send(ProcessId(0), ProcessId(2), 2, 0); // to crashed
        net.send(ProcessId(0), ProcessId(1), 3, 0); // fine
        let delivered = net.deliver_round();
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].message, 3);
        assert_eq!(net.stats().messages_from_crashed, 1);
        assert_eq!(net.stats().messages_to_crashed, 1);
    }

    #[test]
    fn crash_after_send_still_prevents_delivery() {
        let mut net = network(2, 0.0);
        net.send(ProcessId(0), ProcessId(1), 9, 0);
        net.crash(ProcessId(1));
        let delivered = net.deliver_round();
        assert!(delivered.is_empty());
        assert_eq!(net.stats().messages_to_crashed, 1);
    }

    #[test]
    fn activation_brings_a_process_back_on_the_network() {
        let mut net = network(3, 0.0);
        net.crash(ProcessId(1));
        // Traffic addressed to the down process is dropped …
        net.send(ProcessId(0), ProcessId(1), 1, 0);
        assert!(net.deliver_round().is_empty());
        net.activate(ProcessId(1));
        assert!(!net.is_crashed(ProcessId(1)));
        // … and only messages sent after activation arrive.
        net.send(ProcessId(0), ProcessId(1), 2, 0);
        let delivered = net.deliver_round();
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].message, 2);
        // Out-of-range activation is a no-op.
        net.activate(ProcessId(9));
        assert!(net.is_crashed(ProcessId(9)));
    }

    #[test]
    fn out_of_range_processes_count_as_crashed() {
        let mut net = network(1, 0.0);
        assert!(net.is_crashed(ProcessId(5)));
        net.send(ProcessId(0), ProcessId(5), 1, 0);
        assert_eq!(net.deliver_round().len(), 0);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut net = RoundNetwork::new(2, 0.5, ChaCha8Rng::seed_from_u64(seed));
            for _ in 0..100 {
                net.send(ProcessId(0), ProcessId(1), 1u32, 0);
            }
            net.deliver_round().len()
        };
        assert_eq!(run(7), run(7));
        // Different seeds are very likely to differ for 100 coin flips.
        assert_ne!(run(7), run(8));
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn invalid_loss_probability_panics() {
        let _ = network(2, 1.5);
    }

    #[test]
    fn process_id_display_and_from() {
        let p: ProcessId = 3usize.into();
        assert_eq!(p.to_string(), "p3");
        assert_eq!(ProcessId::default(), ProcessId(0));
    }

    fn faulty_network(count: usize, loss: f64, plan: &FaultPlan) -> RoundNetwork<u32> {
        RoundNetwork::with_faults(count, loss, ChaCha8Rng::seed_from_u64(1), plan)
    }

    #[test]
    fn constant_link_delay_postpones_delivery() {
        let plan = FaultPlan::default().with_link_delay(2, 2);
        let mut net = faulty_network(2, 0.0, &plan);
        net.send(ProcessId(0), ProcessId(1), 7, 0);
        assert!(!net.is_idle(), "the delayed message is still in flight");
        assert!(net.deliver_round().is_empty(), "boundary 1: not yet");
        assert!(net.deliver_round().is_empty(), "boundary 2: not yet");
        let delivered = net.deliver_round();
        assert_eq!(delivered.len(), 1, "boundary 3 = 1 normal + 2 extra rounds");
        assert_eq!(delivered[0].message, 7);
        assert!(net.is_idle());
        assert_eq!(net.stats().messages_delayed, 1);
        assert_eq!(net.stats().messages_delivered, 1);
    }

    #[test]
    fn jittered_link_delay_is_stable_per_link_and_within_span() {
        let plan = FaultPlan::default().with_link_delay(0, 3);
        let mut net = faulty_network(8, 0.0, &plan);
        // Send one message on every ordered link, then collect arrival
        // boundaries; each link's latency must fall in 1..=4 rounds.
        for from in 0..8 {
            for to in 0..8 {
                if from != to {
                    net.send(ProcessId(from), ProcessId(to), (from * 8 + to) as u32, 0);
                }
            }
        }
        let mut arrivals = vec![0u64; 64];
        for boundary in 1..=4 {
            for envelope in net.deliver_round() {
                arrivals[envelope.message as usize] = boundary;
            }
        }
        assert!(net.is_idle(), "everything arrives within min+1..=max+1 boundaries");
        for from in 0..8 {
            for to in 0..8 {
                if from != to {
                    let a = arrivals[from * 8 + to];
                    assert!((1..=4).contains(&a), "link ({from},{to}) arrived at {a}");
                }
            }
        }
        // The same plan and seed reproduce identical per-link delays, and
        // the per-link hash actually spreads (not all links equal).
        let mut rerun = faulty_network(8, 0.0, &plan);
        for from in 0..8 {
            for to in 0..8 {
                if from != to {
                    rerun.send(ProcessId(from), ProcessId(to), (from * 8 + to) as u32, 0);
                }
            }
        }
        let mut rerun_arrivals = vec![0u64; 64];
        for boundary in 1..=4 {
            for envelope in rerun.deliver_round() {
                rerun_arrivals[envelope.message as usize] = boundary;
            }
        }
        assert_eq!(arrivals, rerun_arrivals);
        let distinct: std::collections::BTreeSet<u64> =
            arrivals.iter().copied().filter(|&a| a > 0).collect();
        assert!(distinct.len() > 1, "jittered delays must differ across links");
    }

    #[test]
    fn delayed_messages_to_crashed_processes_are_dropped_at_delivery() {
        let plan = FaultPlan::default().with_link_delay(2, 2);
        let mut net = faulty_network(2, 0.0, &plan);
        net.send(ProcessId(0), ProcessId(1), 7, 0);
        net.deliver_round();
        net.crash(ProcessId(1));
        net.deliver_round();
        assert!(net.deliver_round().is_empty());
        assert!(net.is_idle());
        assert_eq!(net.stats().messages_to_crashed, 1);
    }

    #[test]
    fn partition_drops_cross_cell_sends_while_active() {
        // 2 cells over 4 processes: {0,1} and {2,3}; active rounds 0..2.
        let plan = FaultPlan::default().with_partition(0, 2, 2);
        let mut net = faulty_network(4, 0.0, &plan);
        net.send(ProcessId(0), ProcessId(1), 1, 0); // intra-cell: flows
        net.send(ProcessId(0), ProcessId(2), 2, 0); // cross-cell: dropped
        let delivered = net.deliver_round(); // boundary → round 1, still active
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].message, 1);
        assert_eq!(net.stats().messages_partitioned, 1);
        net.send(ProcessId(0), ProcessId(2), 3, 0); // round 1: still active
        assert!(net.deliver_round().is_empty());
        assert_eq!(net.stats().messages_partitioned, 2);
        // Round 2: healed — cross-cell traffic flows again.
        net.send(ProcessId(0), ProcessId(2), 4, 0);
        let delivered = net.deliver_round();
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].message, 4);
        assert_eq!(net.stats().messages_partitioned, 2);
    }

    #[test]
    fn partition_drops_consume_no_randomness() {
        // Identical seeds; one network has an active partition.  After the
        // partition heals, the loss draws must still agree bit for bit
        // because partition drops happen before the loss draw.
        let run = |plan: &FaultPlan| {
            let mut net = RoundNetwork::<u32>::with_faults(
                4,
                0.5,
                ChaCha8Rng::seed_from_u64(9),
                plan,
            );
            // Round 0: one intra-cell send (same loss draw either way).
            net.send(ProcessId(0), ProcessId(1), 1, 0);
            net.deliver_round();
            // Round 1 (healed for the partition plan): probe the stream.
            let mut survived = Vec::new();
            for i in 0..50 {
                net.send(ProcessId(0), ProcessId(1), i, 0);
            }
            for envelope in net.deliver_round() {
                survived.push(envelope.message);
            }
            survived
        };
        let partitioned = FaultPlan::default().with_partition(0, 1, 2);
        assert_eq!(run(&FaultPlan::default()), run(&partitioned));
    }

    #[test]
    fn loss_override_composes_with_global_loss() {
        // Total override loss on the {0,1} range: nothing covered survives.
        let plan = FaultPlan::default().with_loss_override(0, 2, 1.0);
        let mut net = faulty_network(4, 0.0, &plan);
        net.send(ProcessId(0), ProcessId(3), 1, 0); // sender covered
        net.send(ProcessId(3), ProcessId(1), 2, 0); // receiver covered
        net.send(ProcessId(2), ProcessId(3), 3, 0); // untouched
        let delivered = net.deliver_round();
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].message, 3);
        assert_eq!(net.stats().messages_lost, 2);
    }

    #[test]
    fn loss_override_rates_are_roughly_multiplicative() {
        // Global 0.2 composed with an 0.5 override: survival 0.8·0.5 = 0.4.
        let plan = FaultPlan::default().with_loss_override(0, 1, 0.5);
        let mut net = faulty_network(2, 0.2, &plan);
        for _ in 0..2_000 {
            net.send(ProcessId(0), ProcessId(1), 1, 0);
        }
        let delivered = net.deliver_round().len() as f64;
        assert!((600.0..1_000.0).contains(&delivered), "delivered {delivered}");
    }

    #[test]
    fn neutral_fault_plan_is_bit_identical_to_no_plan() {
        let run = |plan: Option<&FaultPlan>| {
            let rng = ChaCha8Rng::seed_from_u64(33);
            let mut net: RoundNetwork<u32> = match plan {
                Some(plan) => RoundNetwork::with_faults(6, 0.4, rng, plan),
                None => RoundNetwork::new(6, 0.4, rng),
            };
            let mut log = Vec::new();
            for round in 0..6u64 {
                for from in 0..6 {
                    net.send(ProcessId(from), ProcessId((from + 1) % 6), round as u32, 0);
                }
                for envelope in net.deliver_round() {
                    log.push((envelope.from, envelope.to, envelope.message));
                }
            }
            (log, *net.stats())
        };
        // Every axis declared, all in their inactive forms.
        let neutral = FaultPlan::default()
            .with_link_delay(0, 0)
            .with_partition(2, 2, 4)
            .with_partition(0, 6, 1)
            .with_loss_override(0, 6, 0.0)
            .with_straggler(1, 1);
        assert_eq!(run(None), run(Some(&neutral)));
    }

    #[test]
    #[should_panic(expected = "out of range for a group of 2")]
    fn network_rejects_out_of_range_fault_plan() {
        let plan = FaultPlan::default().with_straggler(5, 3);
        let _ = faulty_network(2, 0.0, &plan);
    }
}
