use serde::{Deserialize, Serialize};

use crate::FaultPlan;

/// Failure injection plan: which processes crash, and when.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
#[derive(Default)]
pub enum CrashPlan {
    /// Nobody crashes.
    #[default]
    None,
    /// Crash a uniformly random fraction `τ` of the processes before the
    /// run starts (the paper's model: `τ = f / n` crash "during the run";
    /// crashing them up-front is the pessimistic variant).
    InitialFraction(f64),
    /// Crash the listed process indices at the listed rounds.
    Scheduled(Vec<(u64, usize)>),
    /// Both failure models combined: crash a uniformly random fraction
    /// before the run starts **and** the listed process indices at the
    /// listed rounds (churn scenarios layering planned crashes on top of
    /// the paper's initial-crash model).
    Mixed {
        /// Fraction `τ` of processes crashed before the run starts.
        fraction: f64,
        /// `(round, process index)` pairs crashed during the run.
        schedule: Vec<(u64, usize)>,
    },
}


/// Configuration of the simulated network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Probability `ε` that any message is lost in transit.
    pub loss_probability: f64,
    /// Failure injection plan.
    pub crash_plan: CrashPlan,
    /// Adversarial structured faults layered on the uniform `ε`/`τ` model
    /// (the empty default plan reproduces it exactly; see
    /// [`FaultPlan`]).
    pub fault_plan: FaultPlan,
    /// PRNG seed making the run reproducible.
    pub seed: u64,
}

impl NetworkConfig {
    /// A perfectly reliable network (no loss, no crashes) with the given
    /// seed — useful for tests where only the protocol's own randomness
    /// matters.
    pub fn reliable(seed: u64) -> Self {
        Self {
            loss_probability: 0.0,
            crash_plan: CrashPlan::None,
            fault_plan: FaultPlan::default(),
            seed,
        }
    }

    /// The lossy, crash-prone environment of the paper's analysis:
    /// message-loss probability `ε` and an initial crashed fraction `τ`.
    pub fn faulty(loss_probability: f64, crash_fraction: f64, seed: u64) -> Self {
        Self {
            loss_probability,
            crash_plan: if crash_fraction > 0.0 {
                CrashPlan::InitialFraction(crash_fraction)
            } else {
                CrashPlan::None
            },
            fault_plan: FaultPlan::default(),
            seed,
        }
    }

    /// Sets the loss probability, returning the config for chaining.
    pub fn with_loss(mut self, loss_probability: f64) -> Self {
        self.loss_probability = loss_probability;
        self
    }

    /// Sets the crash plan, returning the config for chaining.
    pub fn with_crash_plan(mut self, crash_plan: CrashPlan) -> Self {
        self.crash_plan = crash_plan;
        self
    }

    /// Sets the seed, returning the config for chaining.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the structured fault plan, returning the config for chaining.
    pub fn with_fault_plan(mut self, fault_plan: FaultPlan) -> Self {
        self.fault_plan = fault_plan;
        self
    }

    /// Checks every numeric field for validity, panicking with a
    /// descriptive message on the first violation.
    ///
    /// [`crate::Simulation`] calls this before constructing the network, so
    /// a bad configuration fails fast at build time instead of producing a
    /// silently meaningless run.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.loss_probability),
            "loss_probability must lie in [0, 1], got {}",
            self.loss_probability
        );
        match &self.crash_plan {
            CrashPlan::InitialFraction(fraction) | CrashPlan::Mixed { fraction, .. } => {
                assert!(
                    (0.0..=1.0).contains(fraction),
                    "crash fraction must lie in [0, 1], got {fraction}"
                );
            }
            CrashPlan::None | CrashPlan::Scheduled(_) => {}
        }
        self.fault_plan.validate();
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self::reliable(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_builders() {
        let reliable = NetworkConfig::reliable(7);
        assert_eq!(reliable.loss_probability, 0.0);
        assert_eq!(reliable.crash_plan, CrashPlan::None);
        assert_eq!(reliable.seed, 7);

        let faulty = NetworkConfig::faulty(0.05, 0.01, 3);
        assert_eq!(faulty.loss_probability, 0.05);
        assert_eq!(faulty.crash_plan, CrashPlan::InitialFraction(0.01));

        let no_crashes = NetworkConfig::faulty(0.05, 0.0, 3);
        assert_eq!(no_crashes.crash_plan, CrashPlan::None);

        let chained = NetworkConfig::default()
            .with_loss(0.2)
            .with_seed(9)
            .with_crash_plan(CrashPlan::Scheduled(vec![(3, 1)]));
        assert_eq!(chained.loss_probability, 0.2);
        assert_eq!(chained.seed, 9);
        assert_eq!(chained.crash_plan, CrashPlan::Scheduled(vec![(3, 1)]));
        assert_eq!(CrashPlan::default(), CrashPlan::None);
    }

    #[test]
    fn serde_round_trip() {
        let config = NetworkConfig::faulty(0.1, 0.02, 11);
        let json = serde_json::to_string(&config).unwrap();
        let back: NetworkConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(config, back);
    }

    #[test]
    fn validate_accepts_boundary_probabilities() {
        NetworkConfig::faulty(0.0, 0.0, 1).validate();
        NetworkConfig::faulty(1.0, 1.0, 1).validate();
        NetworkConfig::default()
            .with_crash_plan(CrashPlan::Mixed {
                fraction: 0.5,
                schedule: vec![(2, 0)],
            })
            .validate();
    }

    #[test]
    #[should_panic(expected = "loss_probability must lie in [0, 1]")]
    fn validate_rejects_loss_probability_above_one() {
        NetworkConfig::default().with_loss(1.5).validate();
    }

    #[test]
    #[should_panic(expected = "loss_probability must lie in [0, 1]")]
    fn validate_rejects_negative_loss_probability() {
        NetworkConfig::default().with_loss(-0.1).validate();
    }

    #[test]
    #[should_panic(expected = "crash fraction must lie in [0, 1]")]
    fn validate_rejects_crash_fraction_above_one() {
        NetworkConfig::default()
            .with_crash_plan(CrashPlan::InitialFraction(1.01))
            .validate();
    }

    #[test]
    #[should_panic(expected = "crash fraction must lie in [0, 1]")]
    fn validate_rejects_negative_mixed_crash_fraction() {
        NetworkConfig::default()
            .with_crash_plan(CrashPlan::Mixed {
                fraction: -0.2,
                schedule: Vec::new(),
            })
            .validate();
    }

    #[test]
    #[should_panic(expected = "loss-override probability")]
    fn validate_checks_the_fault_plan_too() {
        NetworkConfig::default()
            .with_fault_plan(FaultPlan::default().with_loss_override(0, 4, 1.5))
            .validate();
    }
}
