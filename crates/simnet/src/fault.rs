//! The adversarial network fault model: a composable [`FaultPlan`]
//! generalizing the paper's uniform `ε`/`τ` assumptions.
//!
//! The paper's analysis (Section 4.1) models exactly two faults — every
//! message lost independently with probability `ε` and a fraction `τ` of
//! the processes crashed — both *uniform and i.i.d.*  Real networks fail
//! in structured ways, which is where hierarchical gossip is argued to
//! degrade gracefully.  A [`FaultPlan`] layers four structured axes on top
//! of the uniform model, each independently declarable:
//!
//! * [`LinkDelay`] — per-link extra latency: a message on link
//!   `(from, to)` takes `1 + extra` rounds instead of 1, with `extra`
//!   fixed per ordered link (drawn deterministically from one salt).
//! * [`PartitionWindow`] — a transient partition that heals: during
//!   `[from_round, until_round)` the address space splits into `cells`
//!   contiguous cells and every cross-cell send is dropped.
//! * [`LossOverride`] — asymmetric/correlated loss: an extra loss
//!   probability for every message touching a contiguous index range
//!   (e.g. one subtree), composed multiplicatively with the global `ε`.
//! * [`Straggler`] — a slow node: its outbox only flushes on rounds
//!   divisible by `period`, batching everything in between.
//!
//! ## Stream neutrality
//!
//! The plan is built so that **declared-but-inactive axes consume no
//! randomness and change no behavior**: a delay span of `(0, 0)`, a
//! partition with fewer than 2 cells (or an empty round window), a loss
//! override with probability `0` and a straggler with `period <= 1` are
//! all exact no-ops, bit-identical to not declaring the axis at all
//! ([`FaultPlan::is_neutral`]).  Active axes draw only from the network
//! stream: the delay axis consumes exactly one `u64` salt at network
//! construction (only when `min_extra < max_extra` — a constant delay
//! needs none), partitions and stragglers are fully deterministic, and a
//! loss override replaces the single per-message `gen_bool` with one at
//! the composed probability (same number of draws).

use serde::{Deserialize, Serialize};

/// Per-link extra transit latency, in whole gossip rounds.
///
/// Every ordered link `(from, to)` gets a fixed extra delay in
/// `min_extra..=max_extra`, derived deterministically from one salt and
/// the endpoint pair — so a link's latency is stable for the whole run
/// (messages on one link stay FIFO) and reproducible from the seed.
/// `(0, 0)` declares the axis inactive.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkDelay {
    /// Minimum extra rounds on any link.
    pub min_extra: u64,
    /// Maximum extra rounds on any link (inclusive).
    pub max_extra: u64,
}

impl LinkDelay {
    /// Returns `true` if this declaration changes nothing (no link ever
    /// waits an extra round).
    pub fn is_neutral(&self) -> bool {
        self.max_extra == 0
    }
}

/// A transient partition that heals: during rounds
/// `[from_round, until_round)` the address space `0..n` is split into
/// `cells` equal contiguous cells and every cross-cell send is dropped
/// (before the loss draw, so the drop consumes no randomness).
///
/// Contiguous cells align with subtrees of a regular `a^d` address space
/// whenever `cells` divides a power of the arity, so a 2-cell partition of
/// an `a = 4` tree cuts the group along subtree boundaries — the
/// structured failure the hierarchical membership should survive.
/// `cells <= 1` or an empty round window declares the axis inactive.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionWindow {
    /// First round (inclusive) at which the partition is active.
    pub from_round: u64,
    /// First round at which the partition has healed (exclusive bound).
    pub until_round: u64,
    /// Number of equal contiguous cells the address space splits into.
    pub cells: usize,
}

impl PartitionWindow {
    /// Returns `true` if this declaration can never drop a message.
    pub fn is_neutral(&self) -> bool {
        self.cells <= 1 || self.from_round >= self.until_round
    }

    /// Returns `true` if the partition is active at the given round.
    pub fn active_at(&self, round: u64) -> bool {
        !self.is_neutral() && (self.from_round..self.until_round).contains(&round)
    }

    /// The cell a process index falls into for a group of `n` processes.
    pub fn cell_of(&self, index: usize, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        index * self.cells / n
    }
}

/// Extra loss probability for every message whose sender **or** receiver
/// lies in the contiguous index range `start..end` — correlated loss on a
/// subtree or any other index-contiguous region, layered on the global
/// `ε`: a message keeps flowing with probability
/// `(1 − ε) · Π (1 − override_i)` over the matching overrides.
/// A probability of `0` declares the override inactive.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LossOverride {
    /// First process index covered (inclusive).
    pub start: usize,
    /// One past the last process index covered (exclusive).
    pub end: usize,
    /// Extra independent loss probability for covered messages.
    pub loss_probability: f64,
}

impl LossOverride {
    /// Returns `true` if this declaration can never lose a message.
    pub fn is_neutral(&self) -> bool {
        self.loss_probability == 0.0 || self.start >= self.end
    }

    /// Returns `true` if the override covers the given process index.
    pub fn covers(&self, index: usize) -> bool {
        (self.start..self.end).contains(&index)
    }
}

/// A slow node: the process's outbox only reaches the network on rounds
/// divisible by `period`; messages emitted in between are held back and
/// flushed in emission order on the next flush round.  Held messages are
/// discarded if the process crashes or leaves before flushing (a slow
/// node's unsent queue dies with it).  `period <= 1` declares the axis
/// inactive (every round is a flush round).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Straggler {
    /// The straggling process index.
    pub process: usize,
    /// Its outbox flushes on rounds where `round % period == 0`.
    pub period: u64,
}

impl Straggler {
    /// Returns `true` if this declaration changes nothing.
    pub fn is_neutral(&self) -> bool {
        self.period <= 1
    }
}

/// A composable adversarial fault plan: all four structured fault axes,
/// each independently declarable (see the module docs for the model and
/// the stream-neutrality rule).  [`Default`] is the empty plan — no axis
/// declared — which is exactly the paper's uniform `ε`/`τ` model.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Per-link extra latency, if declared.
    pub link_delay: Option<LinkDelay>,
    /// Transient healing partitions (any number of windows; a message is
    /// dropped if *any* active window separates its endpoints).
    pub partitions: Vec<PartitionWindow>,
    /// Correlated per-range loss overrides layered on the global `ε`.
    pub loss_overrides: Vec<LossOverride>,
    /// Slow nodes whose outboxes flush every `period`-th round.
    pub stragglers: Vec<Straggler>,
}

impl FaultPlan {
    /// Returns `true` if the plan cannot affect a run at all: every
    /// declared axis is individually neutral (see the module docs).  A
    /// neutral plan is bit-identical to [`FaultPlan::default`].
    pub fn is_neutral(&self) -> bool {
        self.link_delay.is_none_or(|d| d.is_neutral())
            && self.partitions.iter().all(PartitionWindow::is_neutral)
            && self.loss_overrides.iter().all(LossOverride::is_neutral)
            && self.stragglers.iter().all(Straggler::is_neutral)
    }

    /// Validates the plan's internal consistency (no process-count or
    /// round-horizon knowledge needed; see
    /// [`validate_for`](Self::validate_for) for the index checks).
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message if a [`LinkDelay`] has
    /// `min_extra > max_extra`, a [`PartitionWindow`] has zero cells or
    /// `from_round > until_round`, a [`LossOverride`] probability lies
    /// outside `[0, 1]` or its range is inverted, a [`Straggler`] period
    /// is zero, or two stragglers name the same process.
    pub fn validate(&self) {
        if let Some(delay) = &self.link_delay {
            assert!(
                delay.min_extra <= delay.max_extra,
                "link-delay span ({}, {}) is inverted: min_extra must not exceed max_extra",
                delay.min_extra,
                delay.max_extra
            );
        }
        for window in &self.partitions {
            assert!(
                window.cells > 0,
                "partition with zero cells is meaningless (use cells = 1 for a declared-but-inactive window)"
            );
            assert!(
                window.from_round <= window.until_round,
                "partition window [{}, {}) is inverted: it must heal at or after it forms",
                window.from_round,
                window.until_round
            );
        }
        for o in &self.loss_overrides {
            assert!(
                (0.0..=1.0).contains(&o.loss_probability),
                "loss-override probability {} must lie in [0, 1]",
                o.loss_probability
            );
            assert!(
                o.start <= o.end,
                "loss-override range {}..{} is inverted",
                o.start,
                o.end
            );
        }
        let mut straggler_processes: Vec<usize> = Vec::with_capacity(self.stragglers.len());
        for s in &self.stragglers {
            assert!(s.period > 0, "straggler period must be positive (period 1 = never held back)");
            assert!(
                !straggler_processes.contains(&s.process),
                "process {} declared a straggler twice",
                s.process
            );
            straggler_processes.push(s.process);
        }
    }

    /// [`validate`](Self::validate) plus the process-count–dependent index
    /// checks ([`crate::Simulation`] calls this at construction).
    ///
    /// # Panics
    ///
    /// Panics if the plan is internally inconsistent, or if a straggler
    /// process or loss-override range lies outside `0..process_count`.
    pub fn validate_for(&self, process_count: usize) {
        self.validate();
        for o in &self.loss_overrides {
            assert!(
                o.end <= process_count,
                "loss-override range {}..{} out of range for a group of {process_count}",
                o.start,
                o.end
            );
        }
        for s in &self.stragglers {
            assert!(
                s.process < process_count,
                "straggler process {} out of range for a group of {process_count}",
                s.process
            );
        }
    }

    /// Sets the per-link delay span, returning the plan for chaining.
    pub fn with_link_delay(mut self, min_extra: u64, max_extra: u64) -> Self {
        self.link_delay = Some(LinkDelay { min_extra, max_extra });
        self
    }

    /// Adds a healing partition window, returning the plan for chaining.
    pub fn with_partition(mut self, from_round: u64, until_round: u64, cells: usize) -> Self {
        self.partitions.push(PartitionWindow { from_round, until_round, cells });
        self
    }

    /// Adds a correlated loss override, returning the plan for chaining.
    pub fn with_loss_override(mut self, start: usize, end: usize, loss_probability: f64) -> Self {
        self.loss_overrides.push(LossOverride { start, end, loss_probability });
        self
    }

    /// Adds a straggler, returning the plan for chaining.
    pub fn with_straggler(mut self, process: usize, period: u64) -> Self {
        self.stragglers.push(Straggler { process, period });
        self
    }
}

/// The splitmix64 finalizer — the deterministic per-link hash behind
/// [`LinkDelay`]: `latency(from, to) = min + mix(salt, from, to) % span`.
/// One salt (drawn once from the network stream) plus this mix give every
/// ordered link an independent-looking but fully reproducible delay.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_neutral() {
        let plan = FaultPlan::default();
        assert!(plan.is_neutral());
        plan.validate_for(10);
    }

    #[test]
    fn declared_but_inactive_axes_are_neutral() {
        let plan = FaultPlan::default()
            .with_link_delay(0, 0)
            .with_partition(2, 2, 4) // empty window
            .with_partition(0, 10, 1) // single cell
            .with_loss_override(0, 5, 0.0)
            .with_straggler(3, 1);
        assert!(plan.is_neutral());
        plan.validate_for(10);
    }

    #[test]
    fn active_axes_are_not_neutral() {
        assert!(!FaultPlan::default().with_link_delay(0, 2).is_neutral());
        assert!(!FaultPlan::default().with_partition(0, 5, 2).is_neutral());
        assert!(!FaultPlan::default().with_loss_override(0, 5, 0.5).is_neutral());
        assert!(!FaultPlan::default().with_straggler(3, 4).is_neutral());
    }

    #[test]
    fn partition_cells_are_contiguous_and_equal() {
        let window = PartitionWindow { from_round: 0, until_round: 5, cells: 4 };
        assert!(window.active_at(0));
        assert!(window.active_at(4));
        assert!(!window.active_at(5));
        let cells: Vec<usize> = (0..16).map(|i| window.cell_of(i, 16)).collect();
        assert_eq!(&cells[..4], &[0, 0, 0, 0]);
        assert_eq!(&cells[4..8], &[1, 1, 1, 1]);
        assert_eq!(&cells[12..], &[3, 3, 3, 3]);
        assert_eq!(window.cell_of(0, 0), 0);
    }

    #[test]
    fn loss_override_covers_its_range() {
        let o = LossOverride { start: 4, end: 8, loss_probability: 0.5 };
        assert!(!o.covers(3));
        assert!(o.covers(4));
        assert!(o.covers(7));
        assert!(!o.covers(8));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_delay_span_is_rejected() {
        FaultPlan::default().with_link_delay(3, 1).validate();
    }

    #[test]
    #[should_panic(expected = "heal at or after")]
    fn inverted_partition_window_is_rejected() {
        FaultPlan::default().with_partition(5, 2, 2).validate();
    }

    #[test]
    #[should_panic(expected = "zero cells")]
    fn zero_cell_partition_is_rejected() {
        FaultPlan::default().with_partition(0, 5, 0).validate();
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn out_of_range_override_probability_is_rejected() {
        FaultPlan::default().with_loss_override(0, 5, 1.5).validate();
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_straggler_period_is_rejected() {
        FaultPlan::default().with_straggler(0, 0).validate();
    }

    #[test]
    #[should_panic(expected = "declared a straggler twice")]
    fn duplicate_stragglers_are_rejected() {
        FaultPlan::default().with_straggler(2, 3).with_straggler(2, 5).validate();
    }

    #[test]
    #[should_panic(expected = "out of range for a group of 8")]
    fn out_of_range_straggler_is_rejected() {
        FaultPlan::default().with_straggler(8, 3).validate_for(8);
    }

    #[test]
    #[should_panic(expected = "out of range for a group of 8")]
    fn out_of_range_override_is_rejected() {
        FaultPlan::default().with_loss_override(4, 9, 0.1).validate_for(8);
    }

    #[test]
    fn splitmix_spreads_link_delays() {
        // Not a statistical test — just that distinct links get distinct
        // enough values and the function is pure.
        let salt = 0xDEAD_BEEF;
        let a = splitmix64(salt ^ splitmix64(1 ^ splitmix64(2)));
        let b = splitmix64(salt ^ splitmix64(2 ^ splitmix64(1)));
        assert_ne!(a, b, "link delay must be directional");
        assert_eq!(a, splitmix64(salt ^ splitmix64(1 ^ splitmix64(2))));
    }

    #[test]
    fn serde_round_trip() {
        let plan = FaultPlan::default()
            .with_link_delay(1, 3)
            .with_partition(2, 6, 4)
            .with_loss_override(0, 16, 0.25)
            .with_straggler(7, 4);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
