use serde::{Deserialize, Serialize};

/// Traffic accounting of a simulated run.
///
/// The evaluation uses these counters to compare the network cost of pmcast
/// against flooding-style broadcast baselines (every gossip message is one
/// unit; payload bytes are tracked separately so that digest-only
/// optimisations can be quantified).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficStats {
    /// Messages handed to the network by senders.
    pub messages_sent: u64,
    /// Messages actually delivered to a live destination.
    pub messages_delivered: u64,
    /// Messages dropped by the network (loss probability `ε`).
    pub messages_lost: u64,
    /// Messages addressed to a crashed process.
    pub messages_to_crashed: u64,
    /// Messages suppressed because the *sender* had crashed.
    pub messages_from_crashed: u64,
    /// Messages dropped by an active [`crate::PartitionWindow`] because it
    /// separated sender and receiver.
    pub messages_partitioned: u64,
    /// Messages routed through the [`crate::LinkDelay`] timing wheel (they
    /// took more than one round to deliver; still counted in
    /// `messages_delivered` when they arrive).
    pub messages_delayed: u64,
    /// Cumulative payload bytes of sent messages (when reported by the
    /// protocol).
    pub payload_bytes: u64,
}

impl TrafficStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of sent messages that reached a live destination.
    pub fn delivery_ratio(&self) -> f64 {
        if self.messages_sent == 0 {
            return 1.0;
        }
        self.messages_delivered as f64 / self.messages_sent as f64
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        self.messages_sent += other.messages_sent;
        self.messages_delivered += other.messages_delivered;
        self.messages_lost += other.messages_lost;
        self.messages_to_crashed += other.messages_to_crashed;
        self.messages_from_crashed += other.messages_from_crashed;
        self.messages_partitioned += other.messages_partitioned;
        self.messages_delayed += other.messages_delayed;
        self.payload_bytes += other.payload_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_ratio_handles_zero_sends() {
        assert_eq!(TrafficStats::new().delivery_ratio(), 1.0);
        let stats = TrafficStats {
            messages_sent: 10,
            messages_delivered: 7,
            messages_lost: 3,
            ..TrafficStats::default()
        };
        assert!((stats.delivery_ratio() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = TrafficStats {
            messages_sent: 5,
            messages_delivered: 4,
            messages_lost: 1,
            messages_to_crashed: 0,
            messages_from_crashed: 0,
            messages_partitioned: 0,
            messages_delayed: 1,
            payload_bytes: 100,
        };
        let b = TrafficStats {
            messages_sent: 3,
            messages_delivered: 1,
            messages_lost: 1,
            messages_to_crashed: 1,
            messages_from_crashed: 2,
            messages_partitioned: 3,
            messages_delayed: 2,
            payload_bytes: 50,
        };
        a.merge(&b);
        assert_eq!(a.messages_sent, 8);
        assert_eq!(a.messages_delivered, 5);
        assert_eq!(a.messages_lost, 2);
        assert_eq!(a.messages_to_crashed, 1);
        assert_eq!(a.messages_from_crashed, 2);
        assert_eq!(a.messages_partitioned, 3);
        assert_eq!(a.messages_delayed, 3);
        assert_eq!(a.payload_bytes, 150);
    }

    #[test]
    fn serde_round_trip() {
        let stats = TrafficStats {
            messages_sent: 2,
            ..TrafficStats::default()
        };
        let json = serde_json::to_string(&stats).unwrap();
        let back: TrafficStats = serde_json::from_str(&json).unwrap();
        assert_eq!(stats, back);
    }
}
