//! Backpressure and teardown edges of the async runtime, all under the
//! deterministic executor: a full mailbox makes publishers *wait* (never
//! drops a command), gossip frames beyond capacity drop with a counter,
//! shutdown with events still in flight terminates cleanly, and a
//! crash-mid-stream stops one process dead without taking the run down.

use std::sync::Arc;
use std::time::Duration;

use pmcast_addr::AddressSpace;
use pmcast_core::{
    FloodFactory, PmcastConfig, ProtocolFactory, ProtocolGroup,
};
use pmcast_interest::Event;
use pmcast_membership::{
    AssignmentOracle, GlobalOracleView, ImplicitRegularTree, MembershipView, TreeTopology,
};
use pmcast_net::{NetConfig, NetGroup, PublishError};
use smol::{LocalExecutor, Timer};

const GROUP: usize = 8;

/// An 8-process flooding group where everyone is interested — every event
/// must reach every live process, which makes delivery assertions crisp.
fn flood_group() -> (
    ProtocolGroup<<FloodFactory as ProtocolFactory>::Process>,
    Arc<dyn MembershipView>,
) {
    let topology = ImplicitRegularTree::new(AddressSpace::regular(1, GROUP as u32).unwrap());
    let oracle = Arc::new(AssignmentOracle::new(topology.members().to_vec()));
    let membership: Arc<dyn MembershipView> = Arc::new(GlobalOracleView::new(GROUP));
    let group = FloodFactory::build(
        &topology,
        oracle,
        Arc::clone(&membership),
        &PmcastConfig::default(),
    );
    (group, membership)
}

fn event(id: u64) -> Arc<Event> {
    Arc::new(Event::builder(id).int("b", 1).build())
}

#[test]
fn full_mailbox_makes_publishers_wait_not_drop() {
    // Mailbox capacity 1: a burst of publishes must queue behind
    // backpressure, every one completing once the consumer drains.
    let (group, membership) = flood_group();
    let config = NetConfig::default().with_mailbox_capacity(1).with_seed(3);
    let executor = LocalExecutor::deterministic(3);
    let net = NetGroup::spawn(&executor, group.processes, membership, &config);
    let handle = net.handle().clone();
    const EVENTS: u64 = 12;
    let reports = executor.run(async move {
        for id in 0..EVENTS {
            handle
                .publish(0, event(100 + id))
                .await
                .expect("live process accepts publishes under backpressure");
        }
        while !handle.is_quiescent() {
            Timer::after(Duration::from_millis(5)).await;
        }
        net.shutdown().await
    });
    // The publisher's commands are lossless — backpressure, not drops:
    // every publish completed and was processed.  (Gossip *frames* may
    // still drop through the tiny mailboxes; that lossy path is the next
    // test's subject.)
    assert_eq!(reports[0].stats.published, EVENTS, "no publish was dropped");
    for id in 0..EVENTS {
        assert!(
            reports[0].state.has_delivered(event(100 + id).id()),
            "the publisher delivers its own event {id} regardless of transport pressure"
        );
    }
}

#[test]
fn gossip_frames_beyond_capacity_drop_with_a_counter() {
    // Flooding 8 processes through capacity-1 mailboxes: the gossip storm
    // must overflow somewhere, and every overflow is counted, never
    // silently lost.  The run still terminates cleanly.
    let (group, membership) = flood_group();
    let config = NetConfig::default().with_mailbox_capacity(1).with_seed(5);
    let executor = LocalExecutor::deterministic(5);
    let net = NetGroup::spawn(&executor, group.processes, membership, &config);
    let handle = net.handle().clone();
    let (reports, stats) = executor.run(async move {
        for id in 0..4u64 {
            handle.publish(id as usize, event(200 + id)).await.unwrap();
        }
        while !handle.is_quiescent() {
            Timer::after(Duration::from_millis(5)).await;
        }
        let stats = handle.stats();
        (net.shutdown().await, stats)
    });
    assert_eq!(reports.len(), GROUP);
    assert!(
        stats.frames_dropped > 0,
        "a flood through capacity-1 mailboxes must overflow: {stats:?}"
    );
    assert_eq!(stats.in_flight, 0, "quiescence means nothing left in flight");
    // Flooding retransmits every round while buffered, so drops are
    // re-covered and delivery still completes.
    for report in &reports {
        assert!(report.state.has_delivered(event(200).id()));
    }
}

#[test]
fn shutdown_with_in_flight_events_terminates_cleanly() {
    // Shut down immediately after publishing, with gossip still in flight:
    // queued frames ahead of the shutdown frame are drained, every task
    // returns a report, nothing hangs (a hang would trip the executor's
    // deadlock panic).
    let (group, membership) = flood_group();
    let config = NetConfig::default().with_seed(7);
    let executor = LocalExecutor::deterministic(7);
    let net = NetGroup::spawn(&executor, group.processes, membership, &config);
    let handle = net.handle().clone();
    let reports = executor.run(async move {
        handle.publish(0, event(300)).await.unwrap();
        // One gossip period so the publish turns into in-flight frames.
        Timer::after(Duration::from_millis(12)).await;
        net.shutdown().await
    });
    assert_eq!(reports.len(), GROUP, "every task reports on shutdown");
    assert!(reports.iter().all(|r| !r.crashed));
    assert!(
        reports[0].stats.published == 1,
        "the pre-shutdown publish was processed"
    );
}

#[test]
fn crash_mid_stream_stops_one_process_without_taking_down_the_run() {
    let (group, membership) = flood_group();
    let config = NetConfig::default().with_seed(9);
    let executor = LocalExecutor::deterministic(9);
    let net = NetGroup::spawn(&executor, group.processes, Arc::clone(&membership), &config);
    let handle = net.handle().clone();
    const VICTIM: usize = 3;
    let (reports, stats) = executor.run(async move {
        handle.publish(0, event(400)).await.unwrap();
        // Let the dissemination start, then kill the victim mid-stream.
        Timer::after(Duration::from_millis(15)).await;
        handle.crash(VICTIM);
        membership.observe_crash(VICTIM);
        assert!(handle.is_crashed(VICTIM));
        assert_eq!(
            handle.publish(VICTIM, event(401)).await,
            Err(PublishError::Crashed),
            "publishing to a crashed process must fail fast"
        );
        while !handle.is_quiescent() {
            Timer::after(Duration::from_millis(5)).await;
        }
        let stats = handle.stats();
        (net.shutdown().await, stats)
    });
    assert!(reports[VICTIM].crashed, "the victim reports its crash");
    assert_eq!(reports.iter().filter(|r| r.crashed).count(), 1);
    assert_eq!(stats.in_flight, 0, "crashed frames are written off");
    for (index, report) in reports.iter().enumerate() {
        if index != VICTIM {
            assert!(
                !report.crashed,
                "process {index} must survive the victim's crash"
            );
            assert!(
                report.state.has_delivered(event(400).id()),
                "process {index} must still deliver around the crash"
            );
        }
    }
}
