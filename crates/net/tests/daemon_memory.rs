//! Long-running daemon memory bound: with `retire_quiescent` enabled, a
//! process's dedup state stays proportional to the [`Seen`] ring capacity
//! under sustained traffic, instead of growing with the lifetime event
//! count — and retiring never un-delivers an event (retired ids still
//! count as seen and delivered).

use std::sync::Arc;
use std::time::Duration;

use pmcast_addr::AddressSpace;
use pmcast_core::{
    FloodFactory, MulticastProtocol, PmcastConfig, ProtocolFactory, ProtocolGroup,
};
use pmcast_interest::Event;
use pmcast_membership::{
    AssignmentOracle, GlobalOracleView, ImplicitRegularTree, MembershipView, TreeTopology,
};
use pmcast_net::{NetConfig, NetGroup};
use smol::{LocalExecutor, Timer};

const GROUP: usize = 8;
const EVENTS: u64 = 300;
const RING: usize = 64;

fn flood_group() -> (
    ProtocolGroup<<FloodFactory as ProtocolFactory>::Process>,
    Arc<dyn MembershipView>,
) {
    let topology = ImplicitRegularTree::new(AddressSpace::regular(1, GROUP as u32).unwrap());
    let oracle = Arc::new(AssignmentOracle::new(topology.members().to_vec()));
    let membership: Arc<dyn MembershipView> = Arc::new(GlobalOracleView::new(GROUP));
    let group = FloodFactory::build(
        &topology,
        oracle,
        Arc::clone(&membership),
        &PmcastConfig::default(),
    );
    (group, membership)
}

fn event(id: u64) -> Arc<Event> {
    Arc::new(Event::builder(id).int("b", 1).build())
}

/// Publishes `EVENTS` ascending-id events through a loss-free flood group
/// and returns each process's final dedup-state size.
fn daemon_run(retire: bool) -> Vec<usize> {
    let (group, membership) = flood_group();
    let config = NetConfig::default()
        .with_seen_capacity(RING)
        .with_retire_quiescent(retire)
        .with_seed(41);
    let executor = LocalExecutor::deterministic(41);
    let net = NetGroup::spawn(&executor, group.processes, membership, &config);
    let handle = net.handle().clone();
    let reports = executor.run(async move {
        for id in 0..EVENTS {
            handle
                .publish((id % GROUP as u64) as usize, event(10_000 + id))
                .await
                .expect("live processes accept publishes");
            // Let each burst disseminate: sustained traffic, not one big
            // backlogged spike (the daemon shape under test).
            if id % 25 == 24 {
                while !handle.is_quiescent() {
                    Timer::after(Duration::from_millis(5)).await;
                }
            }
        }
        while !handle.is_quiescent() {
            Timer::after(Duration::from_millis(5)).await;
        }
        net.shutdown().await
    });
    assert_eq!(reports.len(), GROUP);
    for report in &reports {
        // Retired or not, delivery history is never lost: the floor
        // contract says ids below it still count as delivered.
        assert!(
            report.state.has_delivered(event(10_000).id()),
            "the first event of the stream stays delivered"
        );
        assert!(report.state.has_delivered(event(10_000 + EVENTS - 1).id()));
    }
    reports.iter().map(|report| report.state.dedup_len()).collect()
}

#[test]
fn retire_quiescent_bounds_daemon_dedup_memory() {
    let unbounded = daemon_run(false);
    let bounded = daemon_run(true);
    for (process, len) in unbounded.iter().enumerate() {
        assert!(
            *len >= EVENTS as usize,
            "process {process}: without retirement the dedup state tracks every \
             lifetime event ({len} < {EVENTS})"
        );
    }
    for (process, len) in bounded.iter().enumerate() {
        // The floor is the minimum of the last RING distinct ids the ring
        // admitted; delivered + received each keep at most ~RING ids above
        // it (plus the handful still in flight at the final tick).
        assert!(
            *len <= 4 * RING,
            "process {process}: retired dedup state must stay proportional to \
             the ring capacity, got {len}"
        );
    }
}
