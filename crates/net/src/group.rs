//! [`NetGroup`]: spawning a protocol group as long-running broker tasks,
//! plus the control plane ([`NetGroupHandle`]) — publish with
//! backpressure, crash injection, quiescence checks and graceful
//! shutdown.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pmcast_core::MulticastProtocol;
use pmcast_interest::Event;
use pmcast_membership::MembershipView;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use smol::channel::Sender;
use smol::{LocalExecutor, Task, Timer};

use crate::process::{NetProcess, NetProcessReport};
use crate::seen::Seen;
use crate::transport::{ChannelTransport, Frame, Transport, TransportStats};

/// Multiplies a period by a tick count without the `Duration * u32` cap.
pub(crate) fn period_mul(period: Duration, ticks: u64) -> Duration {
    Duration::from_nanos((period.as_nanos() as u64).saturating_mul(ticks))
}

/// Configuration for a [`NetGroup`].
///
/// The `seed` feeds every stream the runtime draws on its own — the
/// per-process protocol RNGs, the per-process phase offsets and the
/// transport's loss stream.  These streams are *net-runtime-private*: the
/// simulator's three-stream seed contract (see `pmcast-sim`'s runner docs)
/// is untouched, and only statistical agreement between the two engines is
/// claimed.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// The gossip period: every process runs one protocol round per
    /// period, at its own phase offset within it.
    pub gossip_period: Duration,
    /// Mailbox capacity per process: gossip frames beyond it are dropped
    /// with a counter; publishers await free capacity instead.
    pub mailbox_capacity: usize,
    /// Capacity of the per-process [`Seen`] dedup ring.
    pub seen_capacity: usize,
    /// Bernoulli loss probability applied per gossip frame.
    pub loss_probability: f64,
    /// Retire protocol dedup state once the [`Seen`] ring has wrapped:
    /// each tick of a process whose ring is full calls
    /// `MulticastProtocol::retire_below(ring minimum)`, so a long-running
    /// daemon's per-process dedup memory stays proportional to the ring
    /// capacity instead of the lifetime event count.  Off by default —
    /// retired ids still *count* as seen, but reports over retired
    /// delivery history are protocol-dependent, so opting in is a daemon
    /// deployment decision.
    pub retire_quiescent: bool,
    /// The seed for the runtime-private streams (see type docs).
    pub seed: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            gossip_period: Duration::from_millis(10),
            mailbox_capacity: 1024,
            seen_capacity: 4096,
            loss_probability: 0.0,
            retire_quiescent: false,
            seed: 0,
        }
    }
}

impl NetConfig {
    /// Replaces the gossip period.
    pub fn with_gossip_period(mut self, period: Duration) -> Self {
        assert!(period > Duration::ZERO, "gossip period must be positive");
        self.gossip_period = period;
        self
    }

    /// Replaces the mailbox capacity.
    pub fn with_mailbox_capacity(mut self, capacity: usize) -> Self {
        self.mailbox_capacity = capacity;
        self
    }

    /// Replaces the [`Seen`] ring capacity.
    pub fn with_seen_capacity(mut self, capacity: usize) -> Self {
        self.seen_capacity = capacity;
        self
    }

    /// Replaces the loss probability.
    pub fn with_loss(mut self, probability: f64) -> Self {
        self.loss_probability = probability;
        self
    }

    /// Enables (or disables) dedup retirement on full [`Seen`] rings —
    /// the long-running-daemon memory bound (see the field docs).
    pub fn with_retire_quiescent(mut self, enabled: bool) -> Self {
        self.retire_quiescent = enabled;
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The private per-process stream seed (documented so external
    /// reproducers can regenerate a run).
    pub(crate) fn process_seed(&self, index: usize) -> u64 {
        self.seed
            .wrapping_add((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The private transport-loss stream seed.
    pub(crate) fn loss_seed(&self) -> u64 {
        self.seed.wrapping_mul(0x0165_667B).wrapping_add(29)
    }
}

/// Errors from [`NetGroupHandle::publish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublishError {
    /// The target process was crashed (or its mailbox torn down).
    Crashed,
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PublishError::Crashed => write!(f, "publishing to a crashed process"),
        }
    }
}

impl std::error::Error for PublishError {}

/// The cloneable control plane of a running [`NetGroup`].
#[derive(Debug, Clone)]
pub struct NetGroupHandle {
    senders: Vec<Sender<Frame>>,
    transport: ChannelTransport,
    quiescent: Vec<Arc<AtomicBool>>,
    crash_flags: Vec<Arc<AtomicBool>>,
    shutdown: Arc<AtomicBool>,
}

impl NetGroupHandle {
    /// Number of processes in the group.
    pub fn process_count(&self) -> usize {
        self.senders.len()
    }

    /// Publishes `event` at `process`, **waiting** while the mailbox is
    /// full — publishers get backpressure, gossip frames get dropped (see
    /// `transport` module docs).
    pub async fn publish(&self, process: usize, event: Arc<Event>) -> Result<(), PublishError> {
        if self.crash_flags[process].load(Ordering::Relaxed) {
            return Err(PublishError::Crashed);
        }
        // Count the command in-flight *before* awaiting capacity, so a
        // quiescence probe between enqueue attempts cannot miss it.
        self.transport.mark_enqueued(process);
        match self.senders[process].send(Frame::Publish(event)).await {
            Ok(()) => {
                self.quiescent[process].store(false, Ordering::Relaxed);
                Ok(())
            }
            Err(_) => {
                self.transport.unmark_enqueued(process);
                Err(PublishError::Crashed)
            }
        }
    }

    /// Crashes `process` mid-stream — the runtime analogue of the
    /// simulator's `crash_at`: the task exits without draining or
    /// flushing, queued frames are written off, and subsequent gossip to
    /// it counts under `frames_to_crashed`.
    pub fn crash(&self, process: usize) {
        if self.crash_flags[process].swap(true, Ordering::Relaxed) {
            return;
        }
        self.transport.mark_crashed(process);
        // Best-effort wake so an idle task notices immediately; if the
        // mailbox is full the task has frames to wake on anyway.
        let _ = self.senders[process].try_send(Frame::Shutdown);
    }

    /// Whether `process` has been crashed.
    pub fn is_crashed(&self, process: usize) -> bool {
        self.crash_flags[process].load(Ordering::Relaxed)
    }

    /// Whether the dissemination has come to rest: every live process's
    /// protocol reports quiescence and no frame is in flight.
    pub fn is_quiescent(&self) -> bool {
        self.transport.in_flight() == 0
            && self
                .quiescent
                .iter()
                .zip(self.crash_flags.iter())
                .all(|(q, c)| q.load(Ordering::Relaxed) || c.load(Ordering::Relaxed))
    }

    /// A snapshot of the transport counters.
    pub fn stats(&self) -> TransportStats {
        self.transport.stats()
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

/// A protocol group running as long-lived broker tasks on a
/// [`LocalExecutor`].
///
/// [`spawn`](Self::spawn) starts one mailbox-consuming task plus one
/// ticker task per process and a group-wide membership ticker;
/// [`shutdown`](Self::shutdown) tears everything down gracefully and
/// returns the final protocol states.  See the crate docs for a complete
/// example.
#[derive(Debug)]
pub struct NetGroup<P: MulticastProtocol> {
    handle: NetGroupHandle,
    tasks: Vec<Task<NetProcessReport<P>>>,
}

impl<P: MulticastProtocol + 'static> NetGroup<P> {
    /// Spawns `processes` (in dense identifier order) onto `executor`.
    ///
    /// The group advances `membership` once per gossip period (the same
    /// once-per-round cadence the simulator uses); per-process phase
    /// offsets, protocol RNG streams and the loss stream all derive from
    /// `config.seed`.
    pub fn spawn(
        executor: &LocalExecutor,
        processes: Vec<P>,
        membership: Arc<dyn MembershipView>,
        config: &NetConfig,
    ) -> Self {
        let count = processes.len();
        assert!(count > 0, "a group needs at least one process");
        let (transport, receivers) = ChannelTransport::with_loss(
            config.mailbox_capacity,
            count,
            config.loss_probability,
            config.loss_seed(),
        );
        let quiescent: Vec<Arc<AtomicBool>> = (0..count)
            .map(|_| Arc::new(AtomicBool::new(true)))
            .collect();
        let crash_flags: Vec<Arc<AtomicBool>> = (0..count)
            .map(|_| Arc::new(AtomicBool::new(false)))
            .collect();
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = NetGroupHandle {
            senders: (0..count).map(|i| transport.sender(i)).collect(),
            transport: transport.clone(),
            quiescent: quiescent.clone(),
            crash_flags: crash_flags.clone(),
            shutdown: Arc::clone(&shutdown),
        };

        // The membership ticker: one provider round per gossip period,
        // just after the period boundary and before any process's tick
        // (process phases start at 20% of the period).
        let period = config.gossip_period;
        let membership_offset = period / 10;
        let membership_shutdown = Arc::clone(&shutdown);
        executor
            .spawn(async move {
                let mut tick = 0u64;
                loop {
                    Timer::at(period_mul(period, tick) + membership_offset).await;
                    if membership_shutdown.load(Ordering::Relaxed) {
                        return;
                    }
                    membership.round_elapsed();
                    tick += 1;
                }
            })
            .detach();

        let mut tasks = Vec::with_capacity(count);
        for (index, (protocol, mailbox)) in processes.into_iter().zip(receivers).enumerate() {
            let mut rng = ChaCha8Rng::seed_from_u64(config.process_seed(index));
            // The phase offset desynchronizes gossip periods across the
            // group: each process ticks at its own point within (20%, 90%)
            // of the period, drawn from its private stream.
            let phase = period.mul_f64(rng.gen_range(0.2..0.9));
            let ticker_sender = transport.sender(index);
            executor
                .spawn(async move {
                    let mut tick = 0u64;
                    loop {
                        Timer::at(period_mul(period, tick) + phase).await;
                        // A full mailbox delays the tick (the period
                        // stretches under overload); a closed one means
                        // the process exited.
                        if ticker_sender.send(Frame::Tick).await.is_err() {
                            return;
                        }
                        tick += 1;
                    }
                })
                .detach();
            let process = NetProcess {
                index,
                protocol,
                mailbox,
                transport: transport.clone(),
                rng,
                seen: Seen::new(config.seen_capacity),
                retire_quiescent: config.retire_quiescent,
                outbox: Vec::new(),
                round: 0,
                quiescent: Arc::clone(&quiescent[index]),
                crash_flag: Arc::clone(&crash_flags[index]),
                stats: Default::default(),
            };
            tasks.push(executor.spawn(process.run()));
        }
        NetGroup { handle, tasks }
    }

    /// The group's control plane.
    pub fn handle(&self) -> &NetGroupHandle {
        &self.handle
    }

    /// Gracefully shuts the group down: stops the membership ticker,
    /// sends every live process a shutdown frame (waiting for mailbox
    /// capacity — frames already queued are drained first), and returns
    /// the final per-process reports in identifier order.
    pub async fn shutdown(self) -> Vec<NetProcessReport<P>> {
        self.handle.begin_shutdown();
        for (index, sender) in self.handle.senders.iter().enumerate() {
            if self.handle.is_crashed(index) {
                continue;
            }
            // A closed mailbox means the process already exited.
            let _ = sender.send(Frame::Shutdown).await;
        }
        let mut reports = Vec::with_capacity(self.tasks.len());
        for task in self.tasks {
            reports.push(task.await);
        }
        reports
    }
}
