//! [`NetProcess`]: the task wrapper that drives a [`MulticastProtocol`]
//! off timers and inbound frames instead of lock-step rounds.
//!
//! Each process is one async task consuming its mailbox.  A companion
//! *ticker* task (see [`crate::NetGroup`]) injects a [`Frame::Tick`] once
//! per gossip period at the process's own phase offset, so gossip periods
//! fire per-process rather than group-synchronously.  On a tick the
//! protocol's `on_round` runs inside an external
//! [`RoundContext`](pmcast_simnet::RoundContext) whose outbox is flushed
//! through the [`Transport`]; on an inbound gossip frame the bounded
//! [`Seen`] ring shields the protocol from duplicate event ids, then
//! `on_message` runs the same way.  Fanout candidates keep coming from the
//! protocol's [`MembershipView`](pmcast_membership::MembershipView)
//! provider — the runtime changes *when* rounds happen, never *what* a
//! round does.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pmcast_core::{Gossip, MulticastProtocol};
use pmcast_simnet::{ProcessId, RoundContext};
use rand_chacha::ChaCha8Rng;
use smol::channel::Receiver;

use crate::seen::Seen;
use crate::transport::{ChannelTransport, Frame, Transport};

/// Counters one `NetProcess` accumulates over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetProcessStats {
    /// Gossip-period ticks executed (`on_round` invocations).
    pub ticks: u64,
    /// Inbound gossip frames handed to the protocol.
    pub frames_handled: u64,
    /// Inbound gossip frames absorbed by the [`Seen`] ring.
    pub frames_deduped: u64,
    /// Publish commands executed.
    pub published: u64,
}

/// What a process task returns when it exits: the final protocol state
/// (for delivery reports), its counters, and how it ended.
#[derive(Debug)]
pub struct NetProcessReport<P> {
    /// The protocol instance in its final state.
    pub state: P,
    /// The process's counters.
    pub stats: NetProcessStats,
    /// `true` when the process was crashed mid-stream (the runtime
    /// analogue of the simulator's `crash_at`), `false` for a graceful
    /// shutdown.
    pub crashed: bool,
}

/// The per-process task state; constructed by [`crate::NetGroup::spawn`].
#[derive(Debug)]
pub(crate) struct NetProcess<P> {
    pub(crate) index: usize,
    pub(crate) protocol: P,
    pub(crate) mailbox: Receiver<Frame>,
    pub(crate) transport: ChannelTransport,
    pub(crate) rng: ChaCha8Rng,
    pub(crate) seen: Seen,
    pub(crate) retire_quiescent: bool,
    pub(crate) outbox: Vec<(ProcessId, Gossip, usize)>,
    pub(crate) round: u64,
    pub(crate) quiescent: Arc<AtomicBool>,
    pub(crate) crash_flag: Arc<AtomicBool>,
    pub(crate) stats: NetProcessStats,
}

impl<P: MulticastProtocol> NetProcess<P> {
    /// The task body: consume the mailbox until shutdown or crash.
    pub(crate) async fn run(mut self) -> NetProcessReport<P> {
        loop {
            let frame = match self.mailbox.recv().await {
                Ok(frame) => frame,
                // Every sender dropped — the group is being torn down.
                Err(_) => return self.report(false),
            };
            if self.crash_flag.load(Ordering::Relaxed) {
                // Crash-mid-stream: stop dead, no draining, no flushing.
                // Frames still queued behind us were written off by
                // `mark_crashed`; dropping the receiver closes the mailbox.
                return self.report(true);
            }
            match frame {
                Frame::Tick => self.tick(),
                Frame::Gossip { from, gossip } => {
                    self.on_gossip(from, gossip);
                    self.transport.mark_processed(self.index);
                }
                Frame::Publish(event) => {
                    self.protocol.publish(event);
                    self.stats.published += 1;
                    self.transport.mark_processed(self.index);
                }
                Frame::Shutdown => return self.report(false),
            }
            self.quiescent
                .store(self.protocol.is_quiescent(), Ordering::Relaxed);
        }
    }

    /// One gossip period: run the protocol's round and flush its sends.
    fn tick(&mut self) {
        let mut ctx = RoundContext::external(
            ProcessId(self.index),
            self.round,
            &mut self.outbox,
            &mut self.rng,
        );
        self.protocol.on_round(&mut ctx);
        self.round += 1;
        self.stats.ticks += 1;
        self.flush();
        // Long-running daemons: once the dedup ring has wrapped, compact
        // the protocol's own dedup state below the ring's minimum (the
        // protocol clamps the floor to its in-flight buffers), keeping
        // per-process memory proportional to the ring capacity instead of
        // the lifetime event count.
        if self.retire_quiescent && self.seen.is_full() {
            if let Some(floor) = self.seen.min_id() {
                self.protocol.retire_below(floor);
            }
        }
    }

    /// One inbound gossip frame: dedup through the ring, then dispatch.
    fn on_gossip(&mut self, from: ProcessId, gossip: Gossip) {
        if !self.seen.push(gossip.event.id()) {
            self.stats.frames_deduped += 1;
            return;
        }
        let mut ctx = RoundContext::external(
            ProcessId(self.index),
            self.round,
            &mut self.outbox,
            &mut self.rng,
        );
        self.protocol.on_message(from, gossip, &mut ctx);
        self.stats.frames_handled += 1;
        self.flush();
    }

    fn flush(&mut self) {
        let own = ProcessId(self.index);
        for (to, gossip, payload_size) in self.outbox.drain(..) {
            self.transport.send_gossip(own, to, gossip, payload_size);
        }
    }

    fn report(self, crashed: bool) -> NetProcessReport<P> {
        NetProcessReport {
            state: self.protocol,
            stats: self.stats,
            crashed,
        }
    }
}
