//! Running a `pmcast-sim` [`Scenario`] trial through the async runtime.
//!
//! The round-synchronous simulator is the **oracle**: its seed contract is
//! frozen by golden tests, and this module exists so the runtime can be
//! conformance-tested against it (`tests/net_vs_sim.rs` at the workspace
//! root).  [`run_net_scenario_trial`] resolves the *identical* trial
//! workload the simulator would use — same interest assignment, same
//! publish schedule, same membership provider seed, via
//! [`trial_workload`] — then disseminates it through [`NetGroup`] tasks on
//! a deterministic [`LocalExecutor`] instead of lock-step rounds.
//!
//! What is and is not claimed to agree:
//!
//! - **Loss-free runs**: the delivered event *sets* must match the
//!   simulator's bit for bit (per process).  Gossip fanout draws come from
//!   different RNG streams, so the *paths* differ, but with no loss both
//!   engines must reach exactly the interested processes.
//! - **Lossy runs**: only statistical agreement — the runtime draws its
//!   loss stream from [`NetConfig::with_seed`]-derived state, not the
//!   simulator's network stream, so delivery *rates* must agree within a
//!   tolerance, not outcomes per trial.
//! - **Determinism**: the same `(scenario, trial)` through this function
//!   twice is bit-identical — the executor's task and timer ordering is
//!   seeded from the trial seed.
//!
//! The runtime's random streams (per-process protocol RNGs, phase
//! offsets, transport loss) are *net-private* — all derived from the trial
//! seed `scenario.seed + trial` through the constants documented on
//! [`NetConfig`] — and consume nothing from the simulator's three streams,
//! so golden scenarios stay bit-identical with this crate in the
//! workspace.

use std::sync::Arc;

use pmcast_core::{MulticastReport, ProtocolFactory};
use pmcast_interest::{Event, EventId};
use pmcast_sim::runner::trial_workload;
use pmcast_sim::scenario::Scenario;
use smol::{LocalExecutor, Timer};

use crate::group::{period_mul, NetConfig, NetGroup};
use crate::process::NetProcessReport;
use crate::transport::TransportStats;

/// What one async-runtime trial produces; the runtime-side analogue of
/// the simulator's `TrialOutcome`.
#[derive(Debug)]
pub struct NetTrialOutcome<P> {
    /// Delivery/reception classification over all published events (the
    /// per-event reports merged), computed by the same
    /// [`MulticastReport`] collector the simulator uses.
    pub report: MulticastReport,
    /// One report per *distinct* published event id, in first-publication
    /// schedule order.
    pub per_event: Vec<MulticastReport>,
    /// Final per-process states and runtime counters, in dense identifier
    /// order.
    pub reports: Vec<NetProcessReport<P>>,
    /// Transport counters for the whole run.
    pub transport: TransportStats,
    /// Gossip periods the controller waited before the run went
    /// quiescent.
    pub rounds: u64,
}

/// Panics unless the scenario stays inside what the runtime implements
/// today.
///
/// The adversarial fault axes (link delay, partitions, subtree loss,
/// stragglers) and the dynamic-lifecycle axes (join/leave schedules,
/// `crash_fraction`) are simulator-only for now — documented follow-ups,
/// not silent approximations.  `crash_schedule` *is* supported: the
/// runtime crashes the process's task mid-stream.
pub fn assert_supported(scenario: &Scenario) {
    assert!(
        scenario.fault_plan().is_neutral(),
        "the async runtime does not implement the adversarial fault axes yet \
         (link delay / partitions / subtree loss / stragglers are simulator-only)"
    );
    assert!(
        scenario.join_schedule.is_empty() && scenario.leave_schedule.is_empty(),
        "the async runtime does not implement join/leave lifecycle schedules yet"
    );
    assert!(
        scenario.crash_fraction == 0.0,
        "the async runtime does not implement crash_fraction yet (use crash_schedule)"
    );
    assert!(
        scenario.topics.is_none(),
        "the async runtime does not implement the multi-topic workload axis yet \
         (topic scenarios are simulator-only)"
    );
}

/// Runs one trial of `scenario` through the async runtime and reports it
/// with the simulator's own collector, so the two engines' outcomes are
/// directly comparable (see the module docs for what must agree).
///
/// # Panics
///
/// Panics if the scenario uses a simulator-only axis (see
/// [`assert_supported`]'s documentation) or if a publication could not be
/// injected before `scenario.max_rounds`.
pub fn run_net_scenario_trial<F: ProtocolFactory>(
    scenario: &Scenario,
    trial: usize,
) -> NetTrialOutcome<F::Process>
where
    F::Process: 'static,
{
    assert_supported(scenario);
    let workload = trial_workload(scenario, trial);
    let membership = workload.membership(scenario);
    let group = F::build(
        &workload.topology,
        workload.oracle.clone(),
        Arc::clone(&membership),
        &scenario.protocol,
    );
    let config = NetConfig::default()
        .with_loss(scenario.loss_probability)
        .with_seed(workload.seed);
    let period = config.gossip_period;

    // Injection order mirrors the simulator: schedule order within a
    // round, rounds ascending (stable sort on the round key).
    let schedule = &workload.schedule;
    let mut injection_order: Vec<usize> = (0..schedule.len()).collect();
    injection_order.sort_by_key(|&index| schedule[index].0);
    let mut crash_schedule = scenario.crash_schedule.clone();
    crash_schedule.sort_by_key(|&(round, _)| round);

    let executor = LocalExecutor::deterministic(workload.seed);
    let net = NetGroup::<F::Process>::spawn(&executor, group.processes, Arc::clone(&membership), &config);
    let handle = net.handle().clone();
    let max_rounds = scenario.max_rounds;

    let controller = handle.clone();
    let total_publications = injection_order.len();
    let (reports, rounds, injected) = executor.run(async move {
        let mut injected = 0;
        let mut crashed = 0;
        let mut rounds = 0;
        // The controller wakes at every period boundary (offset 0 — before
        // the membership ticker at 10% and every process phase at 20%+),
        // so crash and publish injections for round `r` land before any of
        // round `r`'s gossip, exactly like the simulator's loop.
        for round in 0..=max_rounds {
            Timer::at(period_mul(period, round)).await;
            rounds = round;
            // All frames enqueued before this boundary have been fully
            // processed: the virtual clock only advances when every task
            // is pending, so the quiescence probe cannot race in-flight
            // gossip.
            if injected == injection_order.len()
                && crashed == crash_schedule.len()
                && controller.is_quiescent()
            {
                break;
            }
            if round == max_rounds {
                break;
            }
            while crashed < crash_schedule.len() && crash_schedule[crashed].0 <= round {
                let (_, process) = crash_schedule[crashed];
                controller.crash(process);
                membership.observe_crash(process);
                crashed += 1;
            }
            while injected < injection_order.len() {
                let (publish_round, sender, event) = &schedule[injection_order[injected]];
                if *publish_round > round {
                    break;
                }
                // A publish to a crashed process is simply lost, like the
                // simulator's publish into a crashed process.
                let _ = controller.publish(*sender, Arc::clone(event)).await;
                injected += 1;
            }
        }
        (net.shutdown().await, rounds, injected)
    });
    assert!(
        injected == total_publications,
        "{} publication(s) scheduled at or beyond max_rounds = {} were never injected",
        total_publications - injected,
        max_rounds
    );

    // Per *distinct* event, like the simulator's reports.
    let mut seen_ids: Vec<EventId> = Vec::with_capacity(schedule.len());
    let mut unique_events: Vec<&Event> = Vec::with_capacity(schedule.len());
    for (_, _, event) in schedule {
        if !seen_ids.contains(&event.id()) {
            seen_ids.push(event.id());
            unique_events.push(event.as_ref());
        }
    }
    let per_event = MulticastReport::collect_per_event(
        unique_events,
        reports.iter().map(|r| &r.state),
        workload.oracle.as_ref(),
    );
    let mut report = MulticastReport::default();
    for event_report in &per_event {
        report.merge(event_report);
    }
    NetTrialOutcome {
        report,
        per_event,
        reports,
        transport: handle.stats(),
        rounds,
    }
}
