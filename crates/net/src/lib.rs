//! Event-driven async runtime for pmcast: long-running broker tasks,
//! timers and transports, conformance-tested against the
//! round-synchronous simulator.
//!
//! The `pmcast-sim` simulator drives every process in lock-step rounds —
//! perfect for reproducing the paper's analysis, but nothing like a
//! deployment, where each process gossips on its own timer and reacts to
//! frames as they arrive.  This crate is that second execution mode:
//!
//! - [`NetGroup::spawn`] turns any `ProtocolFactory`-built group into
//!   per-process tasks on a single-threaded executor (the vendored `smol`
//!   shim).  A ticker task per process fires its gossip period at a
//!   private phase offset; inbound gossip dispatches through the same
//!   `MembershipView` providers the simulator uses; a bounded [`Seen`]
//!   ring shields the protocol from duplicate event ids.
//! - [`ChannelTransport`] is the in-process backend: bounded per-process
//!   mailboxes, **backpressure for publishers** (they await capacity) and
//!   **drop-with-counter for gossip frames** (best-effort, like the
//!   network).  A UDP backend behind the same [`Transport`] trait is a
//!   documented follow-up (see ROADMAP.md).
//! - [`NetGroupHandle`] is the control plane: publish, crash a process
//!   mid-stream, probe quiescence, then [`NetGroup::shutdown`] for the
//!   final states.
//!
//! # The simulator stays the oracle
//!
//! The invariant this crate lives under: **the round-synchronous
//! simulator is the oracle; the async runtime must conformance-test
//! against it.**  [`run_net_scenario_trial`] replays a `pmcast-sim`
//! scenario trial — same workload, same interest assignment, same
//! membership provider — through the runtime, and `tests/net_vs_sim.rs`
//! asserts the outcomes agree (bit-identical delivered sets loss-free,
//! delivery rates within tolerance under loss).  The runtime's own random
//! streams are private derivations of the trial seed and consume nothing
//! from the simulator's seed contract.
//!
//! With a seeded executor (`LocalExecutor::deterministic`) the runtime
//! itself is deterministic: task and timer ordering derive from the seed,
//! so the same trial replays bit-identically.
//!
//! # Quickstart
//!
//! Run a scenario through the async runtime and compare with the
//! simulator (the flooding baseline reaches everybody loss-free, so the
//! two engines must agree exactly):
//!
//! ```
//! use pmcast_core::FloodFactory;
//! use pmcast_net::run_net_scenario_trial;
//! use pmcast_sim::runner::run_scenario_trial;
//! use pmcast_sim::scenario::Scenario;
//!
//! let scenario = Scenario::builder().group(3, 2).matching_rate(1.0).build();
//! let sim = run_scenario_trial::<FloodFactory>(&scenario, 0);
//! let net = run_net_scenario_trial::<FloodFactory>(&scenario, 0);
//! assert_eq!(net.report.delivery_ratio(), sim.report.delivery_ratio());
//! assert_eq!(net.report.delivery_ratio(), 1.0);
//! ```
//!
//! Or drive a group by hand — publish, wait for quiescence, shut down:
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! use pmcast_addr::AddressSpace;
//! use pmcast_core::{FloodFactory, PmcastConfig, ProtocolFactory};
//! use pmcast_interest::Event;
//! use pmcast_membership::{
//!     AssignmentOracle, GlobalOracleView, ImplicitRegularTree, TreeTopology,
//! };
//! use pmcast_net::{NetConfig, NetGroup};
//! use smol::{LocalExecutor, Timer};
//!
//! let topology = ImplicitRegularTree::new(AddressSpace::regular(1, 8).unwrap());
//! let oracle = Arc::new(AssignmentOracle::new(topology.members().to_vec()));
//! let membership = Arc::new(GlobalOracleView::new(8));
//! let group = FloodFactory::build(&topology, oracle, membership.clone(), &PmcastConfig::default());
//!
//! let executor = LocalExecutor::deterministic(42);
//! let net = NetGroup::spawn(&executor, group.processes, membership, &NetConfig::default());
//! let handle = net.handle().clone();
//! let reports = executor.run(async move {
//!     let event = Arc::new(Event::builder(1).int("px", 10).build());
//!     handle.publish(0, event).await.unwrap();
//!     while !handle.is_quiescent() {
//!         Timer::after(Duration::from_millis(10)).await;
//!     }
//!     net.shutdown().await
//! });
//! assert!(reports.iter().all(|report| !report.crashed));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod conformance;
mod group;
mod process;
mod seen;
mod transport;

pub use conformance::{assert_supported, run_net_scenario_trial, NetTrialOutcome};
pub use group::{NetConfig, NetGroup, NetGroupHandle, PublishError};
pub use process::{NetProcessReport, NetProcessStats};
pub use seen::Seen;
pub use transport::{ChannelTransport, Frame, Transport, TransportStats};
