//! Bounded event-id dedup: the darkfi-ircd-style `Seen` ring buffer.
//!
//! Every inbound gossip frame is checked against a capacity-bounded ring
//! of recently seen [`EventId`]s before it is handed to the protocol.
//! The protocols dedup internally as well (their `on_message` is
//! idempotent per event id), so the ring is a *shield*, not a correctness
//! mechanism: it keeps duplicate frames from waking the protocol at all,
//! and its bounded capacity keeps the runtime's memory flat under
//! sustained traffic — an id evicted from a full ring merely falls back to
//! the protocol's own dedup.

use std::collections::VecDeque;

use pmcast_interest::EventId;
use rustc_hash::FxHashSet;

/// A capacity-bounded ring of recently seen event ids with O(1) admit and
/// membership checks.
///
/// [`push`](Self::push) admits fresh ids and reports duplicates; when the
/// ring is full, the oldest id is evicted first.  Steady-state operation
/// is allocation-free: the ring and its index set never grow past
/// capacity.
#[derive(Debug)]
pub struct Seen {
    ring: VecDeque<EventId>,
    index: FxHashSet<EventId>,
    capacity: usize,
    deduped: u64,
}

impl Seen {
    /// Creates a ring remembering at most `capacity` ids.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "Seen capacity must be at least 1");
        Seen {
            ring: VecDeque::with_capacity(capacity),
            index: FxHashSet::with_capacity_and_hasher(capacity, Default::default()),
            capacity,
            deduped: 0,
        }
    }

    /// Admits an id: returns `true` if it was fresh (now remembered,
    /// evicting the oldest id when full) and `false` for a duplicate
    /// (counted in [`deduped`](Self::deduped)).
    pub fn push(&mut self, id: EventId) -> bool {
        if self.index.contains(&id) {
            self.deduped += 1;
            return false;
        }
        if self.ring.len() == self.capacity {
            if let Some(oldest) = self.ring.pop_front() {
                self.index.remove(&oldest);
            }
        }
        self.ring.push_back(id);
        self.index.insert(id);
        true
    }

    /// Whether `id` is currently remembered.
    pub fn contains(&self, id: EventId) -> bool {
        self.index.contains(&id)
    }

    /// Number of ids currently remembered.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The bound the ring never grows past.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the ring has reached its capacity (every further fresh id
    /// evicts the oldest).
    pub fn is_full(&self) -> bool {
        self.ring.len() == self.capacity
    }

    /// The smallest id currently remembered, if any — the retire
    /// watermark of a full ring: ids below it are at best already evicted
    /// history, so a protocol may compact its own dedup state below it
    /// (see `MulticastProtocol::retire_below`, which additionally clamps
    /// to its in-flight floor).
    pub fn min_id(&self) -> Option<EventId> {
        self.ring.iter().copied().min()
    }

    /// How many duplicate pushes have been rejected.
    pub fn deduped(&self) -> u64 {
        self.deduped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> EventId {
        use pmcast_interest::Event;
        Event::builder(n).build().id()
    }

    #[test]
    fn dedups_and_counts() {
        let mut seen = Seen::new(4);
        assert!(seen.push(id(1)));
        assert!(!seen.push(id(1)));
        assert!(!seen.push(id(1)));
        assert_eq!(seen.deduped(), 2);
        assert_eq!(seen.len(), 1);
    }

    #[test]
    fn evicts_oldest_at_capacity() {
        let mut seen = Seen::new(3);
        for n in 1..=3 {
            assert!(seen.push(id(n)));
        }
        assert!(seen.push(id(4)), "fresh id admitted at capacity");
        assert_eq!(seen.len(), 3, "capacity is a hard bound");
        assert!(!seen.contains(id(1)), "oldest id evicted");
        assert!(seen.contains(id(4)));
        assert!(seen.push(id(1)), "an evicted id reads as fresh again");
    }

    #[test]
    fn min_id_tracks_the_retire_watermark() {
        let mut seen = Seen::new(3);
        assert_eq!(seen.min_id(), None);
        assert!(!seen.is_full());
        for n in [5, 2, 9] {
            seen.push(EventId(n));
        }
        assert!(seen.is_full());
        assert_eq!(seen.min_id(), Some(EventId(2)));
        // Evicting the oldest (5) leaves {2, 9, 1}.
        seen.push(EventId(1));
        assert_eq!(seen.min_id(), Some(EventId(1)));
    }
}
