//! The [`Transport`] abstraction and its in-process channel backend.
//!
//! A transport moves [`Frame`]s between process mailboxes.  Gossip frames
//! use **fire-and-forget** semantics with drop-with-counter backpressure:
//! a full or crashed destination mailbox drops the frame and bumps a
//! counter, exactly like a UDP socket buffer would.  Publish commands, by
//! contrast, travel through the same mailboxes with *waiting* semantics
//! (the publisher awaits free capacity) — that path lives on
//! [`crate::NetGroupHandle::publish`], not on the trait, because only the
//! local control plane may block.
//!
//! [`ChannelTransport`] is the first backend: bounded in-process channels,
//! optional seeded message loss (so lossy scenarios are reproducible), and
//! in-flight accounting for quiescence detection.  A UDP backend is a
//! documented follow-up (see ROADMAP.md) — it plugs in behind the same
//! trait.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pmcast_core::Gossip;
use pmcast_interest::Event;
use pmcast_simnet::ProcessId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use smol::channel::{self, Receiver, Sender, TrySendError};

/// A message in a process mailbox.
#[derive(Debug, Clone)]
pub enum Frame {
    /// A gossip-period tick from the process's ticker task (not counted as
    /// in-flight work — it carries no dissemination state).
    Tick,
    /// An inbound gossip frame from a peer.
    Gossip {
        /// The sending process.
        from: ProcessId,
        /// The gossip payload (shared event handle — never copied).
        gossip: Gossip,
    },
    /// A local publish command from the group handle.
    Publish(Arc<Event>),
    /// Graceful-shutdown request: drain and exit.
    Shutdown,
}

/// Counters a transport accumulates over its lifetime (monotone except
/// `in_flight`, which is the *current* number of unprocessed gossip and
/// publish frames).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Gossip frames successfully enqueued.
    pub frames_sent: u64,
    /// Gossip frames dropped because the destination mailbox was full.
    pub frames_dropped: u64,
    /// Gossip frames dropped by the loss model.
    pub frames_lost: u64,
    /// Gossip frames addressed to a crashed process.
    pub frames_to_crashed: u64,
    /// Total payload bytes of successfully enqueued gossip frames.
    pub payload_bytes: u64,
    /// The highest number of simultaneously in-flight frames observed —
    /// the memory high-water mark of the mailboxes.
    pub peak_in_flight: u64,
    /// Frames currently enqueued but not yet processed.
    pub in_flight: u64,
}

/// Moves gossip frames between processes.
///
/// Implementations must be non-blocking: a send that cannot complete
/// immediately is *dropped and counted*, never awaited (see the module
/// docs for why the publish path is different).
pub trait Transport: std::fmt::Debug {
    /// Sends a gossip frame from `from` to `to`; returns whether the frame
    /// was enqueued (`false` = dropped, lost or destination crashed).
    fn send_gossip(&self, from: ProcessId, to: ProcessId, gossip: Gossip, payload_size: usize)
        -> bool;

    /// A snapshot of the transport's counters.
    fn stats(&self) -> TransportStats;

    /// Frames currently enqueued but not yet processed — zero is the
    /// transport's contribution to group quiescence.
    fn in_flight(&self) -> u64;
}

/// Seeded Bernoulli loss applied before enqueue.
#[derive(Debug)]
struct LossModel {
    probability: f64,
    rng: Mutex<ChaCha8Rng>,
}

#[derive(Debug)]
struct ChannelShared {
    mailboxes: Vec<Sender<Frame>>,
    /// Unprocessed gossip + publish frames per destination; receivers
    /// acknowledge with [`ChannelTransport::mark_processed`].
    pending: Vec<AtomicU64>,
    crashed: Vec<AtomicBool>,
    total_pending: AtomicU64,
    frames_sent: AtomicU64,
    frames_dropped: AtomicU64,
    frames_lost: AtomicU64,
    frames_to_crashed: AtomicU64,
    payload_bytes: AtomicU64,
    peak_in_flight: AtomicU64,
    loss: Option<LossModel>,
}

/// The in-process channel backend: one bounded mailbox per process.
///
/// Cheaply cloneable (all clones share the same mailboxes and counters).
/// Construction hands back the mailbox [`Receiver`]s — exactly one
/// consumer per process.
#[derive(Debug, Clone)]
pub struct ChannelTransport {
    shared: Arc<ChannelShared>,
}

impl ChannelTransport {
    /// Creates mailboxes for `processes` processes, each holding at most
    /// `mailbox_capacity` frames, with no loss.
    pub fn new(mailbox_capacity: usize, processes: usize) -> (Self, Vec<Receiver<Frame>>) {
        Self::build(mailbox_capacity, processes, None)
    }

    /// Like [`new`](Self::new), with seeded Bernoulli loss: each gossip
    /// frame is dropped with probability `loss_probability`, drawn from a
    /// ChaCha8 stream seeded with `loss_seed` — same seed, same losses.
    pub fn with_loss(
        mailbox_capacity: usize,
        processes: usize,
        loss_probability: f64,
        loss_seed: u64,
    ) -> (Self, Vec<Receiver<Frame>>) {
        assert!(
            (0.0..=1.0).contains(&loss_probability),
            "loss probability must be within [0, 1], got {loss_probability}"
        );
        let loss = (loss_probability > 0.0).then(|| LossModel {
            probability: loss_probability,
            rng: Mutex::new(ChaCha8Rng::seed_from_u64(loss_seed)),
        });
        Self::build(mailbox_capacity, processes, loss)
    }

    fn build(
        mailbox_capacity: usize,
        processes: usize,
        loss: Option<LossModel>,
    ) -> (Self, Vec<Receiver<Frame>>) {
        assert!(processes > 0, "a transport needs at least one process");
        let mut mailboxes = Vec::with_capacity(processes);
        let mut receivers = Vec::with_capacity(processes);
        for _ in 0..processes {
            let (sender, receiver) = channel::bounded(mailbox_capacity);
            mailboxes.push(sender);
            receivers.push(receiver);
        }
        let transport = ChannelTransport {
            shared: Arc::new(ChannelShared {
                mailboxes,
                pending: (0..processes).map(|_| AtomicU64::new(0)).collect(),
                crashed: (0..processes).map(|_| AtomicBool::new(false)).collect(),
                total_pending: AtomicU64::new(0),
                frames_sent: AtomicU64::new(0),
                frames_dropped: AtomicU64::new(0),
                frames_lost: AtomicU64::new(0),
                frames_to_crashed: AtomicU64::new(0),
                payload_bytes: AtomicU64::new(0),
                peak_in_flight: AtomicU64::new(0),
                loss,
            }),
        };
        (transport, receivers)
    }

    /// Number of mailboxes.
    pub fn process_count(&self) -> usize {
        self.shared.mailboxes.len()
    }

    /// A cloneable sender for `process`'s mailbox — the group handle uses
    /// these for the waiting publish/shutdown control plane.
    pub(crate) fn sender(&self, process: usize) -> Sender<Frame> {
        self.shared.mailboxes[process].clone()
    }

    /// Records that `process` finished handling one in-flight frame.
    /// Receivers must call this once per [`Frame::Gossip`] /
    /// [`Frame::Publish`] they process, *after* handling it, so
    /// [`in_flight`](Transport::in_flight) conservatively covers frames
    /// that are dequeued but still being worked on.
    pub fn mark_processed(&self, process: usize) {
        self.shared.pending[process].fetch_sub(1, Ordering::Relaxed);
        self.shared.total_pending.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records an enqueued in-flight frame for `process` (the publish path
    /// counts itself in before awaiting mailbox capacity).
    pub(crate) fn mark_enqueued(&self, process: usize) {
        self.shared.pending[process].fetch_add(1, Ordering::Relaxed);
        let now = self.shared.total_pending.fetch_add(1, Ordering::Relaxed) + 1;
        self.shared.peak_in_flight.fetch_max(now, Ordering::Relaxed);
    }

    /// Un-records a frame that failed to enqueue after all.
    pub(crate) fn unmark_enqueued(&self, process: usize) {
        self.shared.pending[process].fetch_sub(1, Ordering::Relaxed);
        self.shared.total_pending.fetch_sub(1, Ordering::Relaxed);
    }

    /// Marks `process` crashed: its unprocessed frames are written off
    /// (they will never be acknowledged) and subsequent gossip to it is
    /// counted under `frames_to_crashed`.
    pub(crate) fn mark_crashed(&self, process: usize) {
        self.shared.crashed[process].store(true, Ordering::Relaxed);
        let orphaned = self.shared.pending[process].swap(0, Ordering::Relaxed);
        self.shared
            .total_pending
            .fetch_sub(orphaned, Ordering::Relaxed);
    }

    /// Whether `process` has been marked crashed.
    pub fn is_crashed(&self, process: usize) -> bool {
        self.shared.crashed[process].load(Ordering::Relaxed)
    }
}

impl Transport for ChannelTransport {
    fn send_gossip(
        &self,
        from: ProcessId,
        to: ProcessId,
        gossip: Gossip,
        payload_size: usize,
    ) -> bool {
        let shared = &self.shared;
        if shared.crashed[to.0].load(Ordering::Relaxed) {
            shared.frames_to_crashed.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        if let Some(loss) = &shared.loss {
            let lost = loss
                .rng
                .lock()
                .expect("loss stream poisoned")
                .gen_bool(loss.probability);
            if lost {
                shared.frames_lost.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        }
        match shared.mailboxes[to.0].try_send(Frame::Gossip { from, gossip }) {
            Ok(()) => {
                self.mark_enqueued(to.0);
                shared.frames_sent.fetch_add(1, Ordering::Relaxed);
                shared
                    .payload_bytes
                    .fetch_add(payload_size as u64, Ordering::Relaxed);
                true
            }
            Err(TrySendError::Full(_)) => {
                shared.frames_dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
            Err(TrySendError::Closed(_)) => {
                shared.frames_to_crashed.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    fn stats(&self) -> TransportStats {
        let shared = &self.shared;
        TransportStats {
            frames_sent: shared.frames_sent.load(Ordering::Relaxed),
            frames_dropped: shared.frames_dropped.load(Ordering::Relaxed),
            frames_lost: shared.frames_lost.load(Ordering::Relaxed),
            frames_to_crashed: shared.frames_to_crashed.load(Ordering::Relaxed),
            payload_bytes: shared.payload_bytes.load(Ordering::Relaxed),
            peak_in_flight: shared.peak_in_flight.load(Ordering::Relaxed),
            in_flight: shared.total_pending.load(Ordering::Relaxed),
        }
    }

    fn in_flight(&self) -> u64 {
        self.shared.total_pending.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    fn gossip(id: u64) -> Gossip {
        Gossip::new(Event::builder(id).int("b", 1).build(), 1, 0.5, 0)
    }

    #[test]
    fn full_mailbox_drops_with_counter() {
        let (transport, _receivers) = ChannelTransport::new(2, 2);
        assert!(transport.send_gossip(ProcessId(0), ProcessId(1), gossip(1), 10));
        assert!(transport.send_gossip(ProcessId(0), ProcessId(1), gossip(2), 10));
        assert!(!transport.send_gossip(ProcessId(0), ProcessId(1), gossip(3), 10));
        let stats = transport.stats();
        assert_eq!((stats.frames_sent, stats.frames_dropped), (2, 1));
        assert_eq!(stats.in_flight, 2);
        assert_eq!(stats.payload_bytes, 20);
    }

    #[test]
    fn processing_acknowledges_in_flight() {
        let (transport, receivers) = ChannelTransport::new(4, 2);
        transport.send_gossip(ProcessId(0), ProcessId(1), gossip(1), 0);
        assert_eq!(transport.in_flight(), 1);
        receivers[1].try_recv().expect("frame queued");
        transport.mark_processed(1);
        assert_eq!(transport.in_flight(), 0);
        assert_eq!(transport.stats().peak_in_flight, 1);
    }

    #[test]
    fn crashed_destination_is_written_off() {
        let (transport, receivers) = ChannelTransport::new(4, 2);
        transport.send_gossip(ProcessId(0), ProcessId(1), gossip(1), 0);
        transport.mark_crashed(1);
        assert_eq!(transport.in_flight(), 0, "orphaned frames written off");
        assert!(!transport.send_gossip(ProcessId(0), ProcessId(1), gossip(2), 0));
        assert_eq!(transport.stats().frames_to_crashed, 1);
        drop(receivers);
        assert!(!transport.send_gossip(ProcessId(0), ProcessId(0), gossip(3), 0));
        assert_eq!(transport.stats().frames_to_crashed, 2);
    }

    #[test]
    fn seeded_loss_is_reproducible() {
        let run = |seed: u64| {
            let (transport, receivers) = ChannelTransport::with_loss(64, 2, 0.5, seed);
            let mut delivered = Vec::new();
            for n in 0..32 {
                delivered.push(transport.send_gossip(ProcessId(0), ProcessId(1), gossip(n), 0));
            }
            drop(receivers);
            delivered
        };
        assert_eq!(run(9), run(9), "same seed, same losses");
        let pattern = run(9);
        assert!(pattern.iter().any(|&d| d) && pattern.iter().any(|&d| !d));
    }
}
