use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::AttributeValue;

/// Unique identifier of a published event.
///
/// In a real deployment this would combine the publisher's address with a
/// local sequence number; for the simulation a plain 64-bit value suffices
/// and keeps gossip digests small.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct EventId(pub u64);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<u64> for EventId {
    fn from(v: u64) -> Self {
        EventId(v)
    }
}

/// A published event: an identifier plus a set of named, typed attributes.
///
/// Events are what `PMCAST` disseminates; subscribers express their interests
/// as [`crate::Filter`]s over the attributes.  Attribute names are kept in a
/// `BTreeMap` so that iteration order — and thus serialization and matching
/// behaviour — is deterministic.
///
/// # Example
///
/// ```rust
/// use pmcast_interest::{AttributeValue, Event};
///
/// let event = Event::builder(42)
///     .int("b", 2)
///     .float("c", 55.5)
///     .str("e", "Bob")
///     .int("z", 20_000)
///     .build();
/// assert_eq!(event.id().0, 42);
/// assert_eq!(event.get("c"), Some(&AttributeValue::Float(55.5)));
/// assert_eq!(event.attribute_count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    id: EventId,
    attributes: BTreeMap<String, AttributeValue>,
}

impl Event {
    /// Creates an event with no attributes.
    pub fn new(id: impl Into<EventId>) -> Self {
        Self {
            id: id.into(),
            attributes: BTreeMap::new(),
        }
    }

    /// Starts building an event with the given identifier.
    pub fn builder(id: impl Into<EventId>) -> EventBuilder {
        EventBuilder {
            event: Event::new(id),
        }
    }

    /// Returns the event identifier.
    pub fn id(&self) -> EventId {
        self.id
    }

    /// Returns the value of the named attribute, if present.
    pub fn get(&self, name: &str) -> Option<&AttributeValue> {
        self.attributes.get(name)
    }

    /// Returns `true` if the named attribute is present.
    pub fn has_attribute(&self, name: &str) -> bool {
        self.attributes.contains_key(name)
    }

    /// Returns the number of attributes.
    pub fn attribute_count(&self) -> usize {
        self.attributes.len()
    }

    /// Iterates over `(name, value)` pairs in lexicographic attribute order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &AttributeValue)> {
        self.attributes.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Inserts (or replaces) an attribute, returning the previous value if
    /// any.
    pub fn insert(
        &mut self,
        name: impl Into<String>,
        value: impl Into<AttributeValue>,
    ) -> Option<AttributeValue> {
        self.attributes.insert(name.into(), value.into())
    }

    /// Rough size of the event in bytes when serialized, used by the traffic
    /// accounting of the simulated network.
    pub fn payload_size(&self) -> usize {
        let mut size = std::mem::size_of::<EventId>();
        for (name, value) in &self.attributes {
            size += name.len();
            size += match value {
                AttributeValue::Int(_) => 8,
                AttributeValue::Float(_) => 8,
                AttributeValue::Str(s) => s.len(),
                AttributeValue::Bool(_) => 1,
            };
        }
        size
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.id)?;
        let mut first = true;
        for (name, value) in &self.attributes {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{name}={value}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// Builder for [`Event`], produced by [`Event::builder`].
#[derive(Debug, Clone)]
pub struct EventBuilder {
    event: Event,
}

impl EventBuilder {
    /// Adds an arbitrary attribute.
    pub fn attribute(
        mut self,
        name: impl Into<String>,
        value: impl Into<AttributeValue>,
    ) -> Self {
        self.event.insert(name, value);
        self
    }

    /// Adds an integer attribute.
    pub fn int(self, name: impl Into<String>, value: i64) -> Self {
        self.attribute(name, AttributeValue::Int(value))
    }

    /// Adds a floating point attribute.
    pub fn float(self, name: impl Into<String>, value: f64) -> Self {
        self.attribute(name, AttributeValue::Float(value))
    }

    /// Adds a string attribute.
    pub fn str(self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attribute(name, AttributeValue::Str(value.into()))
    }

    /// Adds a boolean attribute.
    pub fn bool(self, name: impl Into<String>, value: bool) -> Self {
        self.attribute(name, AttributeValue::Bool(value))
    }

    /// Finishes building the event.
    pub fn build(self) -> Event {
        self.event
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_expected_attributes() {
        let event = Event::builder(1)
            .int("b", 2)
            .float("c", 55.5)
            .str("e", "Bob")
            .bool("urgent", true)
            .build();
        assert_eq!(event.id(), EventId(1));
        assert_eq!(event.attribute_count(), 4);
        assert_eq!(event.get("b"), Some(&AttributeValue::Int(2)));
        assert_eq!(event.get("e"), Some(&AttributeValue::Str("Bob".into())));
        assert_eq!(event.get("urgent"), Some(&AttributeValue::Bool(true)));
        assert_eq!(event.get("missing"), None);
        assert!(event.has_attribute("c"));
        assert!(!event.has_attribute("d"));
    }

    #[test]
    fn insert_replaces_and_returns_previous() {
        let mut event = Event::new(5);
        assert_eq!(event.insert("b", 1i64), None);
        assert_eq!(event.insert("b", 2i64), Some(AttributeValue::Int(1)));
        assert_eq!(event.get("b"), Some(&AttributeValue::Int(2)));
    }

    #[test]
    fn iteration_is_sorted_by_name() {
        let event = Event::builder(1).int("z", 1).int("a", 2).int("m", 3).build();
        let names: Vec<&str> = event.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }

    #[test]
    fn display_contains_id_and_attributes() {
        let event = Event::builder(9).int("b", 2).build();
        let text = event.to_string();
        assert!(text.contains("e9"));
        assert!(text.contains("b=2"));
        // An empty event still renders its id.
        assert_eq!(Event::new(3).to_string(), "e3{}");
    }

    #[test]
    fn payload_size_grows_with_content() {
        let small = Event::builder(1).int("b", 2).build();
        let large = Event::builder(1)
            .int("b", 2)
            .str("description", "a somewhat longer text attribute")
            .build();
        assert!(large.payload_size() > small.payload_size());
    }

    #[test]
    fn serde_round_trip() {
        let event = Event::builder(17).int("b", 2).float("c", 1.5).str("e", "Tom").build();
        let json = serde_json::to_string(&event).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(event, back);
    }

    #[test]
    fn event_id_display_and_from() {
        let id: EventId = 12u64.into();
        assert_eq!(id.to_string(), "e12");
        assert_eq!(EventId::default(), EventId(0));
    }
}
