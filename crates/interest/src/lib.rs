//! # pmcast-interest — content-based subscription model
//!
//! *Probabilistic Multicast* targets content-based publish/subscribe
//! applications: each subscriber describes its individual interests through
//! criteria on event attributes (e.g. "attribute `b` must be greater than
//! 0", "`e` is `"Bob"` or `"Tom"`"), and the destination subset of every
//! published event is defined implicitly by those interests (Section 1 and
//! Figure 2 of the paper).
//!
//! This crate provides:
//!
//! * [`AttributeValue`] and [`Event`] — the published data model,
//! * [`Predicate`] and [`Filter`] — per-attribute criteria and conjunctive
//!   subscriptions (a missing criterion is a wildcard, as in the paper),
//! * [`InterestSummary`] — the *interest regrouping* performed when a view
//!   table of depth `i` is compacted into a single line of the depth `i+1`
//!   table (Section 2.3).  A summary is a bounded disjunction of filters that
//!   **over-approximates** the union of the represented processes' interests:
//!   it may accept extra events (costing only spurious gossip) but never
//!   rejects an event that one of the represented processes wants,
//! * [`Interest`] — the trait the dissemination layer uses to match events,
//! * [`EventIdSet`] — a compact sorted-vector set of event identifiers for
//!   the per-process dedup state (seen / received / delivered), sized for
//!   million-process groups where hash-set constant factors dominate, with
//!   a low-watermark retire path for long-running daemons,
//! * [`Interner`] — a hashcons table deduplicating structurally equal
//!   values (audience sets, interest bitmaps) behind refcounted handles,
//!   so heavy multi-topic traffic costs one allocation per *distinct*
//!   audience instead of one per event.
//!
//! ## Example
//!
//! ```rust
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use pmcast_interest::{Event, Filter, Interest, InterestSummary, Predicate};
//!
//! // Subscriber 1: b = 2 ∧ c > 40.0        (like process 128.178.73.3 in Fig. 2)
//! let s1 = Filter::new()
//!     .with("b", Predicate::eq_int(2))
//!     .with("c", Predicate::gt(40.0));
//! // Subscriber 2: b > 1 ∧ 20.0 < c < 30.0
//! let s2 = Filter::new()
//!     .with("b", Predicate::gt(1.0))
//!     .with("c", Predicate::open_range(20.0, 30.0));
//!
//! // Regrouping both subscribers for the parent view line.
//! let mut summary = InterestSummary::from_filter(s1.clone());
//! summary.absorb_filter(s2.clone());
//!
//! let event = Event::builder(7).int("b", 2).float("c", 55.5).build();
//! assert!(s1.matches(&event));
//! assert!(!s2.matches(&event));
//! // The summary accepts anything either subscriber accepts.
//! assert!(summary.matches(&event));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
mod filter;
mod hashcons;
mod idset;
mod predicate;
mod summary;
mod value;

pub use event::{Event, EventBuilder, EventId};
pub use hashcons::{InternStats, Interner};
pub use idset::EventIdSet;
pub use filter::Filter;
pub use predicate::Predicate;
pub use summary::InterestSummary;
pub use value::AttributeValue;

/// Anything that can decide whether it is interested in an [`Event`].
///
/// Implemented by individual subscriptions ([`Filter`]) as well as by the
/// regrouped interests of whole subgroups ([`InterestSummary`]); the
/// dissemination layer only depends on this trait (the `⊲` operator of the
/// paper's Figure 3).
pub trait Interest {
    /// Returns `true` if the event matches this interest.
    fn matches(&self, event: &Event) -> bool;
}

impl<T: Interest + ?Sized> Interest for &T {
    fn matches(&self, event: &Event) -> bool {
        (**self).matches(event)
    }
}

impl<T: Interest + ?Sized> Interest for Box<T> {
    fn matches(&self, event: &Event) -> bool {
        (**self).matches(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interest_is_object_safe() {
        let filter = Filter::new().with("b", Predicate::gt(0.0));
        let boxed: Box<dyn Interest> = Box::new(filter);
        let event = Event::builder(1).int("b", 3).build();
        assert!(boxed.matches(&event));
        // References also implement Interest.
        let by_ref: &dyn Interest = &*boxed;
        assert!(by_ref.matches(&event));
    }
}
