use std::borrow::Borrow;
use std::collections::HashSet;
use std::hash::Hash;
use std::sync::{Arc, Mutex};

/// Running counters of an [`Interner`]: how often lookups were served by an
/// existing entry, how many distinct values were ever built, and how many
/// entries the reclaim pass has dropped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Lookups answered by an already-interned value (no allocation).
    pub hits: u64,
    /// Lookups that had to allocate and intern a new value.
    pub misses: u64,
    /// Entries currently held by the interner table.
    pub live: usize,
    /// Entries dropped by [`Interner::reclaim`] because no handle outside
    /// the table was left.
    pub reclaimed: u64,
}

impl InternStats {
    /// Fraction of lookups served without allocating, in `[0, 1]`.
    /// Returns 1.0 for an untouched interner (vacuously all hits).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The table key: an interned handle hashed and compared through the value
/// it points at, so lookups can borrow a bare `&T` without cloning first.
#[derive(Debug)]
struct ArcKey<T>(Arc<T>);

impl<T: Hash> Hash for ArcKey<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (*self.0).hash(state);
    }
}

impl<T: PartialEq> PartialEq for ArcKey<T> {
    fn eq(&self, other: &Self) -> bool {
        *self.0 == *other.0
    }
}

impl<T: Eq> Eq for ArcKey<T> {}

impl<T> Borrow<T> for ArcKey<T> {
    fn borrow(&self) -> &T {
        &self.0
    }
}

/// A hashcons table: deduplicates structurally equal values behind
/// refcounted handles.
///
/// Publishing thousands of events over a few dozen overlapping topics
/// builds the *same* audience sets over and over; interning them means one
/// allocation per **distinct** audience instead of one per event (the
/// resolver-store trick from netidx).  [`Interner::intern`] takes a borrowed
/// candidate and only clones it into a fresh [`Arc`] on a miss — a hit is a
/// hash lookup plus an `Arc` refcount bump, no allocation.
///
/// Entries are reclaimed by **generation** rather than by weak references:
/// callers invoke [`Interner::reclaim`] at a natural quiescence point (an
/// event retiring, a churn epoch closing) and every entry whose only
/// remaining handle is the table itself is dropped.  This keeps the hit path
/// free of weak-upgrade branches while still bounding the table under
/// churned audiences.
///
/// The table is internally synchronized; `intern` takes `&self` and the
/// interner can be shared behind an `Arc` by concurrent protocol instances.
///
/// # Example
///
/// ```rust
/// use pmcast_interest::Interner;
///
/// let interner: Interner<Vec<u32>> = Interner::new();
/// let a = interner.intern(&vec![1, 2, 3]);
/// let b = interner.intern(&vec![1, 2, 3]);
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!(interner.stats().misses, 1);
/// assert_eq!(interner.stats().hits, 1);
///
/// drop((a, b));
/// assert_eq!(interner.reclaim(), 1); // nobody holds the audience any more
/// ```
#[derive(Debug)]
pub struct Interner<T> {
    inner: Mutex<InternerState<T>>,
}

#[derive(Debug)]
struct InternerState<T> {
    table: HashSet<ArcKey<T>>,
    hits: u64,
    misses: u64,
    reclaimed: u64,
}

impl<T> Default for Interner<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Interner<T> {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(InternerState {
                table: HashSet::new(),
                hits: 0,
                misses: 0,
                reclaimed: 0,
            }),
        }
    }
}

impl<T: Hash + Eq + Clone> Interner<T> {
    /// Returns the canonical handle for `value`, interning a clone of it on
    /// first sight.  Structurally equal inputs return pointer-equal handles.
    pub fn intern(&self, value: &T) -> Arc<T> {
        let mut state = self.inner.lock().expect("interner poisoned");
        if let Some(found) = state.table.get(value) {
            let handle = Arc::clone(&found.0);
            state.hits += 1;
            return handle;
        }
        state.misses += 1;
        let handle = Arc::new(value.clone());
        state.table.insert(ArcKey(Arc::clone(&handle)));
        handle
    }

    /// Like [`Interner::intern`] but builds the value lazily: on a hit the
    /// closure is never called (and nothing is allocated).
    pub fn intern_with(&self, key: &T, build: impl FnOnce() -> T) -> Arc<T> {
        let mut state = self.inner.lock().expect("interner poisoned");
        if let Some(found) = state.table.get(key) {
            let handle = Arc::clone(&found.0);
            state.hits += 1;
            return handle;
        }
        state.misses += 1;
        let handle = Arc::new(build());
        state.table.insert(ArcKey(Arc::clone(&handle)));
        handle
    }

    /// Drops every entry no longer referenced outside the table (the
    /// generation sweep).  Returns the number of entries reclaimed.
    pub fn reclaim(&self) -> usize {
        let mut state = self.inner.lock().expect("interner poisoned");
        let before = state.table.len();
        state.table.retain(|entry| Arc::strong_count(&entry.0) > 1);
        let dropped = before - state.table.len();
        state.reclaimed += dropped as u64;
        dropped
    }

    /// Snapshot of the hit/miss/live counters.
    pub fn stats(&self) -> InternStats {
        let state = self.inner.lock().expect("interner poisoned");
        InternStats {
            hits: state.hits,
            misses: state.misses,
            live: state.table.len(),
            reclaimed: state.reclaimed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_share_one_allocation() {
        let interner: Interner<Vec<u32>> = Interner::new();
        let audience = vec![3u32, 1, 4, 1, 5];
        let first = interner.intern(&audience);
        let again = interner.intern(&audience);
        assert!(Arc::ptr_eq(&first, &again));
        let stats = interner.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.live, 1);
        assert!(stats.hit_rate() > 0.49 && stats.hit_rate() < 0.51);
    }

    #[test]
    fn distinct_values_get_distinct_handles() {
        let interner: Interner<Vec<u32>> = Interner::new();
        let a = interner.intern(&vec![1]);
        let b = interner.intern(&vec![2]);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(interner.stats().misses, 2);
    }

    #[test]
    fn intern_with_skips_build_on_hit() {
        let interner: Interner<Vec<u32>> = Interner::new();
        let key = vec![7u32];
        let _seeded = interner.intern(&key);
        let handle = interner.intern_with(&key, || panic!("hit must not rebuild"));
        assert_eq!(*handle, key);
    }

    #[test]
    fn reclaim_drops_only_unreferenced_entries() {
        let interner: Interner<Vec<u32>> = Interner::new();
        let kept = interner.intern(&vec![1]);
        let dropped = interner.intern(&vec![2]);
        drop(dropped);
        assert_eq!(interner.reclaim(), 1);
        let stats = interner.stats();
        assert_eq!(stats.live, 1);
        assert_eq!(stats.reclaimed, 1);
        // The kept handle still resolves to the same entry.
        let again = interner.intern(&vec![1]);
        assert!(Arc::ptr_eq(&kept, &again));
        // A churned audience can be re-interned after reclaim (new generation).
        let reborn = interner.intern(&vec![2]);
        assert_eq!(*reborn, vec![2]);
        assert_eq!(interner.stats().misses, 3);
    }

    #[test]
    fn empty_interner_reports_vacuous_hit_rate() {
        let interner: Interner<u64> = Interner::new();
        assert_eq!(interner.stats().hit_rate(), 1.0);
        assert_eq!(interner.reclaim(), 0);
    }

    #[test]
    fn shared_across_threads() {
        let interner: Arc<Interner<Vec<u32>>> = Arc::new(Interner::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let interner = Arc::clone(&interner);
                std::thread::spawn(move || interner.intern(&vec![9, 9, 9]))
            })
            .collect();
        let interned: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for pair in interned.windows(2) {
            assert!(Arc::ptr_eq(&pair[0], &pair[1]));
        }
        assert_eq!(interner.stats().misses, 1);
    }
}
