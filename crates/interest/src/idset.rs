use crate::EventId;

/// A compact set of [`EventId`]s: a sorted vector with binary-search
/// membership and insertion-point insert.
///
/// Every simulated process keeps three event-identifier sets (seen,
/// received, delivered), so at a million processes the per-set constant
/// factors dominate the whole group's memory footprint.  A hash set costs
/// ~48 bytes of struct plus a table allocation sized for growth; this set is
/// three words while empty — **no heap allocation at all** until the first
/// insert — and `8 × len` bytes after, with the identifiers stored inline
/// and scanned by cache-friendly binary search.
///
/// The trade-off is `O(len)` shifting per insert, which is the *right*
/// trade for this workload: a trial disseminates a handful of events, so
/// `len` stays tiny (usually 1) and the shift is cheaper than hashing.  For
/// stress tests pushing thousands of events through one process the set
/// degrades gracefully to `O(len)` inserts — correct, just not the target
/// regime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventIdSet {
    sorted: Vec<EventId>,
}

impl EventIdSet {
    /// Creates an empty set.  Allocation-free: the backing vector stays
    /// unallocated until the first insert.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` if the identifier is in the set.
    pub fn contains(&self, id: EventId) -> bool {
        self.sorted.binary_search(&id).is_ok()
    }

    /// Inserts the identifier; returns `true` if it was not already present
    /// (the same contract as `HashSet::insert`).
    pub fn insert(&mut self, id: EventId) -> bool {
        match self.sorted.binary_search(&id) {
            Ok(_) => false,
            Err(position) => {
                self.sorted.insert(position, id);
                true
            }
        }
    }

    /// Number of identifiers in the set.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Iterates over the identifiers in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = EventId> + '_ {
        self.sorted.iter().copied()
    }
}

impl FromIterator<EventId> for EventIdSet {
    fn from_iter<I: IntoIterator<Item = EventId>>(iter: I) -> Self {
        let mut sorted: Vec<EventId> = iter.into_iter().collect();
        sorted.sort_unstable();
        sorted.dedup();
        Self { sorted }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut set = EventIdSet::new();
        assert!(set.is_empty());
        assert!(!set.contains(EventId(5)));
        assert!(set.insert(EventId(5)));
        assert!(!set.insert(EventId(5)));
        assert!(set.insert(EventId(2)));
        assert!(set.insert(EventId(9)));
        assert!(set.contains(EventId(2)));
        assert!(set.contains(EventId(5)));
        assert!(set.contains(EventId(9)));
        assert!(!set.contains(EventId(4)));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn iterates_in_ascending_order() {
        let set: EventIdSet = [7u64, 3, 7, 1].iter().map(|&v| EventId(v)).collect();
        let order: Vec<u64> = set.iter().map(|id| id.0).collect();
        assert_eq!(order, vec![1, 3, 7]);
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn empty_set_allocates_nothing() {
        let set = EventIdSet::new();
        assert_eq!(set.sorted.capacity(), 0);
        assert!(!set.contains(EventId(0)));
    }
}
