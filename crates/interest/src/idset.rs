use crate::EventId;

/// A compact set of [`EventId`]s: a sorted vector with binary-search
/// membership and insertion-point insert.
///
/// Every simulated process keeps three event-identifier sets (seen,
/// received, delivered), so at a million processes the per-set constant
/// factors dominate the whole group's memory footprint.  A hash set costs
/// ~48 bytes of struct plus a table allocation sized for growth; this set is
/// three words while empty — **no heap allocation at all** until the first
/// insert — and `8 × len` bytes after, with the identifiers stored inline
/// and scanned by cache-friendly binary search.
///
/// The trade-off is `O(len)` shifting per insert, which is the *right*
/// trade for this workload: a trial disseminates a handful of events, so
/// `len` stays tiny (usually 1) and the shift is cheaper than hashing.  For
/// stress tests pushing thousands of events through one process the set
/// degrades gracefully to `O(len)` inserts — correct, just not the target
/// regime.
///
/// ## Long-run compaction
///
/// Under sustained publishing (the daemon workloads) even `8 × len` grows
/// without bound.  [`EventIdSet::compact_below`] installs a **low
/// watermark**: identifiers below the floor are dropped from the vector and
/// from then on treated as already present (`contains` → `true`, `insert` →
/// `false`).  With the monotonically increasing identifiers the publishing
/// layers hand out, retiring quiescent events this way bounds the dedup
/// state to the in-flight window while never re-admitting (and hence never
/// re-delivering) a retired event.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventIdSet {
    sorted: Vec<EventId>,
    /// Identifiers strictly below this are retired: assumed seen, not stored.
    floor: EventId,
}

impl EventIdSet {
    /// Creates an empty set.  Allocation-free: the backing vector stays
    /// unallocated until the first insert.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` if the identifier is in the set.  Identifiers retired
    /// by [`EventIdSet::compact_below`] count as present.
    pub fn contains(&self, id: EventId) -> bool {
        id < self.floor || self.sorted.binary_search(&id).is_ok()
    }

    /// Inserts the identifier; returns `true` if it was not already present
    /// (the same contract as `HashSet::insert`).  Identifiers below the
    /// retirement floor are refused: they count as already seen.
    pub fn insert(&mut self, id: EventId) -> bool {
        if id < self.floor {
            return false;
        }
        match self.sorted.binary_search(&id) {
            Ok(_) => false,
            Err(position) => {
                self.sorted.insert(position, id);
                true
            }
        }
    }

    /// Retires every identifier strictly below `floor`: they are removed
    /// from storage and treated as present forever after.  The floor only
    /// moves forward; calls with a lower floor are no-ops.  Returns the
    /// number of identifiers dropped.
    pub fn compact_below(&mut self, floor: EventId) -> usize {
        if floor <= self.floor {
            return 0;
        }
        self.floor = floor;
        let cut = self.sorted.partition_point(|&id| id < floor);
        self.sorted.drain(..cut);
        cut
    }

    /// The current retirement floor: identifiers below it are assumed seen.
    /// Starts at zero (nothing retired).
    pub fn floor(&self) -> EventId {
        self.floor
    }

    /// Number of identifiers in the set.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Iterates over the identifiers in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = EventId> + '_ {
        self.sorted.iter().copied()
    }
}

impl FromIterator<EventId> for EventIdSet {
    fn from_iter<I: IntoIterator<Item = EventId>>(iter: I) -> Self {
        let mut sorted: Vec<EventId> = iter.into_iter().collect();
        sorted.sort_unstable();
        sorted.dedup();
        Self {
            sorted,
            floor: EventId(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut set = EventIdSet::new();
        assert!(set.is_empty());
        assert!(!set.contains(EventId(5)));
        assert!(set.insert(EventId(5)));
        assert!(!set.insert(EventId(5)));
        assert!(set.insert(EventId(2)));
        assert!(set.insert(EventId(9)));
        assert!(set.contains(EventId(2)));
        assert!(set.contains(EventId(5)));
        assert!(set.contains(EventId(9)));
        assert!(!set.contains(EventId(4)));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn iterates_in_ascending_order() {
        let set: EventIdSet = [7u64, 3, 7, 1].iter().map(|&v| EventId(v)).collect();
        let order: Vec<u64> = set.iter().map(|id| id.0).collect();
        assert_eq!(order, vec![1, 3, 7]);
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn compact_below_retires_old_ids_without_forgetting_them() {
        let mut set: EventIdSet = [1u64, 5, 9, 12].iter().map(|&v| EventId(v)).collect();
        assert_eq!(set.compact_below(EventId(9)), 2);
        assert_eq!(set.len(), 2);
        // Retired identifiers still read as seen and cannot be re-inserted.
        assert!(set.contains(EventId(1)));
        assert!(set.contains(EventId(3))); // never seen, but below the horizon
        assert!(!set.insert(EventId(5)));
        // Live identifiers are untouched.
        assert!(set.contains(EventId(9)));
        assert!(set.insert(EventId(20)));
        assert_eq!(set.floor(), EventId(9));
    }

    #[test]
    fn floor_is_monotone() {
        let mut set: EventIdSet = [4u64, 8].iter().map(|&v| EventId(v)).collect();
        assert_eq!(set.compact_below(EventId(8)), 1);
        // Moving the floor backwards is a no-op.
        assert_eq!(set.compact_below(EventId(2)), 0);
        assert_eq!(set.floor(), EventId(8));
        assert!(set.contains(EventId(8)));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn empty_set_allocates_nothing() {
        let set = EventIdSet::new();
        assert_eq!(set.sorted.capacity(), 0);
        assert!(!set.contains(EventId(0)));
    }
}
