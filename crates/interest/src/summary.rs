use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Event, Filter, Interest};

/// Default bound on the number of disjuncts kept by a summary before
/// widening kicks in.
const DEFAULT_MAX_DISJUNCTS: usize = 8;

/// The regrouped interests of a set of processes (one *Interests* cell of a
/// view table at depth `i < d`).
///
/// Section 2.3 of the paper requires that the interests of all processes of
/// a subgroup be regrouped "in a way which avoids redundancies", reducing
/// both memory footprint and evaluation time.  `InterestSummary` implements
/// this as a **bounded disjunction of filters**:
///
/// * while the number of distinct filters is below the bound, they are kept
///   verbatim (exact representation of the union of interests);
/// * once the bound is exceeded, the two "closest" filters (fewest
///   asymmetric attributes) are merged with [`Filter::widen_union`], trading
///   precision for compactness.
///
/// The key invariant — verified by property tests — is that a summary is an
/// *over-approximation*: an event of interest to **any** represented process
/// always matches the summary.  False positives only cause some unnecessary
/// gossip towards that subgroup; false negatives would break delivery
/// reliability, so they are never allowed.
///
/// # Example
///
/// ```rust
/// use pmcast_interest::{Event, Filter, Interest, InterestSummary, Predicate};
///
/// let mut summary = InterestSummary::with_max_disjuncts(2);
/// summary.absorb_filter(Filter::new().with("b", Predicate::eq_int(2)));
/// summary.absorb_filter(Filter::new().with("b", Predicate::eq_int(5)));
/// summary.absorb_filter(Filter::new().with("b", Predicate::eq_int(9)));
/// // Only two disjuncts are kept, but every original subscriber is covered.
/// assert!(summary.disjunct_count() <= 2);
/// for b in [2, 5, 9] {
///     assert!(summary.matches(&Event::builder(1).int("b", b).build()));
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterestSummary {
    disjuncts: Vec<Filter>,
    max_disjuncts: usize,
}

impl Default for InterestSummary {
    fn default() -> Self {
        Self::empty()
    }
}

impl InterestSummary {
    /// Creates a summary representing *no* interests: it matches nothing.
    ///
    /// This is the identity element of [`InterestSummary::merge`].
    pub fn empty() -> Self {
        Self {
            disjuncts: Vec::new(),
            max_disjuncts: DEFAULT_MAX_DISJUNCTS,
        }
    }

    /// Creates an empty summary with a custom bound on the number of
    /// disjuncts kept before widening.
    ///
    /// # Panics
    ///
    /// Panics if `max_disjuncts` is zero.
    pub fn with_max_disjuncts(max_disjuncts: usize) -> Self {
        assert!(max_disjuncts > 0, "a summary must keep at least one disjunct");
        Self {
            disjuncts: Vec::new(),
            max_disjuncts,
        }
    }

    /// Creates a summary representing a single subscription.
    pub fn from_filter(filter: Filter) -> Self {
        let mut summary = Self::empty();
        summary.absorb_filter(filter);
        summary
    }

    /// Creates a summary covering all the given subscriptions.
    pub fn from_filters<I: IntoIterator<Item = Filter>>(filters: I) -> Self {
        let mut summary = Self::empty();
        for filter in filters {
            summary.absorb_filter(filter);
        }
        summary
    }

    /// Returns a summary that matches **every** event (a single empty
    /// filter).  Useful for wildcard subscribers and for modelling the
    /// broadcast baseline.
    pub fn match_all() -> Self {
        Self::from_filter(Filter::match_all())
    }

    /// Returns the number of disjuncts currently kept.
    pub fn disjunct_count(&self) -> usize {
        self.disjuncts.len()
    }

    /// Returns `true` if the summary represents no interests at all.
    pub fn is_empty(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// Returns the configured bound on the number of disjuncts.
    pub fn max_disjuncts(&self) -> usize {
        self.max_disjuncts
    }

    /// Iterates over the disjuncts.
    pub fn iter(&self) -> impl Iterator<Item = &Filter> {
        self.disjuncts.iter()
    }

    /// Adds one subscription to the summary, widening if the disjunct bound
    /// would be exceeded.
    pub fn absorb_filter(&mut self, filter: Filter) {
        // An existing disjunct identical to the new filter makes it redundant.
        if self.disjuncts.contains(&filter) {
            return;
        }
        // A match-all disjunct absorbs everything.
        if self.disjuncts.iter().any(|existing| existing.is_empty()) {
            return;
        }
        if filter.is_empty() {
            self.disjuncts.clear();
            self.disjuncts.push(filter);
            return;
        }
        self.disjuncts.push(filter);
        self.compact();
    }

    /// Merges another summary into this one (the union of the represented
    /// interests), widening as needed.
    pub fn merge(&mut self, other: &InterestSummary) {
        for filter in &other.disjuncts {
            self.absorb_filter(filter.clone());
        }
    }

    /// Returns the merge of two summaries without mutating either.
    pub fn merged_with(&self, other: &InterestSummary) -> InterestSummary {
        let mut result = self.clone();
        result.merge(other);
        result
    }

    /// Reduces the number of disjuncts below the bound by repeatedly merging
    /// the closest pair.
    fn compact(&mut self) {
        while self.disjuncts.len() > self.max_disjuncts {
            let (best_i, best_j) = self.closest_pair();
            let merged = self.disjuncts[best_i].widen_union(&self.disjuncts[best_j]);
            // Remove the later index first so the earlier one stays valid.
            self.disjuncts.remove(best_j);
            self.disjuncts.remove(best_i);
            if merged.is_empty() {
                // The widened filter matches everything; it subsumes the rest.
                self.disjuncts.clear();
                self.disjuncts.push(merged);
                return;
            }
            self.disjuncts.push(merged);
        }
    }

    /// Finds the pair of disjuncts whose merge loses the least precision.
    fn closest_pair(&self) -> (usize, usize) {
        debug_assert!(self.disjuncts.len() >= 2);
        let mut best = (0, 1);
        let mut best_distance = usize::MAX;
        for i in 0..self.disjuncts.len() {
            for j in (i + 1)..self.disjuncts.len() {
                let distance = self.disjuncts[i].widening_distance(&self.disjuncts[j]);
                if distance < best_distance {
                    best_distance = distance;
                    best = (i, j);
                }
            }
        }
        best
    }

    /// Rough size in bytes of the summary when serialized, used by the view
    /// table memory accounting.
    pub fn footprint(&self) -> usize {
        self.disjuncts
            .iter()
            .map(|f| f.iter().map(|(name, _)| name.len() + 16).sum::<usize>() + 8)
            .sum()
    }
}

impl Interest for InterestSummary {
    fn matches(&self, event: &Event) -> bool {
        self.disjuncts.iter().any(|filter| filter.matches(event))
    }
}

impl fmt::Display for InterestSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.disjuncts.is_empty() {
            return write!(f, "⊥");
        }
        let mut first = true;
        for filter in &self.disjuncts {
            if !first {
                write!(f, " ∨ ")?;
            }
            write!(f, "({filter})")?;
            first = false;
        }
        Ok(())
    }
}

impl FromIterator<Filter> for InterestSummary {
    fn from_iter<I: IntoIterator<Item = Filter>>(iter: I) -> Self {
        InterestSummary::from_filters(iter)
    }
}

impl Extend<Filter> for InterestSummary {
    fn extend<I: IntoIterator<Item = Filter>>(&mut self, iter: I) {
        for filter in iter {
            self.absorb_filter(filter);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Predicate;

    fn event_b(b: i64) -> Event {
        Event::builder(1).int("b", b).build()
    }

    #[test]
    fn empty_summary_matches_nothing() {
        let summary = InterestSummary::empty();
        assert!(summary.is_empty());
        assert!(!summary.matches(&event_b(1)));
        assert_eq!(summary.to_string(), "⊥");
        assert_eq!(InterestSummary::default(), summary);
    }

    #[test]
    fn match_all_matches_everything() {
        let summary = InterestSummary::match_all();
        assert!(summary.matches(&event_b(0)));
        assert!(summary.matches(&Event::new(9)));
    }

    #[test]
    fn disjunction_semantics() {
        let summary = InterestSummary::from_filters(vec![
            Filter::new().with("b", Predicate::eq_int(2)),
            Filter::new().with("b", Predicate::eq_int(5)),
        ]);
        assert!(summary.matches(&event_b(2)));
        assert!(summary.matches(&event_b(5)));
        assert!(!summary.matches(&event_b(3)));
        assert_eq!(summary.disjunct_count(), 2);
    }

    #[test]
    fn duplicate_filters_are_not_kept_twice() {
        let f = Filter::new().with("b", Predicate::eq_int(2));
        let summary = InterestSummary::from_filters(vec![f.clone(), f.clone(), f]);
        assert_eq!(summary.disjunct_count(), 1);
    }

    #[test]
    fn match_all_filter_subsumes_everything() {
        let mut summary = InterestSummary::from_filter(Filter::new().with("b", Predicate::eq_int(2)));
        summary.absorb_filter(Filter::match_all());
        assert_eq!(summary.disjunct_count(), 1);
        assert!(summary.matches(&event_b(99)));
        // Further filters are absorbed without growing.
        summary.absorb_filter(Filter::new().with("c", Predicate::gt(0.0)));
        assert_eq!(summary.disjunct_count(), 1);
    }

    #[test]
    fn widening_respects_bound_and_soundness() {
        let mut summary = InterestSummary::with_max_disjuncts(3);
        let filters: Vec<Filter> = (0..10)
            .map(|i| Filter::new().with("b", Predicate::eq_int(i * 10)))
            .collect();
        for f in &filters {
            summary.absorb_filter(f.clone());
        }
        assert!(summary.disjunct_count() <= 3);
        // Every original subscriber's event is still covered.
        for i in 0..10 {
            assert!(summary.matches(&event_b(i * 10)));
        }
    }

    #[test]
    fn merge_summaries_covers_both() {
        let a = InterestSummary::from_filter(Filter::new().with("b", Predicate::lt(0.0)));
        let b = InterestSummary::from_filter(Filter::new().with("b", Predicate::gt(10.0)));
        let merged = a.merged_with(&b);
        assert!(merged.matches(&event_b(-5)));
        assert!(merged.matches(&event_b(15)));
        assert!(!merged.matches(&event_b(5)));
        // merge with the empty summary is the identity.
        let merged_with_empty = a.merged_with(&InterestSummary::empty());
        assert_eq!(merged_with_empty, a);
    }

    #[test]
    fn merge_is_commutative_in_semantics() {
        let filters_a = vec![
            Filter::new().with("b", Predicate::eq_int(1)),
            Filter::new().with("c", Predicate::gt(5.0)),
        ];
        let filters_b = vec![
            Filter::new().with("b", Predicate::open_range(10.0, 20.0)),
            Filter::new().with("e", Predicate::eq_str("Bob")),
        ];
        let ab = InterestSummary::from_filters(filters_a.clone())
            .merged_with(&InterestSummary::from_filters(filters_b.clone()));
        let ba = InterestSummary::from_filters(filters_b)
            .merged_with(&InterestSummary::from_filters(filters_a));
        let samples = vec![
            event_b(1),
            event_b(15),
            Event::builder(2).float("c", 6.0).build(),
            Event::builder(3).str("e", "Bob").build(),
            Event::builder(4).str("e", "Eve").build(),
        ];
        for s in &samples {
            assert_eq!(ab.matches(s), ba.matches(s), "event {s}");
        }
    }

    #[test]
    fn footprint_grows_with_disjuncts() {
        let small = InterestSummary::from_filter(Filter::new().with("b", Predicate::eq_int(1)));
        let large = InterestSummary::from_filters(vec![
            Filter::new().with("b", Predicate::eq_int(1)),
            Filter::new().with("attribute_with_long_name", Predicate::eq_int(2)),
        ]);
        assert!(large.footprint() > small.footprint());
    }

    #[test]
    fn collect_and_extend() {
        let mut summary: InterestSummary = vec![Filter::new().with("b", Predicate::eq_int(1))]
            .into_iter()
            .collect();
        summary.extend(vec![Filter::new().with("b", Predicate::eq_int(2))]);
        assert_eq!(summary.disjunct_count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one disjunct")]
    fn zero_bound_panics() {
        let _ = InterestSummary::with_max_disjuncts(0);
    }

    #[test]
    fn display_shows_disjunction() {
        let summary = InterestSummary::from_filters(vec![
            Filter::new().with("b", Predicate::eq_int(2)),
            Filter::new().with("c", Predicate::gt(0.0)),
        ]);
        let text = summary.to_string();
        assert!(text.contains('∨'));
    }

    #[test]
    fn serde_round_trip() {
        let summary = InterestSummary::from_filters(vec![
            Filter::new().with("b", Predicate::eq_int(2)),
            Filter::new().with("e", Predicate::one_of(["Bob", "Tom"])),
        ]);
        let json = serde_json::to_string(&summary).unwrap();
        let back: InterestSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(summary, back);
    }
}
