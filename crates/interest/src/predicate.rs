use std::fmt;

use serde::{Deserialize, Serialize};

use crate::AttributeValue;

/// A half-open, closed or unbounded numeric interval used by comparison
/// predicates such as `c > 40.0` or `10.0 < c < 220.0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NumericRange {
    min: Option<f64>,
    min_inclusive: bool,
    max: Option<f64>,
    max_inclusive: bool,
}

impl NumericRange {
    /// An interval covering all numbers.
    pub fn unbounded() -> Self {
        Self {
            min: None,
            min_inclusive: false,
            max: None,
            max_inclusive: false,
        }
    }

    /// The degenerate interval containing exactly `value`.
    pub fn point(value: f64) -> Self {
        Self {
            min: Some(value),
            min_inclusive: true,
            max: Some(value),
            max_inclusive: true,
        }
    }

    /// Creates an interval from optional bounds.
    pub fn new(
        min: Option<f64>,
        min_inclusive: bool,
        max: Option<f64>,
        max_inclusive: bool,
    ) -> Self {
        Self {
            min,
            min_inclusive,
            max,
            max_inclusive,
        }
    }

    /// Lower bound, if any.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Whether the lower bound is inclusive.
    pub fn min_inclusive(&self) -> bool {
        self.min_inclusive
    }

    /// Upper bound, if any.
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Whether the upper bound is inclusive.
    pub fn max_inclusive(&self) -> bool {
        self.max_inclusive
    }

    /// Returns `true` if the value lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        let above_min = match self.min {
            None => true,
            Some(min) => {
                if self.min_inclusive {
                    value >= min
                } else {
                    value > min
                }
            }
        };
        let below_max = match self.max {
            None => true,
            Some(max) => {
                if self.max_inclusive {
                    value <= max
                } else {
                    value < max
                }
            }
        };
        above_min && below_max
    }

    /// Returns `true` if the interval contains no value (e.g. `(5, 3)`).
    pub fn is_empty(&self) -> bool {
        match (self.min, self.max) {
            (Some(min), Some(max)) => {
                min > max || (min == max && !(self.min_inclusive && self.max_inclusive))
            }
            _ => false,
        }
    }

    /// Returns the convex hull of two intervals: the smallest interval
    /// containing both.  Used by interest regrouping; the hull is an
    /// over-approximation of the union.
    pub fn hull(&self, other: &NumericRange) -> NumericRange {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let (min, min_inclusive) = match (self.min, other.min) {
            (None, _) | (_, None) => (None, false),
            (Some(a), Some(b)) => {
                if a < b {
                    (Some(a), self.min_inclusive)
                } else if b < a {
                    (Some(b), other.min_inclusive)
                } else {
                    (Some(a), self.min_inclusive || other.min_inclusive)
                }
            }
        };
        let (max, max_inclusive) = match (self.max, other.max) {
            (None, _) | (_, None) => (None, false),
            (Some(a), Some(b)) => {
                if a > b {
                    (Some(a), self.max_inclusive)
                } else if b > a {
                    (Some(b), other.max_inclusive)
                } else {
                    (Some(a), self.max_inclusive || other.max_inclusive)
                }
            }
        };
        NumericRange {
            min,
            min_inclusive,
            max,
            max_inclusive,
        }
    }
}

impl fmt::Display for NumericRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.min {
            Some(min) => write!(f, "{}{min}", if self.min_inclusive { "[" } else { "(" })?,
            None => write!(f, "(-inf")?,
        }
        write!(f, ", ")?;
        match self.max {
            Some(max) => write!(f, "{max}{}", if self.max_inclusive { "]" } else { ")" }),
            None => write!(f, "+inf)"),
        }
    }
}

/// A criterion on a single event attribute.
///
/// The absence of a criterion for an attribute is interpreted as a wildcard
/// (paper, Section 2.3), which the explicit [`Predicate::Any`] variant also
/// expresses — it is what interest regrouping widens to when the individual
/// criteria become too heterogeneous to summarise precisely.
///
/// # Example
///
/// ```rust
/// use pmcast_interest::{AttributeValue, Predicate};
///
/// // b > 0
/// let p = Predicate::gt(0.0);
/// assert!(p.evaluate(&AttributeValue::Int(3)));
/// assert!(!p.evaluate(&AttributeValue::Int(0)));
///
/// // e = "Bob" ∨ "Tom"
/// let names = Predicate::one_of(["Bob", "Tom"]);
/// assert!(names.evaluate(&AttributeValue::Str("Tom".into())));
/// assert!(!names.evaluate(&AttributeValue::Str("Eve".into())));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
#[derive(Default)]
pub enum Predicate {
    /// Matches any value (wildcard).
    #[default]
    Any,
    /// Matches values equal to the given one (numeric coercion applies).
    Eq(AttributeValue),
    /// Matches values different from the given one.
    Ne(AttributeValue),
    /// Matches values equal to any of the given ones (a disjunction like
    /// `e = "Bob" ∨ "Tom"` in the paper's Figure 2).
    OneOf(Vec<AttributeValue>),
    /// Matches numeric values inside the interval.
    InRange(NumericRange),
}

impl Predicate {
    /// `attribute > bound`
    pub fn gt(bound: f64) -> Self {
        Predicate::InRange(NumericRange::new(Some(bound), false, None, false))
    }

    /// `attribute ≥ bound`
    pub fn ge(bound: f64) -> Self {
        Predicate::InRange(NumericRange::new(Some(bound), true, None, false))
    }

    /// `attribute < bound`
    pub fn lt(bound: f64) -> Self {
        Predicate::InRange(NumericRange::new(None, false, Some(bound), false))
    }

    /// `attribute ≤ bound`
    pub fn le(bound: f64) -> Self {
        Predicate::InRange(NumericRange::new(None, false, Some(bound), true))
    }

    /// `lo < attribute < hi`
    pub fn open_range(lo: f64, hi: f64) -> Self {
        Predicate::InRange(NumericRange::new(Some(lo), false, Some(hi), false))
    }

    /// `lo ≤ attribute ≤ hi`
    pub fn closed_range(lo: f64, hi: f64) -> Self {
        Predicate::InRange(NumericRange::new(Some(lo), true, Some(hi), true))
    }

    /// `attribute = value` for an integer value.
    pub fn eq_int(value: i64) -> Self {
        Predicate::Eq(AttributeValue::Int(value))
    }

    /// `attribute = value` for a float value.
    pub fn eq_float(value: f64) -> Self {
        Predicate::Eq(AttributeValue::Float(value))
    }

    /// `attribute = value` for a string value.
    pub fn eq_str(value: impl Into<String>) -> Self {
        Predicate::Eq(AttributeValue::Str(value.into()))
    }

    /// `attribute ∈ {values…}`
    pub fn one_of<V, I>(values: I) -> Self
    where
        V: Into<AttributeValue>,
        I: IntoIterator<Item = V>,
    {
        Predicate::OneOf(values.into_iter().map(Into::into).collect())
    }

    /// Evaluates the predicate against a single attribute value.
    pub fn evaluate(&self, value: &AttributeValue) -> bool {
        match self {
            Predicate::Any => true,
            Predicate::Eq(expected) => value.loosely_equals(expected),
            Predicate::Ne(expected) => !value.loosely_equals(expected),
            Predicate::OneOf(options) => options.iter().any(|o| value.loosely_equals(o)),
            Predicate::InRange(range) => match value.as_numeric() {
                Some(v) => range.contains(v),
                None => false,
            },
        }
    }

    /// Returns a predicate accepting everything either `self` or `other`
    /// accepts (and possibly more).  This is the widening step of interest
    /// regrouping (Section 2.3): precision is traded for compactness but the
    /// result is always an **over-approximation** of the union.
    pub fn union(&self, other: &Predicate) -> Predicate {
        use Predicate::*;
        match (self, other) {
            (Any, _) | (_, Any) | (Ne(_), _) | (_, Ne(_)) => Any,
            (Eq(a), Eq(b)) => match (a.as_numeric(), b.as_numeric()) {
                (Some(x), Some(y)) => {
                    if x == y {
                        Eq(a.clone())
                    } else {
                        InRange(NumericRange::point(x).hull(&NumericRange::point(y)))
                    }
                }
                _ => {
                    if a.loosely_equals(b) {
                        Eq(a.clone())
                    } else {
                        OneOf(vec![a.clone(), b.clone()])
                    }
                }
            },
            (Eq(a), OneOf(options)) | (OneOf(options), Eq(a)) => {
                let mut merged = options.clone();
                if !merged.iter().any(|o| o.loosely_equals(a)) {
                    merged.push(a.clone());
                }
                OneOf(merged)
            }
            (OneOf(a), OneOf(b)) => {
                let mut merged = a.clone();
                for value in b {
                    if !merged.iter().any(|o| o.loosely_equals(value)) {
                        merged.push(value.clone());
                    }
                }
                OneOf(merged)
            }
            (InRange(a), InRange(b)) => InRange(a.hull(b)),
            (InRange(range), Eq(value)) | (Eq(value), InRange(range)) => {
                match value.as_numeric() {
                    Some(v) => InRange(range.hull(&NumericRange::point(v))),
                    None => Any,
                }
            }
            (InRange(range), OneOf(options)) | (OneOf(options), InRange(range)) => {
                let mut hull = range.clone();
                for value in options {
                    match value.as_numeric() {
                        Some(v) => hull = hull.hull(&NumericRange::point(v)),
                        None => return Any,
                    }
                }
                InRange(hull)
            }
        }
    }

    /// Returns `true` if the predicate is the wildcard.
    pub fn is_any(&self) -> bool {
        matches!(self, Predicate::Any)
    }
}


impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Any => write!(f, "*"),
            Predicate::Eq(v) => write!(f, "= {v}"),
            Predicate::Ne(v) => write!(f, "≠ {v}"),
            Predicate::OneOf(options) => {
                write!(f, "∈ {{")?;
                let mut first = true;
                for o in options {
                    if !first {
                        write!(f, ", ")?;
                    }
                    write!(f, "{o}")?;
                    first = false;
                }
                write!(f, "}}")
            }
            Predicate::InRange(range) => write!(f, "∈ {range}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> AttributeValue {
        AttributeValue::Int(v)
    }
    fn float(v: f64) -> AttributeValue {
        AttributeValue::Float(v)
    }
    fn string(v: &str) -> AttributeValue {
        AttributeValue::Str(v.to_string())
    }

    #[test]
    fn comparison_predicates() {
        assert!(Predicate::gt(0.0).evaluate(&int(1)));
        assert!(!Predicate::gt(0.0).evaluate(&int(0)));
        assert!(Predicate::ge(0.0).evaluate(&int(0)));
        assert!(Predicate::lt(10.0).evaluate(&float(9.9)));
        assert!(!Predicate::lt(10.0).evaluate(&float(10.0)));
        assert!(Predicate::le(10.0).evaluate(&float(10.0)));
        assert!(Predicate::open_range(10.0, 220.0).evaluate(&float(50.0)));
        assert!(!Predicate::open_range(10.0, 220.0).evaluate(&float(10.0)));
        assert!(Predicate::closed_range(10.0, 220.0).evaluate(&float(10.0)));
        // Comparisons never match non-numeric values.
        assert!(!Predicate::gt(0.0).evaluate(&string("5")));
    }

    #[test]
    fn equality_predicates() {
        assert!(Predicate::eq_int(2).evaluate(&int(2)));
        assert!(Predicate::eq_int(2).evaluate(&float(2.0)));
        assert!(!Predicate::eq_int(2).evaluate(&int(3)));
        assert!(Predicate::eq_str("Bob").evaluate(&string("Bob")));
        assert!(!Predicate::eq_str("Bob").evaluate(&string("Tom")));
        assert!(Predicate::Ne(int(2)).evaluate(&int(3)));
        assert!(!Predicate::Ne(int(2)).evaluate(&int(2)));
    }

    #[test]
    fn one_of_predicate() {
        // e = "Bob" ∨ "Tom" from Figure 2.
        let p = Predicate::one_of(["Bob", "Tom"]);
        assert!(p.evaluate(&string("Bob")));
        assert!(p.evaluate(&string("Tom")));
        assert!(!p.evaluate(&string("Eve")));
    }

    #[test]
    fn wildcard_matches_everything() {
        for v in [int(0), float(1.5), string("x"), AttributeValue::Bool(true)] {
            assert!(Predicate::Any.evaluate(&v));
        }
        assert!(Predicate::Any.is_any());
        assert_eq!(Predicate::default(), Predicate::Any);
    }

    #[test]
    fn range_hull_is_convex() {
        let a = NumericRange::new(Some(1.0), false, Some(5.0), true);
        let b = NumericRange::new(Some(3.0), true, Some(10.0), false);
        let hull = a.hull(&b);
        assert_eq!(hull.min(), Some(1.0));
        assert!(!hull.min_inclusive());
        assert_eq!(hull.max(), Some(10.0));
        assert!(!hull.max_inclusive());
        // Unbounded sides win.
        let c = NumericRange::new(None, false, Some(2.0), true);
        assert_eq!(a.hull(&c).min(), None);
    }

    #[test]
    fn range_empty_and_point() {
        assert!(NumericRange::new(Some(5.0), true, Some(3.0), true).is_empty());
        assert!(NumericRange::new(Some(3.0), false, Some(3.0), true).is_empty());
        assert!(!NumericRange::point(3.0).is_empty());
        assert!(NumericRange::point(3.0).contains(3.0));
        assert!(NumericRange::unbounded().contains(f64::MAX));
        // Hull with an empty interval is the other interval.
        let empty = NumericRange::new(Some(5.0), true, Some(3.0), true);
        let other = NumericRange::point(7.0);
        assert_eq!(empty.hull(&other), other);
        assert_eq!(other.hull(&empty), other);
    }

    /// Union must be an over-approximation: any value accepted by either
    /// operand is accepted by the union.
    #[test]
    fn union_is_sound_on_samples() {
        let predicates = vec![
            Predicate::Any,
            Predicate::eq_int(2),
            Predicate::eq_float(2.5),
            Predicate::eq_str("Bob"),
            Predicate::Ne(int(7)),
            Predicate::one_of(["Bob", "Tom"]),
            Predicate::one_of([1i64, 5i64]),
            Predicate::gt(0.0),
            Predicate::lt(100.0),
            Predicate::open_range(10.0, 20.0),
            Predicate::closed_range(-5.0, 5.0),
        ];
        let samples = vec![
            int(-10),
            int(0),
            int(1),
            int(2),
            int(5),
            int(7),
            int(15),
            int(1000),
            float(2.5),
            float(10.0),
            float(19.999),
            string("Bob"),
            string("Tom"),
            string("Eve"),
            AttributeValue::Bool(true),
        ];
        for a in &predicates {
            for b in &predicates {
                let u = a.union(b);
                for s in &samples {
                    if a.evaluate(s) || b.evaluate(s) {
                        assert!(
                            u.evaluate(s),
                            "union of {a} and {b} must accept {s} accepted by an operand"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn union_specific_shapes() {
        // Two numeric equalities widen to their hull.
        let u = Predicate::eq_int(2).union(&Predicate::eq_int(8));
        assert!(u.evaluate(&int(5)));
        // Two string equalities become OneOf.
        let u = Predicate::eq_str("Bob").union(&Predicate::eq_str("Tom"));
        assert_eq!(u, Predicate::one_of(["Bob", "Tom"]));
        // Mixing a numeric range with a string equality widens to Any.
        let u = Predicate::gt(5.0).union(&Predicate::eq_str("Bob"));
        assert_eq!(u, Predicate::Any);
        // OneOf absorbs duplicates.
        let u = Predicate::one_of(["Bob"]).union(&Predicate::one_of(["Bob", "Tom"]));
        assert_eq!(u, Predicate::one_of(["Bob", "Tom"]));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Predicate::Any.to_string(), "*");
        assert_eq!(Predicate::eq_int(2).to_string(), "= 2");
        assert!(Predicate::gt(0.0).to_string().contains("(0"));
        assert!(Predicate::one_of(["Bob", "Tom"]).to_string().contains("Bob"));
        assert!(Predicate::Ne(int(3)).to_string().contains('3'));
    }

    #[test]
    fn serde_round_trip() {
        let p = Predicate::open_range(10.0, 220.0);
        let json = serde_json::to_string(&p).unwrap();
        let back: Predicate = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
