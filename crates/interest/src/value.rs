use std::fmt;

use serde::{Deserialize, Serialize};

/// A typed attribute value carried by an [`crate::Event`].
///
/// The paper's example (Figure 2) uses integer (`b`, `z`), floating point
/// (`c`) and string (`e`) attributes; a boolean variant is added for
/// convenience.  Integers and floats are mutually comparable so that a
/// criterion such as `b > 1` applies to both `Int` and `Float` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttributeValue {
    /// A signed integer attribute (the paper's `b`, `z`).
    Int(i64),
    /// A floating point attribute (the paper's `c`).
    Float(f64),
    /// A string attribute (the paper's `e`).
    Str(String),
    /// A boolean attribute.
    Bool(bool),
}

impl AttributeValue {
    /// Returns the value as a floating point number if it is numeric
    /// (`Int` or `Float`), `None` otherwise.
    pub fn as_numeric(&self) -> Option<f64> {
        match self {
            AttributeValue::Int(v) => Some(*v as f64),
            AttributeValue::Float(v) => Some(*v),
            AttributeValue::Str(_) | AttributeValue::Bool(_) => None,
        }
    }

    /// Returns the value as a string slice if it is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttributeValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as a boolean if it is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttributeValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns `true` if the value is numeric (`Int` or `Float`).
    pub fn is_numeric(&self) -> bool {
        self.as_numeric().is_some()
    }

    /// Equality with numeric coercion: `Int(2)` equals `Float(2.0)`, strings
    /// and booleans are compared structurally, and values of incompatible
    /// kinds never compare equal.
    pub fn loosely_equals(&self, other: &AttributeValue) -> bool {
        match (self.as_numeric(), other.as_numeric()) {
            (Some(a), Some(b)) => a == b,
            _ => self == other,
        }
    }
}

impl fmt::Display for AttributeValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttributeValue::Int(v) => write!(f, "{v}"),
            AttributeValue::Float(v) => write!(f, "{v}"),
            AttributeValue::Str(s) => write!(f, "{s:?}"),
            AttributeValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for AttributeValue {
    fn from(v: i64) -> Self {
        AttributeValue::Int(v)
    }
}

impl From<i32> for AttributeValue {
    fn from(v: i32) -> Self {
        AttributeValue::Int(v as i64)
    }
}

impl From<f64> for AttributeValue {
    fn from(v: f64) -> Self {
        AttributeValue::Float(v)
    }
}

impl From<&str> for AttributeValue {
    fn from(v: &str) -> Self {
        AttributeValue::Str(v.to_string())
    }
}

impl From<String> for AttributeValue {
    fn from(v: String) -> Self {
        AttributeValue::Str(v)
    }
}

impl From<bool> for AttributeValue {
    fn from(v: bool) -> Self {
        AttributeValue::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_coercion() {
        assert_eq!(AttributeValue::Int(3).as_numeric(), Some(3.0));
        assert_eq!(AttributeValue::Float(2.5).as_numeric(), Some(2.5));
        assert_eq!(AttributeValue::Str("x".into()).as_numeric(), None);
        assert_eq!(AttributeValue::Bool(true).as_numeric(), None);
        assert!(AttributeValue::Int(3).is_numeric());
        assert!(!AttributeValue::Bool(true).is_numeric());
    }

    #[test]
    fn loose_equality() {
        assert!(AttributeValue::Int(2).loosely_equals(&AttributeValue::Float(2.0)));
        assert!(!AttributeValue::Int(2).loosely_equals(&AttributeValue::Float(2.5)));
        assert!(AttributeValue::Str("Bob".into()).loosely_equals(&"Bob".into()));
        assert!(!AttributeValue::Str("2".into()).loosely_equals(&AttributeValue::Int(2)));
        assert!(AttributeValue::Bool(true).loosely_equals(&true.into()));
    }

    #[test]
    fn accessors() {
        assert_eq!(AttributeValue::Str("Tom".into()).as_str(), Some("Tom"));
        assert_eq!(AttributeValue::Int(1).as_str(), None);
        assert_eq!(AttributeValue::Bool(false).as_bool(), Some(false));
        assert_eq!(AttributeValue::Int(1).as_bool(), None);
    }

    #[test]
    fn conversions_from_primitives() {
        let values: Vec<AttributeValue> = vec![
            1i64.into(),
            2i32.into(),
            3.5f64.into(),
            "Bob".into(),
            String::from("Tom").into(),
            true.into(),
        ];
        assert_eq!(values[0], AttributeValue::Int(1));
        assert_eq!(values[1], AttributeValue::Int(2));
        assert_eq!(values[2], AttributeValue::Float(3.5));
        assert_eq!(values[3], AttributeValue::Str("Bob".into()));
        assert_eq!(values[4], AttributeValue::Str("Tom".into()));
        assert_eq!(values[5], AttributeValue::Bool(true));
    }

    #[test]
    fn display_is_never_empty() {
        for v in [
            AttributeValue::Int(0),
            AttributeValue::Float(0.0),
            AttributeValue::Str(String::new()),
            AttributeValue::Bool(false),
        ] {
            assert!(!v.to_string().is_empty());
        }
    }
}
