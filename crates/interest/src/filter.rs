use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Event, Interest, Predicate};

/// A conjunctive subscription: one [`Predicate`] per constrained attribute.
///
/// A filter corresponds to one *Interests* cell of the paper's view tables
/// (Figure 2), e.g. `b = 2 ∧ c > 40.0 ∧ z = 20000`.  Attributes without a
/// criterion are wildcards; an event matches the filter if **all** criteria
/// are satisfied by the event's attribute values.  An event that lacks a
/// constrained attribute does not match (unless the criterion is the
/// explicit wildcard [`Predicate::Any`]).
///
/// # Example
///
/// ```rust
/// use pmcast_interest::{Event, Filter, Interest, Predicate};
///
/// // b > 1 ∧ 20.0 < c < 30.0 ∧ z ≤ 50000   (process 128.178.73.19 in Fig. 2)
/// let filter = Filter::new()
///     .with("b", Predicate::gt(1.0))
///     .with("c", Predicate::open_range(20.0, 30.0))
///     .with("z", Predicate::le(50_000.0));
///
/// let matching = Event::builder(1).int("b", 4).float("c", 25.0).int("z", 10).build();
/// let too_cold = Event::builder(2).int("b", 4).float("c", 5.0).int("z", 10).build();
/// assert!(filter.matches(&matching));
/// assert!(!filter.matches(&too_cold));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Filter {
    criteria: BTreeMap<String, Predicate>,
}

impl Filter {
    /// Creates an empty filter, which matches every event (all attributes
    /// are wildcards).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a filter that matches every event; alias of [`Filter::new`]
    /// conveying intent at call sites.
    pub fn match_all() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a criterion for an attribute, returning the filter
    /// for chaining.
    pub fn with(mut self, attribute: impl Into<String>, predicate: Predicate) -> Self {
        self.criteria.insert(attribute.into(), predicate);
        self
    }

    /// Adds (or replaces) a criterion in place.
    pub fn set(&mut self, attribute: impl Into<String>, predicate: Predicate) {
        self.criteria.insert(attribute.into(), predicate);
    }

    /// Returns the criterion for an attribute, if any.
    pub fn criterion(&self, attribute: &str) -> Option<&Predicate> {
        self.criteria.get(attribute)
    }

    /// Returns the number of constrained attributes.
    pub fn len(&self) -> usize {
        self.criteria.len()
    }

    /// Returns `true` if the filter has no criteria (and therefore matches
    /// every event).
    pub fn is_empty(&self) -> bool {
        self.criteria.is_empty()
    }

    /// Iterates over `(attribute, predicate)` pairs in attribute order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Predicate)> {
        self.criteria.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Returns the attribute names constrained by this filter.
    pub fn attributes(&self) -> impl Iterator<Item = &str> {
        self.criteria.keys().map(String::as_str)
    }

    /// Merges another filter into an **over-approximation** of the
    /// disjunction of the two: per attribute, the predicates are widened with
    /// [`Predicate::union`]; attributes constrained by only one of the two
    /// filters are dropped (widened to the implicit wildcard).
    ///
    /// This is the single-line flavour of interest regrouping; anything that
    /// matched either input filter matches the result.
    pub fn widen_union(&self, other: &Filter) -> Filter {
        let mut criteria = BTreeMap::new();
        for (attribute, predicate) in &self.criteria {
            if let Some(other_predicate) = other.criteria.get(attribute) {
                let merged = predicate.union(other_predicate);
                if !merged.is_any() {
                    criteria.insert(attribute.clone(), merged);
                }
            }
        }
        Filter { criteria }
    }

    /// A rough measure of how much precision would be lost by widening
    /// `self` with `other`: the number of attributes constrained by exactly
    /// one of the two filters.  Interest regrouping merges the pair with the
    /// smallest loss first.
    pub fn widening_distance(&self, other: &Filter) -> usize {
        let only_self = self
            .criteria
            .keys()
            .filter(|k| !other.criteria.contains_key(*k))
            .count();
        let only_other = other
            .criteria
            .keys()
            .filter(|k| !self.criteria.contains_key(*k))
            .count();
        only_self + only_other
    }
}

impl Interest for Filter {
    fn matches(&self, event: &Event) -> bool {
        self.criteria.iter().all(|(attribute, predicate)| {
            if predicate.is_any() {
                return true;
            }
            match event.get(attribute) {
                Some(value) => predicate.evaluate(value),
                None => false,
            }
        })
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.criteria.is_empty() {
            return write!(f, "⊤");
        }
        let mut first = true;
        for (attribute, predicate) in &self.criteria {
            if !first {
                write!(f, " ∧ ")?;
            }
            write!(f, "{attribute} {predicate}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromIterator<(String, Predicate)> for Filter {
    fn from_iter<I: IntoIterator<Item = (String, Predicate)>>(iter: I) -> Self {
        Filter {
            criteria: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, Predicate)> for Filter {
    fn extend<I: IntoIterator<Item = (String, Predicate)>>(&mut self, iter: I) {
        self.criteria.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttributeValue;

    fn figure2_filter() -> Filter {
        // 128.178.73.3: b = 2, c > 40.0, z = 20000
        Filter::new()
            .with("b", Predicate::eq_int(2))
            .with("c", Predicate::gt(40.0))
            .with("z", Predicate::eq_int(20_000))
    }

    #[test]
    fn conjunction_semantics() {
        let filter = figure2_filter();
        let ok = Event::builder(1).int("b", 2).float("c", 41.0).int("z", 20_000).build();
        let wrong_b = Event::builder(2).int("b", 3).float("c", 41.0).int("z", 20_000).build();
        let wrong_c = Event::builder(3).int("b", 2).float("c", 40.0).int("z", 20_000).build();
        assert!(filter.matches(&ok));
        assert!(!filter.matches(&wrong_b));
        assert!(!filter.matches(&wrong_c));
    }

    #[test]
    fn missing_attribute_fails_unless_wildcard() {
        let filter = Filter::new().with("b", Predicate::gt(0.0));
        let without_b = Event::builder(1).float("c", 1.0).build();
        assert!(!filter.matches(&without_b));

        let wildcard = Filter::new().with("b", Predicate::Any);
        assert!(wildcard.matches(&without_b));
    }

    #[test]
    fn empty_filter_matches_everything() {
        let filter = Filter::match_all();
        assert!(filter.is_empty());
        assert!(filter.matches(&Event::new(1)));
        assert!(filter.matches(&Event::builder(2).str("e", "Bob").build()));
    }

    #[test]
    fn accessors_and_iteration() {
        let filter = figure2_filter();
        assert_eq!(filter.len(), 3);
        assert!(filter.criterion("b").is_some());
        assert!(filter.criterion("missing").is_none());
        let attributes: Vec<&str> = filter.attributes().collect();
        assert_eq!(attributes, vec!["b", "c", "z"]);
        assert_eq!(filter.iter().count(), 3);
    }

    #[test]
    fn set_replaces_existing_criterion() {
        let mut filter = Filter::new().with("b", Predicate::eq_int(1));
        filter.set("b", Predicate::eq_int(2));
        assert!(filter.matches(&Event::builder(1).int("b", 2).build()));
        assert!(!filter.matches(&Event::builder(2).int("b", 1).build()));
    }

    #[test]
    fn widen_union_is_sound() {
        // 128.178.73.17: b = 5 ∧ c > 53.5
        let a = Filter::new()
            .with("b", Predicate::eq_int(5))
            .with("c", Predicate::gt(53.5));
        // 128.178.73.19: b > 1 ∧ 20.0 < c < 30.0 ∧ z ≤ 50000
        let b = Filter::new()
            .with("b", Predicate::gt(1.0))
            .with("c", Predicate::open_range(20.0, 30.0))
            .with("z", Predicate::le(50_000.0));
        let merged = a.widen_union(&b);
        // z is only constrained by b, so it disappears from the merge.
        assert!(merged.criterion("z").is_none());

        let events = vec![
            Event::builder(1).int("b", 5).float("c", 60.0).int("z", 0).build(),
            Event::builder(2).int("b", 2).float("c", 25.0).int("z", 10).build(),
            Event::builder(3).int("b", 3).float("c", 40.0).int("z", 10).build(),
        ];
        for event in &events {
            if a.matches(event) || b.matches(event) {
                assert!(merged.matches(event), "widened filter must accept {event}");
            }
        }
    }

    #[test]
    fn widening_distance_counts_asymmetric_attributes() {
        let a = Filter::new().with("b", Predicate::Any).with("c", Predicate::Any);
        let b = Filter::new().with("b", Predicate::Any).with("z", Predicate::Any);
        assert_eq!(a.widening_distance(&b), 2);
        assert_eq!(a.widening_distance(&a), 0);
        assert_eq!(b.widening_distance(&a), 2);
    }

    #[test]
    fn display_shows_conjunction() {
        let filter = figure2_filter();
        let text = filter.to_string();
        assert!(text.contains("b = 2"));
        assert!(text.contains('∧'));
        assert_eq!(Filter::new().to_string(), "⊤");
    }

    #[test]
    fn collect_and_extend() {
        let mut filter: Filter = vec![("b".to_string(), Predicate::eq_int(1))]
            .into_iter()
            .collect();
        filter.extend(vec![("c".to_string(), Predicate::gt(0.0))]);
        assert_eq!(filter.len(), 2);
    }

    #[test]
    fn bool_attributes_work_in_filters() {
        let filter = Filter::new().with("urgent", Predicate::Eq(AttributeValue::Bool(true)));
        assert!(filter.matches(&Event::builder(1).bool("urgent", true).build()));
        assert!(!filter.matches(&Event::builder(2).bool("urgent", false).build()));
    }

    #[test]
    fn serde_round_trip() {
        let filter = figure2_filter();
        let json = serde_json::to_string(&filter).unwrap();
        let back: Filter = serde_json::from_str(&json).unwrap();
        assert_eq!(filter, back);
    }
}
