//! Property-based tests for the subscription model.
//!
//! The central invariant is *soundness of regrouping*: an interest summary
//! built from a set of subscriptions never rejects an event accepted by one
//! of those subscriptions (Section 2.3 of the paper — a false negative at a
//! delegate would silently cut off an entire subtree of subscribers).

use pmcast_interest::{AttributeValue, Event, Filter, Interest, InterestSummary, Predicate};
use proptest::prelude::*;

/// Generates attribute values drawn from a small, collision-friendly domain
/// so that predicates and events actually interact.
fn arb_value() -> impl Strategy<Value = AttributeValue> {
    prop_oneof![
        (-20i64..20).prop_map(AttributeValue::Int),
        (-20.0f64..20.0).prop_map(AttributeValue::Float),
        prop_oneof![Just("Bob"), Just("Tom"), Just("Eve"), Just("Alice")]
            .prop_map(|s| AttributeValue::Str(s.to_string())),
        any::<bool>().prop_map(AttributeValue::Bool),
    ]
}

fn arb_attribute() -> impl Strategy<Value = String> {
    prop_oneof![Just("b"), Just("c"), Just("e"), Just("z")].prop_map(str::to_string)
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        Just(Predicate::Any),
        arb_value().prop_map(Predicate::Eq),
        arb_value().prop_map(Predicate::Ne),
        prop::collection::vec(arb_value(), 1..4).prop_map(Predicate::OneOf),
        (-20.0f64..20.0).prop_map(Predicate::gt),
        (-20.0f64..20.0).prop_map(Predicate::ge),
        (-20.0f64..20.0).prop_map(Predicate::lt),
        (-20.0f64..20.0).prop_map(Predicate::le),
        (-20.0f64..20.0, 0.0f64..20.0).prop_map(|(lo, w)| Predicate::open_range(lo, lo + w)),
        (-20.0f64..20.0, 0.0f64..20.0).prop_map(|(lo, w)| Predicate::closed_range(lo, lo + w)),
    ]
}

fn arb_filter() -> impl Strategy<Value = Filter> {
    prop::collection::vec((arb_attribute(), arb_predicate()), 0..4)
        .prop_map(|criteria| criteria.into_iter().collect())
}

fn arb_event() -> impl Strategy<Value = Event> {
    (
        any::<u64>(),
        prop::collection::vec((arb_attribute(), arb_value()), 0..5),
    )
        .prop_map(|(id, attrs)| {
            let mut event = Event::new(id);
            for (name, value) in attrs {
                event.insert(name, value);
            }
            event
        })
}

proptest! {
    /// Predicate union is an over-approximation of the logical disjunction.
    #[test]
    fn predicate_union_is_sound(
        a in arb_predicate(),
        b in arb_predicate(),
        value in arb_value(),
    ) {
        let union = a.union(&b);
        if a.evaluate(&value) || b.evaluate(&value) {
            prop_assert!(union.evaluate(&value),
                "union {union} of {a} and {b} must accept {value}");
        }
    }

    /// Predicate union is commutative in its semantics.
    #[test]
    fn predicate_union_semantics_commute(
        a in arb_predicate(),
        b in arb_predicate(),
        value in arb_value(),
    ) {
        prop_assert_eq!(a.union(&b).evaluate(&value), b.union(&a).evaluate(&value));
    }

    /// Filter widening is an over-approximation of the disjunction of two
    /// subscriptions.
    #[test]
    fn filter_widening_is_sound(
        a in arb_filter(),
        b in arb_filter(),
        event in arb_event(),
    ) {
        let widened = a.widen_union(&b);
        if a.matches(&event) || b.matches(&event) {
            prop_assert!(widened.matches(&event),
                "widened filter {widened} must accept {event} accepted by {a} or {b}");
        }
    }

    /// An interest summary never rejects an event accepted by one of the
    /// subscriptions it was built from, regardless of the disjunct bound.
    #[test]
    fn summary_never_loses_a_subscriber(
        filters in prop::collection::vec(arb_filter(), 1..12),
        events in prop::collection::vec(arb_event(), 1..8),
        max_disjuncts in 1usize..6,
    ) {
        let mut summary = InterestSummary::with_max_disjuncts(max_disjuncts);
        for f in &filters {
            summary.absorb_filter(f.clone());
        }
        prop_assert!(summary.disjunct_count() <= max_disjuncts.max(1));
        for event in &events {
            let any_subscriber_interested = filters.iter().any(|f| f.matches(event));
            if any_subscriber_interested {
                prop_assert!(summary.matches(event),
                    "summary {summary} must accept {event}");
            }
        }
    }

    /// Merging two summaries covers everything either covered.
    #[test]
    fn summary_merge_is_sound(
        filters_a in prop::collection::vec(arb_filter(), 1..6),
        filters_b in prop::collection::vec(arb_filter(), 1..6),
        events in prop::collection::vec(arb_event(), 1..8),
    ) {
        let a = InterestSummary::from_filters(filters_a);
        let b = InterestSummary::from_filters(filters_b);
        let merged = a.merged_with(&b);
        for event in &events {
            if a.matches(event) || b.matches(event) {
                prop_assert!(merged.matches(event));
            }
        }
    }

    /// Merging is idempotent: absorbing the same summary twice changes
    /// nothing semantically.
    #[test]
    fn summary_merge_is_idempotent(
        filters in prop::collection::vec(arb_filter(), 1..6),
        events in prop::collection::vec(arb_event(), 1..8),
    ) {
        let summary = InterestSummary::from_filters(filters);
        let twice = summary.merged_with(&summary);
        for event in &events {
            prop_assert_eq!(summary.matches(event), twice.matches(event));
        }
    }

    /// An empty filter matches every event, a missing attribute never
    /// satisfies a non-wildcard criterion.
    #[test]
    fn empty_filter_matches_all(event in arb_event()) {
        prop_assert!(Filter::match_all().matches(&event));
        prop_assert!(InterestSummary::match_all().matches(&event));
        prop_assert!(!InterestSummary::empty().matches(&event));
    }

    /// Serialization round-trips preserve matching behaviour.
    #[test]
    fn filter_serde_preserves_semantics(filter in arb_filter(), event in arb_event()) {
        let json = serde_json::to_string(&filter).unwrap();
        let back: Filter = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(filter.matches(&event), back.matches(&event));
    }
}
