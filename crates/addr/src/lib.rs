//! # pmcast-addr — hierarchical addresses, prefixes and distances
//!
//! This crate implements the membership *address model* of
//! *Probabilistic Multicast* (Eugster & Guerraoui, DSN 2002), Section 2.2.
//!
//! Every process is identified by an address of the form
//! `x(1).x(2).⋯.x(d)` where each component satisfies `0 ≤ x(i) ≤ aᵢ − 1`.
//! A *prefix* `x(1).⋯.x(i−1)` of depth `i` denotes a subgroup (e.g. a
//! subnetwork); the *distance* between two processes is inverse proportional
//! to the length of their longest common prefix.  These notions drive both
//! delegate election and the depth-wise dissemination of events in `pmcast`.
//!
//! The concrete address assignment can mirror real network addresses (IP,
//! inverted DNS) or be purely logical; the paper explicitly allows either.
//!
//! ## Example
//!
//! ```rust
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use pmcast_addr::{Address, AddressSpace, Prefix};
//!
//! // A regular tree of depth 3 with 22 subgroups per level: n = 22^3 = 10 648.
//! let space = AddressSpace::regular(3, 22)?;
//! assert_eq!(space.capacity(), 10_648);
//!
//! let a: Address = "3.17.5".parse()?;
//! let b: Address = "3.2.11".parse()?;
//! space.validate(&a)?;
//! space.validate(&b)?;
//!
//! // a and b share the depth-2 prefix "3", so their distance is d - 1 = 2.
//! assert_eq!(a.distance(&b), 2);
//! assert_eq!(a.common_prefix(&b), Prefix::from_components(vec![3]));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod address;
mod error;
mod prefix;
mod space;

pub use address::Address;
pub use error::AddrError;
pub use prefix::Prefix;
pub use space::{AddressSpace, AddressSpaceIter};

/// A single component of an address (`x(i)` in the paper).
///
/// Components are small non-negative integers bounded by the per-level arity
/// `aᵢ` of the [`AddressSpace`].
pub type Component = u32;

/// Depth of a tree level, 1-based as in the paper (`1 ≤ i ≤ d`).
///
/// Depth 1 is the *root* level of the compound tree; depth `d` is the leaf
/// level where individual processes live.
pub type Depth = usize;
