use serde::{Deserialize, Serialize};

use crate::{AddrError, Address, Component, Depth, Prefix};

/// The shape of the address space: depth `d` and per-level arities `aᵢ`.
///
/// The maximum number of distinct addresses — and therefore of processes —
/// is `∏ aᵢ` (Section 2.2).  A *regular* tree in the sense of the paper's
/// analysis (Section 4.1) uses the same arity `a` at every level, so that
/// `n = a^d`.
///
/// The address space only constrains which addresses are *well formed*; the
/// set of addresses actually populated at a given moment is tracked by the
/// membership layer.
///
/// # Example
///
/// ```rust
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use pmcast_addr::AddressSpace;
///
/// // IPv4-like shape: four levels of 256 values each.
/// let ipv4 = AddressSpace::new(vec![256, 256, 256, 256])?;
/// assert_eq!(ipv4.capacity(), 1u128 << 32);
///
/// // The regular tree used throughout the paper's evaluation.
/// let eval = AddressSpace::regular(3, 22)?;
/// assert_eq!(eval.capacity(), 10_648);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AddressSpace {
    arities: Vec<Component>,
}

impl AddressSpace {
    /// Creates an address space with the given per-level arities
    /// `a₁, …, a_d`.
    ///
    /// # Errors
    ///
    /// Returns [`AddrError::InvalidShape`] if no levels are given or any
    /// arity is zero.
    pub fn new(arities: Vec<Component>) -> Result<Self, AddrError> {
        if arities.is_empty() {
            return Err(AddrError::InvalidShape {
                reason: "depth must be at least 1".to_string(),
            });
        }
        if let Some(level) = arities.iter().position(|&a| a == 0) {
            return Err(AddrError::InvalidShape {
                reason: format!("arity at level {} must be positive", level + 1),
            });
        }
        Ok(Self { arities })
    }

    /// Creates a *regular* address space of depth `d` with `a` subgroups per
    /// level, so that the capacity is `a^d`.
    ///
    /// # Errors
    ///
    /// Returns [`AddrError::InvalidShape`] if `depth` or `arity` is zero.
    pub fn regular(depth: Depth, arity: Component) -> Result<Self, AddrError> {
        if depth == 0 {
            return Err(AddrError::InvalidShape {
                reason: "depth must be at least 1".to_string(),
            });
        }
        Self::new(vec![arity; depth])
    }

    /// Returns the depth `d` of the tree.
    pub fn depth(&self) -> Depth {
        self.arities.len()
    }

    /// Returns the arity `aᵢ` of the given 1-based level.
    ///
    /// # Panics
    ///
    /// Panics if `level` is 0 or exceeds the depth.
    pub fn arity(&self, level: Depth) -> Component {
        assert!(
            level >= 1 && level <= self.depth(),
            "level {level} out of range 1..={}",
            self.depth()
        );
        self.arities[level - 1]
    }

    /// Returns all arities.
    pub fn arities(&self) -> &[Component] {
        &self.arities
    }

    /// Returns `true` if all levels share the same arity.
    pub fn is_regular(&self) -> bool {
        self.arities.windows(2).all(|w| w[0] == w[1])
    }

    /// Returns the maximum number of distinct addresses, `∏ aᵢ`.
    pub fn capacity(&self) -> u128 {
        self.arities.iter().map(|&a| a as u128).product()
    }

    /// Returns the number of distinct addresses sharing the given prefix.
    ///
    /// # Panics
    ///
    /// Panics if the prefix is deeper than the address space.
    pub fn capacity_under(&self, prefix: &Prefix) -> u128 {
        assert!(
            prefix.len() <= self.depth(),
            "prefix of {} components is too deep for depth {}",
            prefix.len(),
            self.depth()
        );
        self.arities[prefix.len()..]
            .iter()
            .map(|&a| a as u128)
            .product()
    }

    /// Validates that an address has exactly `d` components and that every
    /// component respects its level's arity.
    ///
    /// # Errors
    ///
    /// Returns [`AddrError::DepthMismatch`] or
    /// [`AddrError::ComponentOutOfRange`] accordingly.
    pub fn validate(&self, address: &Address) -> Result<(), AddrError> {
        if address.depth() != self.depth() {
            return Err(AddrError::DepthMismatch {
                found: address.depth(),
                expected: self.depth(),
            });
        }
        for (idx, (&component, &arity)) in address
            .components()
            .iter()
            .zip(self.arities.iter())
            .enumerate()
        {
            if component >= arity {
                return Err(AddrError::ComponentOutOfRange {
                    level: idx + 1,
                    component,
                    arity,
                });
            }
        }
        Ok(())
    }

    /// Validates a prefix: it must not be deeper than the space and its
    /// components must respect the corresponding arities.
    ///
    /// # Errors
    ///
    /// Returns [`AddrError::PrefixTooDeep`] or
    /// [`AddrError::ComponentOutOfRange`] accordingly.
    pub fn validate_prefix(&self, prefix: &Prefix) -> Result<(), AddrError> {
        if prefix.len() > self.depth() {
            return Err(AddrError::PrefixTooDeep {
                found: prefix.len(),
                max: self.depth(),
            });
        }
        for (idx, (&component, &arity)) in prefix
            .components()
            .iter()
            .zip(self.arities.iter())
            .enumerate()
        {
            if component >= arity {
                return Err(AddrError::ComponentOutOfRange {
                    level: idx + 1,
                    component,
                    arity,
                });
            }
        }
        Ok(())
    }

    /// Converts a dense index in `0..capacity()` to the corresponding
    /// address, enumerating addresses in lexicographic order.
    ///
    /// This is the canonical way simulations map a process index to an
    /// address in a fully populated regular tree.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity()`.
    pub fn address_of_index(&self, index: u128) -> Address {
        assert!(
            index < self.capacity(),
            "index {index} out of range for capacity {}",
            self.capacity()
        );
        let mut components = vec![0 as Component; self.depth()];
        let mut remainder = index;
        for level in (0..self.depth()).rev() {
            let arity = self.arities[level] as u128;
            components[level] = (remainder % arity) as Component;
            remainder /= arity;
        }
        Address::new(components)
    }

    /// Returns the dense index range `[start, end)` of the addresses
    /// sharing the given prefix; every subtree occupies a contiguous range
    /// of the lexicographic index order.
    ///
    /// # Errors
    ///
    /// Returns an error if the prefix is not valid for this space.
    pub fn index_range_under(&self, prefix: &Prefix) -> Result<(u128, u128), AddrError> {
        self.validate_prefix(prefix)?;
        let mut base: u128 = 0;
        for (level, &component) in prefix.components().iter().enumerate() {
            base = base * self.arities[level] as u128 + component as u128;
        }
        let below = self.capacity_under(prefix);
        let start = base * below;
        Ok((start, start + below))
    }

    /// Converts an address back to its dense lexicographic index.
    ///
    /// # Errors
    ///
    /// Returns an error if the address is not valid for this space.
    pub fn index_of_address(&self, address: &Address) -> Result<u128, AddrError> {
        self.validate(address)?;
        let mut index: u128 = 0;
        for (level, &component) in address.components().iter().enumerate() {
            index = index * self.arities[level] as u128 + component as u128;
        }
        Ok(index)
    }

    /// Returns an iterator over every address of the space in lexicographic
    /// order.  Intended for small spaces (tests, examples); the iterator is
    /// lazy so iteration can be truncated cheaply.
    pub fn iter(&self) -> AddressSpaceIter<'_> {
        AddressSpaceIter {
            space: self,
            next: 0,
            total: self.capacity(),
        }
    }

    /// Enumerates the valid child components under a prefix, i.e.
    /// `0..a_{i}` where `i` is the level right below the prefix.
    ///
    /// # Panics
    ///
    /// Panics if the prefix already has `d` components (no level below).
    pub fn child_components(&self, prefix: &Prefix) -> impl Iterator<Item = Component> {
        assert!(
            prefix.len() < self.depth(),
            "prefix already addresses a leaf; no children below depth {}",
            self.depth()
        );
        0..self.arities[prefix.len()]
    }
}

/// Iterator over all addresses of an [`AddressSpace`], produced by
/// [`AddressSpace::iter`].
#[derive(Debug)]
pub struct AddressSpaceIter<'a> {
    space: &'a AddressSpace,
    next: u128,
    total: u128,
}

impl Iterator for AddressSpaceIter<'_> {
    type Item = Address;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.total {
            return None;
        }
        let address = self.space.address_of_index(self.next);
        self.next += 1;
        Some(address)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.total - self.next).min(usize::MAX as u128) as usize;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for AddressSpaceIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_space_shape() {
        let space = AddressSpace::regular(3, 22).unwrap();
        assert_eq!(space.depth(), 3);
        assert!(space.is_regular());
        assert_eq!(space.capacity(), 22u128.pow(3));
        assert_eq!(space.arity(1), 22);
        assert_eq!(space.arity(3), 22);
    }

    #[test]
    fn irregular_space_shape() {
        let space = AddressSpace::new(vec![4, 8, 2]).unwrap();
        assert!(!space.is_regular());
        assert_eq!(space.capacity(), 64);
        assert_eq!(space.arities(), &[4, 8, 2]);
    }

    #[test]
    fn invalid_shapes_rejected() {
        assert!(AddressSpace::new(vec![]).is_err());
        assert!(AddressSpace::new(vec![4, 0, 2]).is_err());
        assert!(AddressSpace::regular(0, 5).is_err());
        assert!(AddressSpace::regular(3, 0).is_err());
    }

    #[test]
    fn validate_addresses() {
        let space = AddressSpace::new(vec![4, 8, 2]).unwrap();
        assert!(space.validate(&"3.7.1".parse().unwrap()).is_ok());
        assert_eq!(
            space.validate(&"3.7".parse().unwrap()),
            Err(AddrError::DepthMismatch {
                found: 2,
                expected: 3
            })
        );
        assert_eq!(
            space.validate(&"4.7.1".parse().unwrap()),
            Err(AddrError::ComponentOutOfRange {
                level: 1,
                component: 4,
                arity: 4
            })
        );
        assert_eq!(
            space.validate(&"3.7.2".parse().unwrap()),
            Err(AddrError::ComponentOutOfRange {
                level: 3,
                component: 2,
                arity: 2
            })
        );
    }

    #[test]
    fn validate_prefixes() {
        let space = AddressSpace::new(vec![4, 8, 2]).unwrap();
        assert!(space.validate_prefix(&Prefix::root()).is_ok());
        assert!(space
            .validate_prefix(&Prefix::from_components(vec![3, 7]))
            .is_ok());
        assert!(space
            .validate_prefix(&Prefix::from_components(vec![3, 8]))
            .is_err());
        assert!(space
            .validate_prefix(&Prefix::from_components(vec![1, 1, 1, 1]))
            .is_err());
    }

    #[test]
    fn index_round_trip_small_space() {
        let space = AddressSpace::new(vec![3, 4, 2]).unwrap();
        for index in 0..space.capacity() {
            let address = space.address_of_index(index);
            assert!(space.validate(&address).is_ok());
            assert_eq!(space.index_of_address(&address).unwrap(), index);
        }
    }

    #[test]
    fn index_enumeration_is_lexicographic() {
        let space = AddressSpace::regular(2, 3).unwrap();
        let all: Vec<String> = space.iter().map(|a| a.to_string()).collect();
        assert_eq!(
            all,
            vec!["0.0", "0.1", "0.2", "1.0", "1.1", "1.2", "2.0", "2.1", "2.2"]
        );
        assert_eq!(space.iter().len(), 9);
    }

    #[test]
    fn capacity_under_prefix() {
        let space = AddressSpace::new(vec![4, 8, 2]).unwrap();
        assert_eq!(space.capacity_under(&Prefix::root()), 64);
        assert_eq!(space.capacity_under(&Prefix::from_components(vec![1])), 16);
        assert_eq!(
            space.capacity_under(&Prefix::from_components(vec![1, 5])),
            2
        );
    }

    #[test]
    fn child_components_enumeration() {
        let space = AddressSpace::new(vec![4, 8, 2]).unwrap();
        let children: Vec<_> = space
            .child_components(&Prefix::from_components(vec![2]))
            .collect();
        assert_eq!(children.len(), 8);
        assert_eq!(children[0], 0);
        assert_eq!(children[7], 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn address_of_index_out_of_range_panics() {
        let space = AddressSpace::regular(2, 2).unwrap();
        let _ = space.address_of_index(4);
    }

    #[test]
    fn ipv4_like_capacity() {
        let space = AddressSpace::new(vec![256, 256, 256, 256]).unwrap();
        assert_eq!(space.capacity(), 1u128 << 32);
        let addr = space.address_of_index(0x8078_4903);
        assert_eq!(addr.to_string(), "128.120.73.3");
    }
}
