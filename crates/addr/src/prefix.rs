use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::{AddrError, Address, Component, Depth};

/// A partial address `x(1).⋯.x(i−1)` denoting a subgroup of the tree.
///
/// Following the paper's convention a prefix with `k` components is said to
/// be of *depth* `k + 1`: the empty prefix (depth 1) denotes the root, a
/// single component (depth 2) denotes a depth-2 subgroup, and so on.  A full
/// address of a tree of depth `d` corresponds to a prefix with `d`
/// components.
///
/// # Example
///
/// ```rust
/// use pmcast_addr::{Address, Prefix};
///
/// let subnet = Prefix::from_components(vec![128, 178]);
/// assert_eq!(subnet.depth(), 3);
/// let host: Address = "128.178.73.3".parse().unwrap();
/// assert!(host.has_prefix(&subnet));
/// assert_eq!(subnet.child(73), Prefix::from_components(vec![128, 178, 73]));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Prefix {
    components: Vec<Component>,
}

impl Prefix {
    /// Returns the empty (root) prefix, i.e. the prefix of depth 1 shared by
    /// every process in the group.
    pub fn root() -> Self {
        Self {
            components: Vec::new(),
        }
    }

    /// Creates a prefix from its components.
    pub fn from_components(components: Vec<Component>) -> Self {
        Self { components }
    }

    /// Returns the number of components of the prefix.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Returns `true` if this is the empty root prefix.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Returns the prefix depth as used in the paper: `len() + 1`.
    pub fn depth(&self) -> Depth {
        self.components.len() + 1
    }

    /// Returns the components of the prefix.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Returns the prefix extended by one more component, denoting one of
    /// this subgroup's child subgroups.
    pub fn child(&self, component: Component) -> Prefix {
        let mut components = self.components.clone();
        components.push(component);
        Prefix { components }
    }

    /// Returns the parent prefix (one component shorter), or `None` for the
    /// root prefix.
    pub fn parent(&self) -> Option<Prefix> {
        if self.components.is_empty() {
            None
        } else {
            Some(Prefix {
                components: self.components[..self.components.len() - 1].to_vec(),
            })
        }
    }

    /// Returns the last component, or `None` for the root prefix.
    pub fn last_component(&self) -> Option<Component> {
        self.components.last().copied()
    }

    /// Returns `true` if `self` is a prefix of (or equal to) `other`.
    pub fn is_prefix_of(&self, other: &Prefix) -> bool {
        self.components.len() <= other.components.len()
            && self
                .components
                .iter()
                .zip(other.components.iter())
                .all(|(a, b)| a == b)
    }

    /// Returns `true` if the given address belongs to the subgroup denoted by
    /// this prefix.
    pub fn contains(&self, address: &Address) -> bool {
        address.has_prefix(self)
    }

    /// Completes the prefix into a full [`Address`] by appending the given
    /// suffix components.
    ///
    /// # Panics
    ///
    /// Panics if both the prefix and the suffix are empty (an address must
    /// have at least one component).
    pub fn to_address(&self, suffix: &[Component]) -> Address {
        let mut components = self.components.clone();
        components.extend_from_slice(suffix);
        Address::new(components)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.components.is_empty() {
            // The Debug/Display representation must never be empty.
            return write!(f, "∅");
        }
        let mut first = true;
        for c in &self.components {
            if !first {
                write!(f, ".")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromStr for Prefix {
    type Err = AddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() || s == "∅" {
            return Ok(Prefix::root());
        }
        let address: Address = s.parse()?;
        Ok(Prefix::from_components(address.components().to_vec()))
    }
}

impl From<&Address> for Prefix {
    fn from(address: &Address) -> Self {
        address.as_prefix()
    }
}

impl From<Vec<Component>> for Prefix {
    fn from(components: Vec<Component>) -> Self {
        Prefix::from_components(components)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_prefix_properties() {
        let root = Prefix::root();
        assert!(root.is_empty());
        assert_eq!(root.len(), 0);
        assert_eq!(root.depth(), 1);
        assert_eq!(root.parent(), None);
        assert_eq!(root.last_component(), None);
        assert_eq!(root.to_string(), "∅");
        assert_eq!(Prefix::default(), root);
    }

    #[test]
    fn child_and_parent_are_inverse() {
        let p = Prefix::from_components(vec![128, 178]);
        let c = p.child(73);
        assert_eq!(c.len(), 3);
        assert_eq!(c.parent(), Some(p.clone()));
        assert_eq!(c.last_component(), Some(73));
        assert!(p.is_prefix_of(&c));
        assert!(!c.is_prefix_of(&p));
    }

    #[test]
    fn depth_convention_matches_paper() {
        // A prefix of depth i has i - 1 components (Section 2.2).
        assert_eq!(Prefix::root().depth(), 1);
        assert_eq!(Prefix::from_components(vec![128]).depth(), 2);
        assert_eq!(Prefix::from_components(vec![128, 178, 73]).depth(), 4);
    }

    #[test]
    fn contains_addresses() {
        let p = Prefix::from_components(vec![128, 178]);
        let inside: Address = "128.178.73.3".parse().unwrap();
        let outside: Address = "128.179.73.3".parse().unwrap();
        assert!(p.contains(&inside));
        assert!(!p.contains(&outside));
        assert!(Prefix::root().contains(&inside));
    }

    #[test]
    fn to_address_appends_suffix() {
        let p = Prefix::from_components(vec![128, 178]);
        assert_eq!(p.to_address(&[73, 3]).to_string(), "128.178.73.3");
        assert_eq!(Prefix::root().to_address(&[7]).to_string(), "7");
    }

    #[test]
    fn parse_round_trip() {
        let p: Prefix = "128.178".parse().unwrap();
        assert_eq!(p, Prefix::from_components(vec![128, 178]));
        let root: Prefix = "".parse().unwrap();
        assert_eq!(root, Prefix::root());
        let root2: Prefix = "∅".parse().unwrap();
        assert_eq!(root2, Prefix::root());
        assert!("1..2".parse::<Prefix>().is_err());
    }

    #[test]
    fn ordering_groups_siblings() {
        let mut v = vec![
            Prefix::from_components(vec![2]),
            Prefix::from_components(vec![1, 5]),
            Prefix::root(),
            Prefix::from_components(vec![1]),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Prefix::root(),
                Prefix::from_components(vec![1]),
                Prefix::from_components(vec![1, 5]),
                Prefix::from_components(vec![2]),
            ]
        );
    }

    #[test]
    fn from_address() {
        let a: Address = "1.2.3".parse().unwrap();
        let p: Prefix = (&a).into();
        assert_eq!(p.components(), a.components());
    }
}
