use std::fmt;

/// Errors produced when constructing or validating addresses and address
/// spaces.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AddrError {
    /// The textual representation of an address could not be parsed.
    Parse {
        /// The offending input.
        input: String,
        /// Human readable reason.
        reason: String,
    },
    /// An address has a different number of components than the depth `d` of
    /// the address space it is validated against.
    DepthMismatch {
        /// Number of components of the address.
        found: usize,
        /// Depth `d` expected by the address space.
        expected: usize,
    },
    /// A component exceeds the arity `aᵢ` of its level.
    ComponentOutOfRange {
        /// 1-based level of the offending component.
        level: usize,
        /// Value of the offending component.
        component: u32,
        /// Arity `aᵢ` of that level (components must be `< arity`).
        arity: u32,
    },
    /// An address space was requested with an invalid shape (zero depth or a
    /// level of arity zero).
    InvalidShape {
        /// Human readable reason.
        reason: String,
    },
    /// A prefix is deeper than the address space allows.
    PrefixTooDeep {
        /// Number of components of the prefix.
        found: usize,
        /// Maximum number of prefix components (`d`; a full address is also a
        /// valid prefix of itself).
        max: usize,
    },
}

impl fmt::Display for AddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddrError::Parse { input, reason } => {
                write!(f, "invalid address syntax in {input:?}: {reason}")
            }
            AddrError::DepthMismatch { found, expected } => {
                write!(
                    f,
                    "address has {found} components but the address space has depth {expected}"
                )
            }
            AddrError::ComponentOutOfRange {
                level,
                component,
                arity,
            } => write!(
                f,
                "component {component} at level {level} exceeds the level arity {arity}"
            ),
            AddrError::InvalidShape { reason } => {
                write!(f, "invalid address space shape: {reason}")
            }
            AddrError::PrefixTooDeep { found, max } => {
                write!(f, "prefix has {found} components but at most {max} are allowed")
            }
        }
    }
}

impl std::error::Error for AddrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errors = [
            AddrError::Parse {
                input: "1..2".into(),
                reason: "empty component".into(),
            },
            AddrError::DepthMismatch {
                found: 2,
                expected: 3,
            },
            AddrError::ComponentOutOfRange {
                level: 1,
                component: 30,
                arity: 22,
            },
            AddrError::InvalidShape {
                reason: "depth must be positive".into(),
            },
            AddrError::PrefixTooDeep { found: 5, max: 3 },
        ];
        for e in errors {
            let text = e.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<AddrError>();
    }
}
