use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::{AddrError, Component, Depth, Prefix};

/// A complete process address `x(1).x(2).⋯.x(d)`.
///
/// Addresses identify processes and encode their position in the compound
/// spanning tree: the first component selects a depth-1 subgroup, the first
/// two components a depth-2 subgroup, and so on (Section 2.2 of the paper).
/// They are totally ordered lexicographically, which is what makes the
/// *smallest-addresses-first* delegate election deterministic across
/// processes without any agreement protocol.
///
/// # Example
///
/// ```rust
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use pmcast_addr::Address;
///
/// let addr: Address = "128.178.73".parse()?;
/// assert_eq!(addr.depth(), 3);
/// assert_eq!(addr.component(2), Some(178));
/// assert_eq!(addr.to_string(), "128.178.73");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Address {
    components: Vec<Component>,
}

impl Address {
    /// Creates an address from its components.
    ///
    /// The component vector must be non-empty; validation against a concrete
    /// [`crate::AddressSpace`] (depth and per-level arity) is performed
    /// separately by [`crate::AddressSpace::validate`].
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty; an address always has at least one
    /// component.
    pub fn new(components: Vec<Component>) -> Self {
        assert!(
            !components.is_empty(),
            "an address must have at least one component"
        );
        Self { components }
    }

    /// Returns the number of components, i.e. the depth `d` of the tree this
    /// address lives in.
    pub fn depth(&self) -> Depth {
        self.components.len()
    }

    /// Returns the component at the given 1-based level, or `None` if the
    /// level exceeds the depth.
    pub fn component(&self, level: Depth) -> Option<Component> {
        if level == 0 {
            return None;
        }
        self.components.get(level - 1).copied()
    }

    /// Returns all components as a slice.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Returns the prefix of the given *depth* (1-based, as in the paper):
    /// the prefix of depth `i` consists of the first `i − 1` components and
    /// denotes the subgroup of depth `i` this address belongs to.
    ///
    /// `prefix_of_depth(1)` is the empty (root) prefix; `prefix_of_depth(d)`
    /// contains all but the last component.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is 0 or exceeds `self.depth()`.
    pub fn prefix_of_depth(&self, depth: Depth) -> Prefix {
        assert!(
            depth >= 1 && depth <= self.depth(),
            "depth {depth} out of range 1..={}",
            self.depth()
        );
        Prefix::from_components(self.components[..depth - 1].to_vec())
    }

    /// Returns the full address viewed as a prefix (all `d` components).
    pub fn as_prefix(&self) -> Prefix {
        Prefix::from_components(self.components.clone())
    }

    /// Returns the longest common prefix of `self` and `other`.
    pub fn common_prefix(&self, other: &Address) -> Prefix {
        let shared = self
            .components
            .iter()
            .zip(other.components.iter())
            .take_while(|(a, b)| a == b)
            .count();
        Prefix::from_components(self.components[..shared].to_vec())
    }

    /// Returns the distance between two processes as defined in Section 2.2:
    /// if the longest shared prefix has `L` components (i.e. is of depth
    /// `L + 1`), the distance is `d − L`.  Two identical addresses have
    /// distance 0; two addresses differing already in their first component
    /// have distance `d`.
    ///
    /// # Panics
    ///
    /// Panics if the two addresses have different depths, which would make
    /// the distance meaningless.
    pub fn distance(&self, other: &Address) -> usize {
        assert_eq!(
            self.depth(),
            other.depth(),
            "distance is only defined between addresses of equal depth"
        );
        self.depth() - self.common_prefix(other).len()
    }

    /// Returns `true` if this address starts with the given prefix, i.e. the
    /// process belongs to the subgroup denoted by `prefix`.
    pub fn has_prefix(&self, prefix: &Prefix) -> bool {
        prefix.len() <= self.depth()
            && prefix
                .components()
                .iter()
                .zip(self.components.iter())
                .all(|(p, c)| p == c)
    }

    /// Returns the last component of the address.
    pub fn last_component(&self) -> Component {
        *self
            .components
            .last()
            .expect("an address always has at least one component")
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in &self.components {
            if !first {
                write!(f, ".")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromStr for Address {
    type Err = AddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(AddrError::Parse {
                input: s.to_string(),
                reason: "empty string".to_string(),
            });
        }
        let mut components = Vec::new();
        for part in s.split('.') {
            if part.is_empty() {
                return Err(AddrError::Parse {
                    input: s.to_string(),
                    reason: "empty component".to_string(),
                });
            }
            let value: Component = part.parse().map_err(|_| AddrError::Parse {
                input: s.to_string(),
                reason: format!("component {part:?} is not a non-negative integer"),
            })?;
            components.push(value);
        }
        Ok(Address::new(components))
    }
}

impl From<Vec<Component>> for Address {
    fn from(components: Vec<Component>) -> Self {
        Address::new(components)
    }
}

impl<const N: usize> From<[Component; N]> for Address {
    fn from(components: [Component; N]) -> Self {
        Address::new(components.to_vec())
    }
}

impl AsRef<[Component]> for Address {
    fn as_ref(&self) -> &[Component] {
        &self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Address {
        s.parse().expect("test address must parse")
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0", "1.2.3", "128.178.73.3", "21.0.0.7.9"] {
            assert_eq!(addr(s).to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for s in ["", ".", "1..2", "a.b", "-1.2", "1.2.", ".1.2", "1,2"] {
            assert!(s.parse::<Address>().is_err(), "input {s:?} should not parse");
        }
    }

    #[test]
    fn depth_and_components() {
        let a = addr("3.17.5");
        assert_eq!(a.depth(), 3);
        assert_eq!(a.component(1), Some(3));
        assert_eq!(a.component(3), Some(5));
        assert_eq!(a.component(4), None);
        assert_eq!(a.component(0), None);
        assert_eq!(a.last_component(), 5);
        assert_eq!(a.components(), &[3, 17, 5]);
    }

    #[test]
    fn prefix_of_depth_matches_paper_convention() {
        let a = addr("128.178.73.3");
        // Depth-1 prefix is the empty root prefix.
        assert_eq!(a.prefix_of_depth(1), Prefix::root());
        assert_eq!(a.prefix_of_depth(2), Prefix::from_components(vec![128]));
        assert_eq!(
            a.prefix_of_depth(4),
            Prefix::from_components(vec![128, 178, 73])
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn prefix_of_depth_zero_panics() {
        addr("1.2.3").prefix_of_depth(0);
    }

    #[test]
    fn common_prefix_and_distance() {
        let a = addr("128.178.73.3");
        let b = addr("128.178.41.21");
        let c = addr("18.12.2.183");
        assert_eq!(a.common_prefix(&b).len(), 2);
        assert_eq!(a.distance(&b), 2);
        assert_eq!(a.common_prefix(&c), Prefix::root());
        assert_eq!(a.distance(&c), 4);
        assert_eq!(a.distance(&a), 0);
        // Distance is symmetric.
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn has_prefix() {
        let a = addr("128.178.73.3");
        assert!(a.has_prefix(&Prefix::root()));
        assert!(a.has_prefix(&Prefix::from_components(vec![128, 178])));
        assert!(a.has_prefix(&a.as_prefix()));
        assert!(!a.has_prefix(&Prefix::from_components(vec![128, 177])));
        assert!(!a.has_prefix(&Prefix::from_components(vec![128, 178, 73, 3, 1])));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = [addr("2.0.0"), addr("1.9.9"), addr("1.10.0"), addr("1.9.10")];
        v.sort();
        let rendered: Vec<String> = v.iter().map(|a| a.to_string()).collect();
        assert_eq!(rendered, vec!["1.9.9", "1.9.10", "1.10.0", "2.0.0"]);
    }

    #[test]
    fn conversions() {
        let a: Address = vec![1, 2, 3].into();
        let b: Address = [1u32, 2, 3].into();
        assert_eq!(a, b);
        assert_eq!(a.as_ref(), &[1, 2, 3]);
    }

    #[test]
    fn serde_round_trip() {
        let a = addr("128.178.73.3");
        let json = serde_json::to_string(&a).unwrap();
        let back: Address = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_address_panics() {
        let _ = Address::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "equal depth")]
    fn distance_requires_equal_depth() {
        let _ = addr("1.2").distance(&addr("1.2.3"));
    }
}
