//! Property-based tests for the address / prefix / space model.

use pmcast_addr::{Address, AddressSpace, Prefix};
use proptest::prelude::*;

fn arb_components(max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..1000, 1..=max_len)
}

fn arb_space() -> impl Strategy<Value = AddressSpace> {
    prop::collection::vec(1u32..12, 1..5)
        .prop_map(|arities| AddressSpace::new(arities).expect("arities are positive"))
}

proptest! {
    /// Display → FromStr is the identity on addresses.
    #[test]
    fn address_display_parse_round_trip(components in arb_components(6)) {
        let address = Address::new(components);
        let rendered = address.to_string();
        let parsed: Address = rendered.parse().unwrap();
        prop_assert_eq!(address, parsed);
    }

    /// The distance between two addresses of equal depth is symmetric,
    /// bounded by the depth, and zero exactly for equal addresses.
    #[test]
    fn distance_is_a_pseudo_metric(
        a in arb_components(5),
        b in arb_components(5),
    ) {
        let depth = a.len().min(b.len());
        let a = Address::new(a[..depth].to_vec());
        let b = Address::new(b[..depth].to_vec());
        let d_ab = a.distance(&b);
        prop_assert_eq!(d_ab, b.distance(&a));
        prop_assert!(d_ab <= depth);
        prop_assert_eq!(d_ab == 0, a == b);
        prop_assert_eq!(a.distance(&a), 0);
    }

    /// The triangle inequality holds for the prefix-based distance
    /// (it is an ultrametric: d(a,c) <= max(d(a,b), d(b,c))).
    #[test]
    fn distance_is_an_ultrametric(
        a in prop::collection::vec(0u32..4, 4),
        b in prop::collection::vec(0u32..4, 4),
        c in prop::collection::vec(0u32..4, 4),
    ) {
        let a = Address::new(a);
        let b = Address::new(b);
        let c = Address::new(c);
        prop_assert!(a.distance(&c) <= a.distance(&b).max(b.distance(&c)));
    }

    /// Common prefixes really are prefixes of both addresses, and are the
    /// longest such.
    #[test]
    fn common_prefix_is_longest_shared(
        a in prop::collection::vec(0u32..4, 5),
        b in prop::collection::vec(0u32..4, 5),
    ) {
        let a = Address::new(a);
        let b = Address::new(b);
        let p = a.common_prefix(&b);
        prop_assert!(a.has_prefix(&p));
        prop_assert!(b.has_prefix(&p));
        if p.len() < a.depth() {
            // Extending the common prefix by a's next component must not be a
            // prefix of b (otherwise it was not the longest).
            let extended = p.child(a.components()[p.len()]);
            prop_assert!(!b.has_prefix(&extended) || a.components()[p.len()] != b.components()[p.len()]);
        }
    }

    /// Dense index ↔ address conversion round-trips and preserves order.
    #[test]
    fn space_index_round_trip(space in arb_space(), seed in 0u64..10_000) {
        let capacity = space.capacity();
        let index = (seed as u128) % capacity;
        let address = space.address_of_index(index);
        prop_assert!(space.validate(&address).is_ok());
        prop_assert_eq!(space.index_of_address(&address).unwrap(), index);

        // Order preservation against a second index.
        let other_index = ((seed as u128).wrapping_mul(31)) % capacity;
        let other = space.address_of_index(other_index);
        prop_assert_eq!(index.cmp(&other_index), address.cmp(&other));
    }

    /// Every prefix of an address contains the address, and prefixes of
    /// increasing depth form a chain.
    #[test]
    fn prefixes_form_a_chain(components in arb_components(6)) {
        let address = Address::new(components);
        let mut previous = Prefix::root();
        for depth in 1..=address.depth() {
            let prefix = address.prefix_of_depth(depth);
            prop_assert!(prefix.contains(&address));
            prop_assert!(previous.is_prefix_of(&prefix));
            prop_assert_eq!(prefix.depth(), depth);
            previous = prefix;
        }
    }

    /// capacity_under(prefix) times the number of addresses "above" equals
    /// the full capacity for prefixes made of valid components.
    #[test]
    fn capacity_decomposes(space in arb_space(), seed in 0u64..10_000) {
        let address = space.address_of_index((seed as u128) % space.capacity());
        for depth in 1..=space.depth() {
            let prefix = address.prefix_of_depth(depth);
            let below = space.capacity_under(&prefix);
            let above: u128 = space.arities()[..prefix.len()].iter().map(|&a| a as u128).product();
            prop_assert_eq!(below * above, space.capacity());
        }
    }
}
