//! Figure 4 — delivery probability of interested processes vs matching rate.
//!
//! Regenerates the figure data (quick profile by default, paper profile with
//! `PMCAST_BENCH_PROFILE=paper`) and measures the cost of one full multicast
//! trial at matching rate 0.5.

use criterion::{criterion_group, criterion_main, Criterion};
use pmcast_bench::{bench_profile, publish_rows};
use pmcast_sim::experiments::reliability;
use pmcast_sim::runner::{run_trial, ExperimentConfig};

fn bench(c: &mut Criterion) {
    let rows = reliability::run(bench_profile());
    publish_rows(
        "fig4_reliability",
        "Figure 4 — delivery probability of interested processes",
        &rows,
    );

    let config = ExperimentConfig::quick().with_matching_rate(0.5).with_trials(1);
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("pmcast_trial_n216_rate05", |b| {
        let mut trial = 0usize;
        b.iter(|| {
            trial += 1;
            run_trial(&config, trial)
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
