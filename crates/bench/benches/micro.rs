//! Micro-benchmarks of the protocol's hot paths: predicate matching,
//! interest regrouping, delegate election / view construction, matching-rate
//! computation and one gossip round of a mid-sized group.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use pmcast_addr::{AddressSpace, Prefix};
use pmcast_core::{
    GenuineFactory, Gossip, MulticastProtocol, PmcastConfig, PmcastFactory, ProtocolFactory,
    SharedViews,
};
use pmcast_interest::{Event, Filter, Interest, InterestSummary, Interner, Predicate};
use pmcast_membership::{
    AssignmentOracle, DelegateView, DelegateViewConfig, GlobalOracleView, ImplicitRegularTree,
    InterestOracle, MembershipView, TopicOracle, TreeTopology, TOPIC_ATTRIBUTE,
};
use pmcast_net::{ChannelTransport, Frame, Seen, Transport};
use pmcast_simnet::{FaultPlan, NetworkConfig, ProcessId, Simulation};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn bench(c: &mut Criterion) {
    // Predicate / filter matching throughput.
    let filter = Filter::new()
        .with("b", Predicate::gt(1.0))
        .with("c", Predicate::open_range(20.0, 30.0))
        .with("e", Predicate::one_of(["Bob", "Tom"]));
    let event = Event::builder(1).int("b", 4).float("c", 25.0).str("e", "Tom").build();
    c.bench_function("filter_match", |b| b.iter(|| filter.matches(&event)));

    // Interest regrouping of 64 subscriptions.
    let filters: Vec<Filter> = (0..64)
        .map(|i| Filter::new().with("b", Predicate::eq_int(i)))
        .collect();
    c.bench_function("interest_regrouping_64", |b| {
        b.iter(|| InterestSummary::from_filters(filters.iter().cloned()))
    });

    // Shared-view construction for the paper-scale tree (a = 22, d = 3).
    let big = ImplicitRegularTree::new(AddressSpace::regular(3, 22).expect("valid"));
    let mut group = c.benchmark_group("views");
    group.sample_size(10);
    group.bench_function("shared_views_build_n10648", |b| {
        b.iter(|| SharedViews::build(&big, 3))
    });
    group.finish();

    // Matching-rate computation against an assignment oracle.
    let topology = ImplicitRegularTree::new(AddressSpace::regular(3, 8).expect("valid"));
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let oracle = Arc::new(AssignmentOracle::sample(&topology, 0.5, &mut rng));
    let global_view = || -> Arc<dyn MembershipView> { Arc::new(GlobalOracleView::new(512)) };
    let built = PmcastFactory::build(&topology, oracle.clone(), global_view(), &PmcastConfig::default());
    let process = &built.processes[0];
    let probe = Event::builder(9).build();
    c.bench_function("matching_rate_depth1_n512", |b| {
        b.iter(|| process.matching_rate(1, &probe))
    });
    c.bench_function("oracle_subtree_count_n512", |b| {
        b.iter(|| oracle.interested_count_under(&pmcast_addr::Prefix::from_components(vec![3]), &probe))
    });

    // The zero-copy gossip hot path: forwarding a buffered event to one
    // fanout target means cloning the `Gossip` — an Arc refcount bump, not a
    // deep copy of the attribute map.  This is the per-message unit cost of
    // the dissemination loop; track it across PRs to keep the hot path flat.
    let heavy_event = Event::builder(77)
        .int("b", 4)
        .float("c", 25.0)
        .str("e", "a reasonably long string attribute payload")
        .str("symbol", "NESN")
        .int("volume", 10_000)
        .build();
    let template = Gossip::new(heavy_event, 2, 0.5, 1);
    c.bench_function("gossip_clone_zero_copy", |b| b.iter(|| template.clone()));

    // Generic-dispatch guard for the API redesign: publishing through the
    // `MulticastProtocol` trait bound is monomorphized, so it must cost the
    // same as calling the concrete process directly — compare the two cases
    // below (they run the identical dedup-hit path: the event is already
    // seen, so per-iteration state does not grow).  Any gap between them
    // would mean the trait boundary put dynamic dispatch or copies on the
    // hot path, endangering the ~13.5 ns/target number tracked in
    // BENCH_PR1.json.
    fn publish_generic<P: MulticastProtocol>(process: &mut P, event: Arc<pmcast_interest::Event>) {
        process.publish(event);
    }
    let mut dispatch_group =
        PmcastFactory::build(&topology, oracle.clone(), global_view(), &PmcastConfig::default());
    let dup = Arc::new(Event::builder(123).int("b", 1).build());
    let mut direct_process = dispatch_group.processes.remove(0);
    let mut generic_process = dispatch_group.processes.remove(0);
    direct_process.publish(Arc::clone(&dup));
    publish_generic(&mut generic_process, Arc::clone(&dup));
    c.bench_function("direct_dispatch_publish", |b| {
        b.iter(|| direct_process.publish(Arc::clone(&dup)))
    });
    c.bench_function("generic_dispatch_publish", |b| {
        b.iter(|| publish_generic(&mut generic_process, Arc::clone(&dup)))
    });

    // Fanout sampling through the `MembershipView` trait boundary: the
    // per-target candidate lookup must stay a cheap virtual call on top of
    // the index shift it replaced.  `fanout_draw_direct` is the historical
    // inline computation; `fanout_draw_through_view` routes the identical
    // arithmetic through `Arc<dyn MembershipView>`.  Any gap beyond a few
    // nanoseconds would mean the membership refactor taxed the hot path.
    let draw_view = global_view();
    let mut draw_rng = ChaCha8Rng::seed_from_u64(8);
    c.bench_function("fanout_draw_direct", |b| {
        b.iter(|| {
            let own = 37usize;
            let mut acc = 0usize;
            for _ in 0..4 {
                let pick = draw_rng.gen_range(0..511);
                acc += if pick >= own { pick + 1 } else { pick };
            }
            acc
        })
    });
    c.bench_function("fanout_draw_through_view", |b| {
        b.iter(|| {
            let own = 37usize;
            let mut acc = 0usize;
            for _ in 0..4 {
                let pick = draw_rng.gen_range(0..draw_view.peer_count(own));
                acc += draw_view.peer_at(own, pick);
            }
            acc
        })
    });

    // Depth-structured candidate draws through the hierarchical
    // `DelegateView` (the PR 4 membership provider): rebuild one depth's
    // candidate list through `knows_at_depth` — an O(slots) slot-group
    // lookup, no flat-view scan — then draw F distinct targets by partial
    // Fisher–Yates over the reused buffer, exactly the `gossip_depth` hot
    // path.  Both vectors are allocated once outside the iteration, so the
    // per-draw cost must stay allocation-free and within a few nanoseconds
    // of the flat `fanout_draw_through_view` boundary.
    let delegate_view: Arc<dyn MembershipView> = Arc::new(DelegateView::bootstrap(
        8,
        3,
        DelegateViewConfig::default(),
        8,
    ));
    // The depth-2 shared view of process 37 (prefix 0.4): three delegates
    // of each subgroup 0.g — the positions pmcast iterates at that depth.
    let view_targets: Vec<usize> = (0..8usize)
        .flat_map(|g| (0..3usize).map(move |r| g * 8 + r))
        .collect();
    let mut delegate_candidates: Vec<usize> = Vec::with_capacity(view_targets.len());
    c.bench_function("delegate_draw", |b| {
        b.iter(|| {
            let own = 37usize;
            delegate_candidates.clear();
            delegate_candidates.extend(
                view_targets
                    .iter()
                    .copied()
                    .filter(|&p| p != own && delegate_view.knows_at_depth(own, 2, p)),
            );
            let mut acc = 0usize;
            let picks = 4.min(delegate_candidates.len());
            for slot in 0..picks {
                let swap = draw_rng.gen_range(slot..delegate_candidates.len());
                delegate_candidates.swap(slot, swap);
                acc += delegate_candidates[slot];
            }
            acc
        })
    });

    // The audience hashcons hit path: interning an audience the table
    // already holds is a hash + set probe + refcount bump — no allocation
    // and no group scan.  This is the per-distinct-audience unit behind the
    // multi-topic workloads: a 10k-event stream over 50 topics pays ~50
    // audience constructions, and every other registration lands here.
    let audience_space = AddressSpace::regular(3, 8).expect("valid");
    let audience_members = (0..512u128)
        .step_by(8)
        .map(|i| audience_space.address_of_index(i))
        .collect::<Vec<_>>();
    let audience_interner: Interner<AssignmentOracle> = Interner::new();
    let probe_audience =
        AssignmentOracle::with_space(audience_members, audience_space.clone());
    audience_interner.intern(&probe_audience);
    c.bench_function("audience_hashcons_hit", |b| {
        b.iter(|| audience_interner.intern(&probe_audience))
    });

    // Aggregated interest routing's addition to the fanout draw: before
    // drawing, each distinct subgroup's subtree summary is consulted once
    // (consecutive slot positions share a memoized verdict) and vetoed
    // subtrees never consume a pick.  Same view, RNG and Fisher–Yates as
    // `delegate_draw` above, so the gap between the two cases is the whole
    // cost of the veto sweep: it must stay O(subgroups) summary probes per
    // entry-round, not O(candidates)·O(disjuncts).  Interest is clustered
    // one topic per depth-2 subgroup — the sparse-interest regime the skip
    // is built for, where 7 of 8 subtrees are provably uninterested.
    let clustered: Vec<Vec<u32>> = (0..512).map(|i| vec![(i / 8) % 12]).collect();
    let clustered_topics = TopicOracle::new(audience_space, clustered, 12);
    delegate_view.attach_interest_summaries(clustered_topics.subtree_summaries());
    let summary_targets: Vec<(usize, Prefix)> = (0..8u32)
        .flat_map(|g| {
            let prefix = Prefix::from_components(vec![0, g]);
            (0..3usize).map(move |r| (g as usize * 8 + r, prefix.clone()))
        })
        .collect();
    let topic_event = Event::builder(901).int(TOPIC_ATTRIBUTE, 4).build();
    let mut summary_candidates: Vec<usize> = Vec::with_capacity(summary_targets.len());
    c.bench_function("summary_skip_draw", |b| {
        b.iter(|| {
            let own = 37usize;
            summary_candidates.clear();
            let mut last: Option<(&Prefix, bool)> = None;
            summary_candidates.extend(summary_targets.iter().filter_map(|(p, subgroup)| {
                if *p == own || !delegate_view.knows_at_depth(own, 2, *p) {
                    return None;
                }
                let allowed = match last {
                    Some((prefix, verdict)) if prefix == subgroup => verdict,
                    _ => {
                        let verdict = delegate_view.summary_allows(subgroup, &topic_event);
                        last = Some((subgroup, verdict));
                        verdict
                    }
                };
                allowed.then_some(*p)
            }));
            let mut acc = 0usize;
            let picks = 4.min(summary_candidates.len());
            for slot in 0..picks {
                let swap = draw_rng.gen_range(slot..summary_candidates.len());
                summary_candidates.swap(slot, swap);
                acc += summary_candidates[slot];
            }
            acc
        })
    });

    // A membership join storm against the hierarchical provider: each
    // iteration is one crash + re-join transition pair of the same process
    // in a 512-process `DelegateView` — the hot path a resubscription-churn
    // (join_at/leave_at) scenario drives every round.  After the first
    // warm-up iteration the flat views and slot tables already contain the
    // revenant and its ring neighbours, so processing the join is pure
    // in-place work: pending-sweep retain, ring re-pin, sorted slot
    // admission — no allocation.  Track this next to `delegate_draw` to
    // keep lifecycle processing off the allocator.
    let storm_view = DelegateView::bootstrap(8, 3, DelegateViewConfig::default(), 8);
    storm_view.observe_crash(200);
    storm_view.observe_join(200);
    c.bench_function("join_storm", |b| {
        b.iter(|| {
            storm_view.observe_crash(200);
            storm_view.observe_join(200);
            storm_view.estimated_size()
        })
    });

    // The per-frame unit cost of the async runtime's publish path:
    // transport enqueue (channel push + in-flight accounting) → mailbox
    // pop → Seen-ring dedup → processed acknowledgement.  The ring is
    // pre-warmed so every iteration takes the dedup-hit branch, and the
    // mailbox never grows past one frame — the steady state must stay
    // allocation-free (ring, index set and channel queue all at fixed
    // capacity).  This is the pmcast-net analogue of
    // `gossip_clone_zero_copy`: the per-message floor of the daemon's
    // sustained publish loop.
    let (net_transport, net_mailboxes) = ChannelTransport::new(64, 2);
    let net_gossip = Gossip::new(
        Event::builder(501).int("b", 1).str("symbol", "NESN").build(),
        1,
        0.5,
        0,
    );
    let mut net_seen = Seen::new(1024);
    net_seen.push(net_gossip.event.id());
    c.bench_function("net_publish_path", |b| {
        b.iter(|| {
            let sent =
                net_transport.send_gossip(ProcessId(0), ProcessId(1), net_gossip.clone(), 64);
            debug_assert!(sent);
            match net_mailboxes[1].try_recv().expect("frame queued") {
                Frame::Gossip { gossip, .. } => {
                    let fresh = net_seen.push(gossip.event.id());
                    net_transport.mark_processed(1);
                    fresh
                }
                _ => unreachable!("only gossip frames are sent here"),
            }
        })
    });

    // One full gossip round of a 512-process group with a hot event.
    let mut group = c.benchmark_group("protocol");
    group.sample_size(10);
    group.bench_function("gossip_rounds_n512", |b| {
        b.iter(|| {
            let built =
                PmcastFactory::build(&topology, oracle.clone(), global_view(), &PmcastConfig::default());
            let mut sim = Simulation::new(built.processes, NetworkConfig::reliable(1));
            sim.process_mut(ProcessId(0)).pmcast(Event::builder(4).build());
            sim.run_rounds(5);
            sim.stats().messages_sent
        })
    });
    // The same workload through the timing-wheel delay queue: every link
    // carries 0–2 rounds of extra jitter, so each send is classified
    // (hash the link, pick the wheel slot) and each boundary drains the
    // wheel alongside `in_flight`.  The gap to `gossip_rounds_n512` is the
    // whole cost of the delay axis; it must stay a small constant factor,
    // and the axis must stay free when absent (that case IS
    // `gossip_rounds_n512`).
    group.bench_function("delayed_delivery_n512", |b| {
        b.iter(|| {
            let built =
                PmcastFactory::build(&topology, oracle.clone(), global_view(), &PmcastConfig::default());
            let config = NetworkConfig::reliable(1)
                .with_fault_plan(FaultPlan::default().with_link_delay(0, 2));
            let mut sim = Simulation::new(built.processes, config);
            sim.process_mut(ProcessId(0)).pmcast(Event::builder(4).build());
            sim.run_rounds(5);
            sim.stats().messages_sent
        })
    });
    // The genuine baseline's rounds now index a candidate set cached at
    // accept time instead of rebuilding an O(audience) list per buffered
    // event per round (the ROADMAP open item); this case guards the cached
    // round cost at the same scale as `gossip_rounds_n512`.
    group.bench_function("genuine_rounds_n512", |b| {
        b.iter(|| {
            let built =
                GenuineFactory::build(&topology, oracle.clone(), global_view(), &PmcastConfig::default());
            let mut sim = Simulation::new(built.processes, NetworkConfig::reliable(1));
            sim.process_mut(ProcessId(0)).publish(Arc::new(Event::builder(4).build()));
            sim.run_rounds(5);
            sim.stats().messages_sent
        })
    });
    group.finish();

    // Active-set scheduling guard: one engine step of a *fully quiescent*
    // paper-scale group (n = 22³ = 10 648) after a completed dissemination.
    // With the sparse core a quiescent step visits only the (empty) active
    // set and quiescence detection is O(1), so this must sit at nanoseconds
    // — independent of n — rather than the O(n) full-group sweep the dense
    // path pays.  A regression here silently turns the million-process
    // trial back into minutes.
    let paper_tree = ImplicitRegularTree::new(AddressSpace::regular(3, 22).expect("valid"));
    let mut paper_rng = ChaCha8Rng::seed_from_u64(5);
    let paper_oracle = Arc::new(AssignmentOracle::sample(&paper_tree, 0.5, &mut paper_rng));
    let paper_view: Arc<dyn MembershipView> =
        Arc::new(GlobalOracleView::new(paper_tree.member_count()));
    let built = PmcastFactory::build(
        &paper_tree,
        paper_oracle,
        paper_view,
        &PmcastConfig::default(),
    );
    let mut quiet_sim = Simulation::new(built.processes, NetworkConfig::reliable(1));
    quiet_sim
        .process_mut(ProcessId(0))
        .pmcast(Event::builder(31).int("b", 1).build());
    quiet_sim.run_until_quiescent(300);
    assert!(quiet_sim.is_quiescent(), "warm-up dissemination must finish");
    c.bench_function("quiescent_round_n10648", |b| {
        b.iter(|| {
            quiet_sim.step();
            quiet_sim.is_quiescent()
        })
    });

    // Sparse group construction at the million-process scale (a = 32,
    // d = 4): the shared per-(depth, prefix) view tables — 33 825 views
    // and one shared view *stack* per leaf subgroup instead of a million
    // per-process tables.  This is the fixed cost every 32⁴ trial pays
    // before the first round; it must stay in the hundreds of
    // milliseconds, not scale like n separate view materializations.
    let million_tree = ImplicitRegularTree::new(AddressSpace::regular(4, 32).expect("valid"));
    let mut group = c.benchmark_group("scale");
    group.sample_size(10);
    group.bench_function("sparse_group_build_n1m", |b| {
        b.iter(|| SharedViews::build(&million_tree, 3).view_count())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
