//! Baseline comparison — pmcast vs flooding gossip broadcast vs genuine
//! multicast on delivery, spurious reception and message cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmcast_bench::{bench_profile, publish_rows};
use pmcast_sim::experiments::baselines;
use pmcast_sim::runner::{run_trial, ExperimentConfig, Protocol};

fn bench(c: &mut Criterion) {
    let rows = baselines::run(bench_profile());
    publish_rows(
        "baseline_comparison",
        "Baselines — pmcast vs flooding broadcast vs genuine multicast",
        &rows,
    );

    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    for (name, kind) in [
        ("pmcast", Protocol::Pmcast),
        ("flooding", Protocol::FloodBroadcast),
        ("genuine", Protocol::GenuineMulticast),
    ] {
        let config = ExperimentConfig::quick()
            .with_matching_rate(0.5)
            .with_trials(1)
            .with_protocol_kind(kind);
        group.bench_with_input(BenchmarkId::new("trial", name), &config, |b, config| {
            let mut trial = 0usize;
            b.iter(|| {
                trial += 1;
                run_trial(config, trial)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
