//! Figure 6 — delivery probability as the subgroup size (and thus the group
//! size n = a³) grows, for matching rates 0.5 and 0.2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmcast_bench::{bench_profile, publish_rows};
use pmcast_sim::experiments::scalability;
use pmcast_sim::runner::{run_trial, ExperimentConfig};

fn bench(c: &mut Criterion) {
    let rows = scalability::run(bench_profile());
    publish_rows(
        "fig6_scalability",
        "Figure 6 — scalability with growing subgroup size",
        &rows,
    );

    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    for arity in [4u32, 6, 8] {
        let config = ExperimentConfig::quick()
            .with_arity(arity)
            .with_matching_rate(0.5)
            .with_protocol(pmcast_core::PmcastConfig::paper_scalability())
            .with_trials(1);
        group.bench_with_input(BenchmarkId::new("pmcast_trial", arity), &config, |b, config| {
            let mut trial = 0usize;
            b.iter(|| {
                trial += 1;
                run_trial(config, trial)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
