//! Round-count validation — simulated rounds vs the analytical budget of
//! Equation 13, plus the cost of the analytical machinery itself.

use criterion::{criterion_group, criterion_main, Criterion};
use pmcast_analysis::{markov::InfectionChain, tree::TreeModel, EnvParams, GroupParams};
use pmcast_bench::{bench_profile, publish_rows};
use pmcast_sim::experiments::rounds;

fn bench(c: &mut Criterion) {
    let rows = rounds::run(bench_profile());
    publish_rows(
        "rounds_bound",
        "Rounds — simulated rounds vs analytical budget (Eq. 13)",
        &rows,
    );

    let model = TreeModel::new(
        GroupParams { arity: 22, depth: 3, redundancy: 3, fanout: 2 },
        EnvParams::default(),
    );
    let mut group = c.benchmark_group("analysis");
    group.bench_function("tree_model_reliability_pd05", |b| {
        b.iter(|| model.reliability(0.5))
    });
    group.bench_function("infection_chain_100_processes_20_rounds", |b| {
        b.iter(|| {
            let mut chain = InfectionChain::new(100, 2.0, &EnvParams::default());
            chain.run(20);
            chain.expected_infected()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
