//! Figure 7 — tuned (audience inflation, Section 5.3) vs untuned pmcast.

use criterion::{criterion_group, criterion_main, Criterion};
use pmcast_bench::{bench_profile, publish_rows};
use pmcast_sim::experiments::tuning;
use pmcast_sim::runner::{run_trial, ExperimentConfig};

fn bench(c: &mut Criterion) {
    let rows = tuning::run(bench_profile());
    publish_rows("fig7_tuning", "Figure 7 — tuned vs untuned algorithm", &rows);

    let untuned = ExperimentConfig::quick().with_matching_rate(0.1).with_trials(1);
    let tuned = untuned
        .clone()
        .with_protocol(untuned.protocol.clone().with_tuning(tuning::DEFAULT_THRESHOLD));
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("untuned_trial_rate01", |b| {
        let mut trial = 0usize;
        b.iter(|| {
            trial += 1;
            run_trial(&untuned, trial)
        });
    });
    group.bench_function("tuned_trial_rate01", |b| {
        let mut trial = 0usize;
        b.iter(|| {
            trial += 1;
            run_trial(&tuned, trial)
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
