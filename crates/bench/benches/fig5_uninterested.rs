//! Figure 5 — reception probability of uninterested processes vs matching
//! rate, contrasted with the flooding baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use pmcast_bench::{bench_profile, publish_rows};
use pmcast_sim::experiments::spurious;
use pmcast_sim::runner::{run_trial, ExperimentConfig, Protocol};

fn bench(c: &mut Criterion) {
    let rows = spurious::run(bench_profile());
    publish_rows(
        "fig5_uninterested",
        "Figure 5 — reception probability of uninterested processes",
        &rows,
    );

    let pmcast = ExperimentConfig::quick().with_matching_rate(0.2).with_trials(1);
    let flooding = pmcast.clone().with_protocol_kind(Protocol::FloodBroadcast);
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("pmcast_trial_rate02", |b| {
        let mut trial = 0usize;
        b.iter(|| {
            trial += 1;
            run_trial(&pmcast, trial)
        });
    });
    group.bench_function("flooding_trial_rate02", |b| {
        let mut trial = 0usize;
        b.iter(|| {
            trial += 1;
            run_trial(&flooding, trial)
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
