//! Membership scalability (Equations 2 and 12) — per-process view sizes and
//! the cost of building concrete view tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmcast_addr::AddressSpace;
use pmcast_bench::{bench_profile, publish_rows};
use pmcast_interest::Filter;
use pmcast_membership::{GroupTree, TreeTopology, ViewTable};
use pmcast_sim::experiments::views;

fn bench(c: &mut Criterion) {
    let rows = views::run(bench_profile());
    publish_rows(
        "view_sizes",
        "Membership scalability — per-process view sizes (Eq. 2/12)",
        &rows,
    );

    let mut group = c.benchmark_group("view_size");
    group.sample_size(10);
    for arity in [4u32, 8] {
        let space = AddressSpace::regular(3, arity).expect("valid shape");
        let tree = GroupTree::fully_populated(space, Filter::match_all());
        let owner = tree.members()[0].clone();
        group.bench_with_input(
            BenchmarkId::new("build_view_table", arity),
            &(&tree, &owner),
            |b, (tree, owner)| b.iter(|| ViewTable::build(tree, owner, 3)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
