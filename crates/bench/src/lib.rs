//! Shared helpers for the pmcast benchmark harness.
//!
//! Every bench target regenerates the data of one evaluation figure (using
//! the quick profile by default so `cargo bench` terminates in minutes;
//! set `PMCAST_BENCH_PROFILE=paper` to run at the paper's scale) and then
//! measures a representative kernel with Criterion.

use pmcast_sim::experiments::Profile;
use pmcast_sim::report::{to_ascii_table, write_csv, FigureRow};

/// The profile benches run with, controlled by `PMCAST_BENCH_PROFILE`.
pub fn bench_profile() -> Profile {
    match std::env::var("PMCAST_BENCH_PROFILE").as_deref() {
        Ok("paper") => Profile::Paper,
        _ => Profile::Quick,
    }
}

/// Prints the rows of a figure and writes them under `target/figures/`.
pub fn publish_rows<R: FigureRow>(name: &str, title: &str, rows: &[R]) {
    println!("{}", to_ascii_table(title, rows));
    let dir = pmcast_sim::report::default_output_dir();
    match write_csv(&dir, name, rows) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(error) => eprintln!("could not write {name}.csv: {error}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_quick() {
        // The environment variable is not set in tests.
        if std::env::var("PMCAST_BENCH_PROFILE").is_err() {
            assert_eq!(bench_profile(), Profile::Quick);
        }
    }
}
