use std::sync::Arc;

use serde::{Deserialize, Serialize};

use pmcast_addr::Depth;
use pmcast_interest::Event;

/// A pmcast gossip message (the payload of `SEND` in Figure 3).
///
/// Besides the event itself, a gossip carries the depth at which the event
/// is currently being multicast, the matching rate computed for that depth,
/// and the round counter within that depth — everything a receiver needs to
/// file the event into the right gossip buffer and keep forwarding it with
/// a consistent round budget.
///
/// The event rides in an [`Arc`], so the hot path of the simulation —
/// cloning one gossip per target per round — bumps a reference count
/// instead of deep-copying the attribute map: a multicast allocates its
/// payload exactly once, no matter how many processes, rounds and fanout
/// targets it traverses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gossip {
    /// The multicast event being disseminated (shared, never copied).
    pub event: Arc<Event>,
    /// The tree depth the event is currently gossiped at.
    pub depth: Depth,
    /// The matching rate (fraction of interested entries) computed for this
    /// depth by the process that promoted the event to it.
    pub rate: f64,
    /// The round counter of the event within this depth.
    pub round: u32,
}

impl Gossip {
    /// Creates a gossip message; accepts an owned [`Event`] or an existing
    /// shared handle.
    pub fn new(event: impl Into<Arc<Event>>, depth: Depth, rate: f64, round: u32) -> Self {
        Self {
            event: event.into(),
            depth,
            rate,
            round,
        }
    }

    /// Wire size of the non-payload fields (depth, rate, round counter).
    pub(crate) const HEADER_SIZE: usize =
        std::mem::size_of::<u32>() + std::mem::size_of::<f64>() + std::mem::size_of::<u32>();

    /// Approximate wire size in bytes, used for traffic accounting.
    pub fn wire_size(&self) -> usize {
        self.event.payload_size() + Self::HEADER_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_size() {
        let event = Event::builder(4).int("b", 2).str("e", "Bob").build();
        let gossip = Gossip::new(event.clone(), 2, 0.5, 3);
        assert_eq!(gossip.depth, 2);
        assert_eq!(gossip.round, 3);
        assert!((gossip.rate - 0.5).abs() < f64::EPSILON);
        assert_eq!(*gossip.event, event);
        assert!(gossip.wire_size() > event.payload_size());
    }

    #[test]
    fn cloning_shares_the_payload() {
        let gossip = Gossip::new(Event::builder(1).int("b", 1).build(), 1, 1.0, 0);
        let copy = gossip.clone();
        assert!(Arc::ptr_eq(&gossip.event, &copy.event));
        assert_eq!(Arc::strong_count(&gossip.event), 2);
    }

    #[test]
    fn serde_round_trip() {
        let gossip = Gossip::new(Event::builder(9).float("c", 1.25).build(), 1, 0.25, 0);
        let json = serde_json::to_string(&gossip).unwrap();
        let back: Gossip = serde_json::from_str(&json).unwrap();
        assert_eq!(gossip, back);
    }
}
