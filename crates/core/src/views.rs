use std::sync::Arc;

use pmcast_addr::{Address, Component, Depth, Prefix};
use pmcast_simnet::ProcessId;
use rustc_hash::FxHashMap;

use pmcast_membership::TreeTopology;

/// One gossip destination in a per-depth view: the process, its dense
/// simulation identifier, and the subgroup it represents at that depth (its
/// own address at the leaf depth).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GossipTarget {
    /// The destination process address.
    pub address: Address,
    /// The destination's simulation identifier.
    pub id: ProcessId,
    /// The subgroup the destination represents at this depth.
    pub subgroup: Prefix,
}

/// One shared per-depth view: the gossip targets every process under the
/// corresponding prefix iterates at that depth.
pub type DepthView = Arc<Vec<GossipTarget>>;

/// A process's whole view stack — its [`DepthView`]s of depths `1..=d`,
/// one allocation shared by every process of the same leaf subgroup.
pub type ViewStack = Arc<Vec<DepthView>>;

/// Precomputed, shareable per-depth views for a whole group.
///
/// A process's view at depth `i` only depends on its own prefix of depth `i`
/// (Section 2.2), so instead of materialising `n` view tables the simulation
/// shares one table per `(depth, prefix)` pair — a few hundred entries even
/// for the 10 000-process evaluation group.  Every target also carries the
/// dense [`ProcessId`] so protocol code never needs to search for addresses
/// at gossip time.
#[derive(Debug, Clone)]
pub struct SharedViews {
    depth: Depth,
    redundancy: usize,
    // Keyed by the raw component vector of the prefix so lookups hash a
    // borrowed `&[Component]` slice — no per-call `Prefix` allocation and
    // no SipHash on the gossip hot path.
    views: FxHashMap<Vec<Component>, DepthView>,
    // One view *stack* per leaf subgroup: the views of depths `1..=d` of
    // every process in that subgroup (siblings hold identical views at every
    // depth, so one shared allocation serves the whole leaf group).
    stacks: FxHashMap<Vec<Component>, ViewStack>,
    addresses: Arc<Vec<Address>>,
}

impl SharedViews {
    /// Builds the views of every populated prefix of the topology, electing
    /// `redundancy` delegates per subgroup.
    pub fn build<T: TreeTopology>(topology: &T, redundancy: usize) -> Self {
        let depth = topology.depth();
        // `members()` returns addresses in (lexicographic) address order, so
        // the dense identifier of an address is its position here and every
        // subtree occupies a contiguous index range — both facts the builder
        // below relies on instead of a million-entry id map.
        let addresses: Vec<Address> = topology.members();
        debug_assert!(addresses.windows(2).all(|pair| pair[0] < pair[1]));
        let id_of = |address: &Address| -> ProcessId {
            ProcessId(
                addresses
                    .binary_search(address)
                    .expect("view targets are group members"),
            )
        };

        let mut views: FxHashMap<Vec<Component>, DepthView> = FxHashMap::default();
        let mut stacks: FxHashMap<Vec<Component>, ViewStack> = FxHashMap::default();
        // Enumerate populated prefixes breadth-first from the root.  Each
        // frontier is in lexicographic order, so at the leaf level a single
        // cursor over `addresses` yields every subgroup's members (and their
        // dense identifiers) without re-materializing them per prefix.
        let mut frontier = vec![Prefix::root()];
        let mut cursor = 0usize;
        for level in 0..depth {
            let mut next_frontier = Vec::new();
            for prefix in &frontier {
                let view_depth = level + 1;
                let mut targets = Vec::new();
                if view_depth == depth {
                    // Leaf views: one target per neighbour process.
                    while cursor < addresses.len() && addresses[cursor].has_prefix(prefix) {
                        let address = addresses[cursor].clone();
                        targets.push(GossipTarget {
                            subgroup: address.as_prefix(),
                            address,
                            id: ProcessId(cursor),
                        });
                        cursor += 1;
                    }
                } else {
                    // Inner views: R delegates per populated child subgroup.
                    for component in topology.populated_children(prefix) {
                        let child = prefix.child(component);
                        for address in topology.delegates(&child, redundancy) {
                            let id = id_of(&address);
                            targets.push(GossipTarget {
                                subgroup: child.clone(),
                                address,
                                id,
                            });
                        }
                        next_frontier.push(child);
                    }
                }
                views.insert(prefix.components().to_vec(), Arc::new(targets));
            }
            if level + 1 == depth {
                // `frontier` currently holds the leaf prefixes: share one
                // view stack per leaf subgroup.
                for prefix in &frontier {
                    let stack: Vec<DepthView> = (1..=depth)
                        .map(|view_depth| {
                            Arc::clone(&views[&prefix.components()[..view_depth - 1]])
                        })
                        .collect();
                    stacks.insert(prefix.components().to_vec(), Arc::new(stack));
                }
            }
            frontier = next_frontier;
        }

        Self {
            depth,
            redundancy,
            views,
            stacks,
            addresses: Arc::new(addresses),
        }
    }

    /// The tree depth `d`.
    pub fn depth(&self) -> Depth {
        self.depth
    }

    /// The redundancy factor the views were built with.
    pub fn redundancy(&self) -> usize {
        self.redundancy
    }

    /// All member addresses in dense-identifier order.
    pub fn addresses(&self) -> &Arc<Vec<Address>> {
        &self.addresses
    }

    /// Number of member processes.
    pub fn member_count(&self) -> usize {
        self.addresses.len()
    }

    /// The dense identifier of an address (`O(log n)` over the sorted
    /// member list).
    pub fn id_of(&self, address: &Address) -> Option<ProcessId> {
        self.addresses.binary_search(address).ok().map(ProcessId)
    }

    /// The address of a dense identifier.
    pub fn address_of(&self, id: ProcessId) -> &Address {
        &self.addresses[id.0]
    }

    /// The view a process with the given address holds at the given depth:
    /// the gossip targets below its own prefix of that depth.
    ///
    /// # Panics
    ///
    /// Panics if the depth is out of range.
    pub fn view_for(&self, address: &Address, depth: Depth) -> DepthView {
        assert!(depth >= 1 && depth <= self.depth, "depth {depth} out of range");
        self.views
            .get(&address.components()[..depth - 1])
            .cloned()
            .unwrap_or_else(|| Arc::new(Vec::new()))
    }

    /// The whole view stack of a process — its views of depths `1..=d`,
    /// `stack[i]` being the depth `i + 1` view.  The stack allocation is
    /// shared by all processes of the same leaf subgroup, so a
    /// million-process group holds one stack per leaf group, not per
    /// process.  Returns an empty stack for an address whose leaf subgroup
    /// is not populated.
    pub fn view_stack(&self, address: &Address) -> ViewStack {
        self.stacks
            .get(&address.components()[..self.depth - 1])
            .cloned()
            .unwrap_or_else(|| Arc::new(Vec::new()))
    }

    /// Number of distinct `(depth, prefix)` views materialised.
    pub fn view_count(&self) -> usize {
        self.views.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcast_addr::AddressSpace;
    use pmcast_membership::ImplicitRegularTree;

    fn views() -> SharedViews {
        let topology = ImplicitRegularTree::new(AddressSpace::regular(3, 3).unwrap());
        SharedViews::build(&topology, 2)
    }

    #[test]
    fn build_covers_all_prefixes() {
        let v = views();
        assert_eq!(v.depth(), 3);
        assert_eq!(v.redundancy(), 2);
        assert_eq!(v.member_count(), 27);
        // Prefix counts: 1 root + 3 depth-2 + 9 depth-3 = 13 views.
        assert_eq!(v.view_count(), 13);
    }

    #[test]
    fn inner_views_have_r_delegates_per_subgroup() {
        let v = views();
        let address: Address = "1.2.0".parse().unwrap();
        let root_view = v.view_for(&address, 1);
        assert_eq!(root_view.len(), 3 * 2);
        // Every target's subgroup is a depth-2 prefix.
        assert!(root_view.iter().all(|t| t.subgroup.len() == 1));
        // Delegates are the smallest addresses of their subgroup.
        assert!(root_view
            .iter()
            .any(|t| t.address.to_string() == "0.0.0" && t.subgroup.components() == [0]));
        let depth2 = v.view_for(&address, 2);
        assert_eq!(depth2.len(), 3 * 2);
        assert!(depth2.iter().all(|t| t.subgroup.components()[0] == 1));
    }

    #[test]
    fn leaf_views_list_neighbours() {
        let v = views();
        let address: Address = "2.1.2".parse().unwrap();
        let leaf = v.view_for(&address, 3);
        assert_eq!(leaf.len(), 3);
        assert!(leaf.iter().all(|t| t.subgroup.len() == 3));
        assert!(leaf.iter().any(|t| t.address == address));
    }

    #[test]
    fn views_are_shared_between_siblings() {
        let v = views();
        let a = v.view_for(&"0.1.2".parse().unwrap(), 2);
        let b = v.view_for(&"0.2.0".parse().unwrap(), 2);
        assert!(Arc::ptr_eq(&a, &b), "siblings share the same view allocation");
    }

    #[test]
    fn id_and_address_round_trip() {
        let v = views();
        for index in 0..v.member_count() {
            let id = ProcessId(index);
            let address = v.address_of(id).clone();
            assert_eq!(v.id_of(&address), Some(id));
        }
        assert_eq!(v.id_of(&"9.9.9".parse().unwrap()), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_depth_panics() {
        let v = views();
        let _ = v.view_for(&"0.0.0".parse().unwrap(), 4);
    }
}
