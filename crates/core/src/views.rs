use std::collections::HashMap;
use std::sync::Arc;

use pmcast_addr::{Address, Depth, Prefix};
use pmcast_simnet::ProcessId;

use pmcast_membership::TreeTopology;

/// One gossip destination in a per-depth view: the process, its dense
/// simulation identifier, and the subgroup it represents at that depth (its
/// own address at the leaf depth).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GossipTarget {
    /// The destination process address.
    pub address: Address,
    /// The destination's simulation identifier.
    pub id: ProcessId,
    /// The subgroup the destination represents at this depth.
    pub subgroup: Prefix,
}

/// Precomputed, shareable per-depth views for a whole group.
///
/// A process's view at depth `i` only depends on its own prefix of depth `i`
/// (Section 2.2), so instead of materialising `n` view tables the simulation
/// shares one table per `(depth, prefix)` pair — a few hundred entries even
/// for the 10 000-process evaluation group.  Every target also carries the
/// dense [`ProcessId`] so protocol code never needs to search for addresses
/// at gossip time.
#[derive(Debug, Clone)]
pub struct SharedViews {
    depth: Depth,
    redundancy: usize,
    views: HashMap<Prefix, Arc<Vec<GossipTarget>>>,
    ids: HashMap<Address, ProcessId>,
    addresses: Arc<Vec<Address>>,
}

impl SharedViews {
    /// Builds the views of every populated prefix of the topology, electing
    /// `redundancy` delegates per subgroup.
    pub fn build<T: TreeTopology>(topology: &T, redundancy: usize) -> Self {
        let depth = topology.depth();
        let addresses: Vec<Address> = topology.members();
        let ids: HashMap<Address, ProcessId> = addresses
            .iter()
            .enumerate()
            .map(|(index, address)| (address.clone(), ProcessId(index)))
            .collect();

        let mut views: HashMap<Prefix, Arc<Vec<GossipTarget>>> = HashMap::new();
        // Enumerate populated prefixes breadth-first from the root.
        let mut frontier = vec![Prefix::root()];
        for level in 0..depth {
            let mut next_frontier = Vec::new();
            for prefix in &frontier {
                let view_depth = level + 1;
                let mut targets = Vec::new();
                if view_depth == depth {
                    // Leaf views: one target per neighbour process.
                    for address in topology.members_under(prefix) {
                        let id = ids[&address];
                        targets.push(GossipTarget {
                            subgroup: address.as_prefix(),
                            address,
                            id,
                        });
                    }
                } else {
                    // Inner views: R delegates per populated child subgroup.
                    for component in topology.populated_children(prefix) {
                        let child = prefix.child(component);
                        for address in topology.delegates(&child, redundancy) {
                            let id = ids[&address];
                            targets.push(GossipTarget {
                                subgroup: child.clone(),
                                address,
                                id,
                            });
                        }
                        next_frontier.push(child);
                    }
                }
                views.insert(prefix.clone(), Arc::new(targets));
            }
            frontier = next_frontier;
        }

        Self {
            depth,
            redundancy,
            views,
            ids,
            addresses: Arc::new(addresses),
        }
    }

    /// The tree depth `d`.
    pub fn depth(&self) -> Depth {
        self.depth
    }

    /// The redundancy factor the views were built with.
    pub fn redundancy(&self) -> usize {
        self.redundancy
    }

    /// All member addresses in dense-identifier order.
    pub fn addresses(&self) -> &Arc<Vec<Address>> {
        &self.addresses
    }

    /// Number of member processes.
    pub fn member_count(&self) -> usize {
        self.addresses.len()
    }

    /// The dense identifier of an address.
    pub fn id_of(&self, address: &Address) -> Option<ProcessId> {
        self.ids.get(address).copied()
    }

    /// The address of a dense identifier.
    pub fn address_of(&self, id: ProcessId) -> &Address {
        &self.addresses[id.0]
    }

    /// The view a process with the given address holds at the given depth:
    /// the gossip targets below its own prefix of that depth.
    ///
    /// # Panics
    ///
    /// Panics if the depth is out of range.
    pub fn view_for(&self, address: &Address, depth: Depth) -> Arc<Vec<GossipTarget>> {
        assert!(depth >= 1 && depth <= self.depth, "depth {depth} out of range");
        let prefix = address.prefix_of_depth(depth);
        self.views
            .get(&prefix)
            .cloned()
            .unwrap_or_else(|| Arc::new(Vec::new()))
    }

    /// Number of distinct `(depth, prefix)` views materialised.
    pub fn view_count(&self) -> usize {
        self.views.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcast_addr::AddressSpace;
    use pmcast_membership::ImplicitRegularTree;

    fn views() -> SharedViews {
        let topology = ImplicitRegularTree::new(AddressSpace::regular(3, 3).unwrap());
        SharedViews::build(&topology, 2)
    }

    #[test]
    fn build_covers_all_prefixes() {
        let v = views();
        assert_eq!(v.depth(), 3);
        assert_eq!(v.redundancy(), 2);
        assert_eq!(v.member_count(), 27);
        // Prefix counts: 1 root + 3 depth-2 + 9 depth-3 = 13 views.
        assert_eq!(v.view_count(), 13);
    }

    #[test]
    fn inner_views_have_r_delegates_per_subgroup() {
        let v = views();
        let address: Address = "1.2.0".parse().unwrap();
        let root_view = v.view_for(&address, 1);
        assert_eq!(root_view.len(), 3 * 2);
        // Every target's subgroup is a depth-2 prefix.
        assert!(root_view.iter().all(|t| t.subgroup.len() == 1));
        // Delegates are the smallest addresses of their subgroup.
        assert!(root_view
            .iter()
            .any(|t| t.address.to_string() == "0.0.0" && t.subgroup.components() == [0]));
        let depth2 = v.view_for(&address, 2);
        assert_eq!(depth2.len(), 3 * 2);
        assert!(depth2.iter().all(|t| t.subgroup.components()[0] == 1));
    }

    #[test]
    fn leaf_views_list_neighbours() {
        let v = views();
        let address: Address = "2.1.2".parse().unwrap();
        let leaf = v.view_for(&address, 3);
        assert_eq!(leaf.len(), 3);
        assert!(leaf.iter().all(|t| t.subgroup.len() == 3));
        assert!(leaf.iter().any(|t| t.address == address));
    }

    #[test]
    fn views_are_shared_between_siblings() {
        let v = views();
        let a = v.view_for(&"0.1.2".parse().unwrap(), 2);
        let b = v.view_for(&"0.2.0".parse().unwrap(), 2);
        assert!(Arc::ptr_eq(&a, &b), "siblings share the same view allocation");
    }

    #[test]
    fn id_and_address_round_trip() {
        let v = views();
        for index in 0..v.member_count() {
            let id = ProcessId(index);
            let address = v.address_of(id).clone();
            assert_eq!(v.id_of(&address), Some(id));
        }
        assert_eq!(v.id_of(&"9.9.9".parse().unwrap()), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_depth_panics() {
        let v = views();
        let _ = v.view_for(&"0.0.0".parse().unwrap(), 4);
    }
}
