//! Baseline dissemination protocols pmcast is compared against.
//!
//! Section 1 of the paper discusses the alternatives to a dedicated
//! gossip-based multicast:
//!
//! * **Gossip broadcast with filtering on delivery** (pbcast / lpbcast
//!   style): every process gossips every event to random members of the
//!   whole group; uninterested processes receive (and forward) events they
//!   will never deliver.  High reliability, maximal spurious traffic.
//! * **Genuine multicast**: only interested processes are ever contacted.
//!   With global interest knowledge this is maximally frugal; the paper
//!   argues that with realistic partial knowledge crucial forwarders may be
//!   missing — which our simulations can reproduce by restricting the
//!   membership view.
//!
//! Both baselines run over the same [`pmcast_simnet`] substrate and the same
//! interest oracles as pmcast, so the comparison isolates the dissemination
//! strategy itself.

use std::sync::Arc;

use pmcast_addr::Address;
use pmcast_analysis::pittel;
use pmcast_interest::{Event, EventId};
use pmcast_membership::{InterestOracle, TreeTopology};
use pmcast_simnet::{ProcessId, RoundContext, RoundProcess};
use rustc_hash::{FxHashMap, FxHashSet};

use crate::{DeliveryOutcome, Gossip, PmcastConfig};

/// Shared state of a buffered event in a flat gossip protocol.  As in the
/// pmcast hot path, the event is held through an [`Arc`] so forwarding never
/// copies the payload.
#[derive(Debug, Clone)]
struct FlatEntry {
    event: Arc<Event>,
    round: u32,
    budget: u32,
}

/// Gossip **broadcast** with filtering on delivery: every process forwards
/// every fresh event to `F` uniformly random members of the whole group for
/// the Pittel-bounded number of rounds; interest only decides whether the
/// event is delivered locally.
pub struct FloodBroadcastProcess {
    address: Address,
    id: ProcessId,
    fanout: usize,
    budget: u32,
    group_size: usize,
    oracle: Arc<dyn InterestOracle + Send + Sync>,
    buffered: FxHashMap<EventId, FlatEntry>,
    delivered: FxHashSet<EventId>,
    received: FxHashSet<EventId>,
    /// Reusable buffer for the fanout draw (indices into the target pool).
    picks: Vec<usize>,
}

impl std::fmt::Debug for FloodBroadcastProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FloodBroadcastProcess")
            .field("address", &self.address)
            .field("buffered", &self.buffered.len())
            .finish_non_exhaustive()
    }
}

impl FloodBroadcastProcess {
    /// Creates one flood-broadcast process.
    pub fn new(
        address: Address,
        id: ProcessId,
        group_size: usize,
        config: &PmcastConfig,
        oracle: Arc<dyn InterestOracle + Send + Sync>,
    ) -> Self {
        let budget = pittel::round_budget(group_size as f64, config.fanout as f64, &config.env)
            .min(config.max_rounds_per_depth);
        Self {
            address,
            id,
            fanout: config.fanout,
            budget,
            group_size,
            oracle,
            buffered: FxHashMap::default(),
            delivered: FxHashSet::default(),
            received: FxHashSet::default(),
            picks: Vec::new(),
        }
    }

    /// Publishes an event into the broadcast.
    pub fn broadcast(&mut self, event: Event) {
        self.accept(Arc::new(event));
    }

    fn accept(&mut self, event: Arc<Event>) {
        let id = event.id();
        // `received` doubles as the seen-set: once an event has been
        // buffered (and possibly garbage collected), later copies are
        // ignored so gossiping terminates.
        if !self.received.insert(id) {
            return;
        }
        if self.oracle.is_interested(&self.address, &event) {
            self.delivered.insert(id);
        }
        self.buffered.insert(
            id,
            FlatEntry {
                event,
                round: 0,
                budget: self.budget,
            },
        );
    }

    /// Returns `true` if the event was delivered locally.
    pub fn has_delivered(&self, event: EventId) -> bool {
        self.delivered.contains(&event)
    }

    /// Returns `true` if the event was received at all.
    pub fn has_received(&self, event: EventId) -> bool {
        self.received.contains(&event)
    }

    /// The process address.
    pub fn address(&self) -> &Address {
        &self.address
    }
}

impl RoundProcess for FloodBroadcastProcess {
    type Message = Gossip;

    fn on_round(&mut self, ctx: &mut RoundContext<'_, Gossip>) {
        // The target pool is everyone but us; rather than materializing an
        // O(n) candidate list per round, draw F distinct indices from
        // `0..n-1` and shift those at or above our own index by one.
        let pool = self.group_size.saturating_sub(1);
        let fanout = self.fanout;
        let own = self.id.0;
        let mut picks = std::mem::take(&mut self.picks);
        self.buffered.retain(|_, entry| {
            if entry.round >= entry.budget {
                return false;
            }
            entry.round += 1;
            ctx.choose_indices_into(pool, fanout, &mut picks);
            for &pick in &picks {
                let target = if pick >= own { pick + 1 } else { pick };
                let gossip = Gossip::new(Arc::clone(&entry.event), 1, 1.0, entry.round);
                let size = gossip.wire_size();
                ctx.send_sized(ProcessId(target), gossip, size);
            }
            true
        });
        self.picks = picks;
    }

    fn on_message(&mut self, _from: ProcessId, gossip: Gossip, _ctx: &mut RoundContext<'_, Gossip>) {
        self.accept(gossip.event);
    }

    fn is_quiescent(&self) -> bool {
        self.buffered.is_empty()
    }
}

impl DeliveryOutcome for FloodBroadcastProcess {
    fn outcome_address(&self) -> &Address {
        &self.address
    }
    fn outcome_delivered(&self, event: EventId) -> bool {
        self.has_delivered(event)
    }
    fn outcome_received(&self, event: EventId) -> bool {
        self.has_received(event)
    }
}

/// Builds a flood-broadcast process for every member of a topology.
pub fn build_flood_group<T: TreeTopology>(
    topology: &T,
    oracle: Arc<dyn InterestOracle + Send + Sync>,
    config: &PmcastConfig,
) -> Vec<FloodBroadcastProcess> {
    config.validate();
    let members = topology.members();
    let group_size = members.len();
    members
        .into_iter()
        .enumerate()
        .map(|(index, address)| {
            FloodBroadcastProcess::new(
                address,
                ProcessId(index),
                group_size,
                config,
                Arc::clone(&oracle),
            )
        })
        .collect()
}

/// Genuine multicast: gossip only among the processes interested in the
/// event, assuming (optimistically) that every process knows exactly which
/// other processes are interested.
pub struct GenuineMulticastProcess {
    address: Address,
    id: ProcessId,
    fanout: usize,
    max_rounds: u32,
    env: pmcast_analysis::EnvParams,
    oracle: Arc<dyn InterestOracle + Send + Sync>,
    /// Interested peers per event, resolved lazily from the shared directory.
    directory: Arc<FxHashMap<EventId, Vec<ProcessId>>>,
    buffered: FxHashMap<EventId, FlatEntry>,
    delivered: FxHashSet<EventId>,
    received: FxHashSet<EventId>,
    /// Reusable buffers for candidate targets and the fanout draw.
    candidates: Vec<ProcessId>,
    picks: Vec<usize>,
}

impl std::fmt::Debug for GenuineMulticastProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GenuineMulticastProcess")
            .field("address", &self.address)
            .field("buffered", &self.buffered.len())
            .finish_non_exhaustive()
    }
}

impl GenuineMulticastProcess {
    fn budget_for(&self, audience: usize) -> u32 {
        pittel::round_budget(audience as f64, self.fanout as f64, &self.env).min(self.max_rounds)
    }

    fn accept(&mut self, event: Arc<Event>) {
        let id = event.id();
        // As for the flooding baseline, the received set doubles as the
        // seen-set so garbage-collected events are not resurrected.
        if !self.received.insert(id) {
            return;
        }
        if self.oracle.is_interested(&self.address, &event) {
            self.delivered.insert(id);
        }
        let audience = self.directory.get(&id).map(Vec::len).unwrap_or(0);
        self.buffered.insert(
            id,
            FlatEntry {
                event,
                round: 0,
                budget: self.budget_for(audience),
            },
        );
    }

    /// Publishes an event into the genuine multicast.
    pub fn multicast(&mut self, event: Event) {
        self.accept(Arc::new(event));
    }

    /// Returns `true` if the event was delivered locally.
    pub fn has_delivered(&self, event: EventId) -> bool {
        self.delivered.contains(&event)
    }

    /// Returns `true` if the event was received at all.
    pub fn has_received(&self, event: EventId) -> bool {
        self.received.contains(&event)
    }

    /// The process address.
    pub fn address(&self) -> &Address {
        &self.address
    }
}

impl RoundProcess for GenuineMulticastProcess {
    type Message = Gossip;

    fn on_round(&mut self, ctx: &mut RoundContext<'_, Gossip>) {
        let fanout = self.fanout;
        let own_id = self.id;
        let directory = Arc::clone(&self.directory);
        let mut candidates = std::mem::take(&mut self.candidates);
        let mut picks = std::mem::take(&mut self.picks);
        self.buffered.retain(|id, entry| {
            if entry.round >= entry.budget {
                return false;
            }
            entry.round += 1;
            let Some(audience) = directory.get(id) else {
                return false;
            };
            candidates.clear();
            candidates.extend(audience.iter().copied().filter(|&p| p != own_id));
            ctx.choose_indices_into(candidates.len(), fanout, &mut picks);
            for &pick in &picks {
                let gossip = Gossip::new(Arc::clone(&entry.event), 1, 1.0, entry.round);
                let size = gossip.wire_size();
                ctx.send_sized(candidates[pick], gossip, size);
            }
            true
        });
        self.candidates = candidates;
        self.picks = picks;
    }

    fn on_message(&mut self, _from: ProcessId, gossip: Gossip, _ctx: &mut RoundContext<'_, Gossip>) {
        self.accept(gossip.event);
    }

    fn is_quiescent(&self) -> bool {
        self.buffered.is_empty()
    }
}

impl DeliveryOutcome for GenuineMulticastProcess {
    fn outcome_address(&self) -> &Address {
        &self.address
    }
    fn outcome_delivered(&self, event: EventId) -> bool {
        self.has_delivered(event)
    }
    fn outcome_received(&self, event: EventId) -> bool {
        self.has_received(event)
    }
}

/// Builds a genuine-multicast process for every member of a topology, with a
/// shared directory listing, for each event, the identifiers of the
/// interested processes (the global interest knowledge the paper deems
/// unrealistic — which is the point of the comparison).
pub fn build_genuine_group<T: TreeTopology>(
    topology: &T,
    oracle: Arc<dyn InterestOracle + Send + Sync>,
    config: &PmcastConfig,
    events: &[Event],
) -> Vec<GenuineMulticastProcess> {
    config.validate();
    let members = topology.members();
    let mut directory: FxHashMap<EventId, Vec<ProcessId>> = FxHashMap::default();
    for event in events {
        let interested = members
            .iter()
            .enumerate()
            .filter(|(_, address)| oracle.is_interested(address, event))
            .map(|(index, _)| ProcessId(index))
            .collect();
        directory.insert(event.id(), interested);
    }
    let directory = Arc::new(directory);
    members
        .into_iter()
        .enumerate()
        .map(|(index, address)| GenuineMulticastProcess {
            address,
            id: ProcessId(index),
            fanout: config.fanout,
            max_rounds: config.max_rounds_per_depth,
            env: config.env,
            oracle: Arc::clone(&oracle),
            directory: Arc::clone(&directory),
            buffered: FxHashMap::default(),
            delivered: FxHashSet::default(),
            received: FxHashSet::default(),
            candidates: Vec::new(),
            picks: Vec::new(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcast_addr::AddressSpace;
    use pmcast_membership::{AssignmentOracle, ImplicitRegularTree, UniformOracle};
    use pmcast_simnet::{NetworkConfig, Simulation};

    fn topology() -> ImplicitRegularTree {
        ImplicitRegularTree::new(AddressSpace::regular(2, 4).unwrap())
    }

    fn half_interested_oracle() -> Arc<AssignmentOracle> {
        // Subtrees 0 and 1 are interested (8 of 16 processes).
        let interested: Vec<Address> = (0..2u32)
            .flat_map(|hi| (0..4u32).map(move |lo| Address::from(vec![hi, lo])))
            .collect();
        Arc::new(AssignmentOracle::new(interested))
    }

    #[test]
    fn flood_broadcast_reaches_uninterested_processes_too() {
        let topology = topology();
        let oracle = half_interested_oracle();
        let event = Event::builder(1).build();
        let processes = build_flood_group(&topology, oracle.clone(), &PmcastConfig::default());
        let mut sim = Simulation::new(processes, NetworkConfig::reliable(4));
        sim.process_mut(ProcessId(0)).broadcast(event.clone());
        sim.run_until_quiescent(200);

        let delivered = sim
            .processes()
            .filter(|p| p.has_delivered(event.id()))
            .count();
        let received = sim
            .processes()
            .filter(|p| p.has_received(event.id()))
            .count();
        // Only interested processes deliver…
        assert_eq!(delivered, 8);
        // …but flooding makes (nearly) everybody receive.
        assert!(received >= 14, "flooding reached only {received}/16");
    }

    #[test]
    fn genuine_multicast_never_touches_uninterested_processes() {
        let topology = topology();
        let oracle = half_interested_oracle();
        let event = Event::builder(2).build();
        let processes = build_genuine_group(
            &topology,
            oracle.clone(),
            &PmcastConfig::default(),
            std::slice::from_ref(&event),
        );
        let mut sim = Simulation::new(processes, NetworkConfig::reliable(4));
        // The multicaster is an interested process (0.0).
        sim.process_mut(ProcessId(0)).multicast(event.clone());
        sim.run_until_quiescent(200);

        for p in sim.processes() {
            let interested = oracle.is_interested(p.address(), &event);
            if interested {
                assert!(p.has_delivered(event.id()), "{} should deliver", p.address());
            } else {
                assert!(
                    !p.has_received(event.id()),
                    "{} should never receive the event",
                    p.address()
                );
            }
        }
    }

    #[test]
    fn flood_broadcast_sends_more_messages_than_genuine_multicast() {
        let topology = topology();
        let oracle = half_interested_oracle();
        let event = Event::builder(3).build();

        let flood = build_flood_group(&topology, oracle.clone(), &PmcastConfig::default());
        let mut flood_sim = Simulation::new(flood, NetworkConfig::reliable(9));
        flood_sim.process_mut(ProcessId(0)).broadcast(event.clone());
        flood_sim.run_until_quiescent(200);

        let genuine = build_genuine_group(
            &topology,
            oracle,
            &PmcastConfig::default(),
            std::slice::from_ref(&event),
        );
        let mut genuine_sim = Simulation::new(genuine, NetworkConfig::reliable(9));
        genuine_sim.process_mut(ProcessId(0)).multicast(event.clone());
        genuine_sim.run_until_quiescent(200);

        assert!(
            flood_sim.stats().messages_sent > genuine_sim.stats().messages_sent,
            "flooding ({}) should cost more than genuine multicast ({})",
            flood_sim.stats().messages_sent,
            genuine_sim.stats().messages_sent
        );
    }

    #[test]
    fn broadcast_case_delivers_to_everyone() {
        let topology = topology();
        let oracle: Arc<dyn InterestOracle + Send + Sync> = Arc::new(UniformOracle::new(16));
        let event = Event::builder(4).build();
        let processes = build_flood_group(&topology, oracle, &PmcastConfig::default().with_fanout(3));
        let mut sim = Simulation::new(processes, NetworkConfig::reliable(12));
        sim.process_mut(ProcessId(5)).broadcast(event.clone());
        sim.run_until_quiescent(200);
        let delivered = sim
            .processes()
            .filter(|p| p.has_delivered(event.id()))
            .count();
        assert_eq!(delivered, 16);
    }

    #[test]
    fn duplicate_events_are_accepted_once() {
        let topology = topology();
        let oracle: Arc<dyn InterestOracle + Send + Sync> = Arc::new(UniformOracle::new(16));
        let mut processes = build_flood_group(&topology, oracle, &PmcastConfig::default());
        let event = Event::builder(5).build();
        processes[0].broadcast(event.clone());
        processes[0].broadcast(event.clone());
        assert!(processes[0].has_delivered(event.id()));
        assert_eq!(processes[0].buffered.len(), 1);
        assert!(!format!("{:?}", processes[0]).is_empty());
    }

    #[test]
    fn genuine_multicast_with_unknown_event_stays_quiet() {
        let topology = topology();
        let oracle = half_interested_oracle();
        // Build the directory for a different event than the one multicast.
        let known = Event::builder(10).build();
        let unknown = Event::builder(11).build();
        let processes =
            build_genuine_group(&topology, oracle, &PmcastConfig::default(), &[known]);
        let mut sim = Simulation::new(processes, NetworkConfig::reliable(2));
        sim.process_mut(ProcessId(0)).multicast(unknown.clone());
        sim.run_until_quiescent(50);
        // Without directory information the event cannot spread beyond the
        // publisher.
        let received = sim
            .processes()
            .filter(|p| p.has_received(unknown.id()))
            .count();
        assert_eq!(received, 1);
        assert!(!format!("{:?}", sim.process(ProcessId(0))).is_empty());
    }
}
