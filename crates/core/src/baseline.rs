//! Baseline dissemination protocols pmcast is compared against.
//!
//! Section 1 of the paper discusses the alternatives to a dedicated
//! gossip-based multicast:
//!
//! * **Gossip broadcast with filtering on delivery** (pbcast / lpbcast
//!   style): every process gossips every event to random members of the
//!   whole group; uninterested processes receive (and forward) events they
//!   will never deliver.  High reliability, maximal spurious traffic.
//! * **Genuine multicast**: only interested processes are ever contacted.
//!   With global interest knowledge this is maximally frugal; the paper
//!   argues that with realistic partial knowledge crucial forwarders may be
//!   missing — which our simulations can reproduce by restricting the
//!   membership view.
//!
//! Both baselines run over the same [`pmcast_simnet`] substrate and the same
//! interest oracles as pmcast, and both implement
//! [`MulticastProtocol`](crate::MulticastProtocol) /
//! [`crate::ProtocolFactory`], so the comparison isolates the dissemination
//! strategy itself: the simulation harness drives all protocols through one
//! generic code path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use pmcast_addr::Address;
use pmcast_analysis::pittel;
use pmcast_interest::{Event, EventId, EventIdSet, InternStats};
use pmcast_membership::{InterestOracle, MembershipView, TreeTopology};
use pmcast_simnet::{Activity, ProcessId, RoundContext, RoundProcess};
use rustc_hash::FxHashMap;

use crate::{DeliveryOutcome, Gossip, PmcastConfig, ProtocolGroup};

/// Shared state of a buffered event in the flooding protocol.  As in the
/// pmcast hot path, the event is held through an [`Arc`] so forwarding never
/// copies the payload.
#[derive(Debug, Clone)]
struct FlatEntry {
    event: Arc<Event>,
    round: u32,
    budget: u32,
}

/// Gossip **broadcast** with filtering on delivery: every process forwards
/// every fresh event to `F` uniformly random members of the whole group for
/// the Pittel-bounded number of rounds; interest only decides whether the
/// event is delivered locally.
pub struct FloodBroadcastProcess {
    address: Address,
    id: ProcessId,
    fanout: usize,
    budget: u32,
    oracle: Arc<dyn InterestOracle + Send + Sync>,
    membership: Arc<dyn MembershipView>,
    buffered: FxHashMap<EventId, FlatEntry>,
    delivered: EventIdSet,
    received: EventIdSet,
    /// Reusable buffer for the fanout draw (indices into the target pool).
    picks: Vec<usize>,
}

impl std::fmt::Debug for FloodBroadcastProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FloodBroadcastProcess")
            .field("address", &self.address)
            .field("buffered", &self.buffered.len())
            .finish_non_exhaustive()
    }
}

impl FloodBroadcastProcess {
    /// Creates one flood-broadcast process; the round budget is estimated
    /// from the membership provider's current group-size belief.
    pub fn new(
        address: Address,
        id: ProcessId,
        config: &PmcastConfig,
        oracle: Arc<dyn InterestOracle + Send + Sync>,
        membership: Arc<dyn MembershipView>,
    ) -> Self {
        let group_size = membership.estimated_size();
        let budget = pittel::round_budget(group_size as f64, config.fanout as f64, &config.env)
            .min(config.max_rounds_per_depth);
        Self {
            address,
            id,
            fanout: config.fanout,
            budget,
            oracle,
            membership,
            buffered: FxHashMap::default(),
            delivered: EventIdSet::new(),
            received: EventIdSet::new(),
            picks: Vec::new(),
        }
    }

    /// Publishes an event into the broadcast (convenience wrapper around
    /// [`publish`](Self::publish)).
    pub fn broadcast(&mut self, event: Event) {
        self.publish(Arc::new(event));
    }

    /// Publishes an already-shared event (the [`crate::MulticastProtocol`]
    /// entry point).  Duplicates are ignored.
    pub fn publish(&mut self, event: Arc<Event>) {
        self.accept(event);
    }

    fn accept(&mut self, event: Arc<Event>) {
        let id = event.id();
        // `received` doubles as the seen-set: once an event has been
        // buffered (and possibly garbage collected), later copies are
        // ignored so gossiping terminates.
        if !self.received.insert(id) {
            return;
        }
        if self.oracle.is_interested(&self.address, &event) {
            self.delivered.insert(id);
        }
        self.buffered.insert(
            id,
            FlatEntry {
                event,
                round: 0,
                budget: self.budget,
            },
        );
    }

    /// Returns `true` if the event was delivered locally.
    pub fn has_delivered(&self, event: EventId) -> bool {
        self.delivered.contains(event)
    }

    /// Returns `true` if the event was received at all.
    pub fn has_received(&self, event: EventId) -> bool {
        self.received.contains(event)
    }

    /// The process address.
    pub fn address(&self) -> &Address {
        &self.address
    }
}

impl RoundProcess for FloodBroadcastProcess {
    type Message = Gossip;

    fn on_round(&mut self, ctx: &mut RoundContext<'_, Gossip>) {
        // Nothing buffered → nothing to forward; return before even the
        // membership query so a quiescent round is a pure no-op (the
        // guarantee behind this process's `Activity::SkipWhenQuiescent`).
        if self.buffered.is_empty() {
            return;
        }
        // The target pool is the membership view's peer enumeration (the
        // whole group minus ourselves under a global view, the bounded
        // partial view under gossip membership — lpbcast's own rule); no
        // O(n) candidate list is ever materialized: F distinct indices are
        // drawn and mapped through `peer_at`.
        let fanout = self.fanout;
        let own = self.id.0;
        let membership = Arc::clone(&self.membership);
        // The view cannot change mid-round: query the pool once per round,
        // not per buffered entry.
        let pool = membership.peer_count(own);
        let mut picks = std::mem::take(&mut self.picks);
        self.buffered.retain(|_, entry| {
            if entry.round >= entry.budget {
                return false;
            }
            entry.round += 1;
            ctx.choose_indices_into(pool, fanout, &mut picks);
            for &pick in &picks {
                let target = membership.peer_at(own, pick);
                let gossip = Gossip::new(Arc::clone(&entry.event), 1, 1.0, entry.round);
                let size = gossip.wire_size();
                ctx.send_sized(ProcessId(target), gossip, size);
            }
            true
        });
        self.picks = picks;
    }

    fn on_message(&mut self, _from: ProcessId, gossip: Gossip, _ctx: &mut RoundContext<'_, Gossip>) {
        self.accept(gossip.event);
    }

    fn is_quiescent(&self) -> bool {
        self.buffered.is_empty()
    }

    fn activity(&self) -> Activity {
        // `on_round` early-returns on an empty buffer — the quiescence
        // condition — without drawing randomness, so skipping quiescent
        // rounds is stream-neutral.
        Activity::SkipWhenQuiescent
    }
}

impl DeliveryOutcome for FloodBroadcastProcess {
    fn outcome_address(&self) -> &Address {
        &self.address
    }
    fn outcome_delivered(&self, event: EventId) -> bool {
        self.has_delivered(event)
    }
    fn outcome_received(&self, event: EventId) -> bool {
        self.has_received(event)
    }
}

impl crate::MulticastProtocol for FloodBroadcastProcess {
    fn publish(&mut self, event: Arc<Event>) {
        FloodBroadcastProcess::publish(self, event);
    }
    fn has_delivered(&self, event: EventId) -> bool {
        FloodBroadcastProcess::has_delivered(self, event)
    }
    fn has_received(&self, event: EventId) -> bool {
        FloodBroadcastProcess::has_received(self, event)
    }
    fn address(&self) -> &Address {
        FloodBroadcastProcess::address(self)
    }
    fn retire_below(&mut self, floor: EventId) {
        let floor = match self.buffered.keys().min() {
            Some(&min) => floor.min(min),
            None => floor,
        };
        self.delivered.compact_below(floor);
        self.received.compact_below(floor);
    }
    fn dedup_len(&self) -> usize {
        self.delivered.len() + self.received.len()
    }
}

/// Crate-internal construction backing [`crate::FloodFactory`].
pub(crate) fn build_flood_group_internal<T: TreeTopology>(
    topology: &T,
    oracle: Arc<dyn InterestOracle + Send + Sync>,
    membership: Arc<dyn MembershipView>,
    config: &PmcastConfig,
) -> ProtocolGroup<FloodBroadcastProcess> {
    config.validate();
    let addresses = Arc::new(topology.members());
    let processes = addresses
        .iter()
        .enumerate()
        .map(|(index, address)| {
            FloodBroadcastProcess::new(
                address.clone(),
                ProcessId(index),
                config,
                Arc::clone(&oracle),
                Arc::clone(&membership),
            )
        })
        .collect();
    ProtocolGroup {
        processes,
        addresses,
    }
}

/// The shared per-event audience directory of the genuine baseline: for
/// every *registered* event, the dense identifiers of the interested
/// processes.
///
/// This models the global interest knowledge the paper deems unrealistic —
/// which is the point of the comparison.  Events enter the directory through
/// [`GenuineMulticastProcess::register_event`] (publishing registers
/// automatically); audiences are resolved once at registration and then
/// shared behind an [`Arc`], so the round loop never touches the lock.
///
/// Audiences are additionally **hashconsed** by the oracle's
/// [`audience_key`](InterestOracle::audience_key): two events with the same
/// key provably share an audience, so registering the second one clones the
/// first one's [`Arc`] — no group rescan, no allocation.  Under a heavy
/// multi-topic workload (10k events over 50 topics) the directory therefore
/// builds ~50 audience vectors instead of 10k.
#[derive(Debug, Default)]
struct EventDirectory {
    audiences: RwLock<FxHashMap<EventId, Arc<Vec<ProcessId>>>>,
    /// Hashcons table: audience key → the one shared audience vector.
    by_key: RwLock<FxHashMap<u64, Arc<Vec<ProcessId>>>>,
    /// Keyed registrations served from `by_key` without a build.
    hits: AtomicU64,
    /// Registrations that had to scan the group and allocate.
    misses: AtomicU64,
}

impl EventDirectory {
    /// The audience of a registered event, if any.
    fn lookup(&self, id: EventId) -> Option<Arc<Vec<ProcessId>>> {
        self.audiences
            .read()
            .expect("event directory lock poisoned")
            .get(&id)
            .cloned()
    }

    /// Registers an event's audience, computing it only on first
    /// registration (idempotent) — and, when the oracle supplies an
    /// audience `key`, only on the first registration *of that key*.
    fn register(&self, id: EventId, key: Option<u64>, audience: impl FnOnce() -> Vec<ProcessId>) {
        if self
            .audiences
            .read()
            .expect("event directory lock poisoned")
            .contains_key(&id)
        {
            return;
        }
        let shared = match key {
            Some(key) => {
                let cached = self
                    .by_key
                    .read()
                    .expect("event directory lock poisoned")
                    .get(&key)
                    .cloned();
                match cached {
                    Some(shared) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        shared
                    }
                    None => {
                        let mut by_key =
                            self.by_key.write().expect("event directory lock poisoned");
                        match by_key.entry(key) {
                            std::collections::hash_map::Entry::Occupied(entry) => {
                                self.hits.fetch_add(1, Ordering::Relaxed);
                                Arc::clone(entry.get())
                            }
                            std::collections::hash_map::Entry::Vacant(entry) => {
                                self.misses.fetch_add(1, Ordering::Relaxed);
                                Arc::clone(entry.insert(Arc::new(audience())))
                            }
                        }
                    }
                }
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Arc::new(audience())
            }
        };
        self.audiences
            .write()
            .expect("event directory lock poisoned")
            .entry(id)
            .or_insert(shared);
    }

    /// Drops per-event audience entries below the floor.  The hashcons
    /// table is retained — it is bounded by the number of *distinct*
    /// audiences, and future events with a known key keep hitting it.
    fn retire_below(&self, floor: EventId) {
        self.audiences
            .write()
            .expect("event directory lock poisoned")
            .retain(|&id, _| id >= floor);
    }

    /// Hashcons counters: `hits`/`misses` as in
    /// [`pmcast_interest::InternStats`], `live` the number of distinct
    /// audiences interned.
    fn stats(&self) -> InternStats {
        InternStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            live: self
                .by_key
                .read()
                .expect("event directory lock poisoned")
                .len(),
            reclaimed: 0,
        }
    }
}

/// The cached fanout-candidate set of a buffered genuine-multicast entry,
/// resolved **once** when the entry is accepted — the per-round
/// O(audience) candidate rebuild this replaces was a ROADMAP open item
/// (guarded by the `genuine_rounds_n512` micro-bench case).
#[derive(Debug, Clone)]
enum GenuineCandidates {
    /// The event was never registered: nobody to forward to; the entry is
    /// garbage collected on its first round.
    Unknown,
    /// Global membership: the shared audience minus this process, accessed
    /// through an index shift — O(1) extra memory per entry.  `own_pos` is
    /// this process's position in the (sorted) audience, if present.
    Audience {
        audience: Arc<Vec<ProcessId>>,
        own_pos: Option<usize>,
    },
    /// Partial membership: the audience restricted to the peers this
    /// process knew at accept time, bounded by the membership view size.
    Known(Vec<ProcessId>),
}

impl GenuineCandidates {
    fn len(&self) -> usize {
        match self {
            GenuineCandidates::Unknown => 0,
            GenuineCandidates::Audience { audience, own_pos } => {
                audience.len() - usize::from(own_pos.is_some())
            }
            GenuineCandidates::Known(list) => list.len(),
        }
    }

    /// The `k`-th candidate, `k < len()`.
    fn get(&self, k: usize) -> ProcessId {
        match self {
            GenuineCandidates::Unknown => unreachable!("no candidates to index"),
            GenuineCandidates::Audience { audience, own_pos } => {
                let index = match own_pos {
                    Some(own) if k >= *own => k + 1,
                    _ => k,
                };
                audience[index]
            }
            GenuineCandidates::Known(list) => list[k],
        }
    }

    /// Whether the entry may be forwarded at all (its event is known to
    /// the directory).
    fn forwardable(&self) -> bool {
        !matches!(self, GenuineCandidates::Unknown)
    }
}

/// Shared state of a buffered event in the genuine multicast: the payload
/// plus the candidate set cached when the entry was accepted.
#[derive(Debug, Clone)]
struct GenuineEntry {
    event: Arc<Event>,
    round: u32,
    budget: u32,
    candidates: GenuineCandidates,
}

/// Genuine multicast: gossip only among the processes interested in the
/// event, assuming (optimistically) that every process knows exactly which
/// other processes are interested.
pub struct GenuineMulticastProcess {
    address: Address,
    id: ProcessId,
    fanout: usize,
    max_rounds: u32,
    env: pmcast_analysis::EnvParams,
    oracle: Arc<dyn InterestOracle + Send + Sync>,
    membership: Arc<dyn MembershipView>,
    /// Member addresses in dense-identifier order, for audience resolution.
    addresses: Arc<Vec<Address>>,
    /// Interested peers per event, shared by the whole group.
    directory: Arc<EventDirectory>,
    buffered: FxHashMap<EventId, GenuineEntry>,
    delivered: EventIdSet,
    received: EventIdSet,
    /// Reusable buffer for the fanout draw.
    picks: Vec<usize>,
}

impl std::fmt::Debug for GenuineMulticastProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GenuineMulticastProcess")
            .field("address", &self.address)
            .field("buffered", &self.buffered.len())
            .finish_non_exhaustive()
    }
}

impl GenuineMulticastProcess {
    fn budget_for(&self, audience: usize) -> u32 {
        pittel::round_budget(audience as f64, self.fanout as f64, &self.env).min(self.max_rounds)
    }

    /// Resolves the event's audience into the shared directory (idempotent;
    /// the [`crate::MulticastProtocol`] pre-registration hook).  When the
    /// oracle supplies an [`audience_key`](InterestOracle::audience_key),
    /// repeated keys share one audience allocation and skip the group scan.
    pub fn register_event(&mut self, event: &Event) {
        let directory = Arc::clone(&self.directory);
        directory.register(event.id(), self.oracle.audience_key(event), || {
            self.addresses
                .iter()
                .enumerate()
                .filter(|(_, address)| self.oracle.is_interested(address, event))
                .map(|(index, _)| ProcessId(index))
                .collect()
        });
    }

    /// Hashcons counters of the shared audience directory (hits = keyed
    /// registrations served without a group scan).
    pub fn directory_stats(&self) -> InternStats {
        self.directory.stats()
    }

    fn accept(&mut self, event: Arc<Event>) {
        let id = event.id();
        // As for the flooding baseline, the received set doubles as the
        // seen-set so garbage-collected events are not resurrected.
        if !self.received.insert(id) {
            return;
        }
        if self.oracle.is_interested(&self.address, &event) {
            self.delivered.insert(id);
        }
        let audience = self.directory.lookup(id);
        let budget = self.budget_for(audience.as_ref().map(|a| a.len()).unwrap_or(0));
        // Resolve the candidate set once: the round loop only indexes it.
        let candidates = match audience {
            None => GenuineCandidates::Unknown,
            Some(audience) => {
                if self.membership.is_global() {
                    // Audiences are sorted by dense identifier, so "minus
                    // ourselves" is an index shift, not a filtered copy.
                    let own_pos = audience.binary_search(&self.id).ok();
                    GenuineCandidates::Audience { audience, own_pos }
                } else {
                    // Partial knowledge: enumerate the (bounded) view and
                    // keep the peers that are in the audience.
                    let own = self.id.0;
                    let known = (0..self.membership.peer_count(own))
                        .map(|k| ProcessId(self.membership.peer_at(own, k)))
                        .filter(|peer| audience.binary_search(peer).is_ok())
                        .collect();
                    GenuineCandidates::Known(known)
                }
            }
        };
        self.buffered.insert(
            id,
            GenuineEntry {
                event,
                round: 0,
                budget,
                candidates,
            },
        );
    }

    /// Publishes an event into the genuine multicast (convenience wrapper
    /// around [`publish`](Self::publish)).
    pub fn multicast(&mut self, event: Event) {
        self.publish(Arc::new(event));
    }

    /// Publishes an already-shared event (the [`crate::MulticastProtocol`]
    /// entry point): registers its audience in the shared directory, then
    /// starts gossiping it.  Duplicates are ignored.
    pub fn publish(&mut self, event: Arc<Event>) {
        self.register_event(&event);
        self.accept(event);
    }

    /// Returns `true` if the event was delivered locally.
    pub fn has_delivered(&self, event: EventId) -> bool {
        self.delivered.contains(event)
    }

    /// Returns `true` if the event was received at all.
    pub fn has_received(&self, event: EventId) -> bool {
        self.received.contains(event)
    }

    /// The process address.
    pub fn address(&self) -> &Address {
        &self.address
    }
}

impl RoundProcess for GenuineMulticastProcess {
    type Message = Gossip;

    fn on_round(&mut self, ctx: &mut RoundContext<'_, Gossip>) {
        let fanout = self.fanout;
        let mut picks = std::mem::take(&mut self.picks);
        self.buffered.retain(|_, entry| {
            if entry.round >= entry.budget {
                return false;
            }
            entry.round += 1;
            // Candidates were cached when the entry was accepted; an
            // unregistered event has nobody to go to.
            if !entry.candidates.forwardable() {
                return false;
            }
            ctx.choose_indices_into(entry.candidates.len(), fanout, &mut picks);
            for &pick in &picks {
                let gossip = Gossip::new(Arc::clone(&entry.event), 1, 1.0, entry.round);
                let size = gossip.wire_size();
                ctx.send_sized(entry.candidates.get(pick), gossip, size);
            }
            true
        });
        self.picks = picks;
    }

    fn on_message(&mut self, _from: ProcessId, gossip: Gossip, _ctx: &mut RoundContext<'_, Gossip>) {
        self.accept(gossip.event);
    }

    fn is_quiescent(&self) -> bool {
        self.buffered.is_empty()
    }

    fn activity(&self) -> Activity {
        // An empty buffer makes `on_round`'s retain a no-op over nothing:
        // no sends, no RNG draws — quiescent rounds are safely skippable.
        Activity::SkipWhenQuiescent
    }
}

impl DeliveryOutcome for GenuineMulticastProcess {
    fn outcome_address(&self) -> &Address {
        &self.address
    }
    fn outcome_delivered(&self, event: EventId) -> bool {
        self.has_delivered(event)
    }
    fn outcome_received(&self, event: EventId) -> bool {
        self.has_received(event)
    }
}

impl crate::MulticastProtocol for GenuineMulticastProcess {
    fn publish(&mut self, event: Arc<Event>) {
        GenuineMulticastProcess::publish(self, event);
    }
    fn register_event(&mut self, event: &Event) {
        GenuineMulticastProcess::register_event(self, event);
    }
    fn has_delivered(&self, event: EventId) -> bool {
        GenuineMulticastProcess::has_delivered(self, event)
    }
    fn has_received(&self, event: EventId) -> bool {
        GenuineMulticastProcess::has_received(self, event)
    }
    fn address(&self) -> &Address {
        GenuineMulticastProcess::address(self)
    }
    fn retire_below(&mut self, floor: EventId) {
        let floor = match self.buffered.keys().min() {
            Some(&min) => floor.min(min),
            None => floor,
        };
        self.delivered.compact_below(floor);
        self.received.compact_below(floor);
        // The shared directory drops the per-event audience entries too
        // (its hashcons table stays — bounded by distinct audiences).
        self.directory.retire_below(floor);
    }
    fn dedup_len(&self) -> usize {
        self.delivered.len() + self.received.len()
    }
}

/// Crate-internal construction backing [`crate::GenuineFactory`].
pub(crate) fn build_genuine_group_internal<T: TreeTopology>(
    topology: &T,
    oracle: Arc<dyn InterestOracle + Send + Sync>,
    membership: Arc<dyn MembershipView>,
    config: &PmcastConfig,
) -> ProtocolGroup<GenuineMulticastProcess> {
    config.validate();
    let addresses = Arc::new(topology.members());
    let directory = Arc::new(EventDirectory::default());
    let processes = addresses
        .iter()
        .enumerate()
        .map(|(index, address)| GenuineMulticastProcess {
            address: address.clone(),
            id: ProcessId(index),
            fanout: config.fanout,
            max_rounds: config.max_rounds_per_depth,
            env: config.env,
            oracle: Arc::clone(&oracle),
            membership: Arc::clone(&membership),
            addresses: Arc::clone(&addresses),
            directory: Arc::clone(&directory),
            buffered: FxHashMap::default(),
            delivered: EventIdSet::new(),
            received: EventIdSet::new(),
            picks: Vec::new(),
        })
        .collect();
    ProtocolGroup {
        processes,
        addresses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcast_addr::AddressSpace;
    use pmcast_membership::{AssignmentOracle, GlobalOracleView, ImplicitRegularTree, UniformOracle};
    use pmcast_simnet::{NetworkConfig, Simulation};

    fn topology() -> ImplicitRegularTree {
        ImplicitRegularTree::new(AddressSpace::regular(2, 4).unwrap())
    }

    fn global_view() -> Arc<dyn MembershipView> {
        Arc::new(GlobalOracleView::new(16))
    }

    fn half_interested_oracle() -> Arc<AssignmentOracle> {
        // Subtrees 0 and 1 are interested (8 of 16 processes).
        let interested: Vec<Address> = (0..2u32)
            .flat_map(|hi| (0..4u32).map(move |lo| Address::from(vec![hi, lo])))
            .collect();
        Arc::new(AssignmentOracle::new(interested))
    }

    #[test]
    fn flood_broadcast_reaches_uninterested_processes_too() {
        let topology = topology();
        let oracle = half_interested_oracle();
        let event = Event::builder(1).build();
        let group = build_flood_group_internal(&topology, oracle.clone(), global_view(), &PmcastConfig::default());
        let mut sim = Simulation::new(group.processes, NetworkConfig::reliable(4));
        sim.process_mut(ProcessId(0)).broadcast(event.clone());
        sim.run_until_quiescent(200);

        let delivered = sim
            .processes()
            .filter(|p| p.has_delivered(event.id()))
            .count();
        let received = sim
            .processes()
            .filter(|p| p.has_received(event.id()))
            .count();
        // Only interested processes deliver…
        assert_eq!(delivered, 8);
        // …but flooding makes (nearly) everybody receive.
        assert!(received >= 14, "flooding reached only {received}/16");
    }

    #[test]
    fn genuine_multicast_never_touches_uninterested_processes() {
        let topology = topology();
        let oracle = half_interested_oracle();
        let event = Event::builder(2).build();
        let group =
            build_genuine_group_internal(&topology, oracle.clone(), global_view(), &PmcastConfig::default());
        let mut sim = Simulation::new(group.processes, NetworkConfig::reliable(4));
        // The multicaster is an interested process (0.0); publishing
        // registers the audience in the shared directory.
        sim.process_mut(ProcessId(0)).multicast(event.clone());
        sim.run_until_quiescent(200);

        for p in sim.processes() {
            let interested = oracle.is_interested(p.address(), &event);
            if interested {
                assert!(p.has_delivered(event.id()), "{} should deliver", p.address());
            } else {
                assert!(
                    !p.has_received(event.id()),
                    "{} should never receive the event",
                    p.address()
                );
            }
        }
    }

    #[test]
    fn flood_broadcast_sends_more_messages_than_genuine_multicast() {
        let topology = topology();
        let oracle = half_interested_oracle();
        let event = Event::builder(3).build();

        let flood = build_flood_group_internal(&topology, oracle.clone(), global_view(), &PmcastConfig::default());
        let mut flood_sim = Simulation::new(flood.processes, NetworkConfig::reliable(9));
        flood_sim.process_mut(ProcessId(0)).broadcast(event.clone());
        flood_sim.run_until_quiescent(200);

        let genuine = build_genuine_group_internal(&topology, oracle, global_view(), &PmcastConfig::default());
        let mut genuine_sim = Simulation::new(genuine.processes, NetworkConfig::reliable(9));
        genuine_sim.process_mut(ProcessId(0)).multicast(event.clone());
        genuine_sim.run_until_quiescent(200);

        assert!(
            flood_sim.stats().messages_sent > genuine_sim.stats().messages_sent,
            "flooding ({}) should cost more than genuine multicast ({})",
            flood_sim.stats().messages_sent,
            genuine_sim.stats().messages_sent
        );
    }

    #[test]
    fn broadcast_case_delivers_to_everyone() {
        let topology = topology();
        let oracle: Arc<dyn InterestOracle + Send + Sync> = Arc::new(UniformOracle::new(16));
        let group =
            build_flood_group_internal(&topology, oracle, global_view(), &PmcastConfig::default().with_fanout(3));
        let mut sim = Simulation::new(group.processes, NetworkConfig::reliable(12));
        sim.process_mut(ProcessId(5)).broadcast(event_with_id(4));
        sim.run_until_quiescent(200);
        let delivered = sim
            .processes()
            .filter(|p| p.has_delivered(event_with_id(4).id()))
            .count();
        assert_eq!(delivered, 16);
    }

    fn event_with_id(id: u64) -> Event {
        Event::builder(id).build()
    }

    #[test]
    fn duplicate_events_are_accepted_once() {
        let topology = topology();
        let oracle: Arc<dyn InterestOracle + Send + Sync> = Arc::new(UniformOracle::new(16));
        let mut group = build_flood_group_internal(&topology, oracle, global_view(), &PmcastConfig::default());
        let event = Event::builder(5).build();
        group.processes[0].broadcast(event.clone());
        group.processes[0].broadcast(event.clone());
        assert!(group.processes[0].has_delivered(event.id()));
        assert_eq!(group.processes[0].buffered.len(), 1);
        assert!(!format!("{:?}", group.processes[0]).is_empty());
    }

    #[test]
    fn unregistered_events_cannot_spread_in_the_genuine_multicast() {
        // Restricting the directory models the paper's partial-knowledge
        // argument: without audience knowledge an event cannot be forwarded.
        let topology = topology();
        let oracle = half_interested_oracle();
        let known = Event::builder(10).build();
        let unknown = Event::builder(11).build();
        let mut group = build_genuine_group_internal(&topology, oracle, global_view(), &PmcastConfig::default());
        group.processes[0].register_event(&known);
        // Bypass `publish` (which would register) to model a process that
        // holds an event the directory knows nothing about.
        group.processes[0].accept(Arc::new(unknown.clone()));
        let mut sim = Simulation::new(group.processes, NetworkConfig::reliable(2));
        sim.run_until_quiescent(50);
        let received = sim
            .processes()
            .filter(|p| p.has_received(unknown.id()))
            .count();
        assert_eq!(received, 1);
        assert!(!format!("{:?}", sim.process(ProcessId(0))).is_empty());
    }

    #[test]
    fn keyed_registrations_share_one_audience_allocation() {
        // `AssignmentOracle` ignores the event, so every event carries the
        // same audience key: the second registration must clone the first
        // audience instead of rescanning the group.
        let topology = topology();
        let oracle = half_interested_oracle();
        let mut group = build_genuine_group_internal(&topology, oracle, global_view(), &PmcastConfig::default());
        group.processes[0].register_event(&event_with_id(20));
        group.processes[1].register_event(&event_with_id(21));
        let first = group.processes[0].directory.lookup(EventId(20)).unwrap();
        let second = group.processes[0].directory.lookup(EventId(21)).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "audiences should be hashconsed");
        let stats = group.processes[0].directory_stats();
        assert_eq!((stats.misses, stats.hits, stats.live), (1, 1, 1));
    }

    #[test]
    fn retire_below_bounds_dedup_state_without_reviving_events() {
        use crate::MulticastProtocol;
        let topology = topology();
        let oracle = half_interested_oracle();
        let group = build_genuine_group_internal(&topology, oracle, global_view(), &PmcastConfig::default());
        let mut sim = Simulation::new(group.processes, NetworkConfig::reliable(4));
        for id in 0..32u64 {
            sim.process_mut(ProcessId(0)).multicast(event_with_id(id));
        }
        sim.run_until_quiescent(400);
        let before = sim.process(ProcessId(0)).dedup_len();
        sim.process_mut(ProcessId(0)).retire_below(EventId(32));
        assert!(sim.process(ProcessId(0)).dedup_len() < before);
        // Per-event directory entries below the floor are gone.
        assert!(sim.process(ProcessId(0)).directory.lookup(EventId(3)).is_none());
        // Retired identifiers still dedup: a stale copy is not resurrected
        // (re-registering its audience is harmless — it hits the hashcons).
        sim.process_mut(ProcessId(0)).publish(Arc::new(event_with_id(3)));
        assert_eq!(sim.process(ProcessId(0)).buffered.len(), 0);
    }

    #[test]
    fn publishing_registers_the_audience_automatically() {
        let topology = topology();
        let oracle = half_interested_oracle();
        let event = Event::builder(12).build();
        let group = build_genuine_group_internal(&topology, oracle.clone(), global_view(), &PmcastConfig::default());
        let mut sim = Simulation::new(group.processes, NetworkConfig::reliable(6));
        // No up-front event list anywhere: publish alone suffices.
        sim.process_mut(ProcessId(0)).publish(Arc::new(event.clone()));
        sim.run_until_quiescent(200);
        for p in sim.processes() {
            assert_eq!(
                p.has_delivered(event.id()),
                oracle.is_interested(p.address(), &event),
                "{}",
                p.address()
            );
        }
    }


}
