//! # pmcast-core — the Probabilistic Multicast protocol
//!
//! This crate implements the `pmcast` algorithm of *Probabilistic
//! Multicast* (Eugster & Guerraoui, DSN 2002), Figure 3, on top of the
//! substrates of the companion crates:
//!
//! * the tree-structured membership of [`pmcast_membership`],
//! * the content-based subscriptions of [`pmcast_interest`],
//! * the round-based simulated network of [`pmcast_simnet`],
//! * the round estimation (Pittel's asymptote) of [`pmcast_analysis`].
//!
//! ## How pmcast disseminates an event
//!
//! Unlike gossip *broadcast* algorithms (pbcast, lpbcast, …), which flood
//! every process and filter on delivery, `pmcast` gossips the event itself
//! **depth-wise down the membership tree**: the event is first gossiped
//! among the delegates forming the root (depth 1), then — once the
//! Pittel-bounded round budget of that depth expires — it is handed to the
//! next depth, and so on until the leaf subgroups.  At every depth a process
//! only forwards the event to view entries whose (regrouped) interests match
//! it, so uninterested subtrees are never infected, while the redundancy of
//! `R` delegates per subgroup keeps the dissemination reliable.
//!
//! The crate also contains the two baseline protocols the paper compares
//! against conceptually: flooding gossip broadcast with filtering on
//! delivery, and a "genuine multicast" that gossips only among interested
//! processes.
//!
//! ## Example
//!
//! ```rust
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use std::sync::Arc;
//! use pmcast_addr::AddressSpace;
//! use pmcast_core::{MulticastReport, PmcastConfig, PmcastFactory, ProtocolFactory};
//! use pmcast_interest::Event;
//! use pmcast_membership::{
//!     AssignmentOracle, GlobalOracleView, ImplicitRegularTree, TreeTopology,
//! };
//! use pmcast_simnet::{NetworkConfig, Simulation};
//! use rand::SeedableRng;
//!
//! // A small regular tree: 4^2 = 16 processes.
//! let topology = ImplicitRegularTree::new(AddressSpace::regular(2, 4)?);
//! let event = Event::builder(1).int("b", 7).build();
//! // Half the processes are interested.
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let oracle = Arc::new(AssignmentOracle::sample(&topology, 0.5, &mut rng));
//! // Membership knowledge is a provider too: swap `GlobalOracleView` for a
//! // `PartialView` and fanout candidates come from gossip discovery.
//! let membership = Arc::new(GlobalOracleView::new(topology.member_count()));
//!
//! // Every protocol is built the same way, through its `ProtocolFactory`:
//! // swap `PmcastFactory` for `FloodFactory` or `GenuineFactory` and the
//! // rest of this example stays identical.
//! let config = PmcastConfig::default();
//! let group = PmcastFactory::build(&topology, oracle.clone(), membership, &config);
//! let mut sim = Simulation::new(group.processes, NetworkConfig::reliable(7));
//! // Process 0 multicasts the event.
//! sim.process_mut(pmcast_simnet::ProcessId(0)).pmcast(event.clone());
//! sim.run_until_quiescent(200);
//!
//! let report = MulticastReport::collect(&event, sim.processes(), oracle.as_ref());
//! assert!(report.delivery_ratio() > 0.8);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod baseline;
mod buffer;
mod config;
mod message;
mod multicast;
mod protocol;
mod report;
mod views;

pub use baseline::{FloodBroadcastProcess, GenuineMulticastProcess};
pub use buffer::{BufferedGossip, GossipBuffers};
pub use config::{InterestRouting, PmcastConfig, TuningConfig};
pub use message::Gossip;
pub use multicast::{
    FloodFactory, GenuineFactory, MulticastProtocol, PmcastFactory, ProtocolFactory, ProtocolGroup,
};
pub use protocol::{PmcastGroup, PmcastProcess};
pub use report::{DeliveryOutcome, MulticastReport};
pub use views::{DepthView, GossipTarget, SharedViews, ViewStack};
