//! The protocol-agnostic multicast interface: every dissemination protocol
//! of this crate — pmcast and both baselines — implements
//! [`MulticastProtocol`], and a matching [`ProtocolFactory`] builds a whole
//! group of instances from the same four ingredients: a topology, an
//! interest oracle, a [`MembershipView`] provider and a [`PmcastConfig`].
//!
//! This is the API-stability contract of the workspace: simulation harnesses
//! (`pmcast-sim`), benches and examples are written once against these two
//! traits and work for any protocol.  Dispatch is fully monomorphized —
//! there is no trait object on the publish or gossip hot path, so the
//! generic code costs exactly the same as calling the concrete types
//! directly (the `generic_dispatch_publish` micro-bench tracks this).
//!
//! ## Publishing
//!
//! [`MulticastProtocol::publish`] takes an [`Arc<Event>`]: the event payload
//! is allocated once by the caller and then shared — zero-copy — through
//! buffering, gossiping and delivery, preserving the shared-payload
//! invariant of the gossip hot path.  The concrete types keep their
//! paper-verb conveniences (`pmcast`, `broadcast`, `multicast`) which wrap a
//! plain [`Event`] and delegate here.
//!
//! ## Event pre-registration
//!
//! The genuine-multicast baseline needs global interest knowledge (who is
//! interested in which event) before it can forward anything.  Instead of a
//! special constructor taking the event list up front, that knowledge now
//! flows through [`MulticastProtocol::register_event`]: a no-op hook for
//! protocols that resolve interest on the fly (pmcast, flooding), and a
//! shared-directory registration for the genuine baseline.  Publishing
//! always registers the published event first, so generic code never has to
//! special-case a protocol.
//!
//! ## Membership providers
//!
//! Protocols draw their fanout candidates from a [`MembershipView`], never
//! from the group definition directly: under
//! [`GlobalOracleView`](pmcast_membership::GlobalOracleView) every process
//! knows the whole group (the historical construction, bit-identical to
//! it), [`PartialView`](pmcast_membership::PartialView) bounds each
//! process to a flat gossip-maintained partial view, and
//! [`DelegateView`](pmcast_membership::DelegateView) maintains the paper's
//! hierarchical per-depth delegate tables — candidates a process does not
//! currently know are simply not contacted.  pmcast asks the view
//! per depth
//! ([`MembershipView::knows_at_depth`](pmcast_membership::MembershipView::knows_at_depth)),
//! so under the hierarchical provider its tree delegates come from the
//! maintained hierarchy itself.  Interest evaluation (the oracle) is
//! orthogonal and unaffected.
//!
//! The audience may **shrink and grow mid-trial**: under a join/leave
//! lifecycle schedule the provider's answers change between rounds, and
//! every protocol must tolerate that without re-deriving the group —
//! pmcast re-filters its per-depth candidates each round, the flooding
//! baseline re-queries its peer pool each round, and the genuine baseline
//! simply wastes fanout on targets that departed after its per-event
//! candidate cache was built (the network drops those messages, exactly
//! like sends to crashed processes).  The conformance suite runs all three
//! protocols under mixed join/leave/crash schedules to pin this down.

use std::sync::Arc;

use pmcast_addr::Address;
use pmcast_interest::{Event, EventId};
use pmcast_membership::{InterestOracle, MembershipView, TreeTopology};
use pmcast_simnet::RoundProcess;

use crate::{DeliveryOutcome, Gossip, PmcastConfig};

/// The common interface of all dissemination protocols in this crate.
///
/// A `MulticastProtocol` is a [`RoundProcess`] gossiping [`Gossip`]
/// messages, plus the application-facing operations every protocol offers:
/// publishing an event and querying delivery/reception state.  It also
/// extends [`DeliveryOutcome`], so [`crate::MulticastReport`] can classify
/// any protocol's processes.
pub trait MulticastProtocol: RoundProcess<Message = Gossip> + DeliveryOutcome {
    /// Publishes an event into the dissemination from this process.
    ///
    /// The event is shared, never copied: every buffer entry, forwarded
    /// gossip and delivery handle holds a clone of this [`Arc`].  Publishing
    /// the same event id twice is idempotent (the duplicate is ignored).
    ///
    /// Implementations pre-register the event (see
    /// [`register_event`](Self::register_event)) before accepting it, so a
    /// bare `publish` is always sufficient to start dissemination.
    fn publish(&mut self, event: Arc<Event>);

    /// Makes the event known to the protocol ahead of publication.
    ///
    /// Most protocols resolve interest on the fly and do nothing here (the
    /// default).  The genuine-multicast baseline resolves the event's
    /// audience into its shared directory — the "global interest knowledge"
    /// the paper deems unrealistic, which is exactly what the baseline
    /// models.  Registration is idempotent.
    fn register_event(&mut self, _event: &Event) {}

    /// Returns `true` if the event was delivered to the application here.
    fn has_delivered(&self, event: EventId) -> bool;

    /// Returns `true` if the event was received at all (delivered or merely
    /// buffered / forwarded); Figure 5 measures exactly this for
    /// uninterested processes.
    fn has_received(&self, event: EventId) -> bool;

    /// The process's address in the membership tree.
    fn address(&self) -> &Address;

    /// Retires dedup state for events with identifiers below `floor`.
    ///
    /// Long-running processes accumulate seen/delivered identifier sets
    /// without bound; once every event below a watermark is quiescent
    /// (fully disseminated and past its round budgets everywhere), those
    /// identifiers can be collapsed into the watermark itself: after the
    /// call, any identifier below the floor *counts as already seen* —
    /// re-deliveries stay impossible, only the per-id storage is gone.
    /// Implementations clamp the floor so identifiers still buffered
    /// in-flight are never retired.  The default does nothing (a fresh
    /// process has nothing worth retiring).
    fn retire_below(&mut self, _floor: EventId) {}

    /// Number of event identifiers currently held in dedup state — the
    /// quantity [`retire_below`](Self::retire_below) bounds.  Diagnostic;
    /// defaults to zero for protocols without explicit dedup storage.
    fn dedup_len(&self) -> usize {
        0
    }
}

/// A whole group of protocol instances, one per member of a topology,
/// ordered by dense identifier (matching [`TreeTopology::members`]); hand
/// `processes` directly to [`pmcast_simnet::Simulation::new`].
pub struct ProtocolGroup<P> {
    /// One protocol instance per process, indexed by
    /// [`pmcast_simnet::ProcessId`].
    pub processes: Vec<P>,
    /// Member addresses in dense-identifier order.
    pub addresses: Arc<Vec<Address>>,
}

impl<P> std::fmt::Debug for ProtocolGroup<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProtocolGroup")
            .field("processes", &self.processes.len())
            .finish_non_exhaustive()
    }
}

/// Builds a whole [`ProtocolGroup`] for one protocol from the four shared
/// ingredients: topology, interest oracle, membership provider and
/// configuration.
///
/// Factories are zero-sized types used purely for static dispatch:
/// `PmcastFactory::build(…)` monomorphizes the simulation harness per
/// protocol, keeping the publish and gossip hot paths free of virtual
/// calls.  The membership provider is shared as a trait object — its
/// per-draw cost is a candidate lookup, guarded by the
/// `fanout_draw_direct` vs `fanout_draw_through_view` and `delegate_draw`
/// cases of `crates/bench/benches/micro.rs`.
///
/// # Examples
///
/// Code written against the factory bound runs unchanged for every
/// protocol — this is the whole point of the contract:
///
/// ```rust
/// use std::sync::Arc;
/// use pmcast_addr::AddressSpace;
/// use pmcast_core::{
///     FloodFactory, GenuineFactory, MulticastProtocol, PmcastConfig, PmcastFactory,
///     ProtocolFactory,
/// };
/// use pmcast_interest::Event;
/// use pmcast_membership::{GlobalOracleView, UniformOracle};
/// use pmcast_simnet::{NetworkConfig, ProcessId, Simulation};
///
/// fn deliveries<F: ProtocolFactory>() -> usize {
///     let topology = pmcast_membership::ImplicitRegularTree::new(
///         AddressSpace::regular(2, 4).expect("valid shape"),
///     );
///     let oracle = Arc::new(UniformOracle::new(16));
///     let membership = Arc::new(GlobalOracleView::new(16));
///     let group = F::build(&topology, oracle, membership, &PmcastConfig::default());
///     let mut sim = Simulation::new(group.processes, NetworkConfig::reliable(1));
///     let event = Event::builder(7).int("b", 1).build();
///     sim.process_mut(ProcessId(0)).publish(Arc::new(event.clone()));
///     sim.run_until_quiescent(200);
///     sim.processes().filter(|p| p.has_delivered(event.id())).count()
/// }
///
/// assert_eq!(deliveries::<PmcastFactory>(), 16);
/// assert_eq!(deliveries::<FloodFactory>(), 16);
/// assert_eq!(deliveries::<GenuineFactory>(), 16);
/// ```
pub trait ProtocolFactory {
    /// The protocol type this factory instantiates.
    type Process: MulticastProtocol;

    /// Builds one protocol instance per member of the topology.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`PmcastConfig::validate`]).
    fn build<T: TreeTopology>(
        topology: &T,
        oracle: Arc<dyn InterestOracle + Send + Sync>,
        membership: Arc<dyn MembershipView>,
        config: &PmcastConfig,
    ) -> ProtocolGroup<Self::Process>;
}

/// Factory for the pmcast protocol of Figure 3 ([`crate::PmcastProcess`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct PmcastFactory;

impl ProtocolFactory for PmcastFactory {
    type Process = crate::PmcastProcess;

    fn build<T: TreeTopology>(
        topology: &T,
        oracle: Arc<dyn InterestOracle + Send + Sync>,
        membership: Arc<dyn MembershipView>,
        config: &PmcastConfig,
    ) -> ProtocolGroup<Self::Process> {
        let group = crate::protocol::build_pmcast_group(topology, oracle, membership, config);
        ProtocolGroup {
            processes: group.processes,
            addresses: group.addresses,
        }
    }
}

/// Factory for the flooding gossip-broadcast baseline
/// ([`crate::FloodBroadcastProcess`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct FloodFactory;

impl ProtocolFactory for FloodFactory {
    type Process = crate::FloodBroadcastProcess;

    fn build<T: TreeTopology>(
        topology: &T,
        oracle: Arc<dyn InterestOracle + Send + Sync>,
        membership: Arc<dyn MembershipView>,
        config: &PmcastConfig,
    ) -> ProtocolGroup<Self::Process> {
        crate::baseline::build_flood_group_internal(topology, oracle, membership, config)
    }
}

/// Factory for the genuine-multicast baseline
/// ([`crate::GenuineMulticastProcess`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct GenuineFactory;

impl ProtocolFactory for GenuineFactory {
    type Process = crate::GenuineMulticastProcess;

    fn build<T: TreeTopology>(
        topology: &T,
        oracle: Arc<dyn InterestOracle + Send + Sync>,
        membership: Arc<dyn MembershipView>,
        config: &PmcastConfig,
    ) -> ProtocolGroup<Self::Process> {
        crate::baseline::build_genuine_group_internal(topology, oracle, membership, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcast_addr::AddressSpace;
    use pmcast_interest::Event;
    use pmcast_membership::{
        AssignmentOracle, GlobalOracleView, ImplicitRegularTree, UniformOracle,
    };
    use pmcast_simnet::{NetworkConfig, ProcessId, Simulation};

    fn topology() -> ImplicitRegularTree {
        ImplicitRegularTree::new(AddressSpace::regular(2, 4).unwrap())
    }

    fn global_view() -> Arc<dyn MembershipView> {
        Arc::new(GlobalOracleView::new(16))
    }

    /// Exercises the whole trait surface generically for one protocol.
    fn publish_and_run<F: ProtocolFactory>() -> Vec<F::Process> {
        let topology = topology();
        let oracle = Arc::new(UniformOracle::new(16));
        let group = F::build(&topology, oracle, global_view(), &PmcastConfig::default());
        assert_eq!(group.processes.len(), 16);
        assert_eq!(group.addresses.len(), 16);
        let mut sim = Simulation::new(group.processes, NetworkConfig::reliable(9));
        let event = Arc::new(Event::builder(31).int("b", 5).build());
        sim.process_mut(ProcessId(0)).publish(event);
        sim.run_until_quiescent(300);
        sim.into_processes()
    }

    fn delivered_count<P: MulticastProtocol>(processes: &[P], id: pmcast_interest::EventId) -> usize {
        processes.iter().filter(|p| p.has_delivered(id)).count()
    }

    #[test]
    fn all_factories_build_and_deliver_generically() {
        let event_id = Event::builder(31).build().id();
        assert_eq!(delivered_count(&publish_and_run::<PmcastFactory>(), event_id), 16);
        assert_eq!(delivered_count(&publish_and_run::<FloodFactory>(), event_id), 16);
        assert_eq!(delivered_count(&publish_and_run::<GenuineFactory>(), event_id), 16);
    }

    #[test]
    fn trait_addresses_match_group_order() {
        let topology = topology();
        let oracle = Arc::new(AssignmentOracle::new(
            vec!["0.0".parse().unwrap(), "1.2".parse().unwrap()],
        ));
        let group = GenuineFactory::build(&topology, oracle, global_view(), &PmcastConfig::default());
        for (process, address) in group.processes.iter().zip(group.addresses.iter()) {
            assert_eq!(MulticastProtocol::address(process), address);
        }
        assert!(format!("{group:?}").contains("ProtocolGroup"));
    }

    #[test]
    fn register_event_is_a_no_op_for_interest_oblivious_protocols() {
        let topology = topology();
        let oracle = Arc::new(UniformOracle::new(16));
        let mut group = FloodFactory::build(&topology, oracle, global_view(), &PmcastConfig::default());
        let event = Event::builder(77).build();
        group.processes[0].register_event(&event);
        assert!(!MulticastProtocol::has_received(&group.processes[0], event.id()));
    }
}
