use std::sync::Arc;

use pmcast_addr::{Address, Depth, Prefix};
use pmcast_analysis::pittel;
use pmcast_interest::{Event, EventId, EventIdSet};
use pmcast_membership::{InterestOracle, MembershipView, TreeTopology};
use pmcast_simnet::{Activity, ProcessId, RoundContext, RoundProcess};
use rand::Rng;

use crate::{
    BufferedGossip, Gossip, GossipBuffers, GossipTarget, InterestRouting, PmcastConfig,
    SharedViews,
};

/// A whole pmcast group ready to be handed to a
/// [`pmcast_simnet::Simulation`]: one protocol state machine per process
/// plus the shared views they gossip over.
pub struct PmcastGroup {
    /// One protocol instance per process, indexed by [`ProcessId`].
    pub processes: Vec<PmcastProcess>,
    /// The shared per-depth views.
    pub views: Arc<SharedViews>,
    /// Member addresses in dense-identifier order.
    pub addresses: Arc<Vec<Address>>,
}

impl std::fmt::Debug for PmcastGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmcastGroup")
            .field("processes", &self.processes.len())
            .finish_non_exhaustive()
    }
}

/// Crate-internal group construction backing [`crate::PmcastFactory`].
pub(crate) fn build_pmcast_group<T: TreeTopology>(
    topology: &T,
    oracle: Arc<dyn InterestOracle + Send + Sync>,
    membership: Arc<dyn MembershipView>,
    config: &PmcastConfig,
) -> PmcastGroup {
    config.validate();
    let views = Arc::new(SharedViews::build(topology, config.redundancy));
    let addresses = Arc::clone(views.addresses());
    let processes = addresses
        .iter()
        .enumerate()
        .map(|(index, address)| {
            PmcastProcess::new(
                address.clone(),
                ProcessId(index),
                config.clone(),
                Arc::clone(&views),
                Arc::clone(&oracle),
                Arc::clone(&membership),
            )
        })
        .collect();
    PmcastGroup {
        processes,
        views,
        addresses,
    }
}

/// Reusable per-process work buffers for the gossip round loop, so the hot
/// path allocates nothing after warm-up: candidate target positions for the
/// fanout draw and the events promoted to the next depth this round.
#[derive(Debug, Default)]
struct GossipScratch {
    candidates: Vec<usize>,
    /// Per-event narrowing of `candidates` under
    /// [`InterestRouting::Summary`]: the positions whose subtree summary
    /// does not rule the event out.
    event_candidates: Vec<usize>,
    promoted: Vec<Arc<Event>>,
}

/// One process running the pmcast algorithm of Figure 3.
pub struct PmcastProcess {
    address: Address,
    id: ProcessId,
    config: PmcastConfig,
    views: Arc<SharedViews>,
    /// This process's own view per depth (`depth_views[i]` is the depth
    /// `i + 1` view), resolved once at construction: the views are immutable
    /// after [`SharedViews::build`], and caching the handles keeps the
    /// per-round loop free of prefix hashing and map lookups.  The stack
    /// allocation is shared with every leaf-subgroup sibling.
    depth_views: crate::ViewStack,
    oracle: Arc<dyn InterestOracle + Send + Sync>,
    membership: Arc<dyn MembershipView>,
    buffers: GossipBuffers,
    delivered: Vec<Arc<Event>>,
    // Sorted-vector sets (not hash sets): three words each while empty, so
    // a million never-contacted processes hold no dedup heap at all.
    delivered_ids: EventIdSet,
    received_ids: EventIdSet,
    rounds_active: u64,
    scratch: GossipScratch,
}

impl std::fmt::Debug for PmcastProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmcastProcess")
            .field("address", &self.address)
            .field("id", &self.id)
            .field("buffered", &self.buffers.len())
            .field("delivered", &self.delivered.len())
            .finish_non_exhaustive()
    }
}

impl PmcastProcess {
    /// Creates a process; normally done through [`crate::PmcastFactory`].
    pub fn new(
        address: Address,
        id: ProcessId,
        config: PmcastConfig,
        views: Arc<SharedViews>,
        oracle: Arc<dyn InterestOracle + Send + Sync>,
        membership: Arc<dyn MembershipView>,
    ) -> Self {
        let depth = views.depth();
        let depth_views = views.view_stack(&address);
        // An address outside the populated leaf subgroups (possible for
        // hand-built processes) gets the per-depth fallback views instead of
        // a shared stack.
        let depth_views = if depth_views.len() == depth {
            depth_views
        } else {
            Arc::new((1..=depth).map(|d| views.view_for(&address, d)).collect())
        };
        Self {
            address,
            id,
            config,
            views,
            depth_views,
            oracle,
            membership,
            buffers: GossipBuffers::new(depth),
            delivered: Vec::new(),
            delivered_ids: EventIdSet::new(),
            received_ids: EventIdSet::new(),
            rounds_active: 0,
            scratch: GossipScratch::default(),
        }
    }

    /// The process's address.
    pub fn address(&self) -> &Address {
        &self.address
    }

    /// The process's dense simulation identifier.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Events delivered to the application (`HPDELIVER` in Figure 3), in
    /// delivery order.  The handles share the payload with the gossip layer;
    /// delivery never copies an event.
    pub fn delivered(&self) -> &[Arc<Event>] {
        &self.delivered
    }

    /// Returns `true` if the given event was delivered to the application.
    pub fn has_delivered(&self, event: EventId) -> bool {
        self.delivered_ids.contains(event)
    }

    /// Returns `true` if the given event was *received* by this process at
    /// all (delivered or merely buffered/forwarded); the paper's Figure 5
    /// measures exactly this for uninterested processes.
    pub fn has_received(&self, event: EventId) -> bool {
        self.received_ids.contains(event)
    }

    /// Number of rounds during which this process had something buffered.
    pub fn rounds_active(&self) -> u64 {
        self.rounds_active
    }

    /// Current number of buffered gossip entries.
    pub fn buffered(&self) -> usize {
        self.buffers.len()
    }

    /// Multicasts an event (`PMCAST` in Figure 3).
    ///
    /// Convenience wrapper allocating the shared payload and delegating to
    /// [`publish`](Self::publish), which is the single point where a
    /// multicast's payload enters the process: from there on every buffer
    /// entry, gossip message and delivery holds an [`Arc`] to one
    /// allocation.
    pub fn pmcast(&mut self, event: Event) {
        self.publish(Arc::new(event));
    }

    /// Publishes an already-shared event (the [`crate::MulticastProtocol`]
    /// entry point).
    ///
    /// Following the prose of Section 3 the event is injected at the root
    /// depth; with the local-interest shortcut enabled it skips depths in
    /// which only the multicaster's own subtree is interested.  Publishing
    /// an event this process has already seen is ignored.
    pub fn publish(&mut self, event: Arc<Event>) {
        if !self.received_ids.insert(event.id()) {
            return;
        }
        let depth = self.initial_depth(&event);
        let rate = self.effective_rate(depth, &event);
        let budget = self.round_budget(depth, rate);
        if self.oracle.is_interested(&self.address, &event) {
            self.deliver(&event);
        }
        self.buffers.insert(
            depth,
            BufferedGossip {
                event,
                rate,
                round: 0,
                budget,
            },
        );
    }

    /// The depth at which a locally published event starts gossiping.
    fn initial_depth(&self, event: &Event) -> Depth {
        let d = self.views.depth();
        if !self.config.local_interest_shortcut {
            return 1;
        }
        let mut depth = 1;
        while depth < d {
            let view = &self.depth_views[depth - 1];
            let own_subtree = self.address.prefix_of_depth(depth + 1);
            let foreign_interest = view.iter().any(|target| {
                target.subgroup != own_subtree
                    && self.oracle.subtree_interested(&target.subgroup, event)
            });
            if foreign_interest {
                break;
            }
            depth += 1;
        }
        depth
    }

    /// `GETRATE(depth, event)`: the fraction of view entries (delegates /
    /// neighbours) whose subtree is interested in the event.
    pub fn matching_rate(&self, depth: Depth, event: &Event) -> f64 {
        let view = &self.depth_views[depth - 1];
        if view.is_empty() {
            return 0.0;
        }
        let hits = view
            .iter()
            .filter(|target| self.oracle.subtree_interested(&target.subgroup, event))
            .count();
        hits as f64 / view.len() as f64
    }

    /// The rate used for round-budget computation and gossiping, with the
    /// Section 5.3 audience inflation applied when configured.
    fn effective_rate(&self, depth: Depth, event: &Event) -> f64 {
        let raw = self.matching_rate(depth, event);
        match self.config.tuning {
            Some(tuning) => {
                let view_len = self.depth_views[depth - 1].len();
                if view_len == 0 {
                    return raw;
                }
                let floor = (tuning.threshold as f64 / view_len as f64).min(1.0);
                raw.max(floor)
            }
            None => raw,
        }
    }

    /// The Pittel round budget for one depth given the (effective) matching
    /// rate there (Figure 3, line 7).
    fn round_budget(&self, depth: Depth, rate: f64) -> u32 {
        let view_len = self.depth_views[depth - 1].len();
        let effective_size = view_len as f64 * rate;
        let effective_fanout = self.config.fanout as f64 * rate;
        pittel::round_budget(effective_size, effective_fanout, &self.config.env)
            .min(self.config.max_rounds_per_depth)
    }

    /// Whether a drawn gossip destination should be sent the event.
    ///
    /// Under [`InterestRouting::Oracle`] (the historical behaviour) the
    /// target's subtree must be interested per the oracle, or audience
    /// inflation designates it (it is among the first `h` entries of the
    /// view).  Under [`InterestRouting::Summary`] the candidate pool was
    /// already narrowed by the membership provider's subtree summaries
    /// before the draw, so every drawn target is sent to — as it is under
    /// [`InterestRouting::Blind`], the unfiltered control arm.
    fn target_selected(&self, target: &GossipTarget, position: usize, event: &Event) -> bool {
        match self.config.interest_routing {
            InterestRouting::Oracle => {
                if self.oracle.subtree_interested(&target.subgroup, event) {
                    return true;
                }
                match self.config.tuning {
                    Some(tuning) => position < tuning.threshold,
                    None => false,
                }
            }
            InterestRouting::Summary | InterestRouting::Blind => true,
        }
    }

    fn deliver(&mut self, event: &Arc<Event>) {
        if self.delivered_ids.insert(event.id()) {
            self.delivered.push(Arc::clone(event));
        }
    }

    /// One iteration of the `GOSSIP` task of Figure 3 for a single depth.
    ///
    /// Allocation-free after warm-up: the per-depth entry vector is filtered
    /// in place, fanout targets are drawn by a partial Fisher–Yates over a
    /// reusable index buffer, and each sent gossip shares the event payload
    /// through its [`Arc`].
    fn gossip_depth(&mut self, depth: Depth, ctx: &mut RoundContext<'_, Gossip>) {
        // Check emptiness before taking the buffer: a `mem::take` on the
        // empty-but-warm vec would discard its capacity.
        if self.buffers.at_depth(depth).is_empty() {
            return;
        }
        // Move the entries and the scratch space out of `self` so the loop
        // below can mutate them while borrowing `self` shared for the
        // interest tests.
        let mut entries = std::mem::take(self.buffers.at_depth_mut(depth));
        let mut scratch = std::mem::take(&mut self.scratch);

        let view = Arc::clone(&self.depth_views[depth - 1]);
        let d = self.views.depth();
        let fanout = self.config.fanout;
        let own_id = self.id;

        // Candidate destinations: everyone in the view but ourselves that
        // the membership provider currently knows *at this depth*.  Under a
        // global view that is the whole view (asked once via `is_global`
        // instead of per entry); under a flat partial view it is the
        // discovered subset (`knows_at_depth` falls back to `knows`); under
        // the hierarchical `DelegateView` the answer comes straight from the
        // depth-`depth` delegate slots, so pmcast's tree delegates are
        // exactly the processes the maintained hierarchy seats.  Computed
        // once per depth and re-shuffled per entry.
        scratch.candidates.clear();
        if self.membership.is_global() {
            scratch
                .candidates
                .extend((0..view.len()).filter(|&i| view[i].id != own_id));
        } else {
            scratch.candidates.extend((0..view.len()).filter(|&i| {
                view[i].id != own_id
                    && self.membership.knows_at_depth(own_id.0, depth, view[i].id.0)
            }));
        }

        let routing = self.config.interest_routing;
        entries.retain_mut(|entry| {
            if entry.round < entry.budget {
                entry.round += 1;
                // Every gossip of this entry has the same wire size; compute
                // it once per entry-round instead of per target.
                let size = entry.event.payload_size() + Gossip::HEADER_SIZE;
                // Summary routing narrows the pool per event *before* the
                // draw: subtrees whose aggregated summary proves nobody
                // below is interested never consume a fanout pick.  The
                // test is a pure function of the membership state — no
                // randomness is touched — and in the other modes the pool
                // is the shared per-depth candidate list, so the draw
                // sequence there is bit-identical to the historical one.
                let pool = if routing == InterestRouting::Summary {
                    let membership = &self.membership;
                    // Candidates arrive in view order, so the positions of
                    // one subgroup's delegate slots are consecutive: memoize
                    // the last verdict and each distinct subtree is judged
                    // once per entry-round, not once per slot.
                    let mut last: Option<(&Prefix, bool)> = None;
                    scratch.event_candidates.clear();
                    scratch.event_candidates.extend(
                        scratch.candidates.iter().copied().filter(|&position| {
                            let subgroup = &view[position].subgroup;
                            match last {
                                Some((prefix, verdict)) if prefix == subgroup => verdict,
                                _ => {
                                    let verdict =
                                        membership.summary_allows(subgroup, &entry.event);
                                    last = Some((subgroup, verdict));
                                    verdict
                                }
                            }
                        }),
                    );
                    &mut scratch.event_candidates
                } else {
                    &mut scratch.candidates
                };
                // Choose F distinct destinations uniformly from the pool,
                // then send only to those that pass the interest test
                // (Figure 3, lines 10–14).
                let picks = fanout.min(pool.len());
                for slot in 0..picks {
                    let swap = ctx.rng().gen_range(slot..pool.len());
                    pool.swap(slot, swap);
                    let position = pool[slot];
                    let target = &view[position];
                    if self.target_selected(target, position, &entry.event) {
                        let gossip =
                            Gossip::new(Arc::clone(&entry.event), depth, entry.rate, entry.round);
                        ctx.send_sized(target.id, gossip, size);
                    }
                }
                true
            } else {
                if depth < d {
                    // Budget exhausted: promote to the next depth
                    // (lines 16–18).
                    scratch.promoted.push(Arc::clone(&entry.event));
                }
                // At the leaf depth an exhausted entry is simply garbage
                // collected.
                false
            }
        });

        *self.buffers.at_depth_mut(depth) = entries;
        for event in scratch.promoted.drain(..) {
            let next_rate = self.effective_rate(depth + 1, &event);
            let budget = self.round_budget(depth + 1, next_rate);
            self.buffers.promote(
                depth + 1,
                BufferedGossip {
                    event,
                    rate: next_rate,
                    round: 0,
                    budget,
                },
            );
        }
        self.scratch = scratch;
    }
}

impl RoundProcess for PmcastProcess {
    type Message = Gossip;

    fn on_round(&mut self, ctx: &mut RoundContext<'_, Gossip>) {
        if self.buffers.is_empty() {
            return;
        }
        self.rounds_active += 1;
        for depth in 1..=self.views.depth() {
            self.gossip_depth(depth, ctx);
        }
    }

    fn on_message(&mut self, _from: ProcessId, gossip: Gossip, _ctx: &mut RoundContext<'_, Gossip>) {
        self.received_ids.insert(gossip.event.id());
        if self.buffers.has_seen(gossip.event.id()) {
            return;
        }
        // File the event into the buffer of the depth it is travelling at
        // (Figure 3, lines 19–23); buffering and delivery share the payload.
        let budget = self.round_budget(gossip.depth, gossip.rate);
        if self.oracle.is_interested(&self.address, &gossip.event) {
            self.deliver(&gossip.event);
        }
        self.buffers.insert(
            gossip.depth,
            BufferedGossip {
                event: gossip.event,
                rate: gossip.rate,
                round: gossip.round,
                budget,
            },
        );
    }

    fn is_quiescent(&self) -> bool {
        self.buffers.is_empty()
    }

    fn activity(&self) -> Activity {
        // `on_round` early-returns on empty buffers — exactly the
        // quiescence condition — before touching the RNG, so a quiescent
        // round is a pure no-op and the engine may skip it.  This is what
        // makes million-process groups simulable: a round costs O(gossiping
        // processes), not O(n).
        Activity::SkipWhenQuiescent
    }
}

impl crate::MulticastProtocol for PmcastProcess {
    fn publish(&mut self, event: Arc<Event>) {
        PmcastProcess::publish(self, event);
    }
    fn has_delivered(&self, event: EventId) -> bool {
        PmcastProcess::has_delivered(self, event)
    }
    fn has_received(&self, event: EventId) -> bool {
        PmcastProcess::has_received(self, event)
    }
    fn address(&self) -> &Address {
        PmcastProcess::address(self)
    }
    fn retire_below(&mut self, floor: EventId) {
        // Never retire past an event still gossiping here: its dedup bits
        // (and its delivery record) must stay individually addressable.
        let floor = match self.buffers.min_buffered_id() {
            Some(min) => floor.min(min),
            None => floor,
        };
        self.buffers.retire_seen_below(floor);
        self.delivered_ids.compact_below(floor);
        self.received_ids.compact_below(floor);
        // The delivered payload log is the other unbounded per-process
        // store; retired events release their share of the payload Arcs.
        self.delivered.retain(|event| event.id() >= floor);
    }
    fn dedup_len(&self) -> usize {
        self.buffers.seen_count() + self.delivered_ids.len() + self.received_ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcast_addr::AddressSpace;
    use pmcast_interest::{Filter, Predicate};
    use pmcast_membership::{
        AssignmentOracle, GlobalOracleView, GroupTree, ImplicitRegularTree, UniformOracle,
    };
    use pmcast_simnet::{NetworkConfig, Simulation};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_topology() -> ImplicitRegularTree {
        ImplicitRegularTree::new(AddressSpace::regular(2, 4).unwrap())
    }

    fn global_view() -> Arc<dyn MembershipView> {
        Arc::new(GlobalOracleView::new(16))
    }

    fn run_multicast(
        oracle: Arc<dyn InterestOracle + Send + Sync>,
        config: PmcastConfig,
        network: NetworkConfig,
        event: Event,
        sender: usize,
    ) -> (Vec<PmcastProcess>, pmcast_simnet::TrafficStats) {
        let topology = small_topology();
        let group = build_pmcast_group(&topology, oracle, global_view(), &config);
        let mut sim = Simulation::new(group.processes, network);
        sim.process_mut(ProcessId(sender)).pmcast(event);
        sim.run_until_quiescent(300);
        let stats = *sim.stats();
        (sim.into_processes(), stats)
    }

    #[test]
    fn broadcast_case_reaches_every_process() {
        // With everyone interested and a reliable network, pmcast degenerates
        // to a reliable broadcast.
        let event = Event::builder(1).int("b", 1).build();
        let oracle = Arc::new(UniformOracle::new(16));
        let (processes, stats) = run_multicast(
            oracle,
            PmcastConfig::default(),
            NetworkConfig::reliable(3),
            event.clone(),
            0,
        );
        let delivered = processes.iter().filter(|p| p.has_delivered(event.id())).count();
        assert_eq!(delivered, 16);
        assert!(stats.messages_sent > 0);
    }

    #[test]
    fn uninterested_subtrees_are_not_infected() {
        // Only subtree 0 is interested; processes of other subtrees should
        // not even receive the event (that is the whole point of pmcast).
        let interested: Vec<Address> = ["0.0", "0.1", "0.2", "0.3"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let oracle = Arc::new(AssignmentOracle::new(interested));
        let event = Event::builder(2).int("b", 1).build();
        let (processes, _) = run_multicast(
            oracle.clone(),
            PmcastConfig::default(),
            NetworkConfig::reliable(5),
            event.clone(),
            0, // sender 0.0 is itself interested
        );
        for p in &processes {
            let interested = oracle.is_interested(p.address(), &event);
            if interested {
                assert!(p.has_delivered(event.id()), "{} must deliver", p.address());
            } else {
                assert!(!p.has_delivered(event.id()));
            }
        }
        // Spurious reception is limited to delegates of interested subtrees
        // (and possibly nobody in this tiny tree).
        let spurious = processes
            .iter()
            .filter(|p| !oracle.is_interested(p.address(), &event) && p.has_received(event.id()))
            .count();
        assert!(spurious <= 4, "at most a few uninterested receivers, got {spurious}");
    }

    #[test]
    fn delivery_requires_interest() {
        let oracle = Arc::new(AssignmentOracle::new(vec!["1.1".parse::<Address>().unwrap()]));
        let event = Event::builder(3).int("b", 1).build();
        let (processes, _) = run_multicast(
            oracle,
            PmcastConfig::default(),
            NetworkConfig::reliable(8),
            event.clone(),
            5, // sender 1.1 (index 5 in a 4x4 tree)
        );
        let deliverers: Vec<&PmcastProcess> = processes
            .iter()
            .filter(|p| p.has_delivered(event.id()))
            .collect();
        assert_eq!(deliverers.len(), 1);
        assert_eq!(deliverers[0].address().to_string(), "1.1");
    }

    #[test]
    fn matching_rate_reflects_oracle() {
        let topology = small_topology();
        let interested: Vec<Address> = ["0.0", "0.1", "1.0", "1.1", "2.0", "2.1", "3.0", "3.1"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let oracle: Arc<dyn InterestOracle + Send + Sync> =
            Arc::new(AssignmentOracle::new(interested));
        let group = build_pmcast_group(&topology, oracle, global_view(), &PmcastConfig::default());
        let process = &group.processes[0];
        let event = Event::builder(1).build();
        // Depth 1: all four subtrees contain interested processes.
        assert!((process.matching_rate(1, &event) - 1.0).abs() < 1e-12);
        // Depth 2 (leaf): half of the neighbours are interested.
        assert!((process.matching_rate(2, &event) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tuning_inflates_the_effective_audience() {
        let topology = small_topology();
        let oracle: Arc<dyn InterestOracle + Send + Sync> =
            Arc::new(AssignmentOracle::new(vec!["0.0".parse::<Address>().unwrap()]));
        let tuned_config = PmcastConfig::default().with_tuning(6);
        let group = build_pmcast_group(&topology, oracle.clone(), global_view(), &tuned_config);
        let process = &group.processes[0];
        let event = Event::builder(1).build();
        let raw = process.matching_rate(1, &event);
        let effective = process.effective_rate(1, &event);
        assert!(effective > raw);
        assert!(effective <= 1.0);

        // Without tuning the effective rate equals the raw rate.
        let plain_group = build_pmcast_group(&topology, oracle, global_view(), &PmcastConfig::default());
        let plain = &plain_group.processes[0];
        assert!((plain.effective_rate(1, &event) - plain.matching_rate(1, &event)).abs() < 1e-12);
    }

    #[test]
    fn local_interest_shortcut_skips_the_root() {
        let topology = small_topology();
        // Only the sender's own subtree (prefix 2) is interested.
        let interested: Vec<Address> = ["2.0", "2.1", "2.2"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let oracle: Arc<dyn InterestOracle + Send + Sync> =
            Arc::new(AssignmentOracle::new(interested));
        let config = PmcastConfig::default().with_local_interest_shortcut(true);
        let group = build_pmcast_group(&topology, oracle.clone(), global_view(), &config);
        let sender_index = group
            .addresses
            .iter()
            .position(|a| a.to_string() == "2.0")
            .unwrap();
        let mut sender = group
            .processes
            .into_iter()
            .nth(sender_index)
            .unwrap();
        let event = Event::builder(7).build();
        assert_eq!(sender.initial_depth(&event), 2);
        sender.pmcast(event.clone());
        // The event was filed directly at the leaf depth.
        assert_eq!(sender.buffers.at_depth(1).len(), 0);
        assert_eq!(sender.buffers.at_depth(2).len(), 1);

        // Without the shortcut the event starts at the root.
        let group2 = build_pmcast_group(&topology, oracle, global_view(), &PmcastConfig::default());
        assert_eq!(group2.processes[sender_index].initial_depth(&event), 1);
    }

    #[test]
    fn message_loss_degrades_but_rarely_destroys_delivery() {
        let oracle = Arc::new(UniformOracle::new(16));
        let event = Event::builder(4).build();
        let (processes, stats) = run_multicast(
            oracle,
            PmcastConfig::default().with_fanout(3),
            NetworkConfig::default().with_loss(0.2).with_seed(17),
            event.clone(),
            0,
        );
        let delivered = processes.iter().filter(|p| p.has_delivered(event.id())).count();
        assert!(delivered >= 12, "only {delivered}/16 delivered under 20% loss");
        assert!(stats.messages_lost > 0);
    }

    #[test]
    fn content_based_subscriptions_drive_delivery() {
        // Use a GroupTree with real filters as both topology and oracle.
        let space = AddressSpace::regular(2, 3).unwrap();
        let mut tree = GroupTree::new(space.clone());
        for (index, address) in space.iter().enumerate() {
            let filter = if index % 3 == 0 {
                Filter::new().with("kind", Predicate::eq_str("alert"))
            } else {
                Filter::new().with("kind", Predicate::eq_str("heartbeat"))
            };
            tree.join(address, filter).unwrap();
        }
        let tree = Arc::new(tree);
        let oracle: Arc<dyn InterestOracle + Send + Sync> = tree.clone();
        let group = build_pmcast_group(tree.as_ref(), oracle, global_view(), &PmcastConfig::default());
        let mut sim = Simulation::new(group.processes, NetworkConfig::reliable(2));
        let event = Event::builder(11).str("kind", "alert").build();
        sim.process_mut(ProcessId(0)).pmcast(event.clone());
        sim.run_until_quiescent(200);
        for p in sim.processes() {
            let wants_alerts = tree
                .subscription(p.address())
                .map(|f| {
                    use pmcast_interest::Interest;
                    f.matches(&event)
                })
                .unwrap_or(false);
            assert_eq!(p.has_delivered(event.id()), wants_alerts, "{}", p.address());
        }
    }

    #[test]
    fn multiple_concurrent_events_are_kept_apart() {
        let topology = small_topology();
        let oracle: Arc<dyn InterestOracle + Send + Sync> = Arc::new(UniformOracle::new(16));
        let group = build_pmcast_group(&topology, oracle, global_view(), &PmcastConfig::default());
        let mut sim = Simulation::new(group.processes, NetworkConfig::reliable(23));
        let event_a = Event::builder(100).int("b", 1).build();
        let event_b = Event::builder(200).int("b", 2).build();
        sim.process_mut(ProcessId(0)).pmcast(event_a.clone());
        sim.process_mut(ProcessId(9)).pmcast(event_b.clone());
        sim.run_until_quiescent(300);
        for p in sim.processes() {
            assert!(p.has_delivered(event_a.id()));
            assert!(p.has_delivered(event_b.id()));
            // Delivered list contains each event exactly once.
            assert_eq!(p.delivered().len(), 2);
        }
    }

    #[test]
    fn quiescence_is_reached_and_buffers_drain() {
        let oracle = Arc::new(UniformOracle::new(16));
        let event = Event::builder(5).build();
        let (processes, _) = run_multicast(
            oracle,
            PmcastConfig::default(),
            NetworkConfig::reliable(31),
            event,
            3,
        );
        for p in &processes {
            assert!(p.is_quiescent());
            assert_eq!(p.buffered(), 0);
            assert!(p.rounds_active() > 0 || p.delivered().is_empty());
        }
    }

    #[test]
    fn debug_output_is_informative() {
        let topology = small_topology();
        let oracle: Arc<dyn InterestOracle + Send + Sync> = Arc::new(UniformOracle::new(16));
        let group = build_pmcast_group(&topology, oracle, global_view(), &PmcastConfig::default());
        let text = format!("{:?}", group);
        assert!(text.contains("PmcastGroup"));
        let process_text = format!("{:?}", group.processes[0]);
        assert!(process_text.contains("PmcastProcess"));
        assert!(process_text.contains("address"));
    }

    #[test]
    fn duplicate_publish_is_ignored() {
        let topology = small_topology();
        let oracle: Arc<dyn InterestOracle + Send + Sync> = Arc::new(UniformOracle::new(16));
        let group = build_pmcast_group(&topology, oracle, global_view(), &PmcastConfig::default());
        let mut process = group.processes.into_iter().next().unwrap();
        let event = Arc::new(Event::builder(12).int("b", 3).build());
        process.publish(Arc::clone(&event));
        let buffered = process.buffered();
        process.publish(event);
        assert_eq!(process.buffered(), buffered);
        assert_eq!(process.delivered().len(), 1);
    }

    #[test]
    fn deterministic_given_equal_seeds() {
        let run = |seed: u64| {
            let oracle = Arc::new(AssignmentOracle::sample(
                &small_topology(),
                0.5,
                &mut ChaCha8Rng::seed_from_u64(7),
            ));
            let event = Event::builder(1).build();
            let (processes, stats) = run_multicast(
                oracle,
                PmcastConfig::default(),
                NetworkConfig::default().with_loss(0.1).with_seed(seed),
                event.clone(),
                0,
            );
            let delivered = processes.iter().filter(|p| p.has_delivered(event.id())).count();
            (delivered, stats.messages_sent)
        };
        assert_eq!(run(99), run(99));
    }

    #[test]
    fn shared_payload_gossip_preserves_delivery_and_spurious_counts() {
        // The zero-copy hot path must be behaviour-preserving: on a small
        // group with a known interest assignment, delivery and spurious
        // reception come out exactly as the protocol semantics dictate.
        let interested: Vec<Address> = ["0.0", "0.1", "1.0", "1.1"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let oracle = Arc::new(AssignmentOracle::new(interested.clone()));
        let event = Event::builder(55).int("b", 9).str("e", "Bob").build();
        let (processes, _) = run_multicast(
            oracle.clone(),
            PmcastConfig::default(),
            NetworkConfig::reliable(13),
            event.clone(),
            0,
        );
        let report =
            crate::MulticastReport::collect(&event, &processes, oracle.as_ref());
        // Every interested process delivers on a reliable network …
        assert_eq!(report.interested, 4);
        assert_eq!(report.delivered_interested, 4);
        // … nobody delivers without interest …
        for p in &processes {
            assert_eq!(
                p.has_delivered(event.id()),
                oracle.is_interested(p.address(), &event)
            );
        }
        // … and the delivered handles all point at shared payloads equal to
        // the original event (the Arc plumbing never mutated or re-built it).
        for p in processes.iter().filter(|p| p.has_delivered(event.id())) {
            assert_eq!(p.delivered().len(), 1);
            assert_eq!(*p.delivered()[0], event);
        }
        // Spurious reception stays bounded to delegates of interested
        // subtrees, exactly as the pre-Arc protocol behaved.
        assert!(report.received_uninterested <= 4);
    }
}
