use std::sync::Arc;

use pmcast_addr::Depth;
use pmcast_interest::{Event, EventId, EventIdSet};

/// One buffered event at one depth: the `(event, rate, round)` tuples of the
/// `gossips[depth]` sets in Figure 3, extended with the precomputed round
/// budget so the Pittel estimate is evaluated once per depth rather than
/// once per round.
///
/// The event is held through an [`Arc`]: buffering, promoting and forwarding
/// an event never copies its payload.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferedGossip {
    /// The buffered event (shared with every other holder).
    pub event: Arc<Event>,
    /// Matching rate at this depth.
    pub rate: f64,
    /// Rounds this event has already been gossiped at this depth.
    pub round: u32,
    /// Round budget at this depth (`T(|view| · R · rate, F · rate)`).
    pub budget: u32,
}

/// The per-process gossip buffers: one set of buffered events per depth,
/// plus the set of event identifiers ever seen.
///
/// The *bound gossiping* of Section 3.3 acts as passive garbage collection:
/// an event lives in a depth's buffer for at most its round budget, after
/// which it is either promoted to the next depth or dropped for good.  The
/// `seen` set prevents a late gossip from resurrecting an already
/// garbage-collected event; it is an [`EventIdSet`] — a sorted vector that
/// costs no heap allocation while empty — because a million-process group
/// holds one of these per process and a trial only disseminates a handful
/// of events through each.
#[derive(Debug, Clone)]
pub struct GossipBuffers {
    by_depth: Vec<Vec<BufferedGossip>>,
    seen: EventIdSet,
}

impl GossipBuffers {
    /// Creates empty buffers for a tree of the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: Depth) -> Self {
        assert!(depth >= 1, "a tree has at least one depth");
        Self {
            by_depth: vec![Vec::new(); depth],
            seen: EventIdSet::new(),
        }
    }

    /// The tree depth these buffers cover.
    pub fn depth(&self) -> Depth {
        self.by_depth.len()
    }

    /// Returns `true` if the event was ever inserted at any depth.
    pub fn has_seen(&self, event: EventId) -> bool {
        self.seen.contains(event)
    }

    /// Returns `true` if every per-depth buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.by_depth.iter().all(Vec::is_empty)
    }

    /// Total number of buffered entries across all depths.
    pub fn len(&self) -> usize {
        self.by_depth.iter().map(Vec::len).sum()
    }

    /// The buffered entries of one depth.
    ///
    /// # Panics
    ///
    /// Panics if the depth is out of range.
    pub fn at_depth(&self, depth: Depth) -> &[BufferedGossip] {
        assert!(depth >= 1 && depth <= self.by_depth.len());
        &self.by_depth[depth - 1]
    }

    /// Mutable access to one depth's entries.
    ///
    /// # Panics
    ///
    /// Panics if the depth is out of range.
    pub fn at_depth_mut(&mut self, depth: Depth) -> &mut Vec<BufferedGossip> {
        assert!(depth >= 1 && depth <= self.by_depth.len());
        &mut self.by_depth[depth - 1]
    }

    /// Inserts an event at a depth unless it was already seen (the
    /// `∄ depth ∃ (event, …) ∈ gossips[depth]` guard of Figure 3, line 20,
    /// hardened into "never seen before").  Returns `true` if inserted.
    pub fn insert(&mut self, depth: Depth, gossip: BufferedGossip) -> bool {
        if !self.seen.insert(gossip.event.id()) {
            return false;
        }
        self.at_depth_mut(depth).push(gossip);
        true
    }

    /// Re-files an event into a (deeper) depth without the seen-check; used
    /// when a process promotes an event from depth `i` to `i + 1`
    /// (Figure 3, lines 17–18).
    pub fn promote(&mut self, depth: Depth, gossip: BufferedGossip) {
        self.at_depth_mut(depth).push(gossip);
    }

    /// Number of distinct events ever seen.
    pub fn seen_count(&self) -> usize {
        self.seen.len()
    }

    /// The smallest identifier currently buffered at any depth, if any —
    /// the in-flight low watermark a retire must not cross.
    pub fn min_buffered_id(&self) -> Option<EventId> {
        self.by_depth
            .iter()
            .flatten()
            .map(|gossip| gossip.event.id())
            .min()
    }

    /// Compacts the seen-set below `floor` (see
    /// [`EventIdSet::compact_below`]); identifiers below the floor still
    /// count as seen.  Returns the number of retired identifiers.
    pub fn retire_seen_below(&mut self, floor: EventId) -> usize {
        self.seen.compact_below(floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gossip(id: u64) -> BufferedGossip {
        BufferedGossip {
            event: Arc::new(Event::builder(id).int("b", 1).build()),
            rate: 0.5,
            round: 0,
            budget: 5,
        }
    }

    #[test]
    fn insert_rejects_duplicates_across_depths() {
        let mut buffers = GossipBuffers::new(3);
        assert!(buffers.insert(1, gossip(7)));
        assert!(!buffers.insert(1, gossip(7)));
        assert!(!buffers.insert(2, gossip(7)));
        assert!(buffers.insert(3, gossip(8)));
        assert_eq!(buffers.len(), 2);
        assert_eq!(buffers.seen_count(), 2);
        assert!(buffers.has_seen(EventId(7)));
        assert!(!buffers.has_seen(EventId(9)));
    }

    #[test]
    fn promote_moves_between_depths_without_copying() {
        let mut buffers = GossipBuffers::new(2);
        buffers.insert(1, gossip(1));
        let entry = buffers.at_depth_mut(1).pop().unwrap();
        let payload = Arc::clone(&entry.event);
        buffers.promote(2, entry);
        assert!(buffers.at_depth(1).is_empty());
        assert_eq!(buffers.at_depth(2).len(), 1);
        assert!(!buffers.is_empty());
        // Promotion does not change the seen set …
        assert_eq!(buffers.seen_count(), 1);
        // … and moves the same shared payload, never a copy.
        assert!(Arc::ptr_eq(&payload, &buffers.at_depth(2)[0].event));
    }

    #[test]
    fn emptiness_and_depth() {
        let buffers = GossipBuffers::new(4);
        assert!(buffers.is_empty());
        assert_eq!(buffers.len(), 0);
        assert_eq!(buffers.depth(), 4);
        assert!(buffers.at_depth(4).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one depth")]
    fn zero_depth_panics() {
        let _ = GossipBuffers::new(0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_depth_panics() {
        let buffers = GossipBuffers::new(2);
        let _ = buffers.at_depth(3);
    }
}
