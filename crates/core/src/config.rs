use serde::{Deserialize, Serialize};

use pmcast_analysis::EnvParams;

/// The audience-inflation tuning of Section 5.3.
///
/// When the number of interested processes at a depth falls below the
/// threshold `h`, the first `h` processes of the view are treated as
/// interested in addition to the effectively interested ones, so that
/// Pittel's round estimate (which assumes a large audience) applies again.
/// This trades a higher rate of infected *non-interested* processes for a
/// better delivery probability at small matching rates (Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TuningConfig {
    /// Minimum audience `h` per depth.
    pub threshold: usize,
}

impl Default for TuningConfig {
    fn default() -> Self {
        Self { threshold: 10 }
    }
}

/// Configuration of the pmcast protocol (the parameters of Figure 3 plus
/// the environmental estimates of Section 3.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PmcastConfig {
    /// Redundancy factor `R`: delegates per subgroup.
    pub redundancy: usize,
    /// Gossip fanout `F`: targets contacted per buffered event per round.
    pub fanout: usize,
    /// Environmental estimates (message loss `ε`, crash fraction `τ`,
    /// Pittel constant `c`) used to compute per-depth round budgets.
    pub env: EnvParams,
    /// Optional audience-inflation tuning for small matching rates.
    pub tuning: Option<TuningConfig>,
    /// Skip root depths in which only the multicaster's own subtree is
    /// interested (Section 3.2, last paragraph).
    pub local_interest_shortcut: bool,
    /// Hard cap on the per-depth round budget, protecting against degenerate
    /// estimates.
    pub max_rounds_per_depth: u32,
    /// How the fanout draw decides which subtrees are worth gossiping into
    /// (defaults to [`InterestRouting::Oracle`], the historical behaviour).
    #[serde(default)]
    pub interest_routing: InterestRouting,
}

/// Strategy for the per-target interest decision of the `GOSSIP` task
/// (Figure 3, lines 10–14).
///
/// All three strategies share the oracle-based `GETRATE` and round budgets —
/// routing only changes *which* drawn targets receive the gossip, so the
/// three arms of a routing experiment spend identical round budgets and the
/// comparison isolates the routing decision itself.
///
/// Stream-neutrality: routing decisions are pure functions of the view and
/// the event — none of them consume randomness — so scenarios that do not
/// opt in stay bit-identical to the historical goldens.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum InterestRouting {
    /// Consult the global interest oracle per target (the paper's model:
    /// every process knows the interests of its view).  The default.
    #[default]
    Oracle,
    /// Consult the membership provider's aggregated per-subtree
    /// [summaries](pmcast_membership::MembershipView::summary_allows):
    /// candidates whose subtree *provably* contains no interested process
    /// are skipped before the fanout draw, every drawn target is sent to.
    /// Degenerates to [`Blind`](Self::Blind) when the provider carries no
    /// summaries.
    Summary,
    /// Send to every drawn target unconditionally — the "no interest
    /// filtering" control arm of the routing experiment.
    Blind,
}

impl Default for PmcastConfig {
    fn default() -> Self {
        Self {
            redundancy: 3,
            fanout: 2,
            env: EnvParams::default(),
            tuning: None,
            local_interest_shortcut: false,
            max_rounds_per_depth: 64,
            interest_routing: InterestRouting::default(),
        }
    }
}

impl PmcastConfig {
    /// The configuration used throughout the paper's reliability figures:
    /// `R = 3`, `F = 2`.
    pub fn paper_reliability() -> Self {
        Self::default()
    }

    /// The configuration of the paper's scalability figure (Figure 6):
    /// `R = 4`, `F = 3`.
    pub fn paper_scalability() -> Self {
        Self {
            redundancy: 4,
            fanout: 3,
            ..Self::default()
        }
    }

    /// Sets the redundancy factor, returning the config for chaining.
    pub fn with_redundancy(mut self, redundancy: usize) -> Self {
        self.redundancy = redundancy;
        self
    }

    /// Sets the fanout, returning the config for chaining.
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        self.fanout = fanout;
        self
    }

    /// Sets the environmental estimates, returning the config for chaining.
    pub fn with_env(mut self, env: EnvParams) -> Self {
        self.env = env;
        self
    }

    /// Enables the Section 5.3 tuning with the given threshold.
    pub fn with_tuning(mut self, threshold: usize) -> Self {
        self.tuning = Some(TuningConfig { threshold });
        self
    }

    /// Enables the local-interest shortcut of Section 3.2.
    pub fn with_local_interest_shortcut(mut self, enabled: bool) -> Self {
        self.local_interest_shortcut = enabled;
        self
    }

    /// Sets the interest-routing strategy, returning the config for
    /// chaining.
    pub fn with_interest_routing(mut self, routing: InterestRouting) -> Self {
        self.interest_routing = routing;
        self
    }

    /// Validates the configuration, panicking on nonsensical values.
    ///
    /// # Panics
    ///
    /// Panics if `redundancy` or `fanout` is zero.
    pub fn validate(&self) {
        assert!(self.redundancy >= 1, "redundancy R must be at least 1");
        assert!(self.fanout >= 1, "fanout F must be at least 1");
        assert!(
            (0.0..=1.0).contains(&self.env.loss_probability),
            "loss probability must lie in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.env.crash_probability),
            "crash probability must lie in [0, 1]"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper_reliability_setup() {
        let config = PmcastConfig::default();
        assert_eq!(config.redundancy, 3);
        assert_eq!(config.fanout, 2);
        assert!(config.tuning.is_none());
        assert!(!config.local_interest_shortcut);
        config.validate();
        assert_eq!(PmcastConfig::paper_reliability(), config);
    }

    #[test]
    fn scalability_preset() {
        let config = PmcastConfig::paper_scalability();
        assert_eq!(config.redundancy, 4);
        assert_eq!(config.fanout, 3);
        config.validate();
    }

    #[test]
    fn builder_methods_chain() {
        let config = PmcastConfig::default()
            .with_redundancy(5)
            .with_fanout(4)
            .with_env(EnvParams::lossless())
            .with_tuning(12)
            .with_local_interest_shortcut(true);
        assert_eq!(config.redundancy, 5);
        assert_eq!(config.fanout, 4);
        assert_eq!(config.env, EnvParams::lossless());
        assert_eq!(config.tuning, Some(TuningConfig { threshold: 12 }));
        assert!(config.local_interest_shortcut);
        config.validate();
        assert_eq!(TuningConfig::default().threshold, 10);
    }

    #[test]
    #[should_panic(expected = "fanout F must be at least 1")]
    fn zero_fanout_is_rejected() {
        PmcastConfig::default().with_fanout(0).validate();
    }

    #[test]
    #[should_panic(expected = "redundancy R must be at least 1")]
    fn zero_redundancy_is_rejected() {
        PmcastConfig::default().with_redundancy(0).validate();
    }

    #[test]
    fn serde_round_trip() {
        let config = PmcastConfig::paper_scalability().with_tuning(7);
        let json = serde_json::to_string(&config).unwrap();
        let back: PmcastConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(config, back);
        let summary = config.with_interest_routing(InterestRouting::Summary);
        let json = serde_json::to_string(&summary).unwrap();
        let back: PmcastConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.interest_routing, InterestRouting::Summary);
    }

    #[test]
    fn routing_defaults_to_oracle_in_old_configs() {
        // Configs serialized before the routing knob existed must keep
        // deserializing — and must route exactly as they always did.
        let json = r#"{
            "redundancy": 3, "fanout": 2,
            "env": {"loss_probability": 0.0, "crash_probability": 0.0, "pittel_constant": 2.0},
            "tuning": null, "local_interest_shortcut": false,
            "max_rounds_per_depth": 64
        }"#;
        let back: PmcastConfig = serde_json::from_str(json).unwrap();
        assert_eq!(back.interest_routing, InterestRouting::Oracle);
    }
}
