use serde::{Deserialize, Serialize};

use pmcast_addr::Address;
use pmcast_interest::{Event, EventId};
use pmcast_membership::InterestOracle;

/// Read-only view of a protocol instance's delivery state, implemented by
/// [`crate::PmcastProcess`] and by the baseline protocols so that the same
/// reporting code covers all of them.
pub trait DeliveryOutcome {
    /// The process's address.
    fn outcome_address(&self) -> &Address;
    /// Returns `true` if the event was delivered to the application.
    fn outcome_delivered(&self, event: EventId) -> bool;
    /// Returns `true` if the event was received at all (delivered or merely
    /// buffered / forwarded).
    fn outcome_received(&self, event: EventId) -> bool;
}

impl DeliveryOutcome for crate::PmcastProcess {
    fn outcome_address(&self) -> &Address {
        self.address()
    }
    fn outcome_delivered(&self, event: EventId) -> bool {
        self.has_delivered(event)
    }
    fn outcome_received(&self, event: EventId) -> bool {
        self.has_received(event)
    }
}

/// Aggregated outcome of one multicast over a whole group: the quantities of
/// the paper's Figures 4 and 5 plus the raw counts they derive from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MulticastReport {
    /// Processes interested in the event.
    pub interested: usize,
    /// Interested processes that delivered it.
    pub delivered_interested: usize,
    /// Processes not interested in the event.
    pub uninterested: usize,
    /// Uninterested processes that nevertheless received it.
    pub received_uninterested: usize,
    /// Total processes that received the event in any role.
    pub received_total: usize,
}

impl MulticastReport {
    /// Collects the outcome of one event over an iterator of protocol
    /// states, classifying every process with the given oracle.
    pub fn collect<'a, P, I>(event: &Event, processes: I, oracle: &dyn InterestOracle) -> Self
    where
        P: DeliveryOutcome + 'a,
        I: IntoIterator<Item = &'a P>,
    {
        let mut report = MulticastReport::default();
        for process in processes {
            let address = process.outcome_address();
            let interested = oracle.is_interested(address, event);
            let delivered = process.outcome_delivered(event.id());
            let received = process.outcome_received(event.id());
            if received {
                report.received_total += 1;
            }
            if interested {
                report.interested += 1;
                if delivered {
                    report.delivered_interested += 1;
                }
            } else {
                report.uninterested += 1;
                if received {
                    report.received_uninterested += 1;
                }
            }
        }
        report
    }

    /// Collects one report per event over the same processes — the
    /// multi-event counterpart of [`collect`](Self::collect) used by
    /// scenario runs with several publications.
    ///
    /// Returns the reports in the order of `events`.  The process states
    /// are walked once per event; merge the results with
    /// [`merge`](Self::merge) for whole-scenario totals.
    pub fn collect_per_event<'a, 'e, P, I, E>(
        events: E,
        processes: I,
        oracle: &dyn InterestOracle,
    ) -> Vec<MulticastReport>
    where
        P: DeliveryOutcome + 'a,
        I: IntoIterator<Item = &'a P>,
        E: IntoIterator<Item = &'e Event>,
    {
        let processes: Vec<&P> = processes.into_iter().collect();
        events
            .into_iter()
            .map(|event| Self::collect(event, processes.iter().copied(), oracle))
            .collect()
    }

    /// Probability of delivery for interested processes (the y-axis of
    /// Figure 4).  Returns 1 when nobody was interested.
    pub fn delivery_ratio(&self) -> f64 {
        if self.interested == 0 {
            return 1.0;
        }
        self.delivered_interested as f64 / self.interested as f64
    }

    /// Probability of reception for uninterested processes (the y-axis of
    /// Figure 5).  Returns 0 when everybody was interested.
    pub fn spurious_ratio(&self) -> f64 {
        if self.uninterested == 0 {
            return 0.0;
        }
        self.received_uninterested as f64 / self.uninterested as f64
    }

    /// Merges counters of another report (e.g. a different trial) into this
    /// one.
    pub fn merge(&mut self, other: &MulticastReport) {
        self.interested += other.interested;
        self.delivered_interested += other.delivered_interested;
        self.uninterested += other.uninterested;
        self.received_uninterested += other.received_uninterested;
        self.received_total += other.received_total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeProcess {
        address: Address,
        delivered: bool,
        received: bool,
    }

    impl DeliveryOutcome for FakeProcess {
        fn outcome_address(&self) -> &Address {
            &self.address
        }
        fn outcome_delivered(&self, _event: EventId) -> bool {
            self.delivered
        }
        fn outcome_received(&self, _event: EventId) -> bool {
            self.received
        }
    }

    struct FakeOracle;
    impl InterestOracle for FakeOracle {
        fn is_interested(&self, address: &Address, _event: &Event) -> bool {
            // Processes with first component 0 are interested.
            address.components()[0] == 0
        }
        fn interested_count_under(
            &self,
            _prefix: &pmcast_addr::Prefix,
            _event: &Event,
        ) -> usize {
            0
        }
    }

    fn fake(addr: &str, delivered: bool, received: bool) -> FakeProcess {
        FakeProcess {
            address: addr.parse().unwrap(),
            delivered,
            received,
        }
    }

    #[test]
    fn collect_classifies_processes() {
        let processes = vec![
            fake("0.0", true, true),   // interested, delivered
            fake("0.1", false, false), // interested, missed
            fake("1.0", false, true),  // uninterested, received anyway
            fake("1.1", false, false), // uninterested, untouched
        ];
        let event = Event::new(1);
        let report = MulticastReport::collect(&event, &processes, &FakeOracle);
        assert_eq!(report.interested, 2);
        assert_eq!(report.delivered_interested, 1);
        assert_eq!(report.uninterested, 2);
        assert_eq!(report.received_uninterested, 1);
        assert_eq!(report.received_total, 2);
        assert!((report.delivery_ratio() - 0.5).abs() < 1e-12);
        assert!((report.spurious_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ratios_handle_empty_classes() {
        let report = MulticastReport::default();
        assert_eq!(report.delivery_ratio(), 1.0);
        assert_eq!(report.spurious_ratio(), 0.0);
    }

    #[test]
    fn merge_accumulates_trials() {
        let mut a = MulticastReport {
            interested: 10,
            delivered_interested: 9,
            uninterested: 5,
            received_uninterested: 1,
            received_total: 10,
        };
        let b = MulticastReport {
            interested: 10,
            delivered_interested: 10,
            uninterested: 5,
            received_uninterested: 0,
            received_total: 10,
        };
        a.merge(&b);
        assert_eq!(a.interested, 20);
        assert_eq!(a.delivered_interested, 19);
        assert!((a.delivery_ratio() - 0.95).abs() < 1e-12);
        assert!((a.spurious_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let report = MulticastReport {
            interested: 3,
            delivered_interested: 2,
            uninterested: 1,
            received_uninterested: 0,
            received_total: 2,
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: MulticastReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
