//! Declarative multicast scenarios: *what happens* in a trial, separated
//! from *which protocol* runs it.
//!
//! A [`Scenario`] describes a whole experiment point — the group shape, the
//! interest workload, the fault model and a **publish schedule** of any
//! number of events from any number of publishers at any rounds.  The
//! [`ScenarioBuilder`] makes composing one a few fluent lines; the runner
//! ([`crate::runner::run_scenario`] and friends) executes it with one
//! generic simulation loop for every protocol implementing
//! [`pmcast_core::MulticastProtocol`], so a new workload is a new builder
//! chain — never a fork of the trial loop.
//!
//! ```rust
//! use pmcast_interest::Event;
//! use pmcast_sim::runner::Protocol;
//! use pmcast_sim::scenario::{Publisher, Scenario};
//!
//! let scenario = Scenario::builder()
//!     .group(4, 3) // 4^3 = 64 processes
//!     .matching_rate(0.6)
//!     .loss(0.01)
//!     .publish(Publisher::Interested, Event::builder(1).int("b", 1).build())
//!     .publish_at(3, Publisher::Uniform, Event::builder(2).int("b", 2).build())
//!     .trials(2)
//!     .seed(7)
//!     .build();
//! let outcomes = scenario.run(Protocol::Pmcast);
//! assert_eq!(outcomes.len(), 2);
//! assert_eq!(outcomes[0].per_event.len(), 2);
//! ```

use std::sync::Arc;

use pmcast_core::PmcastConfig;
use pmcast_interest::Event;
use pmcast_membership::{
    DelegateView, DelegateViewConfig, GlobalOracleView, LazyDelegateView, MembershipView,
    PartialView, PartialViewConfig, Population, PopulationSizes,
};
use pmcast_simnet::{FaultPlan, LinkDelay, PartitionWindow, Straggler};
use serde::{Deserialize, Serialize};

use crate::runner::{
    run_scenario, run_scenario_parallel, ExperimentConfig, Protocol, TrialOutcome,
};

/// Which membership provider the processes of a trial draw their fanout
/// candidates from — the scenario axis that turns "a group of `n` known
/// processes" into "a population discovered by gossip".
///
/// # Examples
///
/// The same workload can run over global knowledge, a flat lpbcast-style
/// bounded view, or the paper's hierarchical delegate tables — only the
/// membership axis changes:
///
/// ```rust
/// use pmcast_sim::runner::Protocol;
/// use pmcast_sim::scenario::{MembershipSpec, Scenario};
///
/// for membership in [
///     MembershipSpec::Global,          // everyone knows everyone
///     MembershipSpec::partial(12),     // flat bounded random views
///     MembershipSpec::delegate(3),     // Section 2 per-depth delegate slots
/// ] {
///     let scenario = Scenario::builder()
///         .group(4, 2)
///         .membership(membership)
///         .seed(7)
///         .build();
///     let outcome = &scenario.run(Protocol::Pmcast)[0];
///     assert!(outcome.messages_sent > 0);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum MembershipSpec {
    /// Every process knows the whole group
    /// ([`GlobalOracleView`]) — the historical construction, bit-identical
    /// to pre-provider scenarios.
    #[default]
    Global,
    /// lpbcast-style **flat** bounded partial views maintained by gossip
    /// ([`PartialView`]), re-bootstrapped per trial from the trial's
    /// membership seed stream (see the seed contract in
    /// [`crate::runner`]).
    Partial {
        /// Maximum peers per process view.
        view_size: usize,
        /// Membership-gossip contacts per round.
        gossip_fanout: usize,
        /// View entries piggybacked per contact.
        digest_size: usize,
    },
    /// The paper's **hierarchical** Section 2 view-table maintenance
    /// ([`DelegateView`]): per-depth delegate slots structured by the
    /// scenario's tree coordinates, gossip-piggybacked delegate tables and
    /// smallest-address re-election under churn.  Bounded like
    /// [`Partial`](Self::Partial) (`(d−1)·a·slots + a` entries), but the
    /// bounded view *contains pmcast's tree delegates by construction* —
    /// see `examples/partial_view_sweep.rs` for the flat-vs-delegate
    /// comparison this variant exists for.
    Delegate {
        /// Delegate slots per subgroup per depth (keep `slots ≥ R`).
        slots: usize,
        /// Membership-gossip contacts per round.
        gossip_fanout: usize,
        /// View entries piggybacked per contact.
        digest_size: usize,
    },
    /// The **lazy** delegate provider ([`LazyDelegateView`]): the same
    /// per-depth delegate answers as [`Delegate`](Self::Delegate) in its
    /// churn-converged steady state, but computed on demand from an `O(n)`
    /// occupancy set instead of materialized slot tables — so a
    /// million-process delegate trial bootstraps instantly instead of
    /// building `n · a · d · slots` table entries.  Consumes **no**
    /// randomness (stream-neutral by construction) and models instant
    /// re-election under churn; use [`Delegate`](Self::Delegate) when the
    /// gossip convergence of the tables is itself under study.
    DelegateLazy {
        /// Delegate slots per subgroup per depth (keep `slots ≥ R`).
        slots: usize,
    },
}

impl MembershipSpec {
    /// The default partial-view spec with a given view size (the knob the
    /// paper-style reliability-vs-view-size sweeps vary).
    pub fn partial(view_size: usize) -> Self {
        let defaults = PartialViewConfig::default().with_view_size(view_size);
        Self::Partial {
            view_size: defaults.view_size,
            gossip_fanout: defaults.gossip_fanout,
            digest_size: defaults.digest_size,
        }
    }

    /// The default delegate-view spec with a given per-subgroup slot count
    /// (the hierarchical counterpart of [`partial`](Self::partial)'s view
    /// size).
    pub fn delegate(slots: usize) -> Self {
        let defaults = DelegateViewConfig::default().with_slots(slots);
        Self::Delegate {
            slots: defaults.slots,
            gossip_fanout: defaults.gossip_fanout,
            digest_size: defaults.digest_size,
        }
    }

    /// The lazy delegate-view spec with a given per-subgroup slot count —
    /// [`delegate`](Self::delegate)'s instant-bootstrap counterpart for
    /// trials whose group is too large to materialize slot tables for.
    pub fn delegate_lazy(slots: usize) -> Self {
        Self::DelegateLazy { slots }
    }

    /// Instantiates the provider for one trial over a regular
    /// `arity^depth` tree; `membership_seed` must come from the trial's
    /// membership stream (rule 3 of the [`crate::runner`] seed contract —
    /// shared by the [`Partial`](Self::Partial) and
    /// [`Delegate`](Self::Delegate) providers) so parallel trials stay
    /// bit-identical to sequential ones.
    ///
    /// `occupied` carries the trial's initial population (see
    /// [`Population::occupied_at_start`]): `None` for the fully populated
    /// static tree (the historical path, bit-identical streams), `Some`
    /// for a sparse start — the gossip providers then bootstrap gap-aware
    /// (`bootstrap_sparse`, which consumes no randomness beyond the same
    /// seed), while [`Global`](Self::Global) stays the omniscient static
    /// directory it has always been (stream-neutral by contract: it knows
    /// every address and ignores lifecycle notifications).
    pub fn instantiate(
        &self,
        arity: u32,
        depth: usize,
        membership_seed: u64,
        occupied: Option<&[bool]>,
    ) -> Arc<dyn MembershipView> {
        let n = (arity as usize).pow(depth as u32);
        match *self {
            MembershipSpec::Global => Arc::new(GlobalOracleView::new(n)),
            MembershipSpec::Partial {
                view_size,
                gossip_fanout,
                digest_size,
            } => {
                let config = PartialViewConfig {
                    view_size,
                    gossip_fanout,
                    digest_size,
                };
                Arc::new(match occupied {
                    Some(occupied) => {
                        PartialView::bootstrap_sparse(occupied, config, membership_seed)
                    }
                    None => PartialView::bootstrap(n, config, membership_seed),
                })
            }
            MembershipSpec::Delegate {
                slots,
                gossip_fanout,
                digest_size,
            } => {
                let config = DelegateViewConfig {
                    slots,
                    gossip_fanout,
                    digest_size,
                };
                Arc::new(match occupied {
                    Some(occupied) => DelegateView::bootstrap_sparse(
                        arity,
                        depth,
                        config,
                        membership_seed,
                        occupied,
                    ),
                    None => DelegateView::bootstrap(arity, depth, config, membership_seed),
                })
            }
            // The lazy provider derives every answer from occupancy alone:
            // no tables, no randomness, `membership_seed` deliberately
            // unused (the stream stays untouched, rule 3 is vacuous here).
            MembershipSpec::DelegateLazy { slots } => {
                Arc::new(LazyDelegateView::new(arity, depth, slots, occupied))
            }
        }
    }
}

/// How the publisher of a scheduled publication is chosen.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Publisher {
    /// A uniformly random process.
    Uniform,
    /// A uniformly random *interested* process (the paper's model: the
    /// publisher counts as the initially infected process).  Falls back to
    /// a uniform draw when nobody is interested.
    Interested,
    /// The process with this dense identifier.
    Process(usize),
}

/// One scheduled publication: an event injected at a given round by a
/// publisher chosen per [`Publisher`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Publication {
    /// Simulation round at which the event is published.
    pub round: u64,
    /// How the publishing process is chosen.
    pub publisher: Publisher,
    /// The event payload.
    pub event: Event,
}

/// Correlated loss over one subtree of the scenario's `arity^depth` group:
/// every message **to or from** a process under `prefix` suffers an extra
/// independent loss probability on top of the global `ε` (the two loss
/// sources compose multiplicatively).  This is the scenario-level face of a
/// [`pmcast_simnet::LossOverride`] — the builder translates the tree prefix
/// into the subtree's contiguous dense-index range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubtreeLoss {
    /// Tree coordinates of the lossy subtree, most significant level first
    /// (e.g. `[2, 0]` is subgroup 0 within top-level subgroup 2); the empty
    /// prefix covers the whole group.
    pub prefix: Vec<u32>,
    /// Extra loss probability applied to the subtree's links.
    pub loss_probability: f64,
}

/// A heavy multi-topic traffic axis: `topics` overlapping audiences,
/// `events` publications spread over `publish_rounds` rounds with a
/// Zipf-tilted topic mix — the production-style pub/sub workload the
/// single-matching-rate trials cannot express.
///
/// When a scenario carries one of these, the matching-rate assignment and
/// the publish schedule are **replaced**: every process subscribes to
/// `subscriptions_per_process` distinct topics (drawn from the workload
/// stream, see the seed contract in [`crate::runner`]), each event carries
/// a `topic` attribute drawn from the truncated Zipf mix, and its publisher
/// is a uniform draw among the topic's subscribers.  Interest is answered
/// by a [`pmcast_membership::TopicOracle`], whose per-topic audiences are
/// hashconsed — thousands of events over a few dozen topics build a few
/// dozen audience sets, not thousands.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopicWorkload {
    /// Number of topics (audiences) the group publishes over.
    pub topics: usize,
    /// Distinct topics each process subscribes to.
    pub subscriptions_per_process: usize,
    /// Events published in total (ids `10_000 + e`).
    pub events: usize,
    /// The rounds the schedule is spread over: event `e` is published at
    /// round `e · publish_rounds / events` (deterministic, no randomness).
    pub publish_rounds: u64,
    /// Skew of the topic mix: topic `k` (0-based) is drawn with weight
    /// `(k + 1)^-zipf_exponent`.  `0.0` is a uniform mix; the classic
    /// Zipf-like skew is `1.0`.
    pub zipf_exponent: f64,
}

impl TopicWorkload {
    /// A topic workload with the given shape, published in a single round
    /// burst with the classic `1.0` Zipf skew.
    pub fn new(topics: usize, subscriptions_per_process: usize, events: usize) -> Self {
        Self {
            topics,
            subscriptions_per_process,
            events,
            publish_rounds: 1,
            zipf_exponent: 1.0,
        }
    }

    /// Spreads the schedule over the given number of rounds, returning the
    /// workload for chaining.
    pub fn with_publish_rounds(mut self, publish_rounds: u64) -> Self {
        self.publish_rounds = publish_rounds;
        self
    }

    /// Sets the Zipf skew of the topic mix, returning the workload for
    /// chaining.
    pub fn with_zipf_exponent(mut self, zipf_exponent: f64) -> Self {
        self.zipf_exponent = zipf_exponent;
        self
    }
}

/// Everything that happens in one Monte-Carlo trial, independent of the
/// protocol disseminating it: group shape, protocol parameters, interest
/// workload, fault model and publish schedule.
///
/// Build one with [`Scenario::builder`]; run it with [`Scenario::run`] /
/// [`Scenario::run_parallel`] (or the `run_scenario*` functions of
/// [`crate::runner`], including the generic
/// [`crate::runner::run_scenario_trial`] for custom protocols).
///
/// An empty `publications` list means the **default workload**: one event
/// (`id = 1000 + trial`, one `b` attribute) published at round 0 by a
/// random interested process — the paper's one-event-one-sender trial
/// shape, kept as the default so [`ExperimentConfig`] sweeps reproduce
/// their historical random streams exactly (see the seed-derivation
/// contract in [`crate::runner`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Subgroups per level (`a`).
    pub arity: u32,
    /// Tree depth (`d`).
    pub depth: usize,
    /// Protocol parameters (R, F, env, tuning, …).
    pub protocol: PmcastConfig,
    /// Fraction of interested processes (`p_d`), sampled i.i.d. per trial.
    pub matching_rate: f64,
    /// Network message-loss probability (`ε`).
    pub loss_probability: f64,
    /// Fraction of processes crashed at the start of the run (`τ`).
    pub crash_fraction: f64,
    /// Processes crashed at fixed rounds (`(round, process index)`), on top
    /// of `crash_fraction`.
    pub crash_schedule: Vec<(u64, usize)>,
    /// Processes joining (subscribing) at fixed rounds.  A process whose
    /// earliest lifecycle event is a join starts the trial **absent** — its
    /// address is unoccupied until the join round — so join schedules turn
    /// the fixed full tree into a sparse, growing population (see
    /// [`Scenario::population`]).
    pub join_schedule: Vec<(u64, usize)>,
    /// Processes leaving **gracefully** (unsubscribing) at fixed rounds —
    /// distinct from [`crash_schedule`](Self::crash_schedule): a leave is
    /// announced, so membership providers evict the leaver eagerly, while
    /// a crash is only detectable by missed contact.
    pub leave_schedule: Vec<(u64, usize)>,
    /// Per-link extra delivery latency (`None` keeps every message at the
    /// classic one-round latency); see [`ScenarioBuilder::link_delay`].
    pub link_delay: Option<LinkDelay>,
    /// Transient healing partitions: round-ranged splits of the group into
    /// equal contiguous cells; see [`ScenarioBuilder::partition`].
    pub partition_schedule: Vec<PartitionWindow>,
    /// Correlated extra loss per subtree, layered multiplicatively on the
    /// global `ε`; see [`ScenarioBuilder::subtree_loss`].
    pub subtree_loss: Vec<SubtreeLoss>,
    /// Slow processes whose outbox flushes only every `period`-th round;
    /// see [`ScenarioBuilder::straggler`].
    pub straggler_schedule: Vec<Straggler>,
    /// The publish schedule; empty means the default workload (see type
    /// docs).
    pub publications: Vec<Publication>,
    /// The multi-topic traffic axis; `None` (the default, and what every
    /// scenario serialized before the axis existed deserializes to) keeps
    /// the historical matching-rate workload.  Mutually exclusive with an
    /// explicit publish schedule — the axis *generates* the schedule.
    #[serde(default)]
    pub topics: Option<TopicWorkload>,
    /// The membership provider processes draw fanout candidates from
    /// ([`MembershipSpec::Global`] by default, which reproduces the
    /// historical scenarios bit for bit).
    pub membership: MembershipSpec,
    /// Independent trials to run.
    pub trials: usize,
    /// Base PRNG seed; trial `t` uses `seed + t`.
    pub seed: u64,
    /// Safety cap on simulated rounds per trial.
    pub max_rounds: u64,
}

impl Scenario {
    /// Starts building a scenario from the quick-profile defaults
    /// (`a = 6`, `d = 3`, default protocol config, matching rate 0.5,
    /// reliable network, default workload, 1 trial, seed 42).
    ///
    /// # Examples
    ///
    /// Every builder method is an independent axis; only what differs from
    /// the defaults needs to be spelled out:
    ///
    /// ```rust
    /// use pmcast_interest::Event;
    /// use pmcast_sim::runner::Protocol;
    /// use pmcast_sim::scenario::{MembershipSpec, Publisher, Scenario};
    ///
    /// let scenario = Scenario::builder()
    ///     .group(4, 3)                         // 4^3 = 64 processes
    ///     .matching_rate(0.5)
    ///     .loss(0.01)
    ///     .membership(MembershipSpec::delegate(3))
    ///     .publish(Publisher::Interested, Event::builder(1).int("b", 1).build())
    ///     .trials(2)
    ///     .seed(9)
    ///     .build();
    /// let outcomes = scenario.run(Protocol::Pmcast);
    /// assert_eq!(outcomes.len(), 2);
    /// // Parallel execution is bit-identical to sequential.
    /// assert_eq!(outcomes, scenario.run_parallel(Protocol::Pmcast));
    /// ```
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder {
            scenario: Scenario {
                arity: 6,
                depth: 3,
                protocol: PmcastConfig::default(),
                matching_rate: 0.5,
                loss_probability: 0.0,
                crash_fraction: 0.0,
                crash_schedule: Vec::new(),
                join_schedule: Vec::new(),
                leave_schedule: Vec::new(),
                link_delay: None,
                partition_schedule: Vec::new(),
                subtree_loss: Vec::new(),
                straggler_schedule: Vec::new(),
                publications: Vec::new(),
                topics: None,
                membership: MembershipSpec::Global,
                trials: 1,
                seed: 42,
                max_rounds: 400,
            },
        }
    }

    /// The scenario equivalent of an [`ExperimentConfig`] point: same
    /// shape, workload and fault model, with the default publish schedule.
    /// `config.protocol_kind` is *not* part of the scenario — the protocol
    /// is chosen when running it.
    pub fn from_experiment(config: &ExperimentConfig) -> Self {
        Self {
            arity: config.arity,
            depth: config.depth,
            protocol: config.protocol.clone(),
            matching_rate: config.matching_rate,
            loss_probability: config.loss_probability,
            crash_fraction: config.crash_fraction,
            crash_schedule: Vec::new(),
            join_schedule: Vec::new(),
            leave_schedule: Vec::new(),
            link_delay: None,
            partition_schedule: Vec::new(),
            subtree_loss: Vec::new(),
            straggler_schedule: Vec::new(),
            publications: Vec::new(),
            topics: None,
            membership: MembershipSpec::Global,
            trials: config.trials,
            seed: config.seed,
            max_rounds: config.max_rounds,
        }
    }

    /// The number of addresses of the scenario's tree, `a^d` — the upper
    /// bound any population can grow to, and the range every process index
    /// (publishers, crash/join/leave schedules) is validated against.
    pub fn capacity(&self) -> usize {
        (self.arity as usize).pow(self.depth as u32)
    }

    /// The **initial** population size: `a^d` minus the processes whose
    /// earliest lifecycle event is a join (they start absent).
    ///
    /// For static scenarios (no join/leave schedule) this is the familiar
    /// `n = a^d`.  Callers that need the address-space bound regardless of
    /// the schedule — index validation, per-process allocation — should use
    /// [`capacity`](Self::capacity); callers tracking how the membership
    /// evolves get the initial/peak/final triple from
    /// [`population_sizes`](Self::population_sizes).
    pub fn group_size(&self) -> usize {
        self.population_sizes().initial
    }

    /// The sparse, time-varying population this scenario's join/leave
    /// schedules describe (capacity, initial occupancy, sorted lifecycle
    /// events — see [`Population`]).  The crash schedule participates only
    /// in the initial-absence derivation
    /// ([`Population::with_fault_schedule`]): a process that crashes before
    /// its first join was a member at round zero — the schedule describes a
    /// crash-then-rejoin, not a late newcomer.
    pub fn population(&self) -> Population {
        Population::new(self.capacity(), &self.join_schedule, &self.leave_schedule)
            .with_fault_schedule(&self.crash_schedule)
    }

    /// The initial, peak and final population sizes of the scenario.
    pub fn population_sizes(&self) -> PopulationSizes {
        self.population().sizes()
    }

    /// The dense-index range `[start, end)` of the subtree below a tree
    /// prefix — the same contiguous layout as
    /// `pmcast_membership::ImplicitRegularTree::index_range`.
    fn subtree_range(&self, prefix: &[u32]) -> (usize, usize) {
        let arity = self.arity as usize;
        let span = arity.pow((self.depth - prefix.len()) as u32);
        let base: usize = prefix
            .iter()
            .fold(0, |acc, &component| acc * arity + component as usize);
        (base * span, base * span + span)
    }

    /// Compiles the scenario's fault axes into the [`FaultPlan`] the
    /// simulation network executes, translating each [`SubtreeLoss`] tree
    /// prefix into its contiguous dense-index range.  A scenario that sets
    /// no fault axis compiles to the neutral default plan, which the
    /// network layer treats as exactly absent (bit-identical streams).
    pub fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan {
            link_delay: self.link_delay,
            partitions: self.partition_schedule.clone(),
            stragglers: self.straggler_schedule.clone(),
            ..FaultPlan::default()
        };
        for subtree in &self.subtree_loss {
            let (start, end) = self.subtree_range(&subtree.prefix);
            plan = plan.with_loss_override(start, end, subtree.loss_probability);
        }
        plan
    }

    /// Runs all trials sequentially with the given protocol.
    pub fn run(&self, protocol: Protocol) -> Vec<TrialOutcome> {
        run_scenario(self, protocol)
    }

    /// Runs all trials on all available cores; bit-identical to
    /// [`run`](Self::run) (see [`crate::runner::run_trials_parallel`]).
    pub fn run_parallel(&self, protocol: Protocol) -> Vec<TrialOutcome> {
        run_scenario_parallel(self, protocol)
    }
}

/// Fluent construction of a [`Scenario`]; see [`Scenario::builder`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl ScenarioBuilder {
    /// Sets the group shape: `arity` subgroups per level, `depth` levels
    /// (`n = arity^depth` processes).
    pub fn group(mut self, arity: u32, depth: usize) -> Self {
        self.scenario.arity = arity;
        self.scenario.depth = depth;
        self
    }

    /// Sets the protocol parameters.
    pub fn protocol(mut self, protocol: PmcastConfig) -> Self {
        self.scenario.protocol = protocol;
        self
    }

    /// Sets the fraction of interested processes (`p_d`).
    pub fn matching_rate(mut self, matching_rate: f64) -> Self {
        self.scenario.matching_rate = matching_rate;
        self
    }

    /// Sets the message-loss probability (`ε`).
    pub fn loss(mut self, loss_probability: f64) -> Self {
        self.scenario.loss_probability = loss_probability;
        self
    }

    /// Sets the fraction of processes crashed before the run (`τ`).
    pub fn crash_fraction(mut self, crash_fraction: f64) -> Self {
        self.scenario.crash_fraction = crash_fraction;
        self
    }

    /// Crashes one process at a fixed round (may be called repeatedly to
    /// build a churn schedule; combines with
    /// [`crash_fraction`](Self::crash_fraction)).
    pub fn crash_at(mut self, round: u64, process: usize) -> Self {
        self.scenario.crash_schedule.push((round, process));
        self
    }

    /// Schedules a process to **join** (subscribe) at a fixed round.  A
    /// process whose earliest lifecycle event is a join starts the trial
    /// absent — its address is an occupancy gap until the join round — so
    /// repeated `join_at` calls describe flash-crowd and gradual-growth
    /// workloads.  Re-joining after a [`leave_at`](Self::leave_at) models
    /// resubscription churn.
    ///
    /// Joiners draw their interest from the same sampled assignment as
    /// everybody else (the workload stream samples all `a^d` addresses in
    /// address order regardless of occupancy), so lifecycle schedules
    /// consume **no randomness** and static scenarios stay bit-identical —
    /// see the seed contract in [`crate::runner`].
    pub fn join_at(mut self, round: u64, process: usize) -> Self {
        self.scenario.join_schedule.push((round, process));
        self
    }

    /// Schedules a process to **leave gracefully** (unsubscribe) at a fixed
    /// round — distinct from [`crash_at`](Self::crash_at): the departure is
    /// announced, so membership providers evict the leaver eagerly instead
    /// of discovering the silence by missed contact.
    pub fn leave_at(mut self, round: u64, process: usize) -> Self {
        self.scenario.leave_schedule.push((round, process));
        self
    }

    /// Gives every link an extra delivery latency of `min_extra..=max_extra`
    /// rounds on top of the classic one-round hop.  The extra is constant
    /// per ordered link (drawn once per trial from a single salt off the
    /// network stream), so per-link FIFO order is preserved;
    /// `link_delay(0, 0)` is exactly a no-op.  Models heterogeneous WAN
    /// latencies against which the paper's analysis assumes a uniform
    /// gossip period.
    pub fn link_delay(mut self, min_extra: u64, max_extra: u64) -> Self {
        self.scenario.link_delay = Some(LinkDelay {
            min_extra,
            max_extra,
        });
        self
    }

    /// Splits the group into `cells` equal contiguous cells for rounds
    /// `from_round..until_round`: cross-cell messages are dropped while the
    /// window is active, and the partition **heals** at `until_round`.
    /// Cells are contiguous in dense-index order, so they are subtree
    /// aligned whenever `cells` divides a level's subgroup count.  May be
    /// called repeatedly for repeated outages.
    pub fn partition(mut self, from_round: u64, until_round: u64, cells: usize) -> Self {
        self.scenario.partition_schedule.push(PartitionWindow {
            from_round,
            until_round,
            cells,
        });
        self
    }

    /// Adds correlated loss: every message to or from a process in the
    /// subtree below `prefix` (tree coordinates, most significant level
    /// first; empty = the whole group) is lost with the extra probability
    /// `loss_probability`, composing multiplicatively with the global
    /// [`loss`](Self::loss) `ε` and with any other overlapping override.
    pub fn subtree_loss(mut self, prefix: &[u32], loss_probability: f64) -> Self {
        self.scenario.subtree_loss.push(SubtreeLoss {
            prefix: prefix.to_vec(),
            loss_probability,
        });
        self
    }

    /// Makes one process a straggler: its outbox is held back and flushed
    /// to the network only every `period`-th round (rounds `period`,
    /// `2·period`, …), modelling a slow or overloaded node that batches
    /// its gossip.  `period` 1 is exactly a no-op.
    pub fn straggler(mut self, process: usize, period: u64) -> Self {
        self.scenario
            .straggler_schedule
            .push(Straggler { process, period });
        self
    }

    /// Selects the membership provider (see [`MembershipSpec`]); e.g.
    /// `.membership(MembershipSpec::partial(15))` runs the trial over
    /// lpbcast-style bounded partial views instead of global knowledge,
    /// and `.membership(MembershipSpec::delegate(3))` over the paper's
    /// hierarchical delegate tables.
    pub fn membership(mut self, membership: MembershipSpec) -> Self {
        self.scenario.membership = membership;
        self
    }

    /// Replaces the matching-rate workload with a multi-topic traffic axis
    /// (see [`TopicWorkload`]): per-process topic subscriptions, a
    /// Zipf-tilted publish mix and a generated schedule of
    /// `workload.events` events.  Mutually exclusive with
    /// [`publish`](Self::publish) / [`publish_at`](Self::publish_at).
    pub fn topics(mut self, workload: TopicWorkload) -> Self {
        self.scenario.topics = Some(workload);
        self
    }

    /// Schedules a publication at round 0.
    pub fn publish(self, publisher: Publisher, event: Event) -> Self {
        self.publish_at(0, publisher, event)
    }

    /// Schedules a publication at the given round.
    pub fn publish_at(mut self, round: u64, publisher: Publisher, event: Event) -> Self {
        self.scenario.publications.push(Publication {
            round,
            publisher,
            event,
        });
        self
    }

    /// Sets the number of independent trials.
    pub fn trials(mut self, trials: usize) -> Self {
        self.scenario.trials = trials;
        self
    }

    /// Sets the base PRNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.scenario.seed = seed;
        self
    }

    /// Sets the safety cap on simulated rounds per trial.
    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.scenario.max_rounds = max_rounds;
        self
    }

    /// Finishes the scenario.
    ///
    /// # Panics
    ///
    /// Panics if the protocol configuration is invalid (see
    /// [`PmcastConfig::validate`]), the loss probability or crash fraction
    /// lies outside `[0, 1]`, a [`Publisher::Process`] index or a
    /// crash/join/leave schedule index is out of range for the address
    /// space, a [`Publisher::Process`] publication fires at a round its
    /// publisher is not a member (absent before its join, or already
    /// departed — crashing is a legitimate fault experiment and is not
    /// rejected), or a publication or lifecycle event is scheduled at a
    /// round the trial can never reach (`round >= max_rounds`) — such an
    /// entry would otherwise be silently inert while still shaping the
    /// reports.
    ///
    /// The fault axes are validated the same way: a
    /// [`partition`](Self::partition) starting at or beyond `max_rounds`, a
    /// window healing before it starts, an inverted
    /// [`link_delay`](Self::link_delay) span, a
    /// [`subtree_loss`](Self::subtree_loss) prefix outside the tree or with
    /// a probability outside `[0, 1]`, and a
    /// [`straggler`](Self::straggler) with a zero period, an out-of-range
    /// process or a duplicate process are all rejected here.
    pub fn build(self) -> Scenario {
        self.scenario.protocol.validate();
        assert!(
            (0.0..=1.0).contains(&self.scenario.loss_probability),
            "loss probability {} must lie in [0, 1]",
            self.scenario.loss_probability
        );
        assert!(
            (0.0..=1.0).contains(&self.scenario.crash_fraction),
            "crash fraction {} must lie in [0, 1]",
            self.scenario.crash_fraction
        );
        // Index validation is against the address space (`a^d`), not the
        // possibly sparse initial population: a publisher or crash target
        // may well be a process that only joins mid-trial.
        let n = self.scenario.capacity();
        for (label, schedule) in [
            ("crash", &self.scenario.crash_schedule),
            ("join", &self.scenario.join_schedule),
            ("leave", &self.scenario.leave_schedule),
        ] {
            for &(round, process) in schedule {
                assert!(
                    process < n,
                    "{label}-schedule index {process} out of range for a group of {n}"
                );
                assert!(
                    round < self.scenario.max_rounds,
                    "{label} scheduled at round {round} can never happen (max_rounds = {})",
                    self.scenario.max_rounds
                );
            }
        }
        // Membership occupancy per round, for checking that a designated
        // publisher is actually a member when its publication fires.  Only
        // the join/leave schedule matters here: publishing from a process
        // that *crashes* is a legitimate fault experiment.
        let population = self.scenario.population();
        for publication in &self.scenario.publications {
            if let Publisher::Process(index) = publication.publisher {
                assert!(
                    index < n,
                    "publisher index {index} out of range for a group of {n}"
                );
                assert!(
                    population.occupancy_at(publication.round)[index],
                    "publisher {index} is not a member at round {} (absent or departed); \
                     its publication would be silently inert",
                    publication.round
                );
            }
            assert!(
                publication.round < self.scenario.max_rounds,
                "publication scheduled at round {} can never run (max_rounds = {})",
                publication.round,
                self.scenario.max_rounds
            );
        }
        if let Some(topics) = &self.scenario.topics {
            assert!(
                self.scenario.publications.is_empty(),
                "the topic axis generates the publish schedule; explicit publications \
                 cannot be combined with it"
            );
            assert!(topics.topics >= 1, "a topic workload needs at least one topic");
            assert!(
                (1..=topics.topics).contains(&topics.subscriptions_per_process),
                "subscriptions per process ({}) must lie in 1..={} (the topic count)",
                topics.subscriptions_per_process,
                topics.topics
            );
            assert!(topics.events >= 1, "a topic workload publishes at least one event");
            assert!(
                (1..=self.scenario.max_rounds).contains(&topics.publish_rounds),
                "publish_rounds ({}) must lie in 1..={} (max_rounds)",
                topics.publish_rounds,
                self.scenario.max_rounds
            );
            assert!(
                topics.zipf_exponent.is_finite() && topics.zipf_exponent >= 0.0,
                "the Zipf exponent must be a finite non-negative number"
            );
        }
        match self.scenario.membership {
            MembershipSpec::Global => {}
            MembershipSpec::Partial {
                view_size,
                gossip_fanout,
                ..
            } => {
                assert!(view_size > 0, "partial-view size must be positive");
                assert!(gossip_fanout > 0, "membership gossip fanout must be positive");
            }
            MembershipSpec::Delegate {
                slots,
                gossip_fanout,
                ..
            } => {
                assert!(slots > 0, "delegate slots must be positive");
                assert!(gossip_fanout > 0, "membership gossip fanout must be positive");
            }
            MembershipSpec::DelegateLazy { slots } => {
                assert!(slots > 0, "delegate slots must be positive");
            }
        }
        // Fault axes: reject windows the trial can never reach and subtree
        // prefixes outside the tree, then let the compiled plan check its
        // own numeric invariants (delay span, probabilities, straggler
        // indices and duplicates) against the address space.
        for window in &self.scenario.partition_schedule {
            assert!(
                window.from_round < self.scenario.max_rounds,
                "partition starting at round {} lies beyond the trial horizon (max_rounds = {})",
                window.from_round,
                self.scenario.max_rounds
            );
        }
        for subtree in &self.scenario.subtree_loss {
            assert!(
                subtree.prefix.len() <= self.scenario.depth,
                "subtree-loss prefix {:?} is deeper than the tree (depth {})",
                subtree.prefix,
                self.scenario.depth
            );
            for &component in &subtree.prefix {
                assert!(
                    component < self.scenario.arity,
                    "subtree-loss prefix {:?} has component {component} out of range for arity {}",
                    subtree.prefix,
                    self.scenario.arity
                );
            }
        }
        self.scenario.fault_plan().validate_for(n);
        self.scenario
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_every_knob() {
        let scenario = Scenario::builder()
            .group(4, 2)
            .protocol(PmcastConfig::default().with_fanout(3))
            .matching_rate(0.25)
            .loss(0.05)
            .crash_fraction(0.01)
            .crash_at(4, 2)
            .join_at(3, 15)
            .leave_at(6, 5)
            .publish(Publisher::Process(1), Event::builder(9).build())
            .publish_at(2, Publisher::Uniform, Event::builder(10).build())
            .trials(3)
            .seed(5)
            .max_rounds(150)
            .build();
        assert_eq!(scenario.arity, 4);
        assert_eq!(scenario.depth, 2);
        assert_eq!(scenario.capacity(), 16);
        // Population-aware sizes: 15 joins mid-trial (absent at start) and
        // 5 leaves, so the group starts at 15, peaks at 16 and ends at 15.
        assert_eq!(scenario.group_size(), 15);
        let sizes = scenario.population_sizes();
        assert_eq!((sizes.initial, sizes.peak, sizes.end), (15, 16, 15));
        assert_eq!(scenario.population().initially_absent(), &[15]);
        assert_eq!(scenario.protocol.fanout, 3);
        assert_eq!(scenario.matching_rate, 0.25);
        assert_eq!(scenario.loss_probability, 0.05);
        assert_eq!(scenario.crash_fraction, 0.01);
        assert_eq!(scenario.crash_schedule, vec![(4, 2)]);
        assert_eq!(scenario.join_schedule, vec![(3, 15)]);
        assert_eq!(scenario.leave_schedule, vec![(6, 5)]);
        assert_eq!(scenario.publications.len(), 2);
        assert_eq!(scenario.publications[0].round, 0);
        assert_eq!(scenario.publications[1].round, 2);
        assert_eq!(scenario.trials, 3);
        assert_eq!(scenario.seed, 5);
        assert_eq!(scenario.max_rounds, 150);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_publisher_is_rejected() {
        let _ = Scenario::builder()
            .group(2, 2)
            .publish(Publisher::Process(99), Event::builder(1).build())
            .build();
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn out_of_range_loss_is_rejected() {
        let _ = Scenario::builder().loss(1.5).build();
    }

    #[test]
    #[should_panic(expected = "join-schedule index")]
    fn out_of_range_join_is_rejected() {
        let _ = Scenario::builder().group(2, 2).join_at(1, 99).build();
    }

    #[test]
    #[should_panic(expected = "not a member at round")]
    fn publications_from_absent_publishers_are_rejected() {
        // Process 7 only joins at round 5; publishing from it at round 2
        // would be silently inert.
        let _ = Scenario::builder()
            .group(4, 2)
            .join_at(5, 7)
            .publish_at(2, Publisher::Process(7), Event::builder(1).build())
            .build();
    }

    #[test]
    fn publications_within_the_membership_interval_are_accepted() {
        // Joining at 5 and publishing at 5 is fine (joins apply first);
        // publishing from a process that later crashes is fine too.
        let scenario = Scenario::builder()
            .group(4, 2)
            .join_at(5, 7)
            .publish_at(5, Publisher::Process(7), Event::builder(1).build())
            .crash_at(3, 2)
            .publish(Publisher::Process(2), Event::builder(2).build())
            .build();
        assert_eq!(scenario.publications.len(), 2);
    }

    #[test]
    #[should_panic(expected = "leave scheduled at round")]
    fn unreachable_leave_round_is_rejected() {
        let _ = Scenario::builder().max_rounds(10).leave_at(10, 0).build();
    }

    #[test]
    fn fault_axes_chain_and_compile_into_a_plan() {
        let scenario = Scenario::builder()
            .group(4, 3) // 64 addresses
            .link_delay(0, 2)
            .partition(2, 6, 4)
            .subtree_loss(&[1], 0.3)
            .subtree_loss(&[2, 0], 0.5)
            .straggler(7, 3)
            .build();
        assert_eq!(
            scenario.link_delay,
            Some(LinkDelay {
                min_extra: 0,
                max_extra: 2
            })
        );
        let plan = scenario.fault_plan();
        assert!(!plan.is_neutral());
        assert_eq!(plan.partitions.len(), 1);
        assert_eq!(plan.partitions[0].cells, 4);
        // Prefix [1] at depth 3, arity 4 → indices [16, 32); prefix [2, 0]
        // → [32, 36).
        assert_eq!(plan.loss_overrides.len(), 2);
        assert_eq!(
            (plan.loss_overrides[0].start, plan.loss_overrides[0].end),
            (16, 32)
        );
        assert_eq!(
            (plan.loss_overrides[1].start, plan.loss_overrides[1].end),
            (32, 36)
        );
        assert_eq!(plan.stragglers, vec![Straggler { process: 7, period: 3 }]);
        // The empty prefix covers the whole group.
        let whole = Scenario::builder().group(4, 3).subtree_loss(&[], 0.1).build();
        let plan = whole.fault_plan();
        assert_eq!(
            (plan.loss_overrides[0].start, plan.loss_overrides[0].end),
            (0, 64)
        );
    }

    #[test]
    fn faultless_scenarios_compile_to_the_neutral_plan() {
        assert!(Scenario::builder().build().fault_plan().is_neutral());
    }

    #[test]
    #[should_panic(expected = "beyond the trial horizon")]
    fn partition_beyond_the_horizon_is_rejected() {
        let _ = Scenario::builder().max_rounds(10).partition(10, 20, 2).build();
    }

    #[test]
    #[should_panic(expected = "must heal at or after")]
    fn inverted_partition_window_is_rejected() {
        let _ = Scenario::builder().partition(6, 2, 2).build();
    }

    #[test]
    #[should_panic(expected = "deeper than the tree")]
    fn too_deep_subtree_loss_prefix_is_rejected() {
        let _ = Scenario::builder().group(4, 2).subtree_loss(&[1, 2, 3], 0.1).build();
    }

    #[test]
    #[should_panic(expected = "out of range for arity")]
    fn subtree_loss_component_beyond_arity_is_rejected() {
        let _ = Scenario::builder().group(4, 2).subtree_loss(&[4], 0.1).build();
    }

    #[test]
    #[should_panic(expected = "loss-override probability")]
    fn subtree_loss_probability_above_one_is_rejected() {
        let _ = Scenario::builder().subtree_loss(&[0], 1.2).build();
    }

    #[test]
    #[should_panic(expected = "link-delay")]
    fn inverted_link_delay_span_is_rejected() {
        let _ = Scenario::builder().link_delay(3, 1).build();
    }

    #[test]
    #[should_panic(expected = "out of range for a group")]
    fn out_of_range_straggler_is_rejected() {
        let _ = Scenario::builder().group(2, 2).straggler(99, 3).build();
    }

    #[test]
    #[should_panic(expected = "straggler period")]
    fn zero_straggler_period_is_rejected() {
        let _ = Scenario::builder().straggler(0, 0).build();
    }

    #[test]
    fn static_scenarios_report_the_full_tree() {
        let scenario = Scenario::builder().group(4, 2).build();
        assert!(scenario.population().is_static());
        assert_eq!(scenario.group_size(), scenario.capacity());
        let sizes = scenario.population_sizes();
        assert_eq!((sizes.initial, sizes.peak, sizes.end), (16, 16, 16));
    }

    #[test]
    fn from_experiment_mirrors_the_point() {
        let config = ExperimentConfig::quick().with_matching_rate(0.3).with_seed(9);
        let scenario = Scenario::from_experiment(&config);
        assert_eq!(scenario.arity, config.arity);
        assert_eq!(scenario.depth, config.depth);
        assert_eq!(scenario.matching_rate, 0.3);
        assert_eq!(scenario.seed, 9);
        assert!(scenario.publications.is_empty(), "default workload");
    }

    #[test]
    fn topic_workload_chains_and_validates() {
        let scenario = Scenario::builder()
            .group(4, 2)
            .topics(
                TopicWorkload::new(8, 2, 40)
                    .with_publish_rounds(5)
                    .with_zipf_exponent(0.8),
            )
            .build();
        let workload = scenario.topics.as_ref().unwrap();
        assert_eq!((workload.topics, workload.subscriptions_per_process), (8, 2));
        assert_eq!((workload.events, workload.publish_rounds), (40, 5));
        assert!((workload.zipf_exponent - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot be combined")]
    fn topic_axis_rejects_explicit_publications() {
        let _ = Scenario::builder()
            .publish(Publisher::Uniform, Event::builder(1).build())
            .topics(TopicWorkload::new(4, 1, 10))
            .build();
    }

    #[test]
    #[should_panic(expected = "subscriptions per process")]
    fn oversubscribed_processes_are_rejected() {
        let _ = Scenario::builder().topics(TopicWorkload::new(4, 5, 10)).build();
    }

    #[test]
    #[should_panic(expected = "publish_rounds")]
    fn topic_schedule_beyond_the_horizon_is_rejected() {
        let _ = Scenario::builder()
            .max_rounds(10)
            .topics(TopicWorkload::new(4, 1, 10).with_publish_rounds(11))
            .build();
    }

    #[test]
    fn scenarios_without_the_topic_field_still_deserialize() {
        // A pre-topic-axis scenario round-trips through JSON with the field
        // stripped — `#[serde(default)]` keeps old files loadable.
        let scenario = Scenario::builder().build();
        let json = serde_json::to_string(&scenario).unwrap();
        let stripped = json.replace(",\"topics\":null", "");
        assert_ne!(json, stripped, "the field is serialized");
        let back: Scenario = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, scenario);
    }

    #[test]
    fn lazy_delegate_spec_instantiates_without_consuming_the_seed() {
        let spec = MembershipSpec::delegate_lazy(2);
        assert_eq!(spec, MembershipSpec::DelegateLazy { slots: 2 });
        // Same provider whatever the membership seed: the lazy view is
        // deterministic in occupancy alone.
        let a = spec.instantiate(3, 2, 1, None);
        let b = spec.instantiate(3, 2, 999, None);
        for process in 0..9 {
            for peer in 0..9 {
                assert_eq!(a.knows(process, peer), b.knows(process, peer));
            }
        }
    }

    #[test]
    #[should_panic(expected = "delegate slots must be positive")]
    fn zero_lazy_slots_are_rejected() {
        let _ = Scenario::builder()
            .membership(MembershipSpec::DelegateLazy { slots: 0 })
            .build();
    }

    #[test]
    fn serde_round_trip() {
        let scenario = Scenario::builder()
            .publish(Publisher::Interested, Event::builder(4).int("b", 2).build())
            .join_at(3, 7)
            .leave_at(5, 2)
            .link_delay(1, 2)
            .partition(2, 4, 2)
            .subtree_loss(&[1], 0.2)
            .straggler(3, 2)
            .build();
        let json = serde_json::to_string(&scenario).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(scenario, back);
    }
}
