//! Monte-Carlo multicast trials and their aggregation.

use std::sync::Arc;

use pmcast_addr::AddressSpace;
use pmcast_core::{build_group, MulticastReport, PmcastConfig};
use pmcast_interest::Event;
use pmcast_membership::{AssignmentOracle, ImplicitRegularTree, TreeTopology};
use pmcast_simnet::{NetworkConfig, ProcessId, Simulation};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Which dissemination protocol a trial runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Protocol {
    /// The pmcast algorithm of Figure 3.
    Pmcast,
    /// Gossip broadcast with filtering on delivery (flooding baseline).
    FloodBroadcast,
    /// Genuine multicast with global interest knowledge (frugal baseline).
    GenuineMulticast,
}

/// Everything needed to run one experiment point: the group shape, the
/// protocol parameters, the workload and the fault model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Subgroups per level (`a`).
    pub arity: u32,
    /// Tree depth (`d`).
    pub depth: usize,
    /// Protocol parameters (R, F, env, tuning, …).
    pub protocol: PmcastConfig,
    /// Which protocol to run.
    pub protocol_kind: Protocol,
    /// Fraction of interested processes (`p_d`).
    pub matching_rate: f64,
    /// Network message-loss probability (`ε`).
    pub loss_probability: f64,
    /// Fraction of processes crashed at the start of the run (`τ`).
    pub crash_fraction: f64,
    /// Independent trials to average over.
    pub trials: usize,
    /// Base PRNG seed; trial `t` uses `seed + t`.
    pub seed: u64,
    /// Safety cap on simulated rounds per trial.
    pub max_rounds: u64,
}

impl ExperimentConfig {
    /// A small, fast profile (216 processes) for tests and smoke benches.
    pub fn quick() -> Self {
        Self {
            arity: 6,
            depth: 3,
            protocol: PmcastConfig::default(),
            protocol_kind: Protocol::Pmcast,
            matching_rate: 0.5,
            loss_probability: 0.01,
            crash_fraction: 0.001,
            trials: 5,
            seed: 42,
            max_rounds: 400,
        }
    }

    /// The paper-scale profile of Figures 4, 5 and 7: `a = 22`, `d = 3`
    /// (n ≈ 10 648), `R = 3`, `F = 2`.
    pub fn paper_reliability() -> Self {
        Self {
            arity: 22,
            depth: 3,
            protocol: PmcastConfig::paper_reliability(),
            protocol_kind: Protocol::Pmcast,
            matching_rate: 0.5,
            loss_probability: 0.01,
            crash_fraction: 0.001,
            trials: 5,
            seed: 42,
            max_rounds: 600,
        }
    }

    /// The paper-scale profile of Figure 6: `d = 3`, `R = 4`, `F = 3`, with
    /// the arity varied by the experiment.
    pub fn paper_scalability(arity: u32) -> Self {
        Self {
            arity,
            protocol: PmcastConfig::paper_scalability(),
            ..Self::paper_reliability()
        }
    }

    /// Group size `n = a^d`.
    pub fn group_size(&self) -> usize {
        (self.arity as usize).pow(self.depth as u32)
    }

    /// Sets the matching rate, returning the config for chaining.
    pub fn with_matching_rate(mut self, matching_rate: f64) -> Self {
        self.matching_rate = matching_rate;
        self
    }

    /// Sets the number of trials, returning the config for chaining.
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the arity, returning the config for chaining.
    pub fn with_arity(mut self, arity: u32) -> Self {
        self.arity = arity;
        self
    }

    /// Sets the protocol kind, returning the config for chaining.
    pub fn with_protocol_kind(mut self, kind: Protocol) -> Self {
        self.protocol_kind = kind;
        self
    }

    /// Sets the protocol parameters, returning the config for chaining.
    pub fn with_protocol(mut self, protocol: PmcastConfig) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets the PRNG seed, returning the config for chaining.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the loss probability, returning the config for chaining.
    pub fn with_loss(mut self, loss_probability: f64) -> Self {
        self.loss_probability = loss_probability;
        self
    }

    /// Sets the initial crash fraction, returning the config for chaining.
    pub fn with_crash_fraction(mut self, crash_fraction: f64) -> Self {
        self.crash_fraction = crash_fraction;
        self
    }
}

/// Outcome of one multicast trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// Delivery/reception classification of every process.
    pub report: MulticastReport,
    /// Gossip messages handed to the network.
    pub messages_sent: u64,
    /// Rounds executed before quiescence (or the cap).
    pub rounds: u64,
}

/// Aggregated outcome of several trials of the same experiment point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggregateOutcome {
    /// Number of trials aggregated.
    pub trials: usize,
    /// Mean delivery probability of interested processes (Figure 4 metric).
    pub delivery_mean: f64,
    /// Sample standard deviation of the delivery probability.
    pub delivery_std: f64,
    /// Mean reception probability of uninterested processes (Figure 5
    /// metric).
    pub spurious_mean: f64,
    /// Mean number of gossip messages per multicast.
    pub messages_mean: f64,
    /// Mean number of rounds to quiescence.
    pub rounds_mean: f64,
}

impl AggregateOutcome {
    /// Aggregates a non-empty slice of trial outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes` is empty.
    pub fn from_trials(outcomes: &[TrialOutcome]) -> Self {
        assert!(!outcomes.is_empty(), "cannot aggregate zero trials");
        let deliveries: Vec<f64> = outcomes.iter().map(|o| o.report.delivery_ratio()).collect();
        let spurious: Vec<f64> = outcomes.iter().map(|o| o.report.spurious_ratio()).collect();
        let delivery_mean = mean(&deliveries);
        Self {
            trials: outcomes.len(),
            delivery_mean,
            delivery_std: std_dev(&deliveries, delivery_mean),
            spurious_mean: mean(&spurious),
            messages_mean: mean(
                &outcomes
                    .iter()
                    .map(|o| o.messages_sent as f64)
                    .collect::<Vec<_>>(),
            ),
            rounds_mean: mean(&outcomes.iter().map(|o| o.rounds as f64).collect::<Vec<_>>()),
        }
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

fn std_dev(values: &[f64], mean: f64) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let variance =
        values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    variance.sqrt()
}

/// Runs a single trial with the given trial index (offsetting the seed).
pub fn run_trial(config: &ExperimentConfig, trial: usize) -> TrialOutcome {
    let seed = config.seed.wrapping_add(trial as u64);
    let topology = ImplicitRegularTree::new(
        AddressSpace::regular(config.depth, config.arity).expect("valid shape"),
    );
    let mut workload_rng = ChaCha8Rng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(7));
    let oracle = Arc::new(AssignmentOracle::sample(
        &topology,
        config.matching_rate,
        &mut workload_rng,
    ));
    let event = Event::builder(1_000 + trial as u64).int("b", 1).build();
    let network = NetworkConfig::faulty(config.loss_probability, config.crash_fraction, seed);

    // The multicaster is a uniformly random process; if the assignment is
    // non-empty prefer an interested one (a publisher usually cares about
    // its own events), matching the analysis where the publisher counts as
    // the initially infected process.
    let sender_index = if oracle.is_empty() {
        workload_rng.gen_range(0..topology.member_count())
    } else {
        let interested: Vec<_> = oracle.iter().collect();
        let pick = workload_rng.gen_range(0..interested.len());
        topology
            .space()
            .index_of_address(interested[pick])
            .expect("interested address is valid") as usize
    };

    match config.protocol_kind {
        Protocol::Pmcast => {
            let group = build_group(&topology, oracle.clone(), &config.protocol);
            let mut sim = Simulation::new(group.processes, network);
            sim.process_mut(ProcessId(sender_index)).pmcast(event.clone());
            let rounds = sim.run_until_quiescent(config.max_rounds);
            let report = MulticastReport::collect(&event, sim.processes(), oracle.as_ref());
            TrialOutcome {
                report,
                messages_sent: sim.stats().messages_sent,
                rounds,
            }
        }
        Protocol::FloodBroadcast => {
            let processes = pmcast_core::build_flood_group(&topology, oracle.clone(), &config.protocol);
            let mut sim = Simulation::new(processes, network);
            sim.process_mut(ProcessId(sender_index)).broadcast(event.clone());
            let rounds = sim.run_until_quiescent(config.max_rounds);
            let report = MulticastReport::collect(&event, sim.processes(), oracle.as_ref());
            TrialOutcome {
                report,
                messages_sent: sim.stats().messages_sent,
                rounds,
            }
        }
        Protocol::GenuineMulticast => {
            let processes = pmcast_core::build_genuine_group(
                &topology,
                oracle.clone(),
                &config.protocol,
                std::slice::from_ref(&event),
            );
            let mut sim = Simulation::new(processes, network);
            sim.process_mut(ProcessId(sender_index)).multicast(event.clone());
            let rounds = sim.run_until_quiescent(config.max_rounds);
            let report = MulticastReport::collect(&event, sim.processes(), oracle.as_ref());
            TrialOutcome {
                report,
                messages_sent: sim.stats().messages_sent,
                rounds,
            }
        }
    }
}

/// Runs all trials of an experiment point sequentially.
pub fn run_trials(config: &ExperimentConfig) -> Vec<TrialOutcome> {
    (0..config.trials.max(1))
        .map(|trial| run_trial(config, trial))
        .collect()
}

/// Runs all trials of an experiment point on all available cores.
///
/// Trial `t` derives every random choice from `config.seed + t`, so trials
/// are independent of scheduling: this returns outcomes in trial order and
/// is **bit-identical** to [`run_trials`] for the same configuration, no
/// matter how many worker threads execute it (a property the test suite
/// asserts).
pub fn run_trials_parallel(config: &ExperimentConfig) -> Vec<TrialOutcome> {
    use rayon::prelude::*;
    let trials: Vec<usize> = (0..config.trials.max(1)).collect();
    trials.par_iter().map(|&trial| run_trial(config, trial)).collect()
}

/// Runs all trials of an experiment point sequentially and aggregates them.
pub fn run_experiment(config: &ExperimentConfig) -> AggregateOutcome {
    AggregateOutcome::from_trials(&run_trials(config))
}

/// Runs all trials of an experiment point in parallel and aggregates them.
///
/// Produces the same [`AggregateOutcome`] as [`run_experiment`] (see
/// [`run_trials_parallel`]); all experiment sweeps and the `figures` binary
/// go through this entry point.
pub fn run_experiment_parallel(config: &ExperimentConfig) -> AggregateOutcome {
    AggregateOutcome::from_trials(&run_trials_parallel(config))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_profile_shape() {
        let config = ExperimentConfig::quick();
        assert_eq!(config.group_size(), 216);
        let paper = ExperimentConfig::paper_reliability();
        assert_eq!(paper.group_size(), 10_648);
        let scal = ExperimentConfig::paper_scalability(10);
        assert_eq!(scal.group_size(), 1_000);
        assert_eq!(scal.protocol.redundancy, 4);
    }

    #[test]
    fn builders_chain() {
        let config = ExperimentConfig::quick()
            .with_matching_rate(0.25)
            .with_trials(2)
            .with_arity(4)
            .with_seed(9)
            .with_loss(0.05)
            .with_crash_fraction(0.01)
            .with_protocol(PmcastConfig::default().with_fanout(4))
            .with_protocol_kind(Protocol::FloodBroadcast);
        assert_eq!(config.matching_rate, 0.25);
        assert_eq!(config.trials, 2);
        assert_eq!(config.arity, 4);
        assert_eq!(config.seed, 9);
        assert_eq!(config.protocol.fanout, 4);
        assert_eq!(config.protocol_kind, Protocol::FloodBroadcast);
    }

    #[test]
    fn pmcast_trial_delivers_to_most_interested_processes() {
        let config = ExperimentConfig::quick().with_trials(1);
        let outcome = run_trial(&config, 0);
        assert!(outcome.report.interested > 0);
        assert!(outcome.report.delivery_ratio() > 0.7, "{outcome:?}");
        assert!(outcome.messages_sent > 0);
        assert!(outcome.rounds > 0);
    }

    #[test]
    fn aggregation_computes_mean_and_std() {
        let outcomes = vec![
            TrialOutcome {
                report: MulticastReport {
                    interested: 10,
                    delivered_interested: 10,
                    uninterested: 10,
                    received_uninterested: 0,
                    received_total: 10,
                },
                messages_sent: 100,
                rounds: 10,
            },
            TrialOutcome {
                report: MulticastReport {
                    interested: 10,
                    delivered_interested: 5,
                    uninterested: 10,
                    received_uninterested: 2,
                    received_total: 7,
                },
                messages_sent: 200,
                rounds: 20,
            },
        ];
        let aggregate = AggregateOutcome::from_trials(&outcomes);
        assert_eq!(aggregate.trials, 2);
        assert!((aggregate.delivery_mean - 0.75).abs() < 1e-12);
        assert!(aggregate.delivery_std > 0.0);
        assert!((aggregate.spurious_mean - 0.1).abs() < 1e-12);
        assert!((aggregate.messages_mean - 150.0).abs() < 1e-12);
        assert!((aggregate.rounds_mean - 15.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero trials")]
    fn aggregating_nothing_panics() {
        let _ = AggregateOutcome::from_trials(&[]);
    }

    #[test]
    fn experiments_are_deterministic_per_seed() {
        let config = ExperimentConfig::quick().with_trials(2).with_seed(77);
        let a = run_experiment(&config);
        let b = run_experiment(&config);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let config = ExperimentConfig::quick().with_trials(4).with_seed(5);
        let serial = run_experiment(&config);
        let parallel = run_experiment_parallel(&config);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn parallel_trials_are_bit_identical_to_sequential() {
        // The acceptance bar for the parallel engine: per-trial outcomes (not
        // just the aggregate) must match the sequential runner exactly for
        // the standard quick profile, because every trial re-derives its
        // randomness from `seed + t` alone.  (On single-core hosts the
        // parallel path degenerates to sequential; that trials land in input
        // order under real multi-threading is covered by the rayon shim's
        // own order-preservation test, so the composition holds without
        // mutating the process-global RAYON_NUM_THREADS here.)
        let config = ExperimentConfig::quick();
        let sequential = run_trials(&config);
        let parallel = run_trials_parallel(&config);
        assert_eq!(sequential, parallel);
        assert_eq!(
            AggregateOutcome::from_trials(&sequential),
            AggregateOutcome::from_trials(&parallel)
        );
        // And repeated parallel runs are stable despite thread scheduling.
        assert_eq!(parallel, run_trials_parallel(&config));
    }

    #[test]
    fn flood_baseline_reaches_more_uninterested_processes_than_pmcast() {
        let base = ExperimentConfig::quick().with_trials(2).with_matching_rate(0.3);
        let pmcast = run_experiment(&base);
        let flood = run_experiment(&base.clone().with_protocol_kind(Protocol::FloodBroadcast));
        assert!(
            flood.spurious_mean > pmcast.spurious_mean,
            "flooding ({}) should touch more uninterested processes than pmcast ({})",
            flood.spurious_mean,
            pmcast.spurious_mean
        );
    }

    #[test]
    fn genuine_baseline_never_touches_uninterested_processes() {
        let config = ExperimentConfig::quick()
            .with_trials(2)
            .with_matching_rate(0.3)
            .with_protocol_kind(Protocol::GenuineMulticast);
        let outcome = run_experiment(&config);
        assert_eq!(outcome.spurious_mean, 0.0);
        assert!(outcome.delivery_mean > 0.7);
    }
}
