//! Monte-Carlo multicast trials and their aggregation.
//!
//! Every trial — whatever the protocol, whatever the workload — runs
//! through **one generic simulation loop**,
//! [`run_scenario_trial`]`::<F>`, monomorphized per
//! [`ProtocolFactory`].  The [`Protocol`] enum is nothing but a thin
//! dispatch onto the three factories; adding a protocol means implementing
//! [`pmcast_core::MulticastProtocol`] + [`ProtocolFactory`] in core and one
//! new match arm here, and adding a workload means building a
//! [`Scenario`] — neither ever copies the trial loop.
//!
//! ## Seed derivation (reproducibility contract)
//!
//! External reproducers can regenerate any trial exactly.  Trial `t` of a
//! scenario (or [`ExperimentConfig`]) with base seed `s` derives **all** of
//! its randomness from the trial seed `seed_t = s.wrapping_add(t)`, split
//! over exactly two ChaCha8 streams:
//!
//! 1. **Workload stream** —
//!    `ChaCha8Rng::seed_from_u64(seed_t.wrapping_mul(0x9E37_79B9).wrapping_add(7))`,
//!    consumed in this order:
//!    * the interest assignment: one `gen_bool(matching_rate)` per process
//!      in address order ([`AssignmentOracle::sample`]);
//!    * then, for each publication in **schedule order** (the order the
//!      publications were added, not round order), the publisher draw:
//!      [`Publisher::Uniform`] consumes one `gen_range(0..n)`;
//!      [`Publisher::Interested`] consumes one
//!      `gen_range(0..interested_count)` and resolves the k-th interested
//!      address in address order — unless nobody is interested, in which
//!      case it consumes one `gen_range(0..n)` instead;
//!      [`Publisher::Process`] consumes nothing.
//! 2. **Network stream** — the [`pmcast_simnet::Simulation`] is created
//!    with `NetworkConfig { seed: seed_t, … }` and internally splits that
//!    seed into its message-loss, protocol and crash streams.
//! 3. **Membership stream** — scenarios selecting a gossip membership
//!    provider bootstrap it from
//!    `seed_t.wrapping_mul(0xC2B2_AE35).wrapping_add(17)`; all view
//!    exchanges, digest picks and evictions draw from that
//!    provider-private ChaCha8 stream.  **Both** gossip providers share
//!    this one stream rule — there is deliberately no fourth stream:
//!    [`crate::scenario::MembershipSpec::Partial`] seeds its
//!    [`PartialView`](pmcast_membership::PartialView) from it, and
//!    [`crate::scenario::MembershipSpec::Delegate`] seeds its
//!    [`DelegateView`](pmcast_membership::DelegateView) from it (delegate
//!    slot admission/eviction is deterministic smallest-address order and
//!    consumes no randomness at all, so the stream only feeds gossip
//!    target and digest picks).  The default
//!    [`crate::scenario::MembershipSpec::Global`] provider consumes
//!    **no** randomness and observes churn as a no-op, so global-membership
//!    scenarios reproduce the historical (pre-provider) streams bit for
//!    bit.
//!
//!    The default workload (empty publish schedule) is one event with id
//!    `1000 + t` and a single `int("b", 1)` attribute, published at round 0
//!    by an [`Publisher::Interested`] draw — reproducing the historical
//!    one-event-one-sender trial stream bit for bit.
//!
//!    **Topic workloads** ([`crate::scenario::TopicWorkload`]) replace rule
//!    1's consumption of the workload stream wholesale (there is no
//!    matching-rate Bernoulli pass at all): first, for each process in
//!    address order, `subscriptions_per_process` distinct topic draws —
//!    each a `gen_range(0..topics)`, redrawn (consuming further
//!    `gen_range`s) until distinct from the process's earlier picks; then,
//!    for each event `e` in `0..events`, one `gen::<f64>()` mapped through
//!    the truncated-Zipf CDF to the event's topic, followed by one
//!    publisher draw — `gen_range(0..subscriber_count)` resolving the k-th
//!    subscriber in address order, or `gen_range(0..n)` when the topic has
//!    no subscribers.  Publish rounds are deterministic
//!    (`e · publish_rounds / events`) and consume nothing.
//!
//! **Lifecycle schedules consume no randomness.**  A scenario's
//! [`Scenario`] join/leave schedules (`join_at` / `leave_at`) are applied
//! deterministically by the engine at the start of their round — joins,
//! then leaves, then scheduled crashes on same-round ties — and touch none
//! of the three streams: the interest assignment always samples all `a^d`
//! addresses in address order regardless of occupancy (so a joiner's
//! interest is the same bits a static trial would have drawn for it),
//! publisher draws are unchanged, and the gossip membership providers
//! bootstrap sparse populations (`bootstrap_sparse`) without any extra
//! draws from the membership stream.  Scenarios without lifecycle
//! schedules therefore reproduce the historical streams bit for bit, and
//! lifecycle scenarios stay bit-identical under the parallel runner.
//!
//! **Fault axes are stream-neutral when inactive.**  The adversarial fault
//! plan a scenario compiles ([`Scenario::fault_plan`], executed by
//! [`pmcast_simnet::FaultPlan`]) draws randomness only from the network
//! stream (rule 2), and only when an axis is genuinely active:
//!
//! * **Per-link delay** consumes exactly one `u64` (the per-trial link
//!   salt) from the network's message stream at construction time, *iff*
//!   `min_extra < max_extra` — a constant-delay axis (`min == max`),
//!   including the neutral `(0, 0)`, consumes nothing.  Each link's jitter
//!   is then a pure hash of `(salt, from, to)`, so no further draws happen
//!   during the run.
//! * **Partitions** and **stragglers** are fully deterministic round
//!   schedules and consume no randomness at all; a partition drop is
//!   checked *before* the loss draw, so a partitioned message does not
//!   consume the `gen_bool` a delivered one would.
//! * **Subtree loss overrides** replace the message's single
//!   `gen_bool(ε)` with a single `gen_bool` at the composed probability —
//!   same one draw, so the loss stream stays aligned for messages outside
//!   every override range.
//!
//! Declared-but-inactive axes (`link_delay(0, 0)`, partitions with fewer
//! than two cells or an empty window, overrides with zero probability,
//! stragglers with period ≤ 1) are filtered out at network construction
//! and consume nothing, so a scenario declaring only neutral axes is
//! **bit-identical** to one declaring none — the golden tests assert this.
//!
//! Because nothing is drawn from state shared between trials, the parallel
//! runner [`run_trials_parallel`] is bit-identical to the sequential
//! [`run_trials`] (asserted by the test suite).

use std::sync::Arc;

use pmcast_addr::AddressSpace;
use pmcast_core::{
    FloodFactory, GenuineFactory, MulticastProtocol, MulticastReport, PmcastConfig, PmcastFactory,
    ProtocolFactory,
};
use pmcast_interest::{Event, EventId};
use pmcast_membership::{
    AssignmentOracle, ImplicitRegularTree, InterestOracle, MembershipView, Population,
    TopicOracle, TreeTopology, TOPIC_ATTRIBUTE,
};
use pmcast_simnet::{
    CrashPlan, LifecycleKind, LifecyclePlan, NetworkConfig, ProcessId, Simulation,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::scenario::{Publication, Publisher, Scenario};

/// Which dissemination protocol a trial runs.
///
/// This is a thin factory dispatch: each variant maps onto one
/// [`ProtocolFactory`] implementation in `pmcast-core`, and every variant
/// runs the identical generic trial loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Protocol {
    /// The pmcast algorithm of Figure 3 ([`PmcastFactory`]).
    Pmcast,
    /// Gossip broadcast with filtering on delivery ([`FloodFactory`]).
    FloodBroadcast,
    /// Genuine multicast with global interest knowledge
    /// ([`GenuineFactory`]).
    GenuineMulticast,
}

/// Everything needed to run one experiment point: the group shape, the
/// protocol parameters, the workload and the fault model.
///
/// This is the serializable sweep-friendly profile used by the experiments
/// and figures; richer workloads (multiple publishers, multiple events,
/// publish/churn schedules) are expressed as a [`Scenario`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Subgroups per level (`a`).
    pub arity: u32,
    /// Tree depth (`d`).
    pub depth: usize,
    /// Protocol parameters (R, F, env, tuning, …).
    pub protocol: PmcastConfig,
    /// Which protocol to run.
    pub protocol_kind: Protocol,
    /// Fraction of interested processes (`p_d`).
    pub matching_rate: f64,
    /// Network message-loss probability (`ε`).
    pub loss_probability: f64,
    /// Fraction of processes crashed at the start of the run (`τ`).
    pub crash_fraction: f64,
    /// Independent trials to average over.
    pub trials: usize,
    /// Base PRNG seed; trial `t` uses `seed + t`.
    pub seed: u64,
    /// Safety cap on simulated rounds per trial.
    pub max_rounds: u64,
}

impl ExperimentConfig {
    /// A small, fast profile (216 processes) for tests and smoke benches.
    pub fn quick() -> Self {
        Self {
            arity: 6,
            depth: 3,
            protocol: PmcastConfig::default(),
            protocol_kind: Protocol::Pmcast,
            matching_rate: 0.5,
            loss_probability: 0.01,
            crash_fraction: 0.001,
            trials: 5,
            seed: 42,
            max_rounds: 400,
        }
    }

    /// The paper-scale profile of Figures 4, 5 and 7: `a = 22`, `d = 3`
    /// (n ≈ 10 648), `R = 3`, `F = 2`.
    pub fn paper_reliability() -> Self {
        Self {
            arity: 22,
            depth: 3,
            protocol: PmcastConfig::paper_reliability(),
            protocol_kind: Protocol::Pmcast,
            matching_rate: 0.5,
            loss_probability: 0.01,
            crash_fraction: 0.001,
            trials: 5,
            seed: 42,
            max_rounds: 600,
        }
    }

    /// The paper-scale profile of Figure 6: `d = 3`, `R = 4`, `F = 3`, with
    /// the arity varied by the experiment.
    pub fn paper_scalability(arity: u32) -> Self {
        Self {
            arity,
            protocol: PmcastConfig::paper_scalability(),
            ..Self::paper_reliability()
        }
    }

    /// Group size `n = a^d`.
    pub fn group_size(&self) -> usize {
        (self.arity as usize).pow(self.depth as u32)
    }

    /// Sets the matching rate, returning the config for chaining.
    pub fn with_matching_rate(mut self, matching_rate: f64) -> Self {
        self.matching_rate = matching_rate;
        self
    }

    /// Sets the number of trials, returning the config for chaining.
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the arity, returning the config for chaining.
    pub fn with_arity(mut self, arity: u32) -> Self {
        self.arity = arity;
        self
    }

    /// Sets the protocol kind, returning the config for chaining.
    pub fn with_protocol_kind(mut self, kind: Protocol) -> Self {
        self.protocol_kind = kind;
        self
    }

    /// Sets the protocol parameters, returning the config for chaining.
    pub fn with_protocol(mut self, protocol: PmcastConfig) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets the PRNG seed, returning the config for chaining.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the loss probability, returning the config for chaining.
    pub fn with_loss(mut self, loss_probability: f64) -> Self {
        self.loss_probability = loss_probability;
        self
    }

    /// Sets the initial crash fraction, returning the config for chaining.
    pub fn with_crash_fraction(mut self, crash_fraction: f64) -> Self {
        self.crash_fraction = crash_fraction;
        self
    }
}

/// Per-event delivery-latency histogram of one trial: how many rounds
/// after its publication each process **first delivered** the event.
///
/// The publisher itself records latency 0 (it delivers locally in its
/// publish round); a process that never delivers appears in no bucket, so
/// [`delivered`](Self::delivered) matches the event's
/// `delivered_interested` count.  Recorded by the generic trial loop for
/// every protocol via [`MulticastProtocol::has_delivered`], delta-driven:
/// deliveries are receipt-driven (a process first delivers an event while
/// handling a message or a locally injected publication, never inside
/// `on_round`), so only each round's receivers and publishers are checked.
/// The checks are reads only — tracking changes no random stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeliveryLatency {
    /// The event this histogram describes.
    pub event: EventId,
    /// The round of the event's first publication.
    pub publish_round: u64,
    /// `counts[l]` = processes that first delivered the event `l` rounds
    /// after `publish_round`.
    pub counts: Vec<u64>,
}

impl DeliveryLatency {
    /// Total processes that delivered the event.
    pub fn delivered(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean delivery latency in rounds (0 when nobody delivered).
    pub fn mean(&self) -> f64 {
        let total = self.delivered();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(latency, &count)| latency as u64 * count)
            .sum();
        weighted as f64 / total as f64
    }

    /// The smallest latency by which at least `q` (in `[0, 1]`) of the
    /// deliveries had happened (0 when nobody delivered) — e.g.
    /// `quantile(1.0)` is the worst-case latency-to-deliver.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.delivered();
        if total == 0 {
            return 0;
        }
        let threshold = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut cumulative = 0;
        for (latency, &count) in self.counts.iter().enumerate() {
            cumulative += count;
            if cumulative >= threshold {
                return latency as u64;
            }
        }
        (self.counts.len() as u64).saturating_sub(1)
    }

    /// Adds another histogram of the **same event shape** bucket-wise
    /// (aggregating the same scenario across trials).
    pub fn merge(&mut self, other: &DeliveryLatency) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (bucket, &count) in other.counts.iter().enumerate() {
            self.counts[bucket] += count;
        }
    }
}

/// Outcome of one multicast trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// Delivery/reception classification over all published events (the
    /// per-event reports merged; identical to the single report for the
    /// default one-event workload).
    pub report: MulticastReport,
    /// One report per *distinct* published event id, in first-publication
    /// schedule order (publishing the same event from several processes is
    /// one dissemination and yields one report).
    pub per_event: Vec<MulticastReport>,
    /// One delivery-latency histogram per distinct event, in the same
    /// order as [`per_event`](Self::per_event).
    pub latency: Vec<DeliveryLatency>,
    /// Gossip messages handed to the network.
    pub messages_sent: u64,
    /// Rounds executed before quiescence (or the cap).
    pub rounds: u64,
}

/// Aggregated outcome of several trials of the same experiment point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggregateOutcome {
    /// Number of trials aggregated.
    pub trials: usize,
    /// Mean delivery probability of interested processes (Figure 4 metric).
    pub delivery_mean: f64,
    /// Sample standard deviation of the delivery probability.
    pub delivery_std: f64,
    /// Mean reception probability of uninterested processes (Figure 5
    /// metric).
    pub spurious_mean: f64,
    /// Mean number of gossip messages per multicast.
    pub messages_mean: f64,
    /// Mean number of rounds to quiescence.
    pub rounds_mean: f64,
}

impl AggregateOutcome {
    /// Aggregates a non-empty slice of trial outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes` is empty.
    pub fn from_trials(outcomes: &[TrialOutcome]) -> Self {
        assert!(!outcomes.is_empty(), "cannot aggregate zero trials");
        let deliveries: Vec<f64> = outcomes.iter().map(|o| o.report.delivery_ratio()).collect();
        let spurious: Vec<f64> = outcomes.iter().map(|o| o.report.spurious_ratio()).collect();
        let delivery_mean = mean(&deliveries);
        Self {
            trials: outcomes.len(),
            delivery_mean,
            delivery_std: std_dev(&deliveries, delivery_mean),
            spurious_mean: mean(&spurious),
            messages_mean: mean(
                &outcomes
                    .iter()
                    .map(|o| o.messages_sent as f64)
                    .collect::<Vec<_>>(),
            ),
            rounds_mean: mean(&outcomes.iter().map(|o| o.rounds as f64).collect::<Vec<_>>()),
        }
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

fn std_dev(values: &[f64], mean: f64) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let variance =
        values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    variance.sqrt()
}

/// Resolves a [`Publisher`] spec to a process index, consuming the
/// workload stream exactly as documented in the module-level seed contract.
///
/// The interested pick walks the oracle's iterator to the k-th interested
/// address instead of materializing the whole assignment — the draw is
/// allocation-free.
fn resolve_publisher(
    publisher: &Publisher,
    topology: &ImplicitRegularTree,
    oracle: &AssignmentOracle,
    workload_rng: &mut ChaCha8Rng,
) -> usize {
    match publisher {
        Publisher::Process(index) => {
            // Re-checked here (not only in `ScenarioBuilder::build`) so
            // hand-constructed scenarios fail with a diagnostic instead of
            // a raw index-out-of-bounds inside the simulation.
            assert!(
                *index < topology.member_count(),
                "publisher index {index} out of range for a group of {}",
                topology.member_count()
            );
            *index
        }
        Publisher::Uniform => workload_rng.gen_range(0..topology.member_count()),
        Publisher::Interested => {
            if oracle.is_empty() {
                workload_rng.gen_range(0..topology.member_count())
            } else {
                let pick = workload_rng.gen_range(0..oracle.len());
                let address = oracle
                    .iter()
                    .nth(pick)
                    .expect("pick is within the assignment");
                topology
                    .space()
                    .index_of_address(address)
                    .expect("interested address is valid") as usize
            }
        }
    }
}

/// The crash plan combining a scenario's initial fraction and schedule.
fn crash_plan(scenario: &Scenario) -> CrashPlan {
    match (
        scenario.crash_fraction > 0.0,
        scenario.crash_schedule.is_empty(),
    ) {
        (false, true) => CrashPlan::None,
        (true, true) => CrashPlan::InitialFraction(scenario.crash_fraction),
        (false, false) => CrashPlan::Scheduled(scenario.crash_schedule.clone()),
        (true, false) => CrashPlan::Mixed {
            fraction: scenario.crash_fraction,
            schedule: scenario.crash_schedule.clone(),
        },
    }
}

/// A resolved publish schedule: `(round, publisher process, event)` in
/// schedule order.
pub type PublishSchedule = Vec<(u64, usize, Arc<Event>)>;

/// The fully resolved, seed-contract-consuming part of a trial: the
/// topology, the sampled interest assignment and the publisher-resolved
/// publish schedule, plus the trial's population.
///
/// Extracted from the trial loop so that **both** execution engines — the
/// round-synchronous [`run_scenario_trial`] and the asynchronous
/// `pmcast-net` runtime — resolve the *identical* workload for a given
/// `(scenario, trial)` pair: same trial seed, same interest bits, same
/// publishers, same membership bootstrap.  Consumes the workload stream
/// (rule 1 of the module-level seed contract) exactly as the historical
/// inline code did, so all goldens are preserved bit for bit.
pub struct TrialWorkload {
    /// The trial seed `seed_t = scenario.seed + trial` every stream
    /// derives from.
    pub seed: u64,
    /// The regular tree the group lives in.
    pub topology: ImplicitRegularTree,
    /// The sampled interest assignment: the historical matching-rate
    /// [`AssignmentOracle`] for plain scenarios, a [`TopicOracle`] when the
    /// scenario declares a topic workload.
    pub oracle: Arc<dyn InterestOracle + Send + Sync>,
    /// The topic oracle behind [`oracle`](Self::oracle) when the scenario
    /// carries a [`crate::scenario::TopicWorkload`] (`None` otherwise); it
    /// additionally supplies the aggregated per-subtree interest summaries
    /// and the audience hashcons counters.
    pub topic_oracle: Option<Arc<TopicOracle>>,
    /// `(round, publisher process, event)` in schedule order, publishers
    /// already resolved.
    pub schedule: PublishSchedule,
    /// The trial's (possibly sparse, time-varying) population.
    pub population: Population,
    /// Initial occupancy, `Some` only when somebody starts absent (the
    /// sparse-bootstrap path).
    pub occupied_at_start: Option<Vec<bool>>,
}

impl std::fmt::Debug for TrialWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The interest oracle is a trait object without a `Debug` bound;
        // everything else prints in full.
        f.debug_struct("TrialWorkload")
            .field("seed", &self.seed)
            .field("topology", &self.topology)
            .field("topic_oracle", &self.topic_oracle)
            .field("schedule", &self.schedule)
            .field("population", &self.population)
            .field("occupied_at_start", &self.occupied_at_start)
            .finish_non_exhaustive()
    }
}

impl TrialWorkload {
    /// Instantiates the scenario's membership provider from the trial's
    /// membership stream (rule 3 of the module-level seed contract) —
    /// shared verbatim by both execution engines.
    ///
    /// Topic workloads additionally attach the oracle's aggregated
    /// per-subtree interest summaries to the provider
    /// ([`MembershipView::attach_interest_summaries`]), so
    /// summary-routed trials can skip provably uninterested subtrees;
    /// providers without summary support keep the no-op default and
    /// answer every query permissively.  Attaching is pure bookkeeping —
    /// no stream is touched.
    pub fn membership(&self, scenario: &Scenario) -> Arc<dyn MembershipView> {
        let view = scenario.membership.instantiate(
            scenario.arity,
            scenario.depth,
            self.seed.wrapping_mul(0xC2B2_AE35).wrapping_add(17),
            self.occupied_at_start.as_deref(),
        );
        if let Some(topics) = &self.topic_oracle {
            view.attach_interest_summaries(topics.subtree_summaries());
        }
        view
    }
}

/// Resolves trial `t` of a scenario into a [`TrialWorkload`], consuming
/// the workload stream exactly as documented in the module-level seed
/// contract.
pub fn trial_workload(scenario: &Scenario, trial: usize) -> TrialWorkload {
    let seed = scenario.seed.wrapping_add(trial as u64);
    let topology = ImplicitRegularTree::new(
        AddressSpace::regular(scenario.depth, scenario.arity).expect("valid shape"),
    );
    let mut workload_rng =
        ChaCha8Rng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(7));
    // The trial's population: occupancy gaps and their deterministic
    // join/leave transitions.  `Population::new` / `with_fault_schedule`
    // also validate every scheduled index (so hand-constructed scenarios
    // fail with a diagnostic) and derive which processes start absent
    // (earliest event is a join), shared between the engine's lifecycle
    // plan and the providers' sparse bootstrap.
    let population = scenario.population();
    // Sparse bootstrap is only needed when somebody actually starts
    // absent; a leave/rejoin-only schedule begins fully populated, and the
    // plain bootstrap path skips the occupancy scans (the two are proven
    // bit-identical for full occupancy).
    let occupied_at_start =
        (!population.initially_absent().is_empty()).then(|| population.occupied_at_start());

    if let Some(workload) = &scenario.topics {
        let (topic_oracle, schedule) =
            topic_trial_workload(workload, &topology, &mut workload_rng);
        return TrialWorkload {
            seed,
            topology,
            oracle: topic_oracle.clone(),
            topic_oracle: Some(topic_oracle),
            schedule,
            population,
            occupied_at_start,
        };
    }

    let oracle = Arc::new(AssignmentOracle::sample(
        &topology,
        scenario.matching_rate,
        &mut workload_rng,
    ));

    // The default workload: one event, one interested sender, round 0.
    let default_publication;
    let publications: &[Publication] = if scenario.publications.is_empty() {
        default_publication = [Publication {
            round: 0,
            publisher: Publisher::Interested,
            event: Event::builder(1_000 + trial as u64).int("b", 1).build(),
        }];
        &default_publication
    } else {
        &scenario.publications
    };

    // Resolve publishers in schedule order (the seed contract).
    let schedule: PublishSchedule = publications
        .iter()
        .map(|publication| {
            let sender =
                resolve_publisher(&publication.publisher, &topology, &oracle, &mut workload_rng);
            (
                publication.round,
                sender,
                Arc::new(publication.event.clone()),
            )
        })
        .collect();
    TrialWorkload {
        seed,
        topology,
        oracle,
        topic_oracle: None,
        schedule,
        population,
        occupied_at_start,
    }
}

/// Resolves a topic workload: subscription draws, then the generated
/// publish schedule — consuming the workload stream exactly as documented
/// in the module-level seed contract's topic extension.
fn topic_trial_workload(
    workload: &crate::scenario::TopicWorkload,
    topology: &ImplicitRegularTree,
    workload_rng: &mut ChaCha8Rng,
) -> (Arc<TopicOracle>, PublishSchedule) {
    let n = topology.member_count();
    let topics = workload.topics;
    // Per-process subscriptions in address order, distinct by rejection
    // resampling (`subscriptions_per_process ≤ topics` is validated at
    // build time, so the loop terminates).
    let mut subscriptions: Vec<Vec<u32>> = Vec::with_capacity(n);
    for _ in 0..n {
        let mut set: Vec<u32> = Vec::with_capacity(workload.subscriptions_per_process);
        while set.len() < workload.subscriptions_per_process {
            let topic = workload_rng.gen_range(0..topics) as u32;
            if !set.contains(&topic) {
                set.push(topic);
            }
        }
        subscriptions.push(set);
    }
    let oracle = Arc::new(TopicOracle::new(
        topology.space().clone(),
        subscriptions,
        topics,
    ));
    // Truncated Zipf over the topic ranks: topic k has weight
    // (k + 1)^-zipf_exponent; one uniform f64 walks the unnormalized CDF.
    let weights: Vec<f64> = (1..=topics)
        .map(|rank| (rank as f64).powf(-workload.zipf_exponent))
        .collect();
    let total_weight: f64 = weights.iter().sum();
    let schedule = (0..workload.events)
        .map(|e| {
            let mut draw = workload_rng.gen::<f64>() * total_weight;
            let mut topic = topics - 1;
            for (rank, weight) in weights.iter().enumerate() {
                if draw < *weight {
                    topic = rank;
                    break;
                }
                draw -= weight;
            }
            let audience = oracle.audience(topic);
            let sender = if audience.is_empty() {
                workload_rng.gen_range(0..n)
            } else {
                let pick = workload_rng.gen_range(0..audience.len());
                let address = audience
                    .iter()
                    .nth(pick)
                    .expect("pick is within the audience");
                topology
                    .space()
                    .index_of_address(address)
                    .expect("subscriber address is valid") as usize
            };
            // Deterministic spread over the publish window: no randomness,
            // rounds non-decreasing in event order.
            let round = e as u64 * workload.publish_rounds / workload.events as u64;
            let event = Event::builder(10_000 + e as u64)
                .int(TOPIC_ATTRIBUTE, topic as i64)
                .build();
            (round, sender, Arc::new(event))
        })
        .collect();
    (oracle, schedule)
}

/// Runs one trial of a scenario with the given protocol factory — **the**
/// simulation loop: every protocol and every workload goes through this one
/// function, monomorphized per factory (no trait objects anywhere near the
/// hot path).
pub fn run_scenario_trial<F: ProtocolFactory>(scenario: &Scenario, trial: usize) -> TrialOutcome {
    run_scenario_trial_states::<F>(scenario, trial).0
}

/// [`run_scenario_trial`] variant that also returns the final protocol
/// states (in dense identifier order), so callers — most prominently the
/// net-vs-sim conformance suite — can compare *which* processes delivered
/// an event, not just how many.  `run_scenario_trial` is a thin wrapper
/// that drops the states.
pub fn run_scenario_trial_states<F: ProtocolFactory>(
    scenario: &Scenario,
    trial: usize,
) -> (TrialOutcome, Vec<F::Process>) {
    let workload = trial_workload(scenario, trial);
    // The membership provider: global knowledge (bit-identical to the
    // historical construction), a per-trial gossip-bootstrapped flat
    // partial view, the hierarchical delegate tables, or their lazy
    // twin — bootstrapped sparse when the population starts with gaps,
    // fed every lifecycle transition (join/leave/crash) through the
    // engine's lifecycle observer, and advanced once per simulation
    // round.  Gossip providers draw from the membership stream (rule 3 of
    // the module-level seed contract); lifecycle events consume no
    // randomness at all.  Topic workloads attach their aggregated
    // interest summaries here (see [`TrialWorkload::membership`]).
    let membership = workload.membership(scenario);
    let TrialWorkload {
        seed,
        topology,
        oracle,
        topic_oracle: _,
        schedule,
        population,
        occupied_at_start: _,
    } = workload;
    let network = NetworkConfig {
        loss_probability: scenario.loss_probability,
        crash_plan: crash_plan(scenario),
        fault_plan: scenario.fault_plan(),
        seed,
    };
    let mut injection_order: Vec<usize> = (0..schedule.len()).collect();
    injection_order.sort_by_key(|&index| schedule[index].0);

    // One latency tracker per distinct event id, in first-publication
    // schedule order (matching `per_event`); a redundant publisher of the
    // same id keeps the earliest publish round as the latency origin.
    struct LatencyTracker {
        event: EventId,
        publish_round: u64,
        recorded: Vec<bool>,
        counts: Vec<u64>,
    }
    let process_count = topology.member_count();
    let mut trackers: Vec<LatencyTracker> = Vec::with_capacity(schedule.len());
    for (round, _, event) in &schedule {
        match trackers.iter_mut().find(|t| t.event == event.id()) {
            Some(tracker) => tracker.publish_round = tracker.publish_round.min(*round),
            None => trackers.push(LatencyTracker {
                event: event.id(),
                publish_round: *round,
                recorded: vec![false; process_count],
                counts: Vec::new(),
            }),
        }
    }

    let group = F::build(&topology, oracle.clone(), Arc::clone(&membership), &scenario.protocol);
    let lifecycle = LifecyclePlan {
        initially_absent: population.initially_absent().to_vec(),
        joins: scenario.join_schedule.clone(),
        leaves: scenario.leave_schedule.clone(),
    };
    let observer_view = Arc::clone(&membership);
    let mut sim =
        Simulation::with_lifecycle_observer(group.processes, network, lifecycle, move |t| {
            match t.kind {
                LifecycleKind::Join => observer_view.observe_join(t.process.0),
                LifecycleKind::Leave => observer_view.observe_leave(t.process.0),
                LifecycleKind::Crash => observer_view.observe_crash(t.process.0),
            }
        });
    let mut injected = 0;
    let mut rounds = 0;
    // The per-round delivery-candidate buffer of the delta-driven latency
    // tracker (reused across rounds): publishers injected this iteration
    // plus every process handed a message by the step.
    let mut delivery_candidates: Vec<usize> = Vec::new();
    while rounds < scenario.max_rounds {
        delivery_candidates.clear();
        while injected < injection_order.len() {
            let (round, sender, event) = &schedule[injection_order[injected]];
            if *round > sim.round() {
                break;
            }
            sim.process_mut(ProcessId(*sender)).publish(Arc::clone(event));
            delivery_candidates.push(*sender);
            injected += 1;
        }
        membership.round_elapsed();
        sim.step();
        rounds += 1;
        // Record first deliveries of the round just executed (`rounds - 1`)
        // delta-driven: `has_delivered` can only flip while a process
        // handles a delivered message or has a publication injected into
        // it, so this round's receivers (the engine's delivery delta) plus
        // this iteration's publishers are the only processes whose
        // delivery state can have changed — no O(n) re-scan per round.
        // Reads only, so the recording is invisible to every random stream
        // of the seed contract and bit-identical to the historical scan.
        let executed = rounds - 1;
        delivery_candidates.extend_from_slice(sim.last_step_receivers());
        for tracker in &mut trackers {
            if tracker.publish_round > executed {
                continue;
            }
            let latency = (executed - tracker.publish_round) as usize;
            for &index in &delivery_candidates {
                if !tracker.recorded[index]
                    && sim.process(ProcessId(index)).has_delivered(tracker.event)
                {
                    tracker.recorded[index] = true;
                    if tracker.counts.len() <= latency {
                        tracker.counts.resize(latency + 1, 0);
                    }
                    tracker.counts[latency] += 1;
                }
            }
        }
        // Stop once nothing can change any more: every publication is in,
        // the declared lifecycle schedule has fully applied (a trial must
        // never end with a validated join/leave/crash silently pending —
        // the reports and `Scenario::population_sizes` would disagree),
        // and the dissemination is quiescent.
        if injected == injection_order.len()
            && sim.pending_lifecycle() == 0
            && sim.is_quiescent()
        {
            break;
        }
    }
    // `ScenarioBuilder::build` rejects rounds beyond the cap; this guards
    // hand-constructed scenarios, where a silently dropped publication
    // would masquerade as a protocol failure in the reports.
    assert!(
        injected == injection_order.len(),
        "{} publication(s) scheduled at or beyond max_rounds = {} were never injected",
        injection_order.len() - injected,
        scenario.max_rounds
    );

    // Report per *distinct* event: the same event id published from
    // several processes (a redundant-publisher workload) is one
    // dissemination, not several — counting it once keeps the merged
    // totals honest.
    let mut seen_ids: Vec<EventId> = Vec::with_capacity(schedule.len());
    let mut unique_events: Vec<&Event> = Vec::with_capacity(schedule.len());
    for (_, _, event) in &schedule {
        if !seen_ids.contains(&event.id()) {
            seen_ids.push(event.id());
            unique_events.push(event.as_ref());
        }
    }
    let per_event =
        MulticastReport::collect_per_event(unique_events, sim.processes(), oracle.as_ref());
    let mut report = MulticastReport::default();
    for event_report in &per_event {
        report.merge(event_report);
    }
    // Trackers were created in the same first-publication schedule order
    // as `seen_ids`, so `latency` lines up with `per_event` index-wise.
    let latency: Vec<DeliveryLatency> = trackers
        .into_iter()
        .map(|tracker| DeliveryLatency {
            event: tracker.event,
            publish_round: tracker.publish_round,
            counts: tracker.counts,
        })
        .collect();
    debug_assert_eq!(latency.len(), per_event.len());
    let outcome = TrialOutcome {
        report,
        per_event,
        latency,
        messages_sent: sim.stats().messages_sent,
        rounds,
    };
    (outcome, sim.into_processes())
}

/// Runs one trial of a scenario with the protocol chosen at runtime: the
/// thin dispatch from the [`Protocol`] enum onto the factories.
pub fn run_scenario_trial_with(
    scenario: &Scenario,
    protocol: Protocol,
    trial: usize,
) -> TrialOutcome {
    match protocol {
        Protocol::Pmcast => run_scenario_trial::<PmcastFactory>(scenario, trial),
        Protocol::FloodBroadcast => run_scenario_trial::<FloodFactory>(scenario, trial),
        Protocol::GenuineMulticast => run_scenario_trial::<GenuineFactory>(scenario, trial),
    }
}

/// Runs all trials of a scenario sequentially.
pub fn run_scenario(scenario: &Scenario, protocol: Protocol) -> Vec<TrialOutcome> {
    (0..scenario.trials.max(1))
        .map(|trial| run_scenario_trial_with(scenario, protocol, trial))
        .collect()
}

/// Runs all trials of a scenario on all available cores; bit-identical to
/// [`run_scenario`] (see [`run_trials_parallel`]).
pub fn run_scenario_parallel(scenario: &Scenario, protocol: Protocol) -> Vec<TrialOutcome> {
    use rayon::prelude::*;
    let trials: Vec<usize> = (0..scenario.trials.max(1)).collect();
    trials
        .par_iter()
        .map(|&trial| run_scenario_trial_with(scenario, protocol, trial))
        .collect()
}

/// Runs a single trial with the given trial index (offsetting the seed).
pub fn run_trial(config: &ExperimentConfig, trial: usize) -> TrialOutcome {
    run_scenario_trial_with(&Scenario::from_experiment(config), config.protocol_kind, trial)
}

/// Runs all trials of an experiment point sequentially.
pub fn run_trials(config: &ExperimentConfig) -> Vec<TrialOutcome> {
    run_scenario(&Scenario::from_experiment(config), config.protocol_kind)
}

/// Runs all trials of an experiment point on all available cores.
///
/// Trial `t` derives every random choice from `config.seed + t` (see the
/// module-level seed contract), so trials are independent of scheduling:
/// this returns outcomes in trial order and is **bit-identical** to
/// [`run_trials`] for the same configuration, no matter how many worker
/// threads execute it (a property the test suite asserts).
pub fn run_trials_parallel(config: &ExperimentConfig) -> Vec<TrialOutcome> {
    run_scenario_parallel(&Scenario::from_experiment(config), config.protocol_kind)
}

/// Runs all trials of an experiment point sequentially and aggregates them.
pub fn run_experiment(config: &ExperimentConfig) -> AggregateOutcome {
    AggregateOutcome::from_trials(&run_trials(config))
}

/// Runs all trials of an experiment point in parallel and aggregates them.
///
/// Produces the same [`AggregateOutcome`] as [`run_experiment`] (see
/// [`run_trials_parallel`]); all experiment sweeps and the `figures` binary
/// go through this entry point.
pub fn run_experiment_parallel(config: &ExperimentConfig) -> AggregateOutcome {
    AggregateOutcome::from_trials(&run_trials_parallel(config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcast_simnet::FaultPlan;

    #[test]
    fn quick_profile_shape() {
        let config = ExperimentConfig::quick();
        assert_eq!(config.group_size(), 216);
        let paper = ExperimentConfig::paper_reliability();
        assert_eq!(paper.group_size(), 10_648);
        let scal = ExperimentConfig::paper_scalability(10);
        assert_eq!(scal.group_size(), 1_000);
        assert_eq!(scal.protocol.redundancy, 4);
    }

    #[test]
    fn builders_chain() {
        let config = ExperimentConfig::quick()
            .with_matching_rate(0.25)
            .with_trials(2)
            .with_arity(4)
            .with_seed(9)
            .with_loss(0.05)
            .with_crash_fraction(0.01)
            .with_protocol(PmcastConfig::default().with_fanout(4))
            .with_protocol_kind(Protocol::FloodBroadcast);
        assert_eq!(config.matching_rate, 0.25);
        assert_eq!(config.trials, 2);
        assert_eq!(config.arity, 4);
        assert_eq!(config.seed, 9);
        assert_eq!(config.protocol.fanout, 4);
        assert_eq!(config.protocol_kind, Protocol::FloodBroadcast);
    }

    #[test]
    fn pmcast_trial_delivers_to_most_interested_processes() {
        let config = ExperimentConfig::quick().with_trials(1);
        let outcome = run_trial(&config, 0);
        assert!(outcome.report.interested > 0);
        assert!(outcome.report.delivery_ratio() > 0.7, "{outcome:?}");
        assert!(outcome.messages_sent > 0);
        assert!(outcome.rounds > 0);
        // The default workload is a single event, so the merged report is
        // exactly the per-event report.
        assert_eq!(outcome.per_event.len(), 1);
        assert_eq!(outcome.per_event[0], outcome.report);
    }

    #[test]
    fn aggregation_computes_mean_and_std() {
        let report_a = MulticastReport {
            interested: 10,
            delivered_interested: 10,
            uninterested: 10,
            received_uninterested: 0,
            received_total: 10,
        };
        let report_b = MulticastReport {
            interested: 10,
            delivered_interested: 5,
            uninterested: 10,
            received_uninterested: 2,
            received_total: 7,
        };
        let outcomes = vec![
            TrialOutcome {
                report: report_a,
                per_event: vec![report_a],
                latency: Vec::new(),
                messages_sent: 100,
                rounds: 10,
            },
            TrialOutcome {
                report: report_b,
                per_event: vec![report_b],
                latency: Vec::new(),
                messages_sent: 200,
                rounds: 20,
            },
        ];
        let aggregate = AggregateOutcome::from_trials(&outcomes);
        assert_eq!(aggregate.trials, 2);
        assert!((aggregate.delivery_mean - 0.75).abs() < 1e-12);
        assert!(aggregate.delivery_std > 0.0);
        assert!((aggregate.spurious_mean - 0.1).abs() < 1e-12);
        assert!((aggregate.messages_mean - 150.0).abs() < 1e-12);
        assert!((aggregate.rounds_mean - 15.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero trials")]
    fn aggregating_nothing_panics() {
        let _ = AggregateOutcome::from_trials(&[]);
    }

    #[test]
    fn experiments_are_deterministic_per_seed() {
        let config = ExperimentConfig::quick().with_trials(2).with_seed(77);
        let a = run_experiment(&config);
        let b = run_experiment(&config);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let config = ExperimentConfig::quick().with_trials(4).with_seed(5);
        let serial = run_experiment(&config);
        let parallel = run_experiment_parallel(&config);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn parallel_trials_are_bit_identical_to_sequential() {
        // The acceptance bar for the parallel engine: per-trial outcomes (not
        // just the aggregate) must match the sequential runner exactly for
        // the standard quick profile, because every trial re-derives its
        // randomness from `seed + t` alone.  (On single-core hosts the
        // parallel path degenerates to sequential; that trials land in input
        // order under real multi-threading is covered by the rayon shim's
        // own order-preservation test, so the composition holds without
        // mutating the process-global RAYON_NUM_THREADS here.)
        let config = ExperimentConfig::quick();
        let sequential = run_trials(&config);
        let parallel = run_trials_parallel(&config);
        assert_eq!(sequential, parallel);
        assert_eq!(
            AggregateOutcome::from_trials(&sequential),
            AggregateOutcome::from_trials(&parallel)
        );
        // And repeated parallel runs are stable despite thread scheduling.
        assert_eq!(parallel, run_trials_parallel(&config));
    }

    #[test]
    fn global_view_outcomes_are_bit_identical_to_the_pre_provider_engine() {
        // Golden outcomes captured immediately before membership became a
        // provider axis: the default `GlobalOracleView` must reproduce the
        // historical oracle-built trials bit for bit — interest counts,
        // deliveries, spurious receptions, message counts and round counts.
        type QuickGolden = (Protocol, [(u64, u64, u64, u64, u64); 3]);
        let golden_quick: [QuickGolden; 3] = [
            // (interested, delivered, received_uninterested, messages, rounds)
            (Protocol::Pmcast, [(111, 108, 53, 1659, 17), (102, 98, 60, 1566, 17), (106, 105, 56, 1655, 17)]),
            (Protocol::FloodBroadcast, [(111, 111, 104, 3870, 18), (102, 102, 114, 3888, 19), (106, 106, 110, 3888, 19)]),
            (Protocol::GenuineMulticast, [(111, 111, 0, 1776, 16), (102, 102, 0, 1632, 16), (106, 106, 0, 1696, 17)]),
        ];
        for (protocol, expected) in golden_quick {
            let config = ExperimentConfig::quick().with_trials(3).with_protocol_kind(protocol);
            for (trial, outcome) in run_trials(&config).iter().enumerate() {
                let got = (
                    outcome.report.interested as u64,
                    outcome.report.delivered_interested as u64,
                    outcome.report.received_uninterested as u64,
                    outcome.messages_sent,
                    outcome.rounds,
                );
                assert_eq!(got, expected[trial], "{protocol:?} trial {trial}");
            }
        }

        // A churn-and-loss scenario exercising the crash observer path (a
        // no-op for the global view, so the streams must not shift).
        let scenario = Scenario::builder()
            .group(4, 3)
            .matching_rate(0.6)
            .loss(0.05)
            .crash_fraction(0.05)
            .crash_at(3, 7)
            .publish(Publisher::Interested, Event::builder(1).int("b", 1).build())
            .publish_at(2, Publisher::Uniform, Event::builder(2).int("b", 2).build())
            .trials(2)
            .seed(11)
            .build();
        type ScenarioGolden = (Protocol, [(u64, u64, u64, u64); 2]);
        let golden_scenario: [ScenarioGolden; 3] = [
            // (delivered, received_total, messages, rounds)
            (Protocol::Pmcast, [(80, 100, 1113, 16), (62, 104, 1137, 16)]),
            (Protocol::FloodBroadcast, [(80, 116, 1624, 17), (64, 118, 1652, 17)]),
            (Protocol::GenuineMulticast, [(80, 80, 1120, 17), (64, 64, 896, 16)]),
        ];
        for (protocol, expected) in golden_scenario {
            for (trial, outcome) in scenario.run(protocol).iter().enumerate() {
                let got = (
                    outcome.report.delivered_interested as u64,
                    outcome.report.received_total as u64,
                    outcome.messages_sent,
                    outcome.rounds,
                );
                assert_eq!(got, expected[trial], "{protocol:?} trial {trial}");
            }
        }
    }

    #[test]
    fn flood_baseline_reaches_more_uninterested_processes_than_pmcast() {
        let base = ExperimentConfig::quick().with_trials(2).with_matching_rate(0.3);
        let pmcast = run_experiment(&base);
        let flood = run_experiment(&base.clone().with_protocol_kind(Protocol::FloodBroadcast));
        assert!(
            flood.spurious_mean > pmcast.spurious_mean,
            "flooding ({}) should touch more uninterested processes than pmcast ({})",
            flood.spurious_mean,
            pmcast.spurious_mean
        );
    }

    #[test]
    fn genuine_baseline_never_touches_uninterested_processes() {
        let config = ExperimentConfig::quick()
            .with_trials(2)
            .with_matching_rate(0.3)
            .with_protocol_kind(Protocol::GenuineMulticast);
        let outcome = run_experiment(&config);
        assert_eq!(outcome.spurious_mean, 0.0);
        assert!(outcome.delivery_mean > 0.7);
    }

    #[test]
    fn multi_publisher_multi_event_scenario_runs_on_every_protocol() {
        // The API-redesign acceptance bar: one scenario with several
        // publishers and several events, staggered over rounds, runs
        // unchanged on all three protocols through the single generic trial
        // loop — and stays bit-identical under the parallel runner.
        let scenario = Scenario::builder()
            .group(4, 3) // 64 processes
            .matching_rate(0.6)
            .loss(0.01)
            .publish(Publisher::Interested, Event::builder(1).int("b", 1).build())
            .publish_at(2, Publisher::Uniform, Event::builder(2).int("b", 2).build())
            .publish_at(5, Publisher::Process(7), Event::builder(3).int("b", 3).build())
            .trials(2)
            .seed(11)
            .build();
        for protocol in [
            Protocol::Pmcast,
            Protocol::FloodBroadcast,
            Protocol::GenuineMulticast,
        ] {
            let outcomes = scenario.run(protocol);
            assert_eq!(outcomes.len(), 2, "{protocol:?}");
            for outcome in &outcomes {
                assert_eq!(outcome.per_event.len(), 3, "{protocol:?}");
                // The merged report is the per-event sum.
                let mut merged = MulticastReport::default();
                for event_report in &outcome.per_event {
                    merged.merge(event_report);
                }
                assert_eq!(merged, outcome.report, "{protocol:?}");
                // Each event found its audience.
                for event_report in &outcome.per_event {
                    assert!(
                        event_report.delivery_ratio() > 0.5,
                        "{protocol:?}: {event_report:?}"
                    );
                }
                assert!(outcome.messages_sent > 0);
            }
            assert_eq!(outcomes, scenario.run_parallel(protocol), "{protocol:?}");
        }
    }

    #[test]
    fn scheduled_crashes_flow_into_the_simulation() {
        // Crash the only publisher at round 1; the event must not reach the
        // whole audience, proving the schedule reaches the network layer.
        let healthy = Scenario::builder()
            .group(4, 2)
            .matching_rate(1.0)
            .publish(Publisher::Process(0), Event::builder(4).build())
            .seed(3)
            .build();
        let crashed = Scenario::builder()
            .group(4, 2)
            .matching_rate(1.0)
            .publish(Publisher::Process(0), Event::builder(4).build())
            .crash_at(1, 0)
            .seed(3)
            .build();
        let healthy_outcome = &healthy.run(Protocol::FloodBroadcast)[0];
        let crashed_outcome = &crashed.run(Protocol::FloodBroadcast)[0];
        assert!(healthy_outcome.report.delivered_interested == 16);
        assert!(
            crashed_outcome.report.delivered_interested
                <= healthy_outcome.report.delivered_interested
        );
        assert!(crashed_outcome.messages_sent < healthy_outcome.messages_sent);
    }

    #[test]
    fn joiners_receive_publications_made_after_their_join() {
        // Process 15 starts absent and joins at round 2; an event published
        // at round 5 must reach it, while one published at round 0 into a
        // trial where it never joins cannot.
        let joined = Scenario::builder()
            .group(4, 2)
            .matching_rate(1.0)
            .join_at(2, 15)
            .publish_at(5, Publisher::Process(0), Event::builder(8).build())
            .seed(4)
            .build();
        assert_eq!(joined.group_size(), 15, "the joiner starts absent");
        let outcome = &joined.run(Protocol::FloodBroadcast)[0];
        assert_eq!(
            outcome.report.delivered_interested, 16,
            "the joiner catches the post-join publication: {:?}",
            outcome.report
        );

        // Same trial without the join: only 15 processes can deliver.
        let absent_forever = Scenario::builder()
            .group(4, 2)
            .matching_rate(1.0)
            .join_at(350, 15) // joins long after the flood has quiesced
            .publish_at(5, Publisher::Process(0), Event::builder(8).build())
            .seed(4)
            .build();
        let missed = &absent_forever.run(Protocol::FloodBroadcast)[0];
        assert_eq!(
            missed.report.delivered_interested, 15,
            "a process absent during dissemination cannot deliver: {:?}",
            missed.report
        );
        // Lifecycle trials stay bit-identical under the parallel runner.
        assert_eq!(joined.run(Protocol::Pmcast), joined.run_parallel(Protocol::Pmcast));
    }

    #[test]
    fn trials_run_until_the_declared_lifecycle_schedule_has_applied() {
        // The flood quiesces long before round 50, but the scenario
        // declares a leave there: the trial must keep stepping (empty
        // rounds) until the whole validated schedule has applied, so the
        // outcome never disagrees with `population_sizes()`.
        let scenario = Scenario::builder()
            .group(4, 2)
            .matching_rate(1.0)
            .publish(Publisher::Process(0), Event::builder(6).build())
            .leave_at(50, 3)
            .seed(2)
            .build();
        let outcome = &scenario.run(Protocol::FloodBroadcast)[0];
        assert!(
            outcome.rounds > 50,
            "the trial ended at round {} with the round-50 leave still pending",
            outcome.rounds
        );
        // Without the late event the same trial stops at quiescence.
        let static_scenario = Scenario::builder()
            .group(4, 2)
            .matching_rate(1.0)
            .publish(Publisher::Process(0), Event::builder(6).build())
            .seed(2)
            .build();
        let static_outcome = &static_scenario.run(Protocol::FloodBroadcast)[0];
        assert!(static_outcome.rounds < 50);
        assert_eq!(
            static_outcome.report, outcome.report,
            "idle rounds after quiescence change nothing but the round count"
        );
    }

    #[test]
    #[should_panic(expected = "crash scheduled at round")]
    fn unreachable_crash_rounds_are_rejected() {
        let _ = Scenario::builder().max_rounds(10).crash_at(10, 0).build();
    }

    #[test]
    fn crash_then_rejoin_schedules_keep_the_process_present_at_round_zero() {
        // crash_at(6) + join_at(12) describes a crash-then-rejoin, not a
        // late newcomer: the process must be up for the round-0 publish and
        // deliver exactly as in the crash-only scenario.
        let with_rejoin = |rejoin: bool| {
            let builder = Scenario::builder()
                .group(4, 2)
                .matching_rate(1.0)
                .crash_at(6, 5)
                .publish(Publisher::Process(0), Event::builder(2).build())
                .seed(17);
            let builder = if rejoin { builder.join_at(12, 5) } else { builder };
            builder.build()
        };
        let rejoin = with_rejoin(true);
        assert!(rejoin.population().initially_absent().is_empty());
        assert_eq!(rejoin.group_size(), 16);
        let crash_only = &with_rejoin(false).run(Protocol::GenuineMulticast)[0];
        let rejoined = &rejoin.run(Protocol::GenuineMulticast)[0];
        assert_eq!(crash_only.report.delivered_interested, 16);
        assert_eq!(
            rejoined.report.delivered_interested, 16,
            "adding the rejoin must not retroactively unseat the process: {:?}",
            rejoined.report
        );
    }

    #[test]
    fn graceful_leave_equals_crash_under_global_membership() {
        // `GlobalOracleView` ignores lifecycle notifications and the
        // network treats a leaver exactly like a crashed process, so under
        // global membership the two schedules must produce bit-identical
        // outcomes — the stream-neutrality invariant extended to leaves.
        let with = |crash: bool| {
            let builder = Scenario::builder()
                .group(4, 2)
                .matching_rate(1.0)
                .loss(0.05)
                .publish(Publisher::Process(0), Event::builder(3).build())
                .seed(21);
            let builder = if crash {
                builder.crash_at(2, 7)
            } else {
                builder.leave_at(2, 7)
            };
            builder.build()
        };
        for protocol in [
            Protocol::Pmcast,
            Protocol::FloodBroadcast,
            Protocol::GenuineMulticast,
        ] {
            assert_eq!(
                with(false).run(protocol),
                with(true).run(protocol),
                "{protocol:?}: leave and crash must be indistinguishable to a \
                 stream-neutral provider"
            );
        }
    }

    #[test]
    fn leavers_stop_participating_in_the_dissemination() {
        // Half the group unsubscribes right after the publish: delivery
        // drops below the full audience but the trial completes cleanly.
        let mut churn = Scenario::builder()
            .group(4, 2)
            .matching_rate(1.0)
            .publish(Publisher::Process(0), Event::builder(5).build())
            .seed(8);
        for victim in 8..16 {
            churn = churn.leave_at(1, victim);
        }
        let scenario = churn.build();
        let sizes = scenario.population_sizes();
        assert_eq!((sizes.initial, sizes.end), (16, 8));
        let outcome = &scenario.run(Protocol::FloodBroadcast)[0];
        assert!(outcome.report.delivered_interested >= 8, "{:?}", outcome.report);
        assert!(
            outcome.report.delivered_interested < 16,
            "leavers at round 1 cannot all have delivered: {:?}",
            outcome.report
        );
    }

    #[test]
    fn redundant_publishers_of_one_event_are_reported_once() {
        // The same event published from two processes is one dissemination:
        // one per-event report, no double-counted totals.
        let event = Event::builder(21).int("b", 4).build();
        let scenario = Scenario::builder()
            .group(4, 2)
            .matching_rate(0.5)
            .publish(Publisher::Process(0), event.clone())
            .publish_at(2, Publisher::Process(9), event)
            .seed(13)
            .build();
        let outcome = &scenario.run(Protocol::FloodBroadcast)[0];
        assert_eq!(outcome.per_event.len(), 1);
        assert_eq!(outcome.per_event[0], outcome.report);
        assert_eq!(
            outcome.report.interested + outcome.report.uninterested,
            16,
            "every process classified exactly once: {:?}",
            outcome.report
        );
        assert!(outcome.report.delivery_ratio() > 0.9);
    }

    #[test]
    #[should_panic(expected = "can never run")]
    fn publications_beyond_the_round_cap_are_rejected() {
        let _ = Scenario::builder()
            .max_rounds(10)
            .publish_at(10, Publisher::Uniform, Event::builder(1).build())
            .build();
    }

    #[test]
    #[should_panic(expected = "never injected")]
    fn hand_built_scenarios_cannot_silently_drop_publications() {
        let mut scenario = Scenario::builder().group(4, 2).build();
        scenario.max_rounds = 3;
        scenario.publications.push(Publication {
            round: 5,
            publisher: Publisher::Uniform,
            event: Event::builder(2).build(),
        });
        let _ = run_scenario_trial_with(&scenario, Protocol::Pmcast, 0);
    }

    #[test]
    fn latency_histograms_account_for_every_delivery() {
        let config = ExperimentConfig::quick().with_trials(1);
        let outcome = run_trial(&config, 0);
        assert_eq!(outcome.latency.len(), outcome.per_event.len());
        let histogram = &outcome.latency[0];
        assert_eq!(
            histogram.delivered(),
            outcome.report.delivered_interested as u64,
            "every delivery lands in exactly one latency bucket"
        );
        assert_eq!(histogram.publish_round, 0);
        assert_eq!(histogram.counts[0], 1, "the publisher delivers at latency 0");
        assert!(histogram.mean() > 0.0);
        assert!(histogram.quantile(0.5) <= histogram.quantile(1.0));
        assert!((histogram.quantile(1.0) as usize) < histogram.counts.len());
    }

    #[test]
    fn latency_origin_is_the_publish_round() {
        // An event published at round 4 must measure latency from round 4,
        // not from the start of the trial.
        let scenario = Scenario::builder()
            .group(4, 2)
            .matching_rate(1.0)
            .publish_at(4, Publisher::Process(0), Event::builder(7).build())
            .seed(6)
            .build();
        let outcome = &scenario.run(Protocol::FloodBroadcast)[0];
        let histogram = &outcome.latency[0];
        assert_eq!(histogram.publish_round, 4);
        assert_eq!(histogram.counts[0], 1);
        assert_eq!(histogram.delivered(), 16);
        // A reliable flood over 16 processes finishes within a few hops.
        assert!(histogram.quantile(1.0) <= 4, "{:?}", histogram.counts);
    }

    #[test]
    fn delivery_latency_helpers_compute_mean_quantile_and_merge() {
        let mut histogram = DeliveryLatency {
            event: Event::builder(1).build().id(),
            publish_round: 0,
            counts: vec![1, 0, 3],
        };
        assert_eq!(histogram.delivered(), 4);
        assert!((histogram.mean() - 1.5).abs() < 1e-12);
        assert_eq!(histogram.quantile(0.25), 0);
        assert_eq!(histogram.quantile(1.0), 2);
        let other = DeliveryLatency {
            event: histogram.event,
            publish_round: 0,
            counts: vec![0, 2, 0, 5],
        };
        histogram.merge(&other);
        assert_eq!(histogram.counts, vec![1, 2, 3, 5]);
        let empty = DeliveryLatency {
            event: histogram.event,
            publish_round: 0,
            counts: Vec::new(),
        };
        assert_eq!(empty.delivered(), 0);
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.quantile(0.9), 0);
    }

    #[test]
    fn link_delay_stretches_latency_without_losing_deliveries() {
        let base = Scenario::builder()
            .group(4, 2)
            .matching_rate(1.0)
            .publish(Publisher::Process(0), Event::builder(5).build())
            .seed(9);
        let fast = base.clone().build();
        let slow = base.link_delay(1, 3).build();
        let fast_outcome = &fast.run(Protocol::FloodBroadcast)[0];
        let slow_outcome = &slow.run(Protocol::FloodBroadcast)[0];
        assert_eq!(fast_outcome.report.delivered_interested, 16);
        assert_eq!(
            slow_outcome.report.delivered_interested, 16,
            "delay postpones but never destroys messages"
        );
        assert!(
            slow_outcome.latency[0].mean() > fast_outcome.latency[0].mean(),
            "slow {:?} vs fast {:?}",
            slow_outcome.latency[0].counts,
            fast_outcome.latency[0].counts
        );
        assert!(slow_outcome.rounds > fast_outcome.rounds);
    }

    #[test]
    fn healing_partition_delays_the_other_cell_until_heal() {
        // Publisher in cell 0; the partition [0, 6) cuts the group in two
        // cells, so cell 1 (processes 8..16) can only deliver after the
        // heal at round 6.
        let scenario = Scenario::builder()
            .group(4, 2)
            .matching_rate(1.0)
            .partition(0, 6, 2)
            .publish(Publisher::Process(0), Event::builder(5).build())
            .seed(9)
            .build();
        let outcome = &scenario.run(Protocol::FloodBroadcast)[0];
        assert_eq!(
            outcome.report.delivered_interested, 16,
            "the partition heals, so everybody eventually delivers: {:?}",
            outcome.report
        );
        let histogram = &outcome.latency[0];
        // Nobody in the other cell can deliver before round 6, so at most
        // the 8 processes of cell 0 appear in buckets 0..6.
        let early: u64 = histogram.counts.iter().take(6).sum();
        assert!(early <= 8, "{:?}", histogram.counts);
        assert!(histogram.quantile(1.0) >= 6, "{:?}", histogram.counts);
    }

    #[test]
    fn subtree_loss_degrades_only_the_lossy_subtree() {
        // Subtree [3] (processes 12..16) suffers heavy extra loss; the other
        // twelve processes stay on the reliable network.
        let scenario = Scenario::builder()
            .group(4, 2)
            .matching_rate(1.0)
            .subtree_loss(&[3], 0.9)
            .publish(Publisher::Process(0), Event::builder(5).build())
            .trials(4)
            .seed(9)
            .max_rounds(30)
            .build();
        for outcome in scenario.run(Protocol::FloodBroadcast) {
            assert!(
                outcome.report.delivered_interested >= 12,
                "the healthy subtrees must not be affected: {:?}",
                outcome.report
            );
        }
    }

    #[test]
    fn declared_but_inactive_fault_axes_are_bit_identical_to_no_plan() {
        // Every axis declared with its neutral value must leave all three
        // random streams untouched — outcome equality is exact, including
        // latency histograms.
        let base = || {
            Scenario::builder()
                .group(4, 3)
                .matching_rate(0.6)
                .loss(0.05)
                .crash_fraction(0.05)
                .trials(2)
                .seed(31)
        };
        let plain = base().build();
        let neutral = base()
            .link_delay(0, 0)
            .partition(3, 3, 4) // empty window
            .partition(2, 9, 1) // single cell
            .subtree_loss(&[1], 0.0)
            .straggler(5, 1)
            .build();
        assert!(neutral.fault_plan() != FaultPlan::default(), "axes are declared");
        for protocol in [
            Protocol::Pmcast,
            Protocol::FloodBroadcast,
            Protocol::GenuineMulticast,
        ] {
            assert_eq!(plain.run(protocol), neutral.run(protocol), "{protocol:?}");
        }
    }

    #[test]
    fn topic_workload_builds_one_oracle_and_a_full_schedule() {
        use crate::scenario::TopicWorkload;
        let scenario = Scenario::builder()
            .group(4, 2)
            .topics(TopicWorkload::new(6, 2, 20).with_publish_rounds(4))
            .seed(19)
            .build();
        let workload = trial_workload(&scenario, 0);
        let oracle = workload.topic_oracle.as_ref().expect("topic oracle");
        assert_eq!(oracle.topic_count(), 6);
        assert_eq!(workload.schedule.len(), 20);
        for (index, (round, sender, event)) in workload.schedule.iter().enumerate() {
            assert_eq!(event.id().0, 10_000 + index as u64);
            assert!(*round < 4, "round {round} within the publish window");
            // The publisher subscribes to the event's topic (every topic
            // has subscribers here: 16 processes × 2 picks over 6 topics).
            let topic = oracle.topic_of(event).expect("topical event");
            assert!(
                oracle.subscriptions_of(*sender).contains(&(topic as u32)),
                "publisher {sender} does not subscribe to topic {topic}"
            );
        }
        // Rounds are spread, not a single burst.
        assert!(workload.schedule.iter().any(|(round, _, _)| *round > 0));
        // 16 processes × ≤3 distinct audiences… the hashcons built far
        // fewer oracles than it served topics.
        let stats = oracle.intern_stats();
        assert_eq!(stats.misses + stats.hits, 6, "one lookup per topic");
    }

    #[test]
    fn topic_trials_deliver_to_subscribers_only_and_stay_deterministic() {
        use crate::scenario::TopicWorkload;
        let scenario = Scenario::builder()
            .group(4, 2)
            .topics(TopicWorkload::new(5, 2, 12).with_publish_rounds(3))
            .seed(23)
            .build();
        // Genuine multicast on a reliable network: every subscriber of a
        // published topic delivers, nobody else receives anything.
        let outcome = &scenario.run(Protocol::GenuineMulticast)[0];
        assert_eq!(outcome.per_event.len(), 12);
        assert_eq!(outcome.report.received_uninterested, 0);
        assert_eq!(
            outcome.report.delivered_interested, outcome.report.interested,
            "loss-free genuine multicast reaches the whole audience: {:?}",
            outcome.report
        );
        assert!(outcome.report.interested > 0);
        // Deterministic and parallel-stable, like every other workload.
        for protocol in [Protocol::Pmcast, Protocol::GenuineMulticast] {
            let sequential = scenario.run(protocol);
            assert_eq!(sequential, scenario.run(protocol), "{protocol:?}");
            assert_eq!(sequential, scenario.run_parallel(protocol), "{protocol:?}");
        }
    }

    #[test]
    fn default_workload_matches_explicit_equivalent() {
        // A scenario spelling out the default workload explicitly (same
        // event id, same publisher rule, round 0) reproduces the implicit
        // default bit for bit — the seed contract in action.
        let config = ExperimentConfig::quick().with_trials(1).with_seed(123);
        let implicit = run_trial(&config, 0);
        let mut scenario = Scenario::from_experiment(&config);
        scenario.publications.push(Publication {
            round: 0,
            publisher: Publisher::Interested,
            event: Event::builder(1_000).int("b", 1).build(),
        });
        let explicit = run_scenario_trial_with(&scenario, Protocol::Pmcast, 0);
        assert_eq!(implicit, explicit);
    }
}
