//! Regenerates the data behind every figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p pmcast-sim --bin figures -- [FIGURE…] [--paper] [--out DIR]
//!
//! FIGURE: fig4 | fig5 | fig6 | fig7 | views | baselines | rounds | all (default)
//! --paper    run at the paper's scale (n ≈ 10 648, more trials; slower)
//! --out DIR  output directory for the CSV files (default target/figures)
//! ```
//!
//! Every selected experiment prints an ASCII table to stdout and writes a
//! CSV file to the output directory; `EXPERIMENTS.md` documents how the
//! resulting curves compare with the paper's.

use std::path::PathBuf;
use std::process::ExitCode;

use pmcast_sim::experiments::{
    baselines, reliability, rounds, scalability, spurious, tuning, views, Profile,
};
use pmcast_sim::report::{default_output_dir, to_ascii_table, write_csv, FigureRow};

struct Options {
    figures: Vec<String>,
    profile: Profile,
    output: PathBuf,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut figures = Vec::new();
    let mut profile = Profile::Quick;
    let mut output = default_output_dir();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--paper" => profile = Profile::Paper,
            "--quick" => profile = Profile::Quick,
            "--out" => {
                let dir = iter
                    .next()
                    .ok_or_else(|| "--out requires a directory argument".to_string())?;
                output = PathBuf::from(dir);
            }
            "--help" | "-h" => {
                return Err("usage: figures [fig4|fig5|fig6|fig7|views|baselines|rounds|all]… [--paper] [--out DIR]"
                    .to_string())
            }
            name => figures.push(name.to_string()),
        }
    }
    if figures.is_empty() {
        figures.push("all".to_string());
    }
    Ok(Options {
        figures,
        profile,
        output,
    })
}

fn emit<R: FigureRow>(options: &Options, name: &str, title: &str, rows: &[R]) {
    println!("{}", to_ascii_table(title, rows));
    match write_csv(&options.output, name, rows) {
        Ok(path) => println!("wrote {}\n", path.display()),
        Err(error) => eprintln!("could not write {name}.csv: {error}\n"),
    }
}

fn run_figure(options: &Options, name: &str) -> Result<(), String> {
    let profile = options.profile;
    match name {
        "fig4" => emit(
            options,
            "fig4_reliability",
            "Figure 4 — delivery probability of interested processes",
            &reliability::run(profile),
        ),
        "fig5" => emit(
            options,
            "fig5_uninterested",
            "Figure 5 — reception probability of uninterested processes",
            &spurious::run(profile),
        ),
        "fig6" => emit(
            options,
            "fig6_scalability",
            "Figure 6 — scalability with growing subgroup size",
            &scalability::run(profile),
        ),
        "fig7" => emit(
            options,
            "fig7_tuning",
            "Figure 7 — tuned vs untuned algorithm",
            &tuning::run(profile),
        ),
        "views" => emit(
            options,
            "view_sizes",
            "Membership scalability — per-process view sizes (Eq. 2/12)",
            &views::run(profile),
        ),
        "baselines" => emit(
            options,
            "baseline_comparison",
            "Baselines — pmcast vs flooding broadcast vs genuine multicast",
            &baselines::run(profile),
        ),
        "rounds" => emit(
            options,
            "rounds_bound",
            "Rounds — simulated rounds vs analytical budget (Eq. 13)",
            &rounds::run(profile),
        ),
        "all" => {
            for figure in ["fig4", "fig5", "fig6", "fig7", "views", "baselines", "rounds"] {
                run_figure(options, figure)?;
            }
        }
        other => return Err(format!("unknown figure {other:?}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    for figure in options.figures.clone() {
        if let Err(message) = run_figure(&options, &figure) {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
