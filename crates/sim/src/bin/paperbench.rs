//! Times the paper-scale reliability experiment point (`a = 22`, `d = 3`,
//! `n = 10 648`, matching rate 0.5) — the unit of work behind Figures 4/5/7
//! — and prints wall-clock plus outcome, so hot-path PRs can report
//! before/after numbers from one command.
//!
//! ```text
//! cargo run --release -p pmcast-sim --bin paperbench -- [TRIALS] [--sequential]
//! ```

use std::time::Instant;

use pmcast_sim::runner::{
    run_experiment, run_experiment_parallel, ExperimentConfig, Protocol,
};

fn main() {
    let mut trials = 3usize;
    let mut sequential = false;
    let mut protocol = Protocol::Pmcast;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--sequential" => sequential = true,
            "--flood" => protocol = Protocol::FloodBroadcast,
            other => {
                trials = other.parse().unwrap_or_else(|_| {
                    panic!("expected a trial count, --sequential or --flood, got {other:?}")
                });
            }
        }
    }
    let config = ExperimentConfig::paper_reliability()
        .with_trials(trials)
        .with_matching_rate(0.5)
        .with_protocol_kind(protocol);
    let started = Instant::now();
    let outcome = if sequential {
        run_experiment(&config)
    } else {
        run_experiment_parallel(&config)
    };
    let elapsed = started.elapsed();
    println!(
        "n={} trials={} mode={} threads={} delivery={:.4} spurious={:.4} messages={:.0} rounds={:.1} elapsed={:.3}s ({:.3}s/trial)",
        config.group_size(),
        trials,
        if sequential { "sequential" } else { "parallel" },
        if sequential { 1 } else { rayon::current_num_threads() },
        outcome.delivery_mean,
        outcome.spurious_mean,
        outcome.messages_mean,
        outcome.rounds_mean,
        elapsed.as_secs_f64(),
        elapsed.as_secs_f64() / trials as f64,
    );
}
