//! **Baseline comparison** (Section 1 / 3.1) — pmcast versus gossip
//! broadcast with filtering on delivery and versus genuine multicast, on
//! delivery reliability, spurious reception and network cost.

use serde::{Deserialize, Serialize};

use crate::report::FigureRow;
use crate::runner::{run_experiment_parallel, Protocol};

use super::Profile;

/// One protocol's aggregate behaviour at one matching rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineRow {
    /// Protocol identifier: 0 = pmcast, 1 = flooding broadcast, 2 = genuine
    /// multicast.
    pub protocol: f64,
    /// Fraction of interested processes.
    pub matching_rate: f64,
    /// Delivery probability for interested processes.
    pub delivery: f64,
    /// Reception probability for uninterested processes.
    pub spurious: f64,
    /// Mean gossip messages per multicast.
    pub messages: f64,
    /// Mean rounds to quiescence.
    pub rounds: f64,
}

impl FigureRow for BaselineRow {
    fn headers() -> Vec<&'static str> {
        vec![
            "protocol",
            "matching_rate",
            "delivery",
            "spurious",
            "messages",
            "rounds",
        ]
    }
    fn values(&self) -> Vec<f64> {
        vec![
            self.protocol,
            self.matching_rate,
            self.delivery,
            self.spurious,
            self.messages,
            self.rounds,
        ]
    }
}

/// Numeric identifiers used in the `protocol` column.
pub const PROTOCOL_PMCAST: f64 = 0.0;
/// Flooding broadcast identifier.
pub const PROTOCOL_FLOODING: f64 = 1.0;
/// Genuine multicast identifier.
pub const PROTOCOL_GENUINE: f64 = 2.0;

/// Runs the baseline comparison for the given profile at matching rates
/// 0.2 and 0.5.
pub fn run(profile: Profile) -> Vec<BaselineRow> {
    let base = profile.reliability_base();
    let mut rows = Vec::new();
    for &matching_rate in &[0.2, 0.5] {
        for (id, kind) in [
            (PROTOCOL_PMCAST, Protocol::Pmcast),
            (PROTOCOL_FLOODING, Protocol::FloodBroadcast),
            (PROTOCOL_GENUINE, Protocol::GenuineMulticast),
        ] {
            let outcome = run_experiment_parallel(
                &base
                    .clone()
                    .with_matching_rate(matching_rate)
                    .with_protocol_kind(kind),
            );
            rows.push(BaselineRow {
                protocol: id,
                matching_rate,
                delivery: outcome.delivery_mean,
                spurious: outcome.spurious_mean,
                messages: outcome.messages_mean,
                rounds: outcome.rounds_mean,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmcast_sits_between_flooding_and_genuine_multicast() {
        let rows = run(Profile::Quick);
        assert_eq!(rows.len(), 6);
        for matching_rate in [0.2, 0.5] {
            let find = |proto: f64| {
                rows.iter()
                    .find(|r| r.protocol == proto && (r.matching_rate - matching_rate).abs() < 1e-9)
                    .unwrap()
            };
            let pmcast = find(PROTOCOL_PMCAST);
            let flooding = find(PROTOCOL_FLOODING);
            let genuine = find(PROTOCOL_GENUINE);

            // All three deliver reliably to interested processes.
            assert!(pmcast.delivery > 0.7, "pmcast delivery {}", pmcast.delivery);
            assert!(flooding.delivery > 0.9);
            assert!(genuine.delivery > 0.7);

            // Spurious reception: flooding ≫ pmcast ≥ genuine (= 0).
            assert!(flooding.spurious > pmcast.spurious);
            assert!(pmcast.spurious + 1e-9 >= genuine.spurious);
            assert_eq!(genuine.spurious, 0.0);

            // Network cost: flooding costs more than pmcast at partial interest.
            assert!(
                flooding.messages > pmcast.messages,
                "flooding {} vs pmcast {} messages at rate {}",
                flooding.messages,
                pmcast.messages,
                matching_rate
            );
        }
    }
}
